#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh quick-mode bench JSON to its
committed baseline (bench/baselines/) within a tolerance band.

Fails (exit 1) when any throughput metric drops more than --throughput-tol
(default 15%) below the baseline, or any p95 latency rises more than
--latency-tol (default 25%) above it. A metric present in the baseline but
missing from the fresh run also fails: a protocol silently falling out of a
bench must not pass the gate. Metrics only present in the fresh run are
reported and ignored (new protocols grow the baseline on the next --update).

Understands the quick-mode bench formats by their "bench" field:
  world_throughput      pool_loop.events_per_sec             (higher-better)
  protocol_comparison   per protocol x backend: ops_per_s,
                        events_per_s; the threads
                        batched-vs-per-message speedup ratio
                        and the gv06-regular-vs-abd events/s
                        ratio per backend; a net-only run
                        (the CI net smoke) additionally gates
                        an all-rows check_ok flag            (higher-better)
  latency_profile       per protocol x backend: writes.p95,
                        reads.p95                            (lower-better)
  history_gc            per retention limit: max_slots,
                        hist_ack_bytes, resyncs; the
                        never-acking capped max slots        (lower-better)
                        and a violation-free flag            (higher-better)
  history_optimization  per variant: bytes_per_read,
                        slots_shipped                        (lower-better)
  load_engine           per DES row: ops_per_s (higher-better;
                        wall clock, CI widens the band),
                        sojourn_p999_ns and checker_peak_live
                        (lower-better, virtual-time exact);
                        plus an all-rows check_ok flag        (higher-better)

DES latency numbers are virtual time, hence bit-deterministic: any p95
movement there is a real algorithmic change, not scheduler noise. Wall-clock
throughput numbers do vary with the runner; the band absorbs that.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_x.json \
      --fresh build/BENCH_x.json [--throughput-tol 0.15] [--latency-tol 0.25]
  check_bench_regression.py --update --baseline ... --fresh ...
      (rewrite the baseline from the fresh run; prints the diff first)
  check_bench_regression.py --self-test
      (prove the gate trips: doctored slow/latent copies must fail)
"""

import argparse
import json
import re
import shutil
import sys

HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"


def extract_metrics(doc):
    """Returns {metric_name: (value, direction)} for a known bench JSON."""
    bench = doc.get("bench")
    metrics = {}
    if bench == "world_throughput":
        # Gate the pool-vs-seed speedup, not absolute events/s: both loops
        # run on the same machine in the same process, so the ratio is
        # immune to runner provisioning while still dropping the moment the
        # hot path loses an optimization the embedded seed loop never had.
        metrics["speedup_vs_seed_loop"] = (float(doc["speedup"]),
                                           HIGHER_IS_BETTER)
    elif bench == "protocol_comparison":
        for row in doc["results"]:
            key = f"{row['protocol']}/{row['backend']}"
            metrics[f"{key}.ops_per_s"] = (float(row["ops_per_s"]),
                                           HIGHER_IS_BETTER)
            metrics[f"{key}.events_per_s"] = (float(row["events_per_s"]),
                                              HIGHER_IS_BETTER)
        # Machine-independent ratio of swap-drain batched delivery over the
        # per-message reference path (both measured in the same run on the
        # same machine, like the world-throughput pool-vs-seed speedup):
        # drops the moment the threaded hot path loses its amortization.
        if "threads_batch" in doc:
            metrics["threads_batch_speedup"] = (
                float(doc["threads_batch"]["speedup"]), HIGHER_IS_BETTER)
        # Price of regularity over atomic-in-failure-free abd, per backend:
        # another same-run same-machine ratio, so runner provisioning cancels
        # out. This is what the ack-driven delta shipping bought -- it drops
        # the moment the read path regrows an O(history) tail.
        rows = {(r["protocol"], r["backend"]): r for r in doc["results"]}
        for backend in sorted({r["backend"] for r in doc["results"]}):
            reg = rows.get(("gv06-regular", backend))
            abd = rows.get(("abd", backend))
            if reg and abd and float(abd["events_per_s"]) > 0:
                metrics[f"regular_vs_abd.{backend}.events_ratio"] = (
                    float(reg["events_per_s"]) / float(abd["events_per_s"]),
                    HIGHER_IS_BETTER)
        # Net smoke (a --backend=net run renamed BENCH_net_smoke.json):
        # loopback-TCP wall clocks are the noisiest numbers in CI, so the
        # aggregate consistency flag is the hard gate -- any FAILed check in
        # any row turns 1.0 into 0.0, an unconditional FAIL against a 1.0
        # baseline -- while the per-row throughputs ride the (widened, see
        # ci.yml) tolerance band.
        if doc["results"] and all(r["backend"] == "net"
                                  for r in doc["results"]):
            all_ok = all(bool(r["check_ok"]) for r in doc["results"])
            metrics["net.check_ok"] = (1.0 if all_ok else 0.0,
                                       HIGHER_IS_BETTER)
    elif bench == "history_gc":
        # All DES, bit-deterministic: any movement is a real change in the
        # GC/delta machinery, not noise. Slots and bytes are lower-better
        # (memory and wire cost of the retention policy); the violation-free
        # flag turns "regularity must never be traded away" into a gateable
        # higher-better metric (0 violations -> 1.0, any violation -> 0.0,
        # which is an unconditional FAIL against a 1.0 baseline).
        total_violations = doc["never_acking"]["violations"]
        for row in doc["rows"]:
            key = ("gc.watermark_only" if row["limit"] == 0
                   else f"gc.cap{row['limit']}")
            metrics[f"{key}.max_slots"] = (float(row["max_slots"]),
                                           LOWER_IS_BETTER)
            metrics[f"{key}.hist_ack_bytes"] = (float(row["hist_ack_bytes"]),
                                                LOWER_IS_BETTER)
            metrics[f"{key}.resyncs"] = (float(row["resyncs"]),
                                         LOWER_IS_BETTER)
            total_violations += row["violations"]
        metrics["never_acking.capped_max_slots"] = (
            float(doc["never_acking"]["capped_max_slots"]), LOWER_IS_BETTER)
        metrics["violation_free"] = (
            1.0 if total_violations == 0 else 0.0, HIGHER_IS_BETTER)
    elif bench == "history_optimization":
        # Also pure DES. bytes_per_read flat in the write count is the
        # tentpole property: deltas ship O(1) slots per read, so a fresh run
        # regrowing per-read bytes means the O(history) tail came back.
        for variant in ("full", "suffix"):
            metrics[f"{variant}.bytes_per_read"] = (
                float(doc[variant]["bytes_per_read"]), LOWER_IS_BETTER)
            metrics[f"{variant}.slots_shipped"] = (
                float(doc[variant]["slots_shipped"]), LOWER_IS_BETTER)
    elif bench == "latency_profile":
        for row in doc["rows"]:
            key = f"{row['protocol']}/{row['backend']}"
            metrics[f"{key}.writes.p95"] = (float(row["writes"]["p95"]),
                                            LOWER_IS_BETTER)
            metrics[f"{key}.reads.p95"] = (float(row["reads"]["p95"]),
                                           LOWER_IS_BETTER)
    elif bench == "load_engine":
        # Gate only the DES rows: their sojourn quantiles and checker
        # residency are virtual-time deterministic, so any movement is a
        # real change in the engine or the windowed checker. Wall-clock
        # ops/s does vary with the runner -- CI passes a wider
        # --throughput-tol for this bench. The threads row is reported but
        # not gated (genuinely nondeterministic end to end). The aggregate
        # check_ok flag makes "the soak must verify clean" gateable: any
        # failed row turns 1.0 into 0.0, an unconditional FAIL.
        all_ok = True
        for row in doc["rows"]:
            all_ok = all_ok and bool(row["check_ok"])
            if row["backend"] != "des":
                continue
            key = f"load.{row['name']}"
            metrics[f"{key}.ops_per_s"] = (float(row["ops_per_s"]),
                                           HIGHER_IS_BETTER)
            metrics[f"{key}.sojourn_p999_ns"] = (
                float(row["sojourn_p999_ns"]), LOWER_IS_BETTER)
            metrics[f"{key}.checker_peak_live"] = (
                float(row["checker_peak_live"]), LOWER_IS_BETTER)
        metrics["load.check_ok"] = (1.0 if all_ok else 0.0, HIGHER_IS_BETTER)
    else:
        raise SystemExit(f"unknown bench format: {bench!r}")
    return metrics


def compare(baseline, fresh, throughput_tol, latency_tol):
    """Returns (failures, lines): violated metrics and a full report."""
    failures = []
    lines = []
    for name, (base_value, direction) in sorted(baseline.items()):
        if name not in fresh:
            failures.append(name)
            lines.append(f"FAIL {name}: missing from the fresh run "
                         f"(baseline {base_value:.1f})")
            continue
        fresh_value, _ = fresh[name]
        if base_value <= 0:
            lines.append(f"  ok {name}: baseline {base_value:.1f} (not gated)")
            continue
        ratio = fresh_value / base_value
        if direction == HIGHER_IS_BETTER:
            bound = 1.0 - throughput_tol
            bad = ratio < bound
            kind = f"throughput drop >{throughput_tol:.0%}"
        else:
            bound = 1.0 + latency_tol
            bad = ratio > bound
            kind = f"p95 rise >{latency_tol:.0%}"
        status = "FAIL" if bad else "  ok"
        lines.append(f"{status} {name}: baseline {base_value:.1f} -> fresh "
                     f"{fresh_value:.1f} ({ratio:.2f}x, allowed "
                     f"{'>=' if direction == HIGHER_IS_BETTER else '<='} "
                     f"{bound:.2f}x)")
        if bad:
            failures.append(f"{name} ({kind})")
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(f"  new {name}: {fresh[name][0]:.1f} "
                     "(no baseline; run --update to start gating it)")
    return failures, lines


def self_test():
    """The gate must trip on an artificially slowed run and pass on an
    identical one."""
    baseline = {
        "x.ops_per_s": (1000.0, HIGHER_IS_BETTER),
        "x.reads.p95": (200.0, LOWER_IS_BETTER),
    }
    same, _ = compare(baseline, dict(baseline), 0.15, 0.25)
    assert not same, f"identical run must pass, got {same}"

    slowed = {
        "x.ops_per_s": (500.0, HIGHER_IS_BETTER),   # 2x slower
        "x.reads.p95": (200.0, LOWER_IS_BETTER),
    }
    failures, _ = compare(baseline, slowed, 0.15, 0.25)
    assert failures, "halved throughput must trip the gate"

    latent = {
        "x.ops_per_s": (1000.0, HIGHER_IS_BETTER),
        "x.reads.p95": (400.0, LOWER_IS_BETTER),    # 2x the p95
    }
    failures, _ = compare(baseline, latent, 0.15, 0.25)
    assert failures, "doubled p95 must trip the gate"

    in_band = {
        "x.ops_per_s": (900.0, HIGHER_IS_BETTER),   # -10%: inside the band
        "x.reads.p95": (240.0, LOWER_IS_BETTER),    # +20%: inside the band
    }
    failures, _ = compare(baseline, in_band, 0.15, 0.25)
    assert not failures, f"in-band noise must pass, got {failures}"

    missing = {"x.ops_per_s": (1000.0, HIGHER_IS_BETTER)}
    failures, _ = compare(baseline, missing, 0.15, 0.25)
    assert failures, "a metric vanishing from the bench must trip the gate"
    print("self-test ok: the gate trips on slowdowns, p95 rises and "
          "missing metrics, and passes in-band noise")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--fresh", help="freshly produced bench JSON")
    parser.add_argument("--throughput-tol", type=float, default=0.15,
                        help="max tolerated throughput drop (default 0.15)")
    parser.add_argument("--latency-tol", type=float, default=0.25,
                        help="max tolerated p95 rise (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the fresh run")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on doctored runs")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required")

    with open(args.fresh) as f:
        fresh_doc = json.load(f)
    fresh = extract_metrics(fresh_doc)
    with open(args.baseline) as f:
        baseline = extract_metrics(json.load(f))

    failures, lines = compare(baseline, fresh, args.throughput_tol,
                              args.latency_tol)
    print(f"perf gate: {args.fresh} vs {args.baseline}")
    for line in lines:
        print(f"  {line}")

    if args.update:
        # The committed threads_batch.speedup is a hand-maintained
        # conservative floor (see README), deliberately below the measured
        # ratio so scheduler noise cannot trip the gate. A verbatim copy
        # would silently replace the floor with a high-water sample, so
        # keep the committed value whenever it is the lower of the two.
        old_floor = None
        try:
            with open(args.baseline) as f:
                old_doc = json.load(f)
            old_floor = old_doc.get("threads_batch", {}).get("speedup")
        except (OSError, ValueError):
            pass
        fresh_speedup = fresh_doc.get("threads_batch", {}).get("speedup")
        shutil.copyfile(args.fresh, args.baseline)
        if (old_floor is not None and fresh_speedup is not None
                and old_floor < fresh_speedup):
            # Patch only the speedup literal in the verbatim copy, so the
            # file keeps the bench's own formatting and the measured
            # batched/unbatched components stay as measured; the gated
            # "speedup" alone is the conservative floor.
            with open(args.baseline) as f:
                text = f.read()
            text = re.sub(r'("speedup": )[0-9.]+',
                          lambda m: f"{m.group(1)}{old_floor:.3f}", text,
                          count=1)
            with open(args.baseline, "w") as f:
                f.write(text)
            print(f"baseline updated from {args.fresh} "
                  f"(kept the committed speedup floor {old_floor})")
        else:
            print(f"baseline updated from {args.fresh}")
        return 0
    if failures:
        print(f"PERF REGRESSION: {len(failures)} metric(s) out of band:")
        for name in failures:
            print(f"  - {name}")
        return 1
    print(f"all {len(baseline)} gated metrics within band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
