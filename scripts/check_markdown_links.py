#!/usr/bin/env python3
"""Fail on broken relative links in the repository's Markdown files.

Scans every *.md file (excluding build directories), extracts inline
Markdown links and images, and verifies that each relative target exists
on disk (anchors and URL fragments are stripped; absolute URLs and
mailto: links are ignored). Exits nonzero listing every broken link.

Usage: scripts/check_markdown_links.py [repo_root]
"""

import os
import re
import sys
import urllib.parse

# Inline links/images: [text](target) / ![alt](target). Excludes targets
# with spaces-only and code spans handled below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", ".cache"}


def skip_dir(name):
    # Any local build tree (build, build-tsan, build-asan, build-werror,
    # ...) -- kept in sync with .gitignore's build-*/ pattern.
    return name in SKIP_DIRS or name == "build" or name.startswith("build-")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not skip_dir(d)]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    broken = []
    checked = 0
    for md in markdown_files(root):
        for lineno, target in links_in(md):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            # Strip fragment/query, decode %20-style escapes.
            path = urllib.parse.unquote(target.split("#", 1)[0].split("?", 1)[0])
            if not path:
                continue
            if path.startswith("/"):
                resolved = os.path.join(root, path.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(md), path)
            checked += 1
            if not os.path.exists(resolved):
                broken.append(
                    f"{os.path.relpath(md, root)}:{lineno}: broken link "
                    f"'{target}' (resolved to {os.path.relpath(resolved, root)})"
                )
    if broken:
        print(f"{len(broken)} broken link(s):")
        for b in broken:
            print("  " + b)
        return 1
    print(f"OK: {checked} relative link(s) across *.md resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
