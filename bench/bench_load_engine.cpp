// Million-client open-loop soak: the load engine (harness/workload.hpp)
// drives a sharded deployment with a 1.2M-client population whose arrivals
// decouple from completions, while every shard's HistoryLog runs the
// windowed streaming checker -- ops are verified and retired online, so
// checker memory stays O(window) no matter how long the soak runs.
//
// Three DES rows (bit-deterministic sojourn quantiles and checker
// residency; wall-clock ops/s) plus one genuine-threads row (reported, not
// gated). Emits BENCH_load_engine.json for the CI perf-regression gate;
// --quick shrinks the horizon for CI smoke mode. Exits nonzero when any
// row's checker fails or an operation never completes -- a soak that
// corrupts a register must fail the lane, not just a number.
//
// Shape notes. Offered load is sized to ~80% of aggregate station capacity
// (16 stations x ~11us/op), so poisson rows are busy-but-stable while the
// bursty row's 4x duty-cycle bursts transiently exceed capacity: its queues
// grow and drain each period, which is exactly the behavior a closed loop
// can never exhibit (docs/WORKLOADS.md walks the arithmetic).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

struct LoadRow {
  const char* name;
  const char* protocol;
  const char* backend;
  const char* arrival;
  std::uint64_t clients{0};
  std::uint64_t arrivals{0};
  std::uint64_t distinct{0};
  std::uint64_t completed{0};
  std::uint64_t shed{0};
  std::uint64_t max_queue{0};
  double ops_per_s{0};
  Time p50{0};
  Time p999{0};
  std::size_t window{0};
  std::uint64_t peak_live{0};
  std::uint64_t retired{0};
  int violations{0};
  bool ok{false};
};

struct RowCfg {
  const char* name;
  harness::Protocol protocol;
  harness::BackendKind backend;
  harness::ArrivalKind arrival;
  /// Mean per-client think time (backend clock units). With the 1.2M
  /// population this fixes the offered rate: clients / think.
  Time think;
  /// Arrival-generation window (virtual ns on the DES, wall ns on
  /// threads); quick mode shrinks it.
  Time horizon_full;
  Time horizon_quick;
};

constexpr std::uint64_t kClients = 1'200'000;
constexpr int kShards = 4;
constexpr std::size_t kWindow = 4'096;

LoadRow run_load(const RowCfg& cfg, bool quick) {
  harness::DeploymentOptions opts;
  opts.protocol = cfg.protocol;
  opts.backend = cfg.backend;
  opts.res = harness::protocol_traits(cfg.protocol).resilience_for(1, 1, 3);
  opts.shards = kShards;
  opts.seed = 0xb10bULL;
  opts.checker_window = kWindow;
  harness::Deployment d(opts);

  harness::OpenLoopOptions ol;
  ol.arrival = cfg.arrival;
  ol.clients = kClients;
  ol.mean_think = cfg.think;
  ol.horizon = quick ? cfg.horizon_quick : cfg.horizon_full;
  ol.write_fraction = 0.15;
  ol.seed = 0x10adULL;
  harness::OpenLoopEngine engine(d, ol);
  engine.launch();

  const auto t0 = std::chrono::steady_clock::now();
  d.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();

  const auto& st = engine.stats();
  const auto report = d.check();
  const auto wstats = d.checker_stats();
  std::uint64_t recorded = 0;
  std::uint64_t completed_ops = 0;
  for (int s = 0; s < d.shards(); ++s) {
    recorded += d.log(s).recorded_total();
    completed_ops += d.log(s).completed_total();
  }

  LoadRow row;
  row.name = cfg.name;
  row.protocol = harness::protocol_traits(cfg.protocol).cli_name;
  row.backend = cfg.backend == harness::BackendKind::Sim ? "des" : "threads";
  row.arrival = harness::to_string(cfg.arrival);
  row.clients = kClients;
  row.arrivals = st.arrivals;
  row.distinct = st.distinct_clients;
  row.completed = st.completed;
  row.shed = st.shed;
  row.max_queue = st.max_queue_depth;
  row.ops_per_s = wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0;
  row.p50 = st.sojourn.p50();
  row.p999 = st.sojourn.quantile(0.999);
  row.window = kWindow;
  row.peak_live = wstats.peak_live;
  row.retired = wstats.retired;
  row.violations = static_cast<int>(report.violations.size());
  row.ok = report.ok() && recorded == completed_ops &&
           st.completed == st.arrivals - st.shed;
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", cfg.name,
                 report.violations[0].c_str());
  }
  return row;
}

int run_suite(bool quick) {
  const RowCfg rows_cfg[] = {
      // 1.2M clients thinking ~1.2 virtual seconds each: ~1M offered op/s.
      {"des_safe_poisson", harness::Protocol::Safe, harness::BackendKind::Sim,
       harness::ArrivalKind::Poisson, 1'200'000'000, 1'200'000'000,
       40'000'000},
      // The bursty shape's duty-cycle boost raises the *mean* rate too
      // (see workload.hpp), so halve the base rate to keep the row in the
      // bursts-overload-then-drain regime instead of saturating outright.
      {"des_safe_bursty", harness::Protocol::Safe, harness::BackendKind::Sim,
       harness::ArrivalKind::Bursty, 2'400'000'000, 1'200'000'000,
       40'000'000},
      // The regular protocol's reads cost more rounds: halve the offered
      // rate so the row stays in the stable regime.
      {"des_regular_poisson", harness::Protocol::Regular,
       harness::BackendKind::Sim, harness::ArrivalKind::Poisson,
       2'400'000'000, 1'200'000'000, 40'000'000},
      // Genuine threads, wall-clock horizon: reported for cross-substrate
      // sanity, not gated (nondeterministic).
      {"threads_safe_poisson", harness::Protocol::Safe,
       harness::BackendKind::Threads, harness::ArrivalKind::Poisson,
       60'000'000'000, 1'000'000'000, 100'000'000},
  };

  std::printf(
      "\n=== open-loop load engine: %llu-client population, %d shards, "
      "checker window %zu (%s mode) ===\n",
      static_cast<unsigned long long>(kClients), kShards, kWindow,
      quick ? "quick" : "full");
  harness::Table table({"row", "arrivals", "clients seen", "completed",
                        "shed", "max queue", "ops/s (wall)", "sojourn p50",
                        "p99.9", "peak live", "retired", "ok"});
  std::vector<LoadRow> rows;
  for (const auto& cfg : rows_cfg) {
    rows.push_back(run_load(cfg, quick));
    const auto& r = rows.back();
    table.add_row(r.name, r.arrivals, r.distinct, r.completed, r.shed,
                  r.max_queue, static_cast<std::uint64_t>(r.ops_per_s),
                  r.p50, r.p999, r.peak_live, r.retired,
                  r.ok ? "yes" : "NO");
  }
  table.print();
  std::printf(
      "\nsojourn = arrival -> completion (queueing included), backend clock "
      "units.\nThe retired column is what the batch checker would have had "
      "to keep resident;\npeak live is what the windowed checker actually "
      "kept.\n\n");

  FILE* out = std::fopen("BENCH_load_engine.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_load_engine.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"load_engine\",\n");
  std::fprintf(out, "  \"quick\": %s,\n  \"clients\": %llu,\n"
               "  \"shards\": %d,\n  \"rows\": [\n",
               quick ? "true" : "false",
               static_cast<unsigned long long>(kClients), kShards);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"protocol\": \"%s\", \"backend\": \"%s\", "
        "\"arrival\": \"%s\", \"clients\": %llu, \"arrivals\": %llu, "
        "\"distinct_clients\": %llu, \"completed\": %llu, \"shed\": %llu, "
        "\"max_queue_depth\": %llu, \"ops_per_s\": %.1f, "
        "\"sojourn_p50_ns\": %llu, \"sojourn_p999_ns\": %llu, "
        "\"checker_window\": %zu, \"checker_peak_live\": %llu, "
        "\"checker_retired\": %llu, \"violations\": %d, \"check_ok\": %s}%s\n",
        r.name, r.protocol, r.backend, r.arrival,
        static_cast<unsigned long long>(r.clients),
        static_cast<unsigned long long>(r.arrivals),
        static_cast<unsigned long long>(r.distinct),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.max_queue), r.ops_per_s,
        static_cast<unsigned long long>(r.p50),
        static_cast<unsigned long long>(r.p999), r.window,
        static_cast<unsigned long long>(r.peak_live),
        static_cast<unsigned long long>(r.retired), r.violations,
        r.ok ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_load_engine.json\n\n");

  int bad = 0;
  for (const auto& r : rows) bad += r.ok ? 0 : 1;
  if (bad != 0) {
    std::fprintf(stderr, "%d load-engine row(s) failed their checks\n", bad);
  }
  return bad == 0 ? 0 : 1;
}

/// Microbenchmark: the arrival sampler's draw rate (the only per-arrival
/// work besides the posted step itself).
void BM_ArrivalSampler(benchmark::State& state) {
  harness::OpenLoopOptions ol;
  ol.arrival = static_cast<harness::ArrivalKind>(state.range(0));
  ol.clients = kClients;
  ol.mean_think = 1'200'000'000;
  ol.horizon = 1'200'000'000;
  ol.seed = 7;
  harness::ArrivalSampler sampler(ol, 7);
  Time now = 0;
  for (auto _ : state) {
    now += sampler.next(now);
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_ArrivalSampler)
    ->Arg(static_cast<int>(harness::ArrivalKind::Poisson))
    ->Arg(static_cast<int>(harness::ArrivalKind::Bursty))
    ->Arg(static_cast<int>(harness::ArrivalKind::Diurnal));

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool run_benchmarks = true;
  // Strip our flags before google-benchmark sees the command line.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--no-benchmarks") == 0) {
      run_benchmarks = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const int rc = run_suite(quick);
  if (run_benchmarks) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return rc;
}
