// E6 -- the positioning table: every protocol family in the library,
// side by side: resilience, semantics, worst-case rounds (measured), and
// simulated latency under identical delay distributions. This regenerates
// the comparison the paper's introduction and related-work discussion draw
// between [3] (ABD), [1] (polling reads / fast writes), [15] (authenticated)
// and the paper's own 2-round algorithm.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

struct ProtoRow {
  harness::Protocol protocol;
  int t, b;
  const char* resilience;
  const char* semantics;
  const char* trick;
};

void print_comparison() {
  std::printf(
      "\n=== E6: protocol comparison (t=2; b=2 where applicable; uniform "
      "delays 1-10us) ===\n");
  harness::Table table({"protocol", "S", "tolerates", "semantics",
                        "wr rounds", "rd rounds", "rd p50 us", "rd p99 us",
                        "violations", "mechanism"});
  const std::vector<ProtoRow> rows = {
      {harness::Protocol::Abd, 2, 0, "2t+1", "atomic",
       "crash-only; write-back"},
      {harness::Protocol::Polling, 2, 2, "2t+b+1", "safe",
       "readers never write; pays rounds"},
      {harness::Protocol::Safe, 2, 2, "2t+b+1", "safe",
       "readers write tsr; 2-round reads"},
      {harness::Protocol::Regular, 2, 2, "2t+b+1", "regular",
       "full histories at objects"},
      {harness::Protocol::RegularOptimized, 2, 2, "2t+b+1", "regular",
       "cached history suffixes (5.1)"},
      {harness::Protocol::FastWrite, 2, 2, "2t+2b+1", "safe",
       "extra objects buy 1-round ops"},
      {harness::Protocol::Auth, 2, 2, "2t+b+1", "regular",
       "writer signatures (HMAC)"},
  };
  for (const auto& row : rows) {
    harness::MixedWorkloadStats stats;
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      harness::DeploymentOptions opts;
      opts.protocol = row.protocol;
      if (row.protocol == harness::Protocol::Abd) {
        opts.res = Resilience{2 * row.t + 1, row.t, 0, 2};
      } else if (row.protocol == harness::Protocol::FastWrite) {
        opts.res = Resilience{2 * row.t + 2 * row.b + 1, row.t, row.b, 2};
      } else {
        opts.res = Resilience::optimal(row.t, row.b, 2);
      }
      opts.seed = seed * 6029;
      opts.delay = harness::DelayKind::Uniform;
      opts.delay_lo = 1'000;
      opts.delay_hi = 10'000;
      harness::Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 15;
      w.reads_per_reader = 15;
      harness::mixed_workload(d, w, &stats);
      d.run();
      violations += static_cast<int>(d.check().violations.size());
    }
    const int S = row.protocol == harness::Protocol::Abd
                      ? 2 * row.t + 1
                      : (row.protocol == harness::Protocol::FastWrite
                             ? 2 * row.t + 2 * row.b + 1
                             : 2 * row.t + row.b + 1);
    char tol[32];
    std::snprintf(tol, sizeof(tol), "t=%d b=%d", row.t,
                  row.protocol == harness::Protocol::Abd ? 0 : row.b);
    table.add_row(harness::to_string(row.protocol), S, tol, row.semantics,
                  stats.writes.rounds_max(), stats.reads.rounds_max(),
                  stats.reads.latency_p50() / 1000.0,
                  stats.reads.latency_p99() / 1000.0,
                  violations, row.trick);
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): the GV06 rows read in a CONSTANT 2 rounds "
      "at optimal\nresilience -- matching ABD's read cost while tolerating "
      "Byzantine objects; 1-round\nreads appear only by paying objects "
      "(fastwrite, S=2t+2b+1) or cryptography (auth).\n\n");
}

void BM_EndToEnd(benchmark::State& state) {
  const auto protocol = static_cast<harness::Protocol>(state.range(0));
  harness::DeploymentOptions opts;
  opts.protocol = protocol;
  opts.res = protocol == harness::Protocol::Abd
                 ? Resilience{5, 2, 0, 1}
                 : (protocol == harness::Protocol::FastWrite
                        ? Resilience{9, 2, 2, 1}
                        : Resilience::optimal(2, 2, 1));
  for (auto _ : state) {
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    const auto events = d.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetLabel(harness::to_string(protocol));
}
BENCHMARK(BM_EndToEnd)
    ->Arg(static_cast<int>(harness::Protocol::Safe))
    ->Arg(static_cast<int>(harness::Protocol::Regular))
    ->Arg(static_cast<int>(harness::Protocol::Abd))
    ->Arg(static_cast<int>(harness::Protocol::Polling))
    ->Arg(static_cast<int>(harness::Protocol::FastWrite))
    ->Arg(static_cast<int>(harness::Protocol::Auth));

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
