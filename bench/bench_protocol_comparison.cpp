// E6 -- the positioning table: every protocol family in the library,
// side by side: resilience, semantics, worst-case rounds (measured), and
// simulated latency under identical delay distributions. This regenerates
// the comparison the paper's introduction and related-work discussion draw
// between [3] (ABD), [1] (polling reads / fast writes), [15] (authenticated)
// and the paper's own 2-round algorithm.
//
// Beyond the DES table, the bench sweeps every registered protocol on each
// execution backend (discrete-event simulator and threaded cluster) and
// emits BENCH_protocol_comparison.json with events/s and ops/s per protocol
// per backend, so the perf trajectory covers both substrates.
//
//   --backend=des|threads|both   restrict the sweep (default both)
//   --quick                      smaller op budget (CI smoke mode)
//   --no-benchmarks              table + JSON sweep only, skip the
//                                google-benchmark timing loops. CI uses
//                                this so the exit status is meaningful
//                                (a filter matching nothing exits nonzero,
//                                which is indistinguishable from a crash).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/protocol.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

struct ProtoRow {
  harness::Protocol protocol;
  int t, b;
  const char* resilience;
  const char* semantics;
  const char* trick;
};

void print_comparison() {
  std::printf(
      "\n=== E6: protocol comparison (t=2; b=2 where applicable; uniform "
      "delays 1-10us) ===\n");
  harness::Table table({"protocol", "S", "tolerates", "semantics",
                        "wr rounds", "rd rounds", "rd p50 us", "rd p99 us",
                        "violations", "mechanism"});
  const std::vector<ProtoRow> rows = {
      {harness::Protocol::Abd, 2, 0, "2t+1", "atomic",
       "crash-only; write-back"},
      {harness::Protocol::Polling, 2, 2, "2t+b+1", "safe",
       "readers never write; pays rounds"},
      {harness::Protocol::Safe, 2, 2, "2t+b+1", "safe",
       "readers write tsr; 2-round reads"},
      {harness::Protocol::Regular, 2, 2, "2t+b+1", "regular",
       "full histories at objects"},
      {harness::Protocol::RegularOptimized, 2, 2, "2t+b+1", "regular",
       "cached history suffixes (5.1)"},
      {harness::Protocol::FastWrite, 2, 2, "2t+2b+1", "safe",
       "extra objects buy 1-round ops"},
      {harness::Protocol::Auth, 2, 2, "2t+b+1", "regular",
       "writer signatures (HMAC)"},
  };
  for (const auto& row : rows) {
    const auto& traits = harness::protocol_traits(row.protocol);
    harness::MixedWorkloadStats stats;
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      harness::DeploymentOptions opts;
      opts.protocol = row.protocol;
      opts.res = traits.resilience_for(row.t, row.b, 2);
      opts.seed = seed * 6029;
      opts.delay = harness::DelayKind::Uniform;
      opts.delay_lo = 1'000;
      opts.delay_hi = 10'000;
      harness::Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 15;
      w.reads_per_reader = 15;
      harness::mixed_workload(d, w, &stats);
      d.run();
      violations += static_cast<int>(d.check().violations.size());
    }
    const int S = traits.resilience_for(row.t, row.b, 2).num_objects;
    char tol[32];
    std::snprintf(tol, sizeof(tol), "t=%d b=%d", row.t,
                  row.protocol == harness::Protocol::Abd ? 0 : row.b);
    table.add_row(traits.name, S, tol, row.semantics,
                  stats.writes.rounds_max(), stats.reads.rounds_max(),
                  stats.reads.latency_p50() / 1000.0,
                  stats.reads.latency_p99() / 1000.0,
                  violations, row.trick);
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): the GV06 rows read in a CONSTANT 2 rounds "
      "at optimal\nresilience -- matching ABD's read cost while tolerating "
      "Byzantine objects; 1-round\nreads appear only by paying objects "
      "(fastwrite, S=2t+2b+1) or cryptography (auth).\n\n");
}

// ---------------------------------------------------------------------------
// Cross-backend throughput sweep + JSON
// ---------------------------------------------------------------------------

struct SweepResult {
  const char* protocol;
  const char* backend;
  std::uint64_t ops;
  std::uint64_t events;
  double wall_ms;
  double ops_per_s;
  double events_per_s;
  bool check_ok;
};

SweepResult run_once(const harness::ProtocolTraits& traits,
                     harness::BackendKind backend, int ops_budget) {
  harness::DeploymentOptions opts;
  opts.protocol = traits.id;
  opts.backend = backend;
  opts.res = traits.resilience_for(2, 2, 2);
  opts.seed = 1;
  harness::Deployment d(opts);
  harness::MixedWorkloadOptions w;
  w.writes = ops_budget;
  w.reads_per_reader = ops_budget;
  // Time from before scheduling: on the threads backend execution starts
  // the moment closures are posted, so starting the clock after
  // mixed_workload() would flatter the threads rows relative to the DES
  // (where nothing runs until d.run()). Scheduling cost on the DES is
  // negligible.
  const auto t0 = std::chrono::steady_clock::now();
  harness::mixed_workload(d, w);
  const std::uint64_t events = d.run();
  const auto t1 = std::chrono::steady_clock::now();
  std::uint64_t ops = 0;
  for (int s = 0; s < d.shards(); ++s) {
    for (const auto& op : d.log(s).snapshot()) {
      if (op.complete) ++ops;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  SweepResult r;
  r.protocol = traits.name;
  r.backend = harness::to_string(backend);
  r.ops = ops;
  r.events = events;
  r.wall_ms = wall_s * 1e3;
  r.ops_per_s = wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0;
  r.events_per_s = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  r.check_ok = d.check().ok();
  return r;
}

SweepResult run_one(const harness::ProtocolTraits& traits,
                    harness::BackendKind backend, int ops_budget) {
  // Best-of-3: quick-mode rows finish in well under a millisecond of wall
  // time, where scheduler interference dominates a single sample. The
  // fastest of three repetitions is what the machine can actually do, and
  // is stable enough for the CI perf-regression gate's tolerance band.
  // A consistency violation in any repetition fails the row.
  SweepResult best = run_once(traits, backend, ops_budget);
  bool all_ok = best.check_ok;
  for (int rep = 1; rep < 3; ++rep) {
    SweepResult r = run_once(traits, backend, ops_budget);
    all_ok = all_ok && r.check_ok;
    if (r.ops_per_s > best.ops_per_s) best = r;
  }
  best.check_ok = all_ok;
  return best;
}

void run_sweep(const std::vector<harness::BackendKind>& backends, bool quick) {
  const int ops_budget = quick ? 10 : 50;
  std::vector<SweepResult> results;
  for (const auto& traits : harness::protocol_registry()) {
    for (const auto backend : backends) {
      results.push_back(run_one(traits, backend, ops_budget));
    }
  }

  std::printf("=== protocol x backend throughput (%d writes + 2x%d reads "
              "each) ===\n",
              ops_budget, ops_budget);
  harness::Table table({"protocol", "backend", "ops", "events-or-msgs",
                        "wall ms", "ops/s", "events/s", "check"});
  for (const auto& r : results) {
    table.add_row(r.protocol, r.backend, r.ops, r.events, r.wall_ms,
                  r.ops_per_s, r.events_per_s, r.check_ok ? "OK" : "FAIL");
  }
  table.print();

  FILE* out = std::fopen("BENCH_protocol_comparison.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_protocol_comparison.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"protocol_comparison\",\n");
  std::fprintf(out, "  \"ops_budget\": %d,\n  \"results\": [\n", ops_budget);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"protocol\": \"%s\", \"backend\": \"%s\", "
                 "\"ops\": %llu, \"events\": %llu, \"wall_ms\": %.3f, "
                 "\"ops_per_s\": %.1f, \"events_per_s\": %.1f, "
                 "\"check_ok\": %s}%s\n",
                 r.protocol, r.backend,
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.events), r.wall_ms,
                 r.ops_per_s, r.events_per_s, r.check_ok ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_protocol_comparison.json\n\n");
}

void BM_EndToEnd(benchmark::State& state) {
  const auto protocol = static_cast<harness::Protocol>(state.range(0));
  const auto backend = static_cast<harness::BackendKind>(state.range(1));
  const auto& traits = harness::protocol_traits(protocol);
  harness::DeploymentOptions opts;
  opts.protocol = protocol;
  opts.backend = backend;
  opts.res = traits.resilience_for(2, 2, 1);
  for (auto _ : state) {
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    const auto events = d.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetLabel(std::string(traits.name) + "/" +
                 harness::to_string(backend));
}
BENCHMARK(BM_EndToEnd)
    ->ArgsProduct({{static_cast<int>(harness::Protocol::Safe),
                    static_cast<int>(harness::Protocol::Regular),
                    static_cast<int>(harness::Protocol::Abd),
                    static_cast<int>(harness::Protocol::Polling),
                    static_cast<int>(harness::Protocol::FastWrite),
                    static_cast<int>(harness::Protocol::Auth)},
                   {static_cast<int>(harness::BackendKind::Sim),
                    static_cast<int>(harness::BackendKind::Threads)}});

}  // namespace

int main(int argc, char** argv) {
  std::vector<harness::BackendKind> backends = {
      harness::BackendKind::Sim, harness::BackendKind::Threads};
  bool quick = false;
  bool run_benchmarks = true;
  // Strip our flags before google-benchmark sees the command line.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-benchmarks") == 0) {
      run_benchmarks = false;
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const std::string which = argv[i] + 10;
      if (which == "both") {
        // keep default
      } else if (const auto kind = harness::backend_from_name(which)) {
        backends = {*kind};
      } else {
        std::fprintf(stderr, "unknown backend '%s' (des|threads|both)\n",
                     which.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  print_comparison();
  run_sweep(backends, quick);
  if (run_benchmarks) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
