// E6 -- the positioning table: every protocol family in the library,
// side by side: resilience, semantics, worst-case rounds (measured), and
// simulated latency under identical delay distributions. This regenerates
// the comparison the paper's introduction and related-work discussion draw
// between [3] (ABD), [1] (polling reads / fast writes), [15] (authenticated)
// and the paper's own 2-round algorithm.
//
// Beyond the DES table, the bench sweeps every registered protocol on each
// execution backend (discrete-event simulator and threaded cluster) and
// emits BENCH_protocol_comparison.json with events/s and ops/s per protocol
// per backend, so the perf trajectory covers both substrates.
//
//   --backend=des|threads|net|both  restrict the sweep (default both);
//                                `net` runs the loopback-TCP socket mesh
//   --quick                      smaller op budget (CI smoke mode)
//   --no-benchmarks              table + JSON sweep only, skip the
//                                google-benchmark timing loops. CI uses
//                                this so the exit status is meaningful
//                                (a filter matching nothing exits nonzero,
//                                which is indistinguishable from a crash).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/protocol.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

struct ProtoRow {
  harness::Protocol protocol;
  int t, b;
  const char* resilience;
  const char* semantics;
  const char* trick;
};

void print_comparison() {
  std::printf(
      "\n=== E6: protocol comparison (t=2; b=2 where applicable; uniform "
      "delays 1-10us) ===\n");
  harness::Table table({"protocol", "S", "tolerates", "semantics",
                        "wr rounds", "rd rounds", "rd p50 us", "rd p99 us",
                        "violations", "mechanism"});
  const std::vector<ProtoRow> rows = {
      {harness::Protocol::Abd, 2, 0, "2t+1", "atomic",
       "crash-only; write-back"},
      {harness::Protocol::Polling, 2, 2, "2t+b+1", "safe",
       "readers never write; pays rounds"},
      {harness::Protocol::Safe, 2, 2, "2t+b+1", "safe",
       "readers write tsr; 2-round reads"},
      {harness::Protocol::Regular, 2, 2, "2t+b+1", "regular",
       "full histories at objects"},
      {harness::Protocol::RegularOptimized, 2, 2, "2t+b+1", "regular",
       "cached history suffixes (5.1)"},
      {harness::Protocol::FastWrite, 2, 2, "2t+2b+1", "safe",
       "extra objects buy 1-round ops"},
      {harness::Protocol::Auth, 2, 2, "2t+b+1", "regular",
       "writer signatures (HMAC)"},
  };
  for (const auto& row : rows) {
    const auto& traits = harness::protocol_traits(row.protocol);
    harness::MixedWorkloadStats stats;
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      harness::DeploymentOptions opts;
      opts.protocol = row.protocol;
      opts.res = traits.resilience_for(row.t, row.b, 2);
      opts.seed = seed * 6029;
      opts.delay = harness::DelayKind::Uniform;
      opts.delay_lo = 1'000;
      opts.delay_hi = 10'000;
      harness::Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 15;
      w.reads_per_reader = 15;
      harness::mixed_workload(d, w, &stats);
      d.run();
      violations += static_cast<int>(d.check().violations.size());
    }
    const int S = traits.resilience_for(row.t, row.b, 2).num_objects;
    char tol[32];
    std::snprintf(tol, sizeof(tol), "t=%d b=%d", row.t,
                  row.protocol == harness::Protocol::Abd ? 0 : row.b);
    table.add_row(traits.name, S, tol, row.semantics,
                  stats.writes.rounds_max(), stats.reads.rounds_max(),
                  stats.reads.latency_p50() / 1000.0,
                  stats.reads.latency_p99() / 1000.0,
                  violations, row.trick);
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): the GV06 rows read in a CONSTANT 2 rounds "
      "at optimal\nresilience -- matching ABD's read cost while tolerating "
      "Byzantine objects; 1-round\nreads appear only by paying objects "
      "(fastwrite, S=2t+2b+1) or cryptography (auth).\n\n");
}

// ---------------------------------------------------------------------------
// Cross-backend throughput sweep + JSON
// ---------------------------------------------------------------------------

struct SweepResult {
  const char* protocol;
  const char* backend;
  std::uint64_t ops;
  std::uint64_t events;
  double wall_ms;
  double ops_per_s;
  double events_per_s;
  bool check_ok;
};

SweepResult run_once(const harness::ProtocolTraits& traits,
                     harness::BackendKind backend, int ops_budget,
                     int warmup_read_waves, bool batched_drain) {
  harness::DeploymentOptions opts;
  opts.protocol = traits.id;
  opts.backend = backend;
  opts.res = traits.resilience_for(2, 2, 2);
  opts.seed = 1;
  opts.thread_batched_drain = batched_drain;
  harness::Deployment d(opts);
  // Warmup (threads backend): the old methodology timed ~30 ops (~2 ms of
  // wall clock) from deployment construction, so thread creation and the
  // first cold condvar wakeups dominated the row. A few waves of UNLOGGED
  // reads spin every mailbox thread up, fault the stacks in, and grow the
  // swap-drain buffers to working-set size -- without touching the checked
  // history (reads do not change the register value, so the checker is
  // oblivious). DES rows need no warmup: nothing runs before d.run().
  for (int wave = 0; wave < warmup_read_waves; ++wave) {
    for (int j = 0; j < d.res().num_readers; ++j) {
      d.invoke_read(0, /*shard=*/0, j, [](const core::ReadResult&) {});
    }
    d.run();
  }
  // Time from before scheduling: on the threads backend execution starts
  // the moment closures are posted, so starting the clock after
  // mixed_workload() would flatter the threads rows relative to the DES
  // (where nothing runs until d.run()). Scheduling cost on the DES is
  // negligible.
  const auto t0 = std::chrono::steady_clock::now();
  harness::MixedWorkloadOptions w;
  w.writes = ops_budget;
  w.reads_per_reader = ops_budget;
  // Closed loop: zero think time between chained ops. On the DES a gap
  // only shifts virtual timestamps (same events, same wall time), but on
  // the threads backend the default 3-5us gaps are real wall-clock stalls
  // through the timer thread -- a throughput row must not measure sleep.
  w.write_gap = 0;
  w.read_gap = 0;
  harness::mixed_workload(d, w);
  const std::uint64_t events = d.run();
  const auto t1 = std::chrono::steady_clock::now();
  std::uint64_t ops = 0;
  for (int s = 0; s < d.shards(); ++s) {
    for (const auto& op : d.log(s).snapshot()) {
      if (op.complete) ++ops;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  SweepResult r;
  r.protocol = traits.name;
  r.backend = harness::to_string(backend);
  r.ops = ops;
  r.events = events;
  r.wall_ms = wall_s * 1e3;
  r.ops_per_s = wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0;
  r.events_per_s = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  r.check_ok = d.check().ok();
  return r;
}

SweepResult run_one(const harness::ProtocolTraits& traits,
                    harness::BackendKind backend, int ops_budget,
                    int warmup_read_waves, bool batched_drain = true,
                    int reps = 3) {
  // Best-of-N: quick-mode rows finish in a few milliseconds of wall time,
  // where scheduler interference dominates a single sample. The fastest
  // repetition is what the machine can actually do, and is stable enough
  // for the CI perf-regression gate's tolerance band. A consistency
  // violation in any repetition fails the row.
  SweepResult best =
      run_once(traits, backend, ops_budget, warmup_read_waves, batched_drain);
  bool all_ok = best.check_ok;
  for (int rep = 1; rep < reps; ++rep) {
    SweepResult r =
        run_once(traits, backend, ops_budget, warmup_read_waves, batched_drain);
    all_ok = all_ok && r.check_ok;
    if (r.ops_per_s > best.ops_per_s) best = r;
  }
  best.check_ok = all_ok;
  return best;
}

void run_sweep(const std::vector<harness::BackendKind>& backends, bool quick) {
  // The DES runs everything scheduled in one tight loop, so a small budget
  // already measures the steady state. Threads rows need a larger budget
  // (plus the warmup in run_once) so amortized costs -- batch swaps,
  // wakeups, quiescence accounting -- are measured at steady state instead
  // of thread cold-start; --quick keeps both cheap for CI.
  const int ops_budget = quick ? 10 : 50;
  const int threads_ops_budget = quick ? 30 : 120;
  const int threads_warmup_waves = quick ? 2 : 4;
  std::vector<SweepResult> results;
  for (const auto& traits : harness::protocol_registry()) {
    for (const auto backend : backends) {
      // Threads and net rows share the wall-clock budget: both measure
      // real elapsed time, so both need the warmup and the larger budget.
      const bool threads = backend != harness::BackendKind::Sim;
      // Wall-clock rows are samples well under a millisecond on the fast
      // protocols; best-of-5 (vs. 3 for the DES) keeps them inside the CI
      // tolerance band on a noisy shared runner.
      results.push_back(run_one(traits, backend,
                                threads ? threads_ops_budget : ops_budget,
                                threads ? threads_warmup_waves : 0,
                                /*batched_drain=*/true,
                                /*reps=*/threads ? 5 : 3));
    }
  }

  std::printf("=== protocol x backend throughput (des: %d writes + 2x%d "
              "reads; threads: %d + 2x%d after %d warmup read waves) ===\n",
              ops_budget, ops_budget, threads_ops_budget, threads_ops_budget,
              threads_warmup_waves);
  harness::Table table({"protocol", "backend", "ops", "events-or-msgs",
                        "wall ms", "ops/s", "events/s", "check"});
  for (const auto& r : results) {
    table.add_row(r.protocol, r.backend, r.ops, r.events, r.wall_ms,
                  r.ops_per_s, r.events_per_s, r.check_ok ? "OK" : "FAIL");
  }
  table.print();

  // Machine-independent batching ratio: the same protocol, budget and
  // machine, with swap-drain batching on vs. the per-message reference
  // path. Like the world-throughput pool-vs-seed gate, the ratio survives
  // runner provisioning differences while dropping the moment the threaded
  // hot path loses its amortization.
  double batch_speedup = 0.0;
  SweepResult batched{}, unbatched{};
  const bool ran_threads =
      std::find(backends.begin(), backends.end(),
                harness::BackendKind::Threads) != backends.end();
  if (ran_threads) {
    // Best-of-7 per side: the ratio divides two sub-millisecond samples,
    // so it needs tighter extremes than the table rows to stay inside the
    // CI band on a noisy shared runner.
    const auto& probe = harness::protocol_traits(harness::Protocol::Safe);
    batched = run_one(probe, harness::BackendKind::Threads,
                      threads_ops_budget, threads_warmup_waves,
                      /*batched_drain=*/true, /*reps=*/7);
    unbatched = run_one(probe, harness::BackendKind::Threads,
                        threads_ops_budget, threads_warmup_waves,
                        /*batched_drain=*/false, /*reps=*/7);
    if (unbatched.events_per_s > 0) {
      batch_speedup = batched.events_per_s / unbatched.events_per_s;
    }
    std::printf("threads batching ratio (gv06-safe): batched %.0f ev/s vs "
                "per-message %.0f ev/s -> %.2fx\n",
                batched.events_per_s, unbatched.events_per_s, batch_speedup);
  }

  FILE* out = std::fopen("BENCH_protocol_comparison.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_protocol_comparison.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"protocol_comparison\",\n");
  std::fprintf(out,
               "  \"ops_budget\": %d,\n  \"threads_ops_budget\": %d,\n"
               "  \"threads_warmup_waves\": %d,\n",
               ops_budget, threads_ops_budget, threads_warmup_waves);
  if (ran_threads) {
    std::fprintf(out,
                 "  \"threads_batch\": {\"protocol\": \"%s\", "
                 "\"batched_events_per_s\": %.1f, "
                 "\"unbatched_events_per_s\": %.1f, \"speedup\": %.3f, "
                 "\"check_ok\": %s},\n",
                 batched.protocol, batched.events_per_s,
                 unbatched.events_per_s, batch_speedup,
                 batched.check_ok && unbatched.check_ok ? "true" : "false");
  }
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"protocol\": \"%s\", \"backend\": \"%s\", "
                 "\"ops\": %llu, \"events\": %llu, \"wall_ms\": %.3f, "
                 "\"ops_per_s\": %.1f, \"events_per_s\": %.1f, "
                 "\"check_ok\": %s}%s\n",
                 r.protocol, r.backend,
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.events), r.wall_ms,
                 r.ops_per_s, r.events_per_s, r.check_ok ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_protocol_comparison.json\n\n");
}

void BM_EndToEnd(benchmark::State& state) {
  const auto protocol = static_cast<harness::Protocol>(state.range(0));
  const auto backend = static_cast<harness::BackendKind>(state.range(1));
  const auto& traits = harness::protocol_traits(protocol);
  harness::DeploymentOptions opts;
  opts.protocol = protocol;
  opts.backend = backend;
  opts.res = traits.resilience_for(2, 2, 1);
  for (auto _ : state) {
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    const auto events = d.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetLabel(std::string(traits.name) + "/" +
                 harness::to_string(backend));
}
BENCHMARK(BM_EndToEnd)
    ->ArgsProduct({{static_cast<int>(harness::Protocol::Safe),
                    static_cast<int>(harness::Protocol::Regular),
                    static_cast<int>(harness::Protocol::Abd),
                    static_cast<int>(harness::Protocol::Polling),
                    static_cast<int>(harness::Protocol::FastWrite),
                    static_cast<int>(harness::Protocol::Auth)},
                   {static_cast<int>(harness::BackendKind::Sim),
                    static_cast<int>(harness::BackendKind::Threads)}});

}  // namespace

int main(int argc, char** argv) {
  std::vector<harness::BackendKind> backends = {
      harness::BackendKind::Sim, harness::BackendKind::Threads};
  bool quick = false;
  bool run_benchmarks = true;
  // Strip our flags before google-benchmark sees the command line.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-benchmarks") == 0) {
      run_benchmarks = false;
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const std::string which = argv[i] + 10;
      if (which == "both") {
        // keep default
      } else if (const auto kind = harness::backend_from_name(which)) {
        backends = {*kind};
      } else {
        std::fprintf(stderr, "unknown backend '%s' (%s|both)\n",
                     which.c_str(), harness::backend_names().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  print_comparison();
  run_sweep(backends, quick);
  if (run_benchmarks) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
