// E2 -- Proposition 2: both READ and WRITE of the safe (and regular)
// storage complete in at most 2 communication round-trips at optimal
// resilience, for every (t, b), under crash faults, Byzantine attack and
// heavy-tailed delays. The table reports measured min/max rounds; the
// worst case must never exceed 2.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

struct Row {
  int t, b;
  harness::Protocol protocol;
  const char* faults;
  harness::FaultPlan plan;
};

void print_rounds_table() {
  std::printf(
      "\n=== E2: worst-case round complexity of the GV06 storage "
      "(paper bound: 2 for both ops) ===\n");
  harness::Table table({"protocol", "t", "b", "S", "faults", "ops",
                        "write rounds (min/max)", "read rounds (min/max)",
                        "consistency"});
  std::vector<Row> rows;
  for (const auto& [t, b] :
       {std::pair{1, 1}, {2, 1}, {2, 2}, {3, 3}, {4, 2}, {5, 5}}) {
    for (const auto proto :
         {harness::Protocol::Safe, harness::Protocol::Regular}) {
      rows.push_back({t, b, proto, "none", {}});
      rows.push_back({t, b, proto, "t crashes",
                      harness::FaultPlan::crash_only(t)});
      rows.push_back(
          {t, b, proto, "b forgers + crashes",
           harness::FaultPlan::mixed(b, adversary::StrategyKind::Forger,
                                     t - b)});
      rows.push_back(
          {t, b, proto, "b accusers",
           harness::FaultPlan::mixed(b, adversary::StrategyKind::Accuser, 0)});
    }
  }
  for (const auto& row : rows) {
    harness::MixedWorkloadStats stats;
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      harness::DeploymentOptions opts;
      opts.protocol = row.protocol;
      opts.res = Resilience::optimal(row.t, row.b, 2);
      opts.seed = seed * 104729;
      opts.faults = row.plan;
      opts.delay = harness::DelayKind::HeavyTail;
      opts.delay_lo = 1'000;
      opts.delay_hi = 100'000;
      harness::Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 10;
      w.reads_per_reader = 10;
      harness::mixed_workload(d, w, &stats);
      d.run();
      violations += static_cast<int>(d.check().violations.size());
    }
    char wr[32], rd[32];
    std::snprintf(wr, sizeof(wr), "%d / %d", stats.writes.rounds_min(),
                  stats.writes.rounds_max());
    std::snprintf(rd, sizeof(rd), "%d / %d", stats.reads.rounds_min(),
                  stats.reads.rounds_max());
    table.add_row(harness::to_string(row.protocol), row.t, row.b,
                  2 * row.t + row.b + 1, row.faults,
                  stats.writes.count() + stats.reads.count(), wr, rd,
                  violations == 0 ? "ok" : "VIOLATED");
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): every row shows exactly 2/2 rounds -- the "
      "bound is tight\nand unaffected by faults, attack strategy or delay "
      "distribution.\n\n");
}

void BM_SafeRead(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  harness::DeploymentOptions opts;
  opts.protocol = harness::Protocol::Safe;
  opts.res = Resilience::optimal(t, b, 1);
  opts.seed = 1;
  harness::Deployment d(opts);
  d.invoke_write(0, "x", nullptr);
  d.run();
  Time at = d.world().now();
  for (auto _ : state) {
    bool done = false;
    at += 1'000'000;
    d.invoke_read(at, 0, [&](const core::ReadResult&) { done = true; });
    d.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetLabel("simulated 2-round read, S=" +
                 std::to_string(opts.res.num_objects));
}
BENCHMARK(BM_SafeRead)->Args({1, 1})->Args({3, 3})->Args({8, 4});

void BM_SafeWrite(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int b = static_cast<int>(state.range(1));
  harness::DeploymentOptions opts;
  opts.protocol = harness::Protocol::Safe;
  opts.res = Resilience::optimal(t, b, 1);
  harness::Deployment d(opts);
  Time at = 0;
  int k = 0;
  for (auto _ : state) {
    bool done = false;
    at += 1'000'000;
    d.invoke_write(at, harness::value_for(static_cast<Ts>(++k)),
                   [&](const core::WriteResult&) { done = true; });
    d.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_SafeWrite)->Args({1, 1})->Args({3, 3})->Args({8, 4});

}  // namespace

int main(int argc, char** argv) {
  print_rounds_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
