// E9 -- read cost under escalating Byzantine strategies. The paper's
// motivation: reads are the frequent operation, so their worst-case cost
// under attack is what matters. For the 2-round algorithm, attacks can only
// inflate *latency within the two rounds* (the reader may need more replies
// before the predicates fire); for the polling baseline, attacks inflate
// the *round count* itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

void print_impact_table() {
  const int t = 3, b = 3;
  std::printf(
      "\n=== E9: read cost under escalating attacks (t=%d, b=%d, S=%d, "
      "heavy-tail delays) ===\n",
      t, b, 2 * t + b + 1);
  harness::Table table({"strategy", "protocol", "reads", "rounds max",
                        "rd p50 us", "rd p99 us", "violations"});
  const std::vector<std::pair<const char*, harness::FaultPlan>> attacks = {
      {"none", {}},
      {"silent", harness::FaultPlan::mixed(b, adversary::StrategyKind::Silent,
                                           0)},
      {"amnesiac",
       harness::FaultPlan::mixed(b, adversary::StrategyKind::Amnesiac, 0)},
      {"forger",
       harness::FaultPlan::mixed(b, adversary::StrategyKind::Forger, 0)},
      {"accuser",
       harness::FaultPlan::mixed(b, adversary::StrategyKind::Accuser, 0)},
      {"equivocator",
       harness::FaultPlan::mixed(b, adversary::StrategyKind::Equivocator, 0)},
      {"stagger",
       harness::FaultPlan::mixed(b, adversary::StrategyKind::Stagger, 0)},
      {"collude",
       harness::FaultPlan::mixed(b, adversary::StrategyKind::Collude, 0)},
  };
  for (const auto& [name, plan] : attacks) {
    for (const auto proto :
         {harness::Protocol::Safe, harness::Protocol::Polling}) {
      harness::MixedWorkloadStats stats;
      int violations = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        harness::DeploymentOptions opts;
        opts.protocol = proto;
        opts.res = Resilience::optimal(t, b, 2);
        opts.seed = seed * 353 + 11;
        opts.faults = plan;
        opts.delay = harness::DelayKind::HeavyTail;
        opts.delay_lo = 1'000;
        opts.delay_hi = 50'000;
        harness::Deployment d(opts);
        harness::MixedWorkloadOptions w;
        w.writes = 10;
        w.reads_per_reader = 10;
        harness::mixed_workload(d, w, &stats);
        d.run();
        violations += static_cast<int>(d.check().violations.size());
      }
      table.add_row(name, harness::to_string(proto), stats.reads.count(),
                    stats.reads.rounds_max(),
                    stats.reads.latency_p50() / 1000.0,
                    stats.reads.latency_p99() / 1000.0, violations);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: gv06-safe holds 2 rounds under every strategy "
      "(attacks at most\nstretch tail latency); the polling baseline's round "
      "count climbs under stagger-style\nattacks -- the regime the paper's "
      "reader-writes technique escapes. Violations: 0\neverywhere.\n\n");
}

void BM_ReadUnderAttack(benchmark::State& state) {
  const auto kind = static_cast<adversary::StrategyKind>(state.range(0));
  harness::DeploymentOptions opts;
  opts.protocol = harness::Protocol::Safe;
  opts.res = Resilience::optimal(2, 2, 1);
  opts.seed = 29;
  opts.faults = harness::FaultPlan::mixed(2, kind, 0);
  harness::Deployment d(opts);
  d.invoke_write(0, "x", nullptr);
  d.run();
  Time at = d.world().now();
  for (auto _ : state) {
    bool done = false;
    at += 1'000'000;
    d.invoke_read(at, 0, [&](const core::ReadResult&) { done = true; });
    d.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetLabel(adversary::to_string(kind));
}
BENCHMARK(BM_ReadUnderAttack)
    ->Arg(static_cast<int>(adversary::StrategyKind::Silent))
    ->Arg(static_cast<int>(adversary::StrategyKind::Forger))
    ->Arg(static_cast<int>(adversary::StrategyKind::Accuser))
    ->Arg(static_cast<int>(adversary::StrategyKind::Equivocator))
    ->Arg(static_cast<int>(adversary::StrategyKind::Collude));

}  // namespace

int main(int argc, char** argv) {
  print_impact_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
