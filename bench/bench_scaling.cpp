// E11 (extension) -- scaling behaviour: messages, bytes and latency as the
// deployment grows in objects (t, b) and in readers (R). The paper's
// protocol is quorum-based, so per-operation message count should scale
// linearly in S and read latency should stay flat (two round-trips
// regardless); reader count only multiplies the per-reader tsr bookkeeping
// (the tsrarray is S x R, visible in bytes-per-write).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

void print_object_scaling() {
  std::printf(
      "\n=== E11a: scaling in base objects (safe storage, 1 reader, fixed "
      "5us links) ===\n");
  harness::Table table({"t", "b", "S", "msgs/op", "bytes/op", "rd p50 us",
                        "rd rounds"});
  for (const auto& [t, b] : {std::pair{1, 1}, {2, 2}, {4, 4}, {6, 6}, {8, 8},
                            {10, 10}}) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Safe;
    opts.res = Resilience::optimal(t, b, 1);
    opts.seed = 3;
    opts.delay = harness::DelayKind::Fixed;
    opts.delay_lo = 5'000;
    harness::Deployment d(opts);
    harness::MixedWorkloadStats stats;
    harness::sequential_then_reads(d, 10, 10, &stats);
    d.run();
    const auto ops = stats.writes.count() + stats.reads.count();
    table.add_row(t, b, opts.res.num_objects,
                  static_cast<double>(d.world().stats().messages_sent) /
                      static_cast<double>(ops),
                  static_cast<double>(d.world().stats().bytes_sent) /
                      static_cast<double>(ops),
                  stats.reads.latency_p50() / 1000.0,
                  stats.reads.rounds_max());
  }
  table.print();
  std::printf(
      "\nExpected: msgs/op grow linearly with S (client broadcasts per "
      "round); latency and\nround count are FLAT -- resilience costs "
      "bandwidth, not time.\n");
}

void print_reader_scaling() {
  std::printf(
      "\n=== E11b: scaling in readers (safe storage, t=b=2, S=7) ===\n");
  harness::Table table({"readers", "reads", "bytes/write", "bytes/read",
                        "rd p50 us", "violations"});
  for (const int readers : {1, 2, 4, 8, 16}) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Safe;
    opts.res = Resilience::optimal(2, 2, readers);
    opts.seed = 11;
    opts.delay = harness::DelayKind::Fixed;
    opts.delay_lo = 5'000;
    harness::Deployment d(opts);
    harness::MixedWorkloadStats stats;
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 6;
    harness::mixed_workload(d, w, &stats);
    d.run();
    // Attribute PW/W bytes to writes, READ/READ_ACK bytes to reads.
    std::uint64_t write_bytes = 0, read_bytes = 0;
    const auto& by_type = d.world().stats().bytes_by_type;
    for (std::size_t idx = 0; idx < by_type.size(); ++idx) {
      if (idx <= 3) {
        write_bytes += by_type[idx];  // PW, PW_ACK, W, WRITE_ACK
      } else if (idx <= 6) {
        read_bytes += by_type[idx];  // READ, READ_ACK, HIST_ACK
      }
    }
    table.add_row(readers, stats.reads.count(),
                  static_cast<double>(write_bytes) /
                      static_cast<double>(stats.writes.count()),
                  static_cast<double>(read_bytes) /
                      static_cast<double>(stats.reads.count()),
                  stats.reads.latency_p50() / 1000.0,
                  static_cast<int>(d.check().violations.size()));
  }
  table.print();
  std::printf(
      "\nExpected: bytes/write grow with R (the embedded tsrarray is S x R "
      "-- the paper's\ncontrol-data cost); read latency stays flat; "
      "violations 0. Contrast with [7], where\nfast atomic reads need "
      "R(t+b)+2t+b objects: here R never touches S.\n\n");
}

void BM_ScaleObjects(benchmark::State& state) {
  const int tb = static_cast<int>(state.range(0));
  for (auto _ : state) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Safe;
    opts.res = Resilience::optimal(tb, tb, 1);
    opts.seed = 17;
    harness::Deployment d(opts);
    harness::sequential_then_reads(d, 5, 5);
    benchmark::DoNotOptimize(d.run());
  }
  state.SetLabel("S=" + std::to_string(3 * tb + 1));
}
BENCHMARK(BM_ScaleObjects)->DenseRange(1, 10, 3);

void BM_ScaleReaders(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Safe;
    opts.res = Resilience::optimal(2, 2, readers);
    opts.seed = 19;
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 5;
    w.reads_per_reader = 3;
    harness::mixed_workload(d, w);
    benchmark::DoNotOptimize(d.run());
  }
}
BENCHMARK(BM_ScaleReaders)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_object_scaling();
  print_reader_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
