// E7 -- Section 6, the server-centric model: reads are a single client
// message followed by server pushes; gossip replaces writer retries. The
// table reports push traffic and read latency, and re-confirms that the
// Proposition 1 lower bound survives the model change.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/polling.hpp"
#include "checker/history.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "lowerbound/figure_one.hpp"
#include "servercentric/server.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

struct ScStats {
  harness::OpStats reads;
  std::uint64_t pushes{0};
  std::uint64_t gossip_msgs{0};
  int violations{0};
};

ScStats run_sc(int t, int b, int readers, int ops, std::uint64_t seed) {
  const Resilience res = Resilience::optimal(t, b, readers);
  const Topology topo(readers, res.num_objects);
  sim::World world(sim::WorldOptions{seed, true, false, 50'000'000});
  auto writer = std::make_unique<baselines::PollingWriter>(res, topo);
  auto* writer_ptr = writer.get();
  world.add_process(std::move(writer));
  std::vector<servercentric::Reader*> rds;
  for (int j = 0; j < readers; ++j) {
    auto r = std::make_unique<servercentric::Reader>(res, topo, j);
    rds.push_back(r.get());
    world.add_process(std::move(r));
  }
  std::vector<servercentric::Server*> servers;
  for (int i = 0; i < res.num_objects; ++i) {
    auto s = std::make_unique<servercentric::Server>(topo, i);
    servers.push_back(s.get());
    world.add_process(std::move(s));
  }
  world.start();

  checker::HistoryLog log;
  ScStats stats;
  for (int k = 0; k < ops; ++k) {
    const Time base = static_cast<Time>(k) * 60'000;
    world.post(base, topo.writer(), [&, k](net::Context& ctx) {
      const auto h = log.record_invocation(checker::OpRecord::Kind::Write, -1,
                                           ctx.now(), "v" + std::to_string(k + 1));
      writer_ptr->write(ctx, "v" + std::to_string(k + 1),
                        [&log, h, k](const core::WriteResult& r) {
                          log.record_write_response(h, r.completed_at, r.ts,
                                                    "v" + std::to_string(k + 1));
                        });
    });
    for (int j = 0; j < readers; ++j) {
      world.post(base + 20'000 + static_cast<Time>(j) * 5'000, topo.reader(j),
                 [&, j](net::Context& ctx) {
                   const auto h = log.record_invocation(
                       checker::OpRecord::Kind::Read, j, ctx.now());
                   rds[static_cast<std::size_t>(j)]->read(
                       ctx, [&log, &stats, h](const core::ReadResult& r) {
                         log.record_read_response(h, r.completed_at, r.tsval);
                         stats.reads.add(r.latency(), r.rounds);
                       });
                 });
    }
  }
  world.run();
  for (const auto* s : servers) stats.pushes += s->pushes_sent();
  constexpr std::size_t kGossipIndex = 23;
  static_assert(std::is_same_v<
                std::variant_alternative_t<kGossipIndex, wire::Message>,
                wire::ScGossipMsg>);
  stats.gossip_msgs = world.stats().messages_by_type[kGossipIndex];
  stats.violations = static_cast<int>(
      checker::check_safety(log.snapshot()).violations.size());
  return stats;
}

void print_sc_table() {
  std::printf(
      "\n=== E7: server-centric (push) model, Section 6 -- one client "
      "message per read ===\n");
  harness::Table table({"t", "b", "readers", "reads", "client rounds",
                        "read p50 us", "pushes total", "gossip msgs",
                        "violations"});
  for (const auto& [t, b] : {std::pair{1, 1}, {2, 1}, {2, 2}, {3, 3}}) {
    for (const int readers : {1, 3}) {
      const auto s = run_sc(t, b, readers, 12, 17 + static_cast<std::uint64_t>(
                                                     t * 10 + b));
      table.add_row(t, b, readers, s.reads.count(), s.reads.rounds_max(),
                    s.reads.latency_p50() / 1000.0, s.pushes, s.gossip_msgs,
                    s.violations);
    }
  }
  table.print();

  std::printf(
      "\n--- lower bound migrates (Section 6): Figure 1 vs push-style fast "
      "reads at S = 2t+2b ---\n");
  harness::Table lb({"t", "b", "S", "views identical", "safety violated"});
  for (const auto& [t, b] : {std::pair{1, 1}, {2, 2}, {4, 3}}) {
    Resilience res;
    res.t = t;
    res.b = b;
    res.num_objects = 2 * t + 2 * b;
    const auto report = lowerbound::run_figure_one(
        [&] { return lowerbound::make_strawman(res, true); }, res, "v1");
    lb.add_row(t, b, res.num_objects, report.views_identical ? "yes" : "NO",
               report.safety_violated() ? "yes" : "NO");
  }
  lb.print();
  std::printf(
      "\nExpected shape (paper, Section 6): reads complete with ONE client "
      "round in the\npush model, yet the 2t+2b impossibility persists -- "
      "extra server power does not\nbeat the bound.\n\n");
}

void BM_ServerCentricRead(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sc(2, 2, 1, 5, 3));
  }
}
BENCHMARK(BM_ServerCentricRead);

}  // namespace

int main(int argc, char** argv) {
  print_sc_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
