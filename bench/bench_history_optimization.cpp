// E5 -- the Section 5.1 optimization: full histories vs. cached suffixes.
// Measures bytes-on-wire of history acks and history slots shipped as the
// number of writes grows; full histories grow linearly per read (quadratic
// cumulative), the optimized reader stays O(1) per read once warm.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/regular_reader.hpp"
#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "wire/codec.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

struct Measurement {
  std::uint64_t ack_bytes{0};
  std::uint64_t slots{0};
  std::uint64_t history_per_object{0};
};

Measurement measure(bool optimized, int writes) {
  harness::DeploymentOptions opts;
  opts.protocol = optimized ? harness::Protocol::RegularOptimized
                            : harness::Protocol::Regular;
  opts.res = Resilience::optimal(1, 1, 1);
  opts.seed = 7;
  harness::Deployment d(opts);
  Measurement m;
  // Interleave writes and reads so the reader's cache tracks the history.
  for (int k = 0; k < writes; ++k) {
    d.logged_write(static_cast<Time>(k) * 300'000,
                   harness::value_for(static_cast<Ts>(k + 1)));
    d.logged_read(static_cast<Time>(k) * 300'000 + 150'000, 0,
                  [&d, &m](const core::ReadResult&) {
                    m.slots += d.regular_reader(0).diag()
                                   .history_slots_received;
                  });
  }
  d.run();
  // Bytes of HIST_ACK traffic (variant index of HistReadAckMsg).
  constexpr std::size_t kHistAckIndex = 6;
  static_assert(std::is_same_v<
                std::variant_alternative_t<kHistAckIndex, wire::Message>,
                wire::HistReadAckMsg>);
  m.ack_bytes = d.world().stats().bytes_by_type[kHistAckIndex];
  return m;
}

void print_optimization_table() {
  std::printf(
      "\n=== E5: Section 5.1 history-suffix optimization (t=b=1, S=4, "
      "read after every write) ===\n");
  harness::Table table({"writes", "variant", "hist-ack bytes",
                        "slots shipped", "bytes per read"});
  for (const int writes : {5, 10, 20, 40, 80}) {
    for (const bool optimized : {false, true}) {
      const auto m = measure(optimized, writes);
      table.add_row(writes, optimized ? "suffix (5.1)" : "full history",
                    m.ack_bytes, m.slots,
                    static_cast<double>(m.ack_bytes) / writes);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper, Section 5.1): full-history bytes/read grow "
      "linearly with the\nnumber of past writes; the cached-suffix variant "
      "stays flat -- 'drastically decreased'\nmessage size, identical "
      "returned values.\n\n");
}

void BM_HistoryAckEncode(benchmark::State& state) {
  const auto slots = static_cast<Ts>(state.range(0));
  wire::HistReadAckMsg ack;
  ack.round = 1;
  ack.tsr = 1;
  for (Ts k = 0; k <= slots; ++k) {
    ack.history[k] = wire::HistEntry{TsVal{k, "vvvvvvvv"},
                                     WTuple{TsVal{k, "vvvvvvvv"},
                                            init_tsrarray(4)}};
  }
  const wire::Message msg{ack};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode(msg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistoryAckEncode)->Range(1, 512)->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_optimization_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
