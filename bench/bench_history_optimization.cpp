// E5 -- the Section 5.1 optimization, extended to ack-driven deltas.
// Measures bytes-on-wire of history acks and history slots shipped as the
// number of writes grows. The pre-delta protocol re-shipped the full
// history on every read (quadratic cumulative); with per-reader shipped
// watermarks BOTH variants stay O(1) slots per read once warm, and this
// bench pins that flatness. Emits BENCH_history_optimization.json for the
// CI perf-regression gate; --quick shrinks the sweep for CI smoke mode.
// All runs are DES, so every number here is bit-deterministic.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "core/regular_reader.hpp"
#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "wire/codec.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

struct Measurement {
  std::uint64_t ack_bytes{0};
  std::uint64_t slots{0};
  std::uint64_t history_per_object{0};
};

Measurement measure(bool optimized, int writes) {
  harness::DeploymentOptions opts;
  opts.protocol = optimized ? harness::Protocol::RegularOptimized
                            : harness::Protocol::Regular;
  opts.res = Resilience::optimal(1, 1, 1);
  opts.seed = 7;
  harness::Deployment d(opts);
  Measurement m;
  // Interleave writes and reads so the reader's cache tracks the history.
  for (int k = 0; k < writes; ++k) {
    d.logged_write(static_cast<Time>(k) * 300'000,
                   harness::value_for(static_cast<Ts>(k + 1)));
    d.logged_read(static_cast<Time>(k) * 300'000 + 150'000, 0,
                  [&d, &m](const core::ReadResult&) {
                    m.slots += d.regular_reader(0).diag()
                                   .history_slots_received;
                  });
  }
  d.run();
  // Bytes of HIST_ACK traffic (variant index of HistReadAckMsg, derived
  // from the registry so codec reordering cannot misattribute bytes).
  constexpr std::size_t kHistAckIndex =
      wire::message_index<wire::HistReadAckMsg>();
  m.ack_bytes = d.world().stats().bytes_by_type[kHistAckIndex];
  return m;
}

void print_optimization_table(bool quick) {
  std::printf(
      "\n=== E5: Section 5.1 history-suffix optimization (t=b=1, S=4, "
      "read after every write) ===\n");
  harness::Table table({"writes", "variant", "hist-ack bytes",
                        "slots shipped", "bytes per read"});
  const std::vector<int> sweep =
      quick ? std::vector<int>{5, 10, 20} : std::vector<int>{5, 10, 20, 40, 80};
  Measurement at_max[2];
  for (const int writes : sweep) {
    for (const bool optimized : {false, true}) {
      const auto m = measure(optimized, writes);
      if (writes == sweep.back()) at_max[optimized ? 1 : 0] = m;
      table.add_row(writes, optimized ? "suffix (5.1)" : "full history",
                    m.ack_bytes, m.slots,
                    static_cast<double>(m.ack_bytes) / writes);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: with ack-driven deltas BOTH variants ship O(1) "
      "slots per read\n(the pre-delta protocol re-shipped the past, growing "
      "linearly per read); the\nSection 5.1 cache floor additionally covers "
      "readers whose mirrors went stale.\n\n");

  FILE* out = std::fopen("BENCH_history_optimization.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_history_optimization.json\n");
    return;
  }
  const int n = sweep.back();
  std::fprintf(out, "{\n  \"bench\": \"history_optimization\",\n");
  std::fprintf(out, "  \"writes\": %d,\n", n);
  for (const bool optimized : {false, true}) {
    const auto& m = at_max[optimized ? 1 : 0];
    std::fprintf(out,
                 "  \"%s\": {\"hist_ack_bytes\": %llu, "
                 "\"slots_shipped\": %llu, \"bytes_per_read\": %.1f}%s\n",
                 optimized ? "suffix" : "full",
                 static_cast<unsigned long long>(m.ack_bytes),
                 static_cast<unsigned long long>(m.slots),
                 static_cast<double>(m.ack_bytes) / n, optimized ? "" : ",");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_history_optimization.json\n\n");
}

void BM_HistoryAckEncode(benchmark::State& state) {
  const auto slots = static_cast<Ts>(state.range(0));
  wire::HistReadAckMsg ack;
  ack.round = 1;
  ack.tsr = 1;
  for (Ts k = 0; k <= slots; ++k) {
    ack.history[k] = wire::HistEntry{TsVal{k, "vvvvvvvv"},
                                     WTuple{TsVal{k, "vvvvvvvv"},
                                            init_tsrarray(4)}};
  }
  const wire::Message msg{ack};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode(msg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistoryAckEncode)->Range(1, 512)->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool run_benchmarks = true;
  // Strip our flags before google-benchmark sees the command line.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--no-benchmarks") == 0) {
      run_benchmarks = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  print_optimization_table(quick);
  if (run_benchmarks) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
