// E10 (extension ablation) -- history garbage collection for the regular
// storage. The paper keeps full histories "for presentation simplicity" and
// flags storage exhaustion as the price. This ablation quantifies it:
// per-object memory and bytes-on-wire vs. the retention limit, with the
// checker confirming regularity is never traded away.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "objects/regular_object.hpp"
#include "wire/codec.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

void print_gc_table() {
  std::printf(
      "\n=== E10 (extension): history GC ablation (t=b=2, S=7, 60 writes, "
      "reads throughout) ===\n");
  harness::Table table({"retention", "max slots/object", "hist-ack bytes",
                        "reads", "violations"});
  for (const std::size_t limit : {std::size_t{0}, std::size_t{16},
                                  std::size_t{8}, std::size_t{4},
                                  std::size_t{2}}) {
    std::uint64_t ack_bytes = 0;
    std::size_t max_slots = 0;
    int reads = 0;
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      harness::DeploymentOptions opts;
      opts.protocol = harness::Protocol::Regular;
      opts.res = Resilience::optimal(2, 2, 2);
      opts.seed = seed * 7907;
      opts.history_limit = limit;
      harness::Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 60;
      w.reads_per_reader = 20;
      w.write_gap = 2'000;
      w.read_gap = 6'000;
      harness::mixed_workload(d, w);
      d.run();
      for (int i = 0; i < d.res().num_objects; ++i) {
        auto* obj =
            dynamic_cast<objects::RegularObject*>(&d.object_process(i));
        if (obj != nullptr) {
          max_slots = std::max(max_slots, obj->history_size());
        }
      }
      constexpr std::size_t kHistAckIndex = 6;
      ack_bytes += d.world().stats().bytes_by_type[kHistAckIndex];
      const auto report = d.check();
      reads += report.reads_checked;
      violations += static_cast<int>(report.violations.size());
      for (const auto& op : d.log().snapshot()) {
        if (op.kind == checker::OpRecord::Kind::Read) ++reads;
      }
    }
    table.add_row(limit == 0 ? std::string("unlimited") : std::to_string(limit),
                  max_slots, ack_bytes, reads, violations);
  }
  table.print();
  std::printf(
      "\nExpected shape: memory and read traffic drop with the retention "
      "limit while\nviolations stay 0 -- GC resolves the Section 5 storage-"
      "exhaustion caveat for free\non read-mostly workloads.\n\n");
}

void BM_GcPruning(benchmark::State& state) {
  const auto limit = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Regular;
    opts.res = Resilience::optimal(1, 1, 1);
    opts.seed = 9;
    opts.history_limit = limit;
    harness::Deployment d(opts);
    harness::write_stream(d, 0, 500, 50);
    benchmark::DoNotOptimize(d.run());
  }
}
BENCHMARK(BM_GcPruning)->Arg(0)->Arg(4)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_gc_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
