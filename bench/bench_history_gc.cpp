// E10 (extension ablation) -- history garbage collection for the regular
// storage. The paper keeps full histories "for presentation simplicity" and
// flags storage exhaustion as the price. This ablation quantifies it:
// per-object memory and bytes-on-wire vs. the retention policy, with the
// checker confirming regularity is never traded away.
//
// Two policies compose (see ARCHITECTURE.md, "History lifecycle"):
//   - watermark GC collects the prefix every reader has acked (free), and
//   - the hard cap bounds slots against readers that never ack (a crashed
//     reader must not wedge memory), at the price of counted resyncs.
//
// Emits BENCH_history_gc.json for the CI perf-regression gate; --quick
// shrinks the op budget for CI smoke mode. All runs are DES, so every
// number here is bit-deterministic.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "objects/regular_object.hpp"
#include "wire/codec.hpp"
#include "sim/world.hpp"

namespace {

using namespace rr;

constexpr std::size_t kHistAckIndex =
    wire::message_index<wire::HistReadAckMsg>();

struct GcRow {
  std::size_t limit{0};
  std::size_t max_slots{0};
  std::uint64_t ack_bytes{0};
  std::uint64_t slots_shipped{0};
  std::uint64_t resyncs{0};
  int reads{0};
  int violations{0};
};

GcRow run_retention(std::size_t limit, int writes, int reads_per_reader,
                    int seeds) {
  GcRow row;
  row.limit = limit;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Regular;
    opts.res = Resilience::optimal(2, 2, 2);
    opts.seed = seed * 7907;
    opts.history_limit = limit;
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = writes;
    w.reads_per_reader = reads_per_reader;
    w.write_gap = 2'000;
    w.read_gap = 6'000;
    harness::mixed_workload(d, w);
    d.run();
    for (int i = 0; i < d.res().num_objects; ++i) {
      auto* obj = dynamic_cast<objects::RegularObject*>(&d.object_process(i));
      if (obj != nullptr) {
        row.max_slots = std::max(row.max_slots, obj->history_size());
      }
    }
    const auto stats = d.stats();
    row.ack_bytes += stats.bytes_by_type[kHistAckIndex];
    row.slots_shipped += stats.hist_slots_shipped;
    row.resyncs += stats.hist_resyncs;
    const auto report = d.check();
    row.reads += report.reads_checked;
    row.violations += static_cast<int>(report.violations.size());
  }
  return row;
}

/// The never-acking-reader stress: reader 1 exists in the topology but
/// never reads, so the watermark rule alone can collect nothing and only
/// the hard cap bounds memory. The bounded max-slots number (and the
/// resyncs the cap forces on the live reader) is what the gate pins.
GcRow run_never_acking(std::size_t limit, int writes) {
  GcRow row;
  row.limit = limit;
  harness::DeploymentOptions opts;
  opts.protocol = harness::Protocol::RegularOptimized;
  opts.res = Resilience::optimal(1, 1, 2);
  opts.seed = 13;
  opts.history_limit = limit;
  harness::Deployment d(opts);
  harness::write_stream(d, 0, 1'000, writes);
  harness::read_stream(d, /*reader=*/0, /*start=*/10'000, /*gap=*/12'000,
                       std::max(2, writes / 10));
  d.run();
  for (int i = 0; i < d.res().num_objects; ++i) {
    auto* obj = dynamic_cast<objects::RegularObject*>(&d.object_process(i));
    if (obj != nullptr) {
      row.max_slots = std::max(row.max_slots, obj->history_size());
      row.resyncs += obj->resyncs_served();
    }
  }
  const auto report = d.check();
  row.reads = report.reads_checked;
  row.violations = static_cast<int>(report.violations.size());
  return row;
}

void run_gc_suite(bool quick) {
  const int writes = quick ? 30 : 60;
  const int reads = quick ? 10 : 20;
  const int seeds = quick ? 2 : 3;
  std::printf(
      "\n=== E10 (extension): history GC ablation (t=b=2, S=7, %d writes, "
      "reads throughout) ===\n",
      writes);
  harness::Table table({"retention", "max slots/object", "hist-ack bytes",
                        "slots shipped", "resyncs", "reads", "violations"});
  std::vector<GcRow> rows;
  for (const std::size_t limit : {std::size_t{0}, std::size_t{16},
                                  std::size_t{8}, std::size_t{4},
                                  std::size_t{2}}) {
    rows.push_back(run_retention(limit, writes, reads, seeds));
    const auto& r = rows.back();
    table.add_row(limit == 0 ? std::string("watermark only")
                             : "cap " + std::to_string(limit),
                  r.max_slots, r.ack_bytes, r.slots_shipped, r.resyncs,
                  r.reads, r.violations);
  }
  table.print();

  const int stress_writes = quick ? 40 : 120;
  const GcRow unbounded = run_never_acking(0, stress_writes);
  const GcRow capped = run_never_acking(8, stress_writes);
  std::printf(
      "\nnever-acking reader (%d writes, one live reader): watermark-only "
      "max slots %zu vs\nhard-cap-8 max slots %zu (%llu flagged resyncs, "
      "%d violations) -- the cap, not the\nwatermark, is what bounds memory "
      "against a crashed reader.\n",
      stress_writes, unbounded.max_slots, capped.max_slots,
      static_cast<unsigned long long>(capped.resyncs),
      capped.violations + unbounded.violations);
  std::printf(
      "\nExpected shape: memory and read traffic drop with the retention "
      "limit while\nviolations stay 0 -- GC resolves the Section 5 storage-"
      "exhaustion caveat for free\non read-mostly workloads.\n\n");

  FILE* out = std::fopen("BENCH_history_gc.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_history_gc.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"history_gc\",\n");
  std::fprintf(out, "  \"writes\": %d,\n  \"seeds\": %d,\n", writes, seeds);
  std::fprintf(out,
               "  \"never_acking\": {\"writes\": %d, "
               "\"unbounded_max_slots\": %zu, \"capped_max_slots\": %zu, "
               "\"cap\": 8, \"resyncs\": %llu, \"violations\": %d},\n",
               stress_writes, unbounded.max_slots, capped.max_slots,
               static_cast<unsigned long long>(capped.resyncs),
               capped.violations + unbounded.violations);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(out,
                 "    {\"limit\": %zu, \"max_slots\": %zu, "
                 "\"hist_ack_bytes\": %llu, \"slots_shipped\": %llu, "
                 "\"resyncs\": %llu, \"reads\": %d, \"violations\": %d}%s\n",
                 r.limit, r.max_slots,
                 static_cast<unsigned long long>(r.ack_bytes),
                 static_cast<unsigned long long>(r.slots_shipped),
                 static_cast<unsigned long long>(r.resyncs), r.reads,
                 r.violations, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_history_gc.json\n\n");
}

void BM_GcPruning(benchmark::State& state) {
  const auto limit = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Regular;
    opts.res = Resilience::optimal(1, 1, 1);
    opts.seed = 9;
    opts.history_limit = limit;
    harness::Deployment d(opts);
    harness::write_stream(d, 0, 500, 50);
    benchmark::DoNotOptimize(d.run());
  }
}
BENCHMARK(BM_GcPruning)->Arg(0)->Arg(4)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool run_benchmarks = true;
  // Strip our flags before google-benchmark sees the command line.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--no-benchmarks") == 0) {
      run_benchmarks = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  run_gc_suite(quick);
  if (run_benchmarks) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
