// E1 -- Figure 1 / Proposition 1: no safe fast READ with S = 2t+2b objects.
//
// Regenerates the paper's lower-bound scenario across a (t, b) sweep and
// both strawman decision rules, printing one row per configuration; then
// runs the *control*: the same forging adversaries against the 2-round
// algorithm at optimal resilience S = 2t+b+1, where zero violations must
// occur. A google-benchmark timer measures the orchestration itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "lowerbound/figure_one.hpp"

namespace {

using namespace rr;

void print_lower_bound_table() {
  std::printf(
      "\n=== E1: Proposition 1 / Figure 1 -- fast reads with S = 2t+2b are "
      "impossible ===\n");
  harness::Table table({"t", "b", "S=2t+2b", "rule", "views identical",
                        "run4 (missed write)", "run5 (forged value)",
                        "bound confirmed"});
  for (const auto& [t, b] : {std::pair{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3},
                            {4, 4}, {5, 5}}) {
    for (const bool aggressive : {false, true}) {
      Resilience res;
      res.t = t;
      res.b = b;
      res.num_objects = 2 * t + 2 * b;
      const auto report = lowerbound::run_figure_one(
          [&] { return lowerbound::make_strawman(res, aggressive); }, res,
          "v1");
      table.add_row(t, b, res.num_objects,
                    aggressive ? "aggressive" : "conservative",
                    report.views_identical ? "yes" : "NO",
                    report.run4_violation ? "VIOLATED" : "ok",
                    report.run5_violation ? "VIOLATED" : "ok",
                    report.safety_violated() ? "yes" : "NO");
    }
  }
  table.print();
}

void print_control_table() {
  std::printf(
      "\n=== E1 control: the same attacks against the 2-round algorithm at "
      "S = 2t+b+1 ===\n");
  harness::Table table({"t", "b", "S=2t+b+1", "strategy", "reads checked",
                        "violations"});
  for (const auto& [t, b] : {std::pair{1, 1}, {2, 2}, {3, 3}}) {
    for (const auto kind :
         {adversary::StrategyKind::Forger, adversary::StrategyKind::Collude,
          adversary::StrategyKind::Amnesiac}) {
      int reads = 0;
      int violations = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        harness::DeploymentOptions opts;
        opts.protocol = harness::Protocol::Safe;
        opts.res = Resilience::optimal(t, b, 2);
        opts.seed = seed * 7919;
        opts.faults = harness::FaultPlan::mixed(b, kind, 0);
        harness::Deployment d(opts);
        // Non-concurrent reads: these are the ones safety pins exactly, so
        // the checker's strictest branch applies to every read.
        harness::sequential_then_reads(d, 8, 8);
        d.run();
        const auto report = d.check();
        reads += report.reads_checked;
        violations += static_cast<int>(report.violations.size());
      }
      table.add_row(t, b, 2 * t + b + 1, adversary::to_string(kind), reads,
                    violations);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): violations occur for EVERY fast-read rule "
      "at S = 2t+2b,\nand never for the 2-round read at optimal resilience "
      "S = 2t+b+1.\n\n");
}

void BM_FigureOneOrchestration(benchmark::State& state) {
  Resilience res;
  res.t = static_cast<int>(state.range(0));
  res.b = static_cast<int>(state.range(1));
  res.num_objects = 2 * res.t + 2 * res.b;
  for (auto _ : state) {
    const auto report = lowerbound::run_figure_one(
        [&] { return lowerbound::make_strawman(res, true); }, res, "v1");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FigureOneOrchestration)
    ->Args({1, 1})
    ->Args({3, 3})
    ->Args({8, 8});

}  // namespace

int main(int argc, char** argv) {
  print_lower_bound_table();
  print_control_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
