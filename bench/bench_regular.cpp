// E4 -- Theorems 3 & 4: the regular storage under read/write contention.
// Sweeps the degree of concurrency (gap between operations) and reports
// regularity violations (must be 0), rounds (must be 2), and how often
// reads return the value of a concurrent write vs. the last completed one
// -- the behavioural signature that distinguishes regular from safe
// semantics.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

void print_contention_table() {
  std::printf(
      "\n=== E4: regular storage under contention (t=2, b=2, S=7, 3 "
      "readers) ===\n");
  harness::Table table({"op gap us", "byz", "reads", "rounds max",
                        "concurrent-value reads", "violations"});
  for (const Time gap : {Time{50'000}, Time{10'000}, Time{2'000}, Time{500},
                         Time{100}}) {
    for (const int byz : {0, 2}) {
      int reads = 0;
      int fresh = 0;
      int violations = 0;
      harness::MixedWorkloadStats stats;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        harness::DeploymentOptions opts;
        opts.protocol = harness::Protocol::Regular;
        opts.res = Resilience::optimal(2, 2, 3);
        opts.seed = seed * 31 + gap;
        if (byz > 0) {
          opts.faults = harness::FaultPlan::mixed(
              byz, adversary::StrategyKind::Random, 0);
        }
        harness::Deployment d(opts);
        harness::MixedWorkloadOptions w;
        w.writes = 15;
        w.reads_per_reader = 15;
        w.write_gap = gap;
        w.read_gap = gap;
        harness::mixed_workload(d, w, &stats);
        d.run();
        const auto ops = d.log().snapshot();
        // Count reads that returned a value whose write was still running
        // at the read's invocation ("concurrent-value reads").
        for (const auto& op : ops) {
          if (op.kind != checker::OpRecord::Kind::Read || !op.complete) {
            continue;
          }
          ++reads;
          if (op.ts == 0) continue;
          for (const auto& wr : ops) {
            if (wr.kind == checker::OpRecord::Kind::Write &&
                wr.ts == op.ts && wr.complete &&
                wr.responded_at > op.invoked_at) {
              ++fresh;
              break;
            }
          }
        }
        violations += static_cast<int>(d.check().violations.size());
      }
      table.add_row(gap / 1000.0, byz, reads, stats.reads.rounds_max(), fresh,
                    violations);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: tighter gaps -> more reads overlap writes and more "
      "of them return\nthe in-flight value (allowed by regularity conditions "
      "(1)+(3)); violations stay 0 and\nrounds stay 2 throughout, Byzantine "
      "or not.\n\n");
}

void BM_RegularReadUnderContention(benchmark::State& state) {
  const Time gap = static_cast<Time>(state.range(0));
  for (auto _ : state) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Regular;
    opts.res = Resilience::optimal(2, 2, 2);
    opts.seed = 12345;
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    w.write_gap = gap;
    w.read_gap = gap;
    harness::mixed_workload(d, w);
    benchmark::DoNotOptimize(d.run());
  }
}
BENCHMARK(BM_RegularReadUnderContention)->Arg(100)->Arg(10'000)->Arg(50'000);

}  // namespace

int main(int argc, char** argv) {
  print_contention_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
