// E3 -- Theorems 1 & 2 (safety + wait-freedom) as a statistical soak:
// hundreds of randomized runs per configuration with fault injection,
// counting completed operations and checker violations. Every cell must
// read "0 violations / 0 stuck ops".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

struct SoakResult {
  int runs{0};
  int ops{0};
  int incomplete{0};
  int violations{0};
};

SoakResult soak(harness::Protocol protocol, int t, int b, int seeds) {
  SoakResult result;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s) * 2654435761ULL +
                      static_cast<std::uint64_t>(t * 100 + b);
    Rng rng(seed);
    harness::DeploymentOptions opts;
    opts.protocol = protocol;
    opts.res = Resilience::optimal(t, b, 1 + static_cast<int>(rng.index(3)));
    opts.seed = seed;
    const int byz = static_cast<int>(rng.uniform(0, static_cast<Ts>(b)));
    const int crash =
        static_cast<int>(rng.uniform(0, static_cast<Ts>(t - byz)));
    const adversary::StrategyKind kinds[] = {
        adversary::StrategyKind::Silent,   adversary::StrategyKind::Amnesiac,
        adversary::StrategyKind::Forger,   adversary::StrategyKind::Accuser,
        adversary::StrategyKind::Equivocator,
        adversary::StrategyKind::Stagger,  adversary::StrategyKind::Collude,
        adversary::StrategyKind::Random};
    opts.faults = harness::FaultPlan::mixed(byz, kinds[rng.index(8)], crash);
    opts.delay = rng.chance(0.3) ? harness::DelayKind::HeavyTail
                                 : harness::DelayKind::Uniform;
    opts.delay_lo = 500;
    opts.delay_hi = rng.uniform(5'000, 150'000);
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 5 + static_cast<int>(rng.index(10));
    w.reads_per_reader = 5 + static_cast<int>(rng.index(10));
    w.write_gap = rng.uniform(100, 30'000);
    w.read_gap = rng.uniform(100, 30'000);
    harness::mixed_workload(d, w);
    d.run();
    ++result.runs;
    for (const auto& op : d.log().snapshot()) {
      ++result.ops;
      if (!op.complete) ++result.incomplete;
    }
    result.violations += static_cast<int>(d.check().violations.size());
  }
  return result;
}

void print_soak_table(int seeds) {
  std::printf(
      "\n=== E3: safety & wait-freedom soak (%d randomized runs per row, "
      "random faults/strategies/delays) ===\n",
      seeds);
  harness::Table table({"protocol", "t", "b", "runs", "ops completed",
                        "stuck ops", "violations"});
  for (const auto proto : {harness::Protocol::Safe, harness::Protocol::Regular,
                           harness::Protocol::RegularOptimized}) {
    for (const auto& [t, b] : {std::pair{1, 1}, {2, 1}, {2, 2}, {3, 3},
                              {4, 2}}) {
      const auto r = soak(proto, t, b, seeds);
      table.add_row(harness::to_string(proto), t, b, r.runs,
                    r.ops - r.incomplete, r.incomplete, r.violations);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): zero stuck operations (Theorem 2 / Theorem "
      "4) and zero\nviolations (Theorem 1 / Theorem 3) in every row.\n\n");
}

void BM_SoakIteration(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    const auto r = soak(harness::Protocol::Safe, 2, 2, 1 + (i++ % 3));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SoakIteration);

}  // namespace

int main(int argc, char** argv) {
  int seeds = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--soak_seeds=", 0) == 0) {
      seeds = std::atoi(argv[i] + 13);
    }
  }
  print_soak_table(seeds);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
