// E8 -- the resilience / round-complexity frontier. Sweeping the number of
// base objects S from the optimal-resilience minimum 2t+b+1 up past 2t+2b
// charts where each operation's round count drops:
//   S in [2t+b+1, 2t+2b]  : writes need 2 rounds ([1]'s bound) and *every*
//                           fast-read rule is unsafe (Proposition 1) -- the
//                           GV06 2-round read is optimal here,
//   S >= 2t+2b+1          : 1-round writes and 1-round reads suffice.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "lowerbound/figure_one.hpp"

namespace {

using namespace rr;

void print_frontier_table() {
  const int t = 2, b = 2;
  std::printf(
      "\n=== E8: resilience frontier, t=%d b=%d (2t+b+1=%d, 2t+2b=%d) ===\n",
      t, b, 2 * t + b + 1, 2 * t + 2 * b);
  harness::Table table({"S", "regime", "protocol", "write rounds",
                        "read rounds max", "fast read safe?", "violations"});

  for (int S = 2 * t + b + 1; S <= 2 * t + 2 * b + 2; ++S) {
    const bool beyond = S >= 2 * t + 2 * b + 1;
    // (a) the GV06 safe storage runs at any S >= 2t+b+1 (extra objects are
    // just more replicas).
    {
      harness::MixedWorkloadStats stats;
      int violations = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        harness::DeploymentOptions opts;
        opts.protocol = harness::Protocol::Safe;
        opts.res = Resilience{S, t, b, 1};
        opts.seed = seed * 1009;
        opts.faults =
            harness::FaultPlan::mixed(b, adversary::StrategyKind::Forger, 0);
        harness::Deployment d(opts);
        harness::sequential_then_reads(d, 6, 6, &stats);
        d.run();
        violations += static_cast<int>(d.check().violations.size());
      }
      table.add_row(S, beyond ? "> 2t+2b" : "<= 2t+2b", "gv06-safe",
                    stats.writes.rounds_max(), stats.reads.rounds_max(), "-",
                    violations);
    }
    // (b) the quorum-evidence family: 2-phase writes + polling reads below
    // the frontier; 1-round writes + polling reads above it.
    {
      harness::MixedWorkloadStats stats;
      int violations = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        harness::DeploymentOptions opts;
        opts.protocol = beyond ? harness::Protocol::FastWrite
                               : harness::Protocol::Polling;
        opts.res = Resilience{S, t, b, 1};
        opts.seed = seed * 2003;
        opts.faults =
            harness::FaultPlan::mixed(b, adversary::StrategyKind::Forger, 0);
        harness::Deployment d(opts);
        harness::sequential_then_reads(d, 6, 6, &stats);
        d.run();
        violations += static_cast<int>(d.check().violations.size());
      }
      table.add_row(S, beyond ? "> 2t+2b" : "<= 2t+2b",
                    beyond ? "fastwrite" : "polling",
                    stats.writes.rounds_max(), stats.reads.rounds_max(), "-",
                    violations);
    }
    // (c) is a FAST (1-round) read safe at this S? Below the frontier the
    // Figure 1 orchestration must violate safety; at/above it cannot be
    // instantiated (it needs S = 2t+2b exactly) and the measured fastwrite
    // read above already runs fast and clean.
    if (S == 2 * t + 2 * b) {
      Resilience res{S, t, b, 1};
      const auto report = lowerbound::run_figure_one(
          [&] { return lowerbound::make_strawman(res, true); }, res, "v1");
      table.add_row(S, "<= 2t+2b", "any fast-read rule", "-", 1,
                    report.safety_violated() ? "NO (Prop. 1)" : "yes",
                    report.safety_violated() ? 1 : 0);
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper + [1]): with S <= 2t+2b, writes cost 2 rounds "
      "and fast reads\nare impossible (the GV06 2/2 rows are optimal); one "
      "extra object past 2t+2b drops\nboth operations to a single round.\n\n");
}

void BM_FrontierSweep(benchmark::State& state) {
  const int S = static_cast<int>(state.range(0));
  for (auto _ : state) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Safe;
    opts.res = Resilience{S, 2, 2, 1};
    opts.seed = 5;
    harness::Deployment d(opts);
    harness::sequential_then_reads(d, 4, 4);
    benchmark::DoNotOptimize(d.run());
  }
}
BENCHMARK(BM_FrontierSweep)->DenseRange(7, 11, 1);

}  // namespace

int main(int argc, char** argv) {
  print_frontier_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
