// Per-operation latency profile: every registered protocol on both
// execution backends, reporting the Deployment's LatencyRecorder
// percentiles (p50/p95/p99/max) for WRITE and READ separately, in backend
// clock units -- virtual ns on the DES, wall-clock ns on threads.
//
// This is the empirical face of the paper's "how fast can a read be?": the
// same mixed workload runs against each protocol family, and the profile
// shows what the round structure (1-round auth reads, 2-round safe reads,
// polling's b+1 rounds, ...) costs end to end under identical delays.
//
// Emits BENCH_latency_profile.json: one record per protocol x backend with
// op counts and percentiles for writes and reads.
//
//   --backend=des|threads|both   restrict the sweep (default both)
//   --quick                      smaller op budget (CI smoke mode)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/latency.hpp"
#include "harness/protocol.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace rr;

struct ProfileRow {
  std::string protocol;
  std::string backend;
  std::uint64_t writes{0};
  std::uint64_t reads{0};
  harness::LatencyRecorder write_lat;
  harness::LatencyRecorder read_lat;
};

ProfileRow profile(const harness::ProtocolTraits& traits,
                   harness::BackendKind backend, int ops) {
  harness::DeploymentOptions opts;
  opts.protocol = traits.id;
  opts.backend = backend;
  opts.res = traits.resilience_for(2, 2, 2);
  opts.seed = 9157;
  opts.delay = harness::DelayKind::Uniform;
  opts.delay_lo = 1'000;
  opts.delay_hi = 10'000;
  harness::Deployment d(opts);
  harness::MixedWorkloadOptions w;
  w.writes = ops;
  w.reads_per_reader = ops;
  harness::mixed_workload(d, w);
  d.run();

  ProfileRow row;
  row.protocol = traits.cli_name;
  row.backend = harness::to_string(backend);
  row.write_lat = d.write_latency();
  row.read_lat = d.read_latency();
  row.writes = row.write_lat.count();
  row.reads = row.read_lat.count();
  return row;
}

void append_json(std::string& out, const ProfileRow& r, bool last) {
  char buf[768];
  const auto& w = r.write_lat;
  const auto& rd = r.read_lat;
  std::snprintf(
      buf, sizeof(buf),
      "    {\"protocol\": \"%s\", \"backend\": \"%s\", \"clock\": \"%s\",\n"
      "     \"writes\": {\"count\": %llu, \"p50\": %llu, \"p95\": %llu, "
      "\"p99\": %llu, \"max\": %llu},\n"
      "     \"reads\": {\"count\": %llu, \"p50\": %llu, \"p95\": %llu, "
      "\"p99\": %llu, \"max\": %llu}}%s\n",
      r.protocol.c_str(), r.backend.c_str(),
      r.backend == "des" ? "virtual_ns" : "wall_ns",
      static_cast<unsigned long long>(w.count()),
      static_cast<unsigned long long>(w.p50()),
      static_cast<unsigned long long>(w.p95()),
      static_cast<unsigned long long>(w.p99()),
      static_cast<unsigned long long>(w.max()),
      static_cast<unsigned long long>(rd.count()),
      static_cast<unsigned long long>(rd.p50()),
      static_cast<unsigned long long>(rd.p95()),
      static_cast<unsigned long long>(rd.p99()),
      static_cast<unsigned long long>(rd.max()), last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool run_des = true;
  bool run_threads = true;
  int des_ops = 200;
  int thread_ops = 25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      des_ops = 40;
      thread_ops = 8;
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const std::string v = argv[i] + 10;
      if (v == "both") {
        run_des = run_threads = true;
      } else if (const auto kind = harness::backend_from_name(v)) {
        run_des = *kind == harness::BackendKind::Sim;
        run_threads = *kind == harness::BackendKind::Threads;
      } else {
        std::fprintf(stderr, "unknown backend '%s' (known: des, threads, "
                             "both)\n", v.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: bench_latency_profile [--quick] "
                   "[--backend=des|threads|both]\n",
                   argv[i]);
      return 2;
    }
  }

  std::vector<ProfileRow> rows;
  for (const auto& traits : harness::protocol_registry()) {
    if (run_des) {
      rows.push_back(profile(traits, harness::BackendKind::Sim, des_ops));
    }
    if (run_threads) {
      rows.push_back(
          profile(traits, harness::BackendKind::Threads, thread_ops));
    }
  }

  std::printf("=== per-operation latency profile (t=2, b=2 where "
              "applicable; uniform delays 1-10us virtual) ===\n");
  harness::Table table({"protocol", "backend", "ops", "wr p50 us", "wr p99 us",
                        "rd p50 us", "rd p95 us", "rd p99 us", "rd max us"});
  for (const auto& r : rows) {
    table.add_row(r.protocol, r.backend, r.writes + r.reads,
                  r.write_lat.p50() / 1000.0, r.write_lat.p99() / 1000.0,
                  r.read_lat.p50() / 1000.0, r.read_lat.p95() / 1000.0,
                  r.read_lat.p99() / 1000.0, r.read_lat.max() / 1000.0);
  }
  table.print();

  std::string json = "{\n  \"bench\": \"latency_profile\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json(json, rows[i], i + 1 == rows.size());
  }
  json += "  ]\n}\n";
  FILE* out = std::fopen("BENCH_latency_profile.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_latency_profile.json\n");
  }
  return 0;
}
