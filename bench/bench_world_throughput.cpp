// Event-simulator throughput microbench: the refactored zero-allocation
// World hot path vs. the seed implementation (std::priority_queue<Event>
// copied from top(), encode()-based byte accounting, std::map stats), which
// is replicated verbatim below under namespace legacy so both loops run the
// identical workload in the same binary.
//
// Emits BENCH_world_throughput.json with events/sec, ns/event and bytes
// accounted for both loops plus the speedup ratio. Pass --quick for a
// smaller event budget (CI smoke mode), --events=N to override.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/process.hpp"
#include "sim/delay.hpp"
#include "sim/world.hpp"
#include "wire/codec.hpp"
#include "wire/messages.hpp"

namespace {

using namespace rr;

// ---------------------------------------------------------------------------
// The seed hot loop, reproduced exactly (fat Event in a priority_queue,
// copy-from-top, encode().size() byte accounting, std::map per-type stats
// and held-channel map). Kept minimal: the subset the workload exercises.
// ---------------------------------------------------------------------------
namespace legacy {

struct LegacyStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t bytes_sent{0};
  std::map<std::size_t, std::uint64_t> messages_by_type;
  std::map<std::size_t, std::uint64_t> bytes_by_type;
};

class LegacyWorld {
 public:
  explicit LegacyWorld(std::uint64_t seed)
      : rng_(seed), delay_(std::make_unique<sim::UniformDelay>(1'000, 10'000)) {}

  ProcessId add_process(std::unique_ptr<net::Process> p) {
    const auto pid = static_cast<ProcessId>(procs_.size());
    procs_.push_back(Slot{std::move(p), rng_.fork()});
    return pid;
  }

  void post(Time at, ProcessId pid, std::function<void(net::Context&)> fn) {
    Event ev;
    ev.at = at;
    ev.seq = next_seq_++;
    ev.is_delivery = false;
    ev.to = pid;
    ev.fn = std::move(fn);
    queue_.push(std::move(ev));
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  [[nodiscard]] const LegacyStats& stats() const { return stats_; }

 private:
  struct Event {
    Time at{};
    std::uint64_t seq{};
    bool is_delivery{false};
    ProcessId from{kNoProcess};
    ProcessId to{kNoProcess};
    wire::Message msg{};
    std::function<void(net::Context&)> fn{};
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    std::unique_ptr<net::Process> proc;
    Rng rng;
  };

  class Ctx final : public net::Context {
   public:
    Ctx(LegacyWorld& w, ProcessId self) : w_(w), self_(self) {}
    [[nodiscard]] ProcessId self() const override { return self_; }
    [[nodiscard]] Time now() const override { return w_.now_; }
    void send(ProcessId to, wire::Message msg) override {
      w_.do_send(self_, to, std::move(msg));
    }
    [[nodiscard]] Rng& rng() override {
      return w_.procs_[static_cast<std::size_t>(self_)].rng;
    }

   private:
    LegacyWorld& w_;
    ProcessId self_;
  };

  void do_send(ProcessId from, ProcessId to, wire::Message msg) {
    stats_.messages_sent++;
    stats_.messages_by_type[msg.index()]++;
    // Seed byte accounting: materialize the full encoding to count it.
    const std::size_t n = wire::encode(msg).size();
    stats_.bytes_sent += n;
    stats_.bytes_by_type[msg.index()] += n;
    if (auto it = held_.find({from, to}); it != held_.end()) {
      it->second.push_back(std::move(msg));
      return;
    }
    const Time d = delay_->sample(from, to, now_, rng_);
    Event ev;
    ev.at = now_ + d;
    ev.seq = next_seq_++;
    ev.is_delivery = true;
    ev.from = from;
    ev.to = to;
    ev.msg = std::move(msg);
    queue_.push(std::move(ev));
  }

  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();  // the seed's per-event deep copy
    queue_.pop();
    now_ = ev.at;
    if (ev.is_delivery) {
      stats_.messages_delivered++;
      Ctx ctx(*this, ev.to);
      procs_[static_cast<std::size_t>(ev.to)].proc->on_message(ctx, ev.from,
                                                              ev.msg);
    } else {
      Ctx ctx(*this, ev.to);
      ev.fn(ctx);
    }
    return true;
  }

  Rng rng_;
  Time now_{0};
  std::uint64_t next_seq_{0};
  std::vector<Slot> procs_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::map<std::pair<ProcessId, ProcessId>, std::deque<wire::Message>> held_;
  std::unique_ptr<sim::DelayModel> delay_;
  LegacyStats stats_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Workload: a mesh of echo automata moving a regular-storage-like traffic
// mix -- mostly small acks, with periodic history-bearing HIST_ACKs and
// tsrarray-bearing PW messages (the payloads whose deep copies dominate the
// seed loop). Each message carries a remaining-hop count in its timestamp
// field; the run drains when all hops are spent.
// ---------------------------------------------------------------------------

constexpr int kNumProcs = 10;

wire::History make_history(std::size_t slots) {
  wire::History h;
  for (Ts k = 0; k < slots; ++k) {
    h[k] = wire::HistEntry{TsVal{k, "value-payload"},
                           WTuple{TsVal{k, "value-payload"}, init_tsrarray(4)}};
  }
  return h;
}

class EchoProcess final : public net::Process {
 public:
  void on_message(net::Context& ctx, ProcessId /*from*/,
                  const wire::Message& msg) override {
    Ts hops = 0;
    if (const auto* ack = std::get_if<wire::WAckMsg>(&msg)) {
      hops = ack->ts;
    } else if (const auto* hist = std::get_if<wire::HistReadAckMsg>(&msg)) {
      hops = hist->tsr;
    } else if (const auto* pw = std::get_if<wire::PwMsg>(&msg)) {
      hops = pw->ts;
    }
    if (hops == 0) return;
    const ProcessId to = (ctx.self() + 1) % kNumProcs;
    // Read-dominated regular-storage mix: the unoptimized Figure 5/6
    // protocol ships a history in every READ ack, so half the traffic is
    // history-bearing; the rest are small acks plus periodic writer PWs.
    if (hops % 2 == 0) {
      if (shared_history_.empty()) shared_history_ = make_history(16);
      ctx.send(to, wire::HistReadAckMsg{1, hops - 1, shared_history_});
    } else if (hops % 16 == 1) {
      ctx.send(to, wire::PwMsg{hops - 1, TsVal{1, "value-payload"},
                               WTuple{TsVal{1, "value-payload"},
                                      init_tsrarray(6)}});
    } else {
      ctx.send(to, wire::WAckMsg{hops - 1});
    }
  }

 private:
  // Built once per process: the *send* copies it into the message exactly
  // once in both loops; what differs is what happens after the send (the
  // seed loop re-copies it out of priority_queue::top() and encodes it to a
  // string for byte accounting; the pool loop moves it and only counts).
  wire::History shared_history_;
};

template <class WorldT>
void seed_workload(WorldT& w, std::uint64_t target_events) {
  // Each chain burns ~hops events; spread the budget over 50 chains.
  const Ts hops = static_cast<Ts>(target_events / 50);
  for (int c = 0; c < 50; ++c) {
    const auto pid = static_cast<ProcessId>(c % kNumProcs);
    w.post(0, pid, [hops](net::Context& ctx) {
      ctx.send((ctx.self() + 1) % kNumProcs, wire::WAckMsg{hops});
    });
  }
}

struct Measurement {
  double events_per_sec{0};
  double ns_per_event{0};
  std::uint64_t events{0};
  std::uint64_t bytes_accounted{0};
};

template <class WorldT>
Measurement measure(std::uint64_t target_events, std::uint64_t seed) {
  WorldT w(seed);
  for (int i = 0; i < kNumProcs; ++i) {
    (void)w.add_process(std::make_unique<EchoProcess>());
  }
  seed_workload(w, target_events);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t events = w.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  Measurement m;
  m.events = events;
  m.events_per_sec = secs > 0 ? static_cast<double>(events) / secs : 0;
  m.ns_per_event =
      events > 0 ? 1e9 * secs / static_cast<double>(events) : 0;
  m.bytes_accounted = w.stats().bytes_sent;
  return m;
}

struct NewWorldAdapter : sim::World {
  explicit NewWorldAdapter(std::uint64_t seed)
      : sim::World([seed] {
          sim::WorldOptions o;
          o.seed = seed;
          return o;
        }()) {}
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t target_events = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) target_events = 100'000;
    if (std::strncmp(argv[i], "--events=", 9) == 0) {
      target_events = std::strtoull(argv[i] + 9, nullptr, 10);
    }
  }

  // Warmup both loops (page in code, grow the slab).
  (void)measure<legacy::LegacyWorld>(10'000, 1);
  (void)measure<NewWorldAdapter>(10'000, 1);

  const Measurement old_loop =
      measure<legacy::LegacyWorld>(target_events, 42);
  const Measurement new_loop = measure<NewWorldAdapter>(target_events, 42);
  const double speedup = old_loop.events_per_sec > 0
                             ? new_loop.events_per_sec / old_loop.events_per_sec
                             : 0;

  std::printf("=== World hot-path throughput (%llu-event budget) ===\n",
              static_cast<unsigned long long>(target_events));
  std::printf("seed loop (priority_queue copy + encode): %12.0f events/s  "
              "%7.1f ns/event  (%llu events, %llu bytes accounted)\n",
              old_loop.events_per_sec, old_loop.ns_per_event,
              static_cast<unsigned long long>(old_loop.events),
              static_cast<unsigned long long>(old_loop.bytes_accounted));
  std::printf("pool loop (slab + 4-ary heap + size visitor): %8.0f events/s  "
              "%7.1f ns/event  (%llu events, %llu bytes accounted)\n",
              new_loop.events_per_sec, new_loop.ns_per_event,
              static_cast<unsigned long long>(new_loop.events),
              static_cast<unsigned long long>(new_loop.bytes_accounted));
  std::printf("speedup: %.2fx\n", speedup);
  if (old_loop.bytes_accounted != new_loop.bytes_accounted ||
      old_loop.events != new_loop.events) {
    std::printf("WARNING: loops diverged (events or bytes differ) -- the "
                "comparison is not apples-to-apples\n");
  }

  FILE* out = std::fopen("BENCH_world_throughput.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"world_throughput\",\n"
        "  \"event_budget\": %llu,\n"
        "  \"seed_loop\": {\"events_per_sec\": %.1f, \"ns_per_event\": %.2f, "
        "\"events\": %llu, \"bytes_accounted\": %llu},\n"
        "  \"pool_loop\": {\"events_per_sec\": %.1f, \"ns_per_event\": %.2f, "
        "\"events\": %llu, \"bytes_accounted\": %llu},\n"
        "  \"speedup\": %.3f\n"
        "}\n",
        static_cast<unsigned long long>(target_events),
        old_loop.events_per_sec, old_loop.ns_per_event,
        static_cast<unsigned long long>(old_loop.events),
        static_cast<unsigned long long>(old_loop.bytes_accounted),
        new_loop.events_per_sec, new_loop.ns_per_event,
        static_cast<unsigned long long>(new_loop.events),
        static_cast<unsigned long long>(new_loop.bytes_accounted),
        speedup);
    std::fclose(out);
    std::printf("wrote BENCH_world_throughput.json\n");
  }
  return 0;
}
