// White-box tests of the safe reader automaton (Figure 4), driving it with
// fabricated acks through a capturing context: ack pattern-matching,
// candidate bookkeeping, the conflict predicate, quorum formation and the
// return conditions -- including hostile message sequences no honest object
// would produce.
#include <gtest/gtest.h>

#include <optional>

#include "adversary/capture.hpp"
#include "core/safe_reader.hpp"

namespace rr::core {
namespace {

using adversary::CapturingContext;
using adversary::Outgoing;

class NullContext final : public net::Context {
 public:
  [[nodiscard]] ProcessId self() const override { return 1; }  // reader 0
  [[nodiscard]] Time now() const override { return 0; }
  void send(ProcessId, wire::Message) override {}
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Rng rng_{7};
};

/// Drives one SafeReader by hand. t = b = 1 -> S = 4, quorum = 2... no:
/// quorum = S - t = 3.
class ReaderHarness {
 public:
  ReaderHarness() : topo_(1, res_.num_objects), reader_(res_, topo_, 0) {}

  /// Starts a read; returns the round-1 request messages.
  void start() {
    CapturingContext cap(null_);
    reader_.read(cap, [this](const ReadResult& r) { result_ = r; });
    auto sent = cap.take();
    EXPECT_EQ(sent.size(), 4u);
    round1_tsr_ = std::get<wire::ReadMsg>(sent[0].msg).tsr;
  }

  /// Delivers an ack from object i; captures any round-2 broadcast.
  void ack(int i, std::uint8_t round, ReaderTs tsr, TsVal pw, WTuple w) {
    CapturingContext cap(null_);
    reader_.on_message(cap, topo_.object(i),
                       wire::ReadAckMsg{round, tsr, std::move(pw),
                                        std::move(w)});
    for (const auto& out : cap.sent()) {
      if (const auto* rd = std::get_if<wire::ReadMsg>(&out.msg)) {
        if (rd->round == 2) round2_started_ = true;
      }
    }
  }

  [[nodiscard]] WTuple tuple(Ts ts, const Value& v) const {
    return WTuple{TsVal{ts, v}, init_tsrarray(4)};
  }

  /// A tuple whose embedded row accuses object `accused` of reader
  /// timestamp `claimed`.
  [[nodiscard]] WTuple accusing_tuple(Ts ts, const Value& v, int accused,
                                      ReaderTs claimed) const {
    WTuple t = tuple(ts, v);
    TsrRow row(1, 0);
    row[0] = claimed;
    t.tsrarray[static_cast<std::size_t>(accused)] = std::move(row);
    return t;
  }

  Resilience res_ = Resilience::optimal(1, 1, 1);  // S = 4, quorum = 3
  Topology topo_;
  NullContext null_;
  SafeReader reader_;
  ReaderTs round1_tsr_{0};
  bool round2_started_{false};
  std::optional<ReadResult> result_;
};

TEST(SafeReaderUnit, HappyPathTwoRounds) {
  ReaderHarness h;
  h.start();
  const auto w0 = h.tuple(0, "");
  const auto w1 = h.tuple(1, "v1");
  // Round 1: only ONE object has seen write 1 so far; the others are stale.
  // Round 1 completes (3 responders, no conflicts), but w1 -- the highest
  // candidate -- has a single voucher, one short of safe()'s b+1 = 2.
  h.ack(0, 1, h.round1_tsr_, TsVal::bottom(), w0);
  h.ack(1, 1, h.round1_tsr_, TsVal::bottom(), w0);
  h.ack(2, 1, h.round1_tsr_, TsVal{1, "v1"}, w1);
  EXPECT_TRUE(h.round2_started_);
  ASSERT_FALSE(h.result_.has_value()) << "needs round-2 evidence";
  // Round 2: the write has reached more objects; a second voucher arrives.
  h.ack(0, 2, h.round1_tsr_ + 1, TsVal{1, "v1"}, w1);
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{1, "v1"}));
  EXPECT_EQ(h.result_->rounds, 2);
}

TEST(SafeReaderUnit, RoundOneEvidenceCanSatisfyRoundTwoInstantly) {
  // If round-1 acks already contain b+1 vouchers, the read returns as soon
  // as round 2 starts (Figure 4's line-14 predicate evaluated on entry).
  ReaderHarness h;
  h.start();
  const auto w1 = h.tuple(1, "v1");
  h.ack(0, 1, h.round1_tsr_, TsVal{1, "v1"}, w1);
  h.ack(1, 1, h.round1_tsr_, TsVal{1, "v1"}, w1);
  h.ack(2, 1, h.round1_tsr_, TsVal{1, "v1"}, w1);
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->rounds, 2) << "round 2 was still initiated";
}

TEST(SafeReaderUnit, WrongTimestampAcksIgnored) {
  ReaderHarness h;
  h.start();
  const auto w1 = h.tuple(1, "v1");
  // Stale/foreign tsr values must not count toward the quorum.
  h.ack(0, 1, h.round1_tsr_ - 1, TsVal{1, "v1"}, w1);
  h.ack(1, 1, h.round1_tsr_ + 5, TsVal{1, "v1"}, w1);
  h.ack(2, 1, 0, TsVal{1, "v1"}, w1);
  EXPECT_FALSE(h.round2_started_);
  EXPECT_EQ(h.reader_.diag().round1_acks, 0);
}

TEST(SafeReaderUnit, EarlyRoundTwoAckIgnored) {
  // A Byzantine object predicting tsr+1 before round 2 starts must not
  // short-circuit anything.
  ReaderHarness h;
  h.start();
  const auto w1 = h.tuple(9, "evil");
  h.ack(0, 2, h.round1_tsr_ + 1, TsVal{9, "evil"}, w1);
  EXPECT_EQ(h.reader_.diag().round2_acks, 0);
  EXPECT_FALSE(h.result_.has_value());
}

TEST(SafeReaderUnit, LateRoundOneAckDroppedAfterRoundTwoStarts) {
  ReaderHarness h;
  h.start();
  const auto w1 = h.tuple(1, "v1");
  for (int i = 0; i < 3; ++i) h.ack(i, 1, h.round1_tsr_, TsVal{1, "v1"}, w1);
  ASSERT_TRUE(h.round2_started_);
  const int before = h.reader_.diag().round1_acks;
  h.ack(3, 1, h.round1_tsr_, TsVal{1, "v1"}, w1);  // late round-1 ack
  EXPECT_EQ(h.reader_.diag().round1_acks, before)
      << "pattern-matching on the current tsr drops it (tsr is now +1)";
}

TEST(SafeReaderUnit, DoubleSpeakCountsOnce) {
  // One object sending two different round-1 acks adds two candidates but
  // remains ONE voucher/responder in every cardinality predicate.
  ReaderHarness h;
  h.start();
  h.ack(0, 1, h.round1_tsr_, TsVal{5, "a"}, h.tuple(5, "a"));
  h.ack(0, 1, h.round1_tsr_, TsVal{6, "b"}, h.tuple(6, "b"));
  EXPECT_EQ(h.reader_.diag().candidates_added, 2);
  EXPECT_FALSE(h.round2_started_) << "still only one responder";
}

TEST(SafeReaderUnit, ConflictBlocksQuorumUntilCleanSubsetExists) {
  ReaderHarness h;
  h.start();
  // Object 2 reports a candidate accusing object 0 of a huge timestamp:
  // conflict(0, 2). Responders {0, 1, 2} then have no conflict-free subset
  // of size 3.
  const auto evil = h.accusing_tuple(7, "evil", /*accused=*/0,
                                     /*claimed=*/1'000'000);
  h.ack(0, 1, h.round1_tsr_, TsVal::bottom(), h.tuple(0, ""));
  h.ack(1, 1, h.round1_tsr_, TsVal::bottom(), h.tuple(0, ""));
  h.ack(2, 1, h.round1_tsr_, TsVal{7, "evil"}, evil);
  EXPECT_FALSE(h.round2_started_)
      << "{0,1,2} contains the conflicting pair (0,2)";
  // The fourth responder yields the conflict-free subset {0, 1, 3}.
  h.ack(3, 1, h.round1_tsr_, TsVal::bottom(), h.tuple(0, ""));
  EXPECT_TRUE(h.round2_started_);
}

TEST(SafeReaderUnit, SelfAccusationIsNotAConflict) {
  // A tuple accusing its own reporter pairs the reporter with itself;
  // conflict(i, k) is about pairs, so a clean quorum still exists.
  ReaderHarness h;
  h.start();
  const auto self_accusing = h.accusing_tuple(3, "x", /*accused=*/2,
                                              /*claimed=*/999'999);
  h.ack(0, 1, h.round1_tsr_, TsVal::bottom(), h.tuple(0, ""));
  h.ack(1, 1, h.round1_tsr_, TsVal::bottom(), h.tuple(0, ""));
  h.ack(2, 1, h.round1_tsr_, TsVal{3, "x"}, self_accusing);
  // conflict(2,2) exists but singleton conflicts do not preclude the
  // subset {0,1,2}... actually conflict(2,2) means the pair (2,2): the
  // subset must satisfy "for all i,k in it: no conflict", including i == k.
  // The paper quantifies over pairs of distinct responders implicitly; our
  // implementation symmetrizes distinct pairs only, so {0,1,2} qualifies.
  EXPECT_TRUE(h.round2_started_);
}

TEST(SafeReaderUnit, CandidateRemovalDrainsSetToDefault) {
  // Figure 4 lines 27-28 and 15-16: when t+b+1 = 3 objects respond without
  // candidate c (in any round), c is removed; if every candidate dies, the
  // read returns the default value. Mutually exclusive reports across both
  // rounds drain C entirely.
  ReaderHarness h;
  h.start();
  h.ack(0, 1, h.round1_tsr_, TsVal{9, "fake"}, h.tuple(9, "fake"));
  h.ack(1, 1, h.round1_tsr_, TsVal{1, "a"}, h.tuple(1, "a"));
  h.ack(2, 1, h.round1_tsr_, TsVal{2, "b"}, h.tuple(2, "b"));
  ASSERT_TRUE(h.round2_started_);
  ASSERT_FALSE(h.result_.has_value());
  // Round 2: three objects report mutually distinct tuples, all BELOW the
  // ts-9 candidate (higher-ts reports would vouch for it, Figure 4 line 3).
  // Now every candidate has >= 3 responders without it and none is safe.
  h.ack(1, 2, h.round1_tsr_ + 1, TsVal{3, "d"}, h.tuple(3, "d"));
  h.ack(2, 2, h.round1_tsr_ + 1, TsVal{4, "e"}, h.tuple(4, "e"));
  h.ack(3, 2, h.round1_tsr_ + 1, TsVal{5, "f"}, h.tuple(5, "f"));
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_TRUE(h.result_->tsval.is_bottom());
  EXPECT_TRUE(h.result_->returned_default);
}

TEST(SafeReaderUnit, HighestUnsafeCandidateBlocksLowerSafeOne) {
  ReaderHarness h;
  h.start();
  const auto genuine = h.tuple(1, "v1");
  const auto fake = h.tuple(50, "fake");
  h.ack(0, 1, h.round1_tsr_, TsVal{1, "v1"}, genuine);
  h.ack(1, 1, h.round1_tsr_, TsVal{1, "v1"}, genuine);
  h.ack(2, 1, h.round1_tsr_, TsVal{50, "fake"}, fake);
  ASSERT_TRUE(h.round2_started_);
  // `genuine` is safe (2 vouchers >= b+1) but NOT the highest candidate;
  // `fake` is highest but has only 1 voucher. The read must wait...
  EXPECT_FALSE(h.result_.has_value());
  // ...until the fourth object's round-2 ack makes RespondedWO(fake) = 3:
  // candidate removed, genuine becomes highest and safe.
  h.ack(3, 2, h.round1_tsr_ + 1, TsVal{1, "v1"}, genuine);
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{1, "v1"}));
}

TEST(SafeReaderUnit, MalformedTsrArrayCannotCrashConflictCheck) {
  ReaderHarness h;
  h.start();
  // Candidate with absurd tsrarray shapes: too small, rows of wrong width.
  WTuple weird;
  weird.tsval = TsVal{4, "w"};
  weird.tsrarray.resize(2);           // shorter than S
  weird.tsrarray[1] = TsrRow{};       // empty row (no reader slots)
  h.ack(0, 1, h.round1_tsr_, TsVal{4, "w"}, weird);
  h.ack(1, 1, h.round1_tsr_, TsVal{4, "w"}, weird);
  h.ack(2, 1, h.round1_tsr_, TsVal{4, "w"}, weird);
  EXPECT_TRUE(h.round2_started_) << "out-of-range indices read as benign";
  h.ack(0, 2, h.round1_tsr_ + 1, TsVal{4, "w"}, weird);
  h.ack(1, 2, h.round1_tsr_ + 1, TsVal{4, "w"}, weird);
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval.val, "w");
}

TEST(SafeReaderUnit, TimestampsAdvanceAcrossReads) {
  ReaderHarness h;
  h.start();
  const auto first_tsr = h.round1_tsr_;
  const auto w1 = h.tuple(1, "v1");
  for (int i = 0; i < 3; ++i) h.ack(i, 1, first_tsr, TsVal{1, "v1"}, w1);
  h.ack(0, 2, first_tsr + 1, TsVal{1, "v1"}, w1);
  h.ack(1, 2, first_tsr + 1, TsVal{1, "v1"}, w1);
  ASSERT_TRUE(h.result_.has_value());
  h.result_.reset();
  h.round2_started_ = false;
  h.start();
  EXPECT_EQ(h.round1_tsr_, first_tsr + 2)
      << "each read consumes two timestamps (one per round)";
}

}  // namespace
}  // namespace rr::core
