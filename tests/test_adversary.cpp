// Byzantine strategy automata: each strategy must (a) keep the writer live
// (ack writes), (b) lie in its documented way, (c) speak well-formed wire
// messages for every protocol flavor. These tests pin the strategies'
// behaviour so protocol tests exercising them test what they think they do.
#include <gtest/gtest.h>

#include "adversary/byzantine.hpp"
#include "adversary/capture.hpp"
#include "wire/codec.hpp"

namespace rr::adversary {
namespace {

class NullContext final : public net::Context {
 public:
  [[nodiscard]] ProcessId self() const override { return 77; }
  [[nodiscard]] Time now() const override { return 0; }
  void send(ProcessId, wire::Message) override {}
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Rng rng_{42};
};

struct Fixture {
  Resilience res = Resilience::optimal(2, 2, 2);
  Topology topo{2, 7};
  NullContext null;

  std::vector<Outgoing> deliver(net::Process& p, ProcessId from,
                                wire::Message msg) {
    CapturingContext cap(null);
    p.on_message(cap, from, msg);
    return cap.take();
  }

  std::unique_ptr<net::Process> make(StrategyKind kind,
                                     Flavor flavor = Flavor::Safe) {
    return make_byzantine(kind, flavor, topo, res, 0);
  }

  wire::PwMsg pw_msg(Ts ts) {
    return wire::PwMsg{ts, TsVal{ts, "v"},
                       WTuple{TsVal{ts - 1, "p"}, init_tsrarray(7)}};
  }
};

TEST(StrategyNames, RoundTrip) {
  for (const auto k :
       {StrategyKind::Silent, StrategyKind::Amnesiac, StrategyKind::Forger,
        StrategyKind::Accuser, StrategyKind::Equivocator,
        StrategyKind::Stagger, StrategyKind::Collude, StrategyKind::Random}) {
    EXPECT_EQ(strategy_from_name(to_string(k)), k);
  }
}

TEST(SilentStrategy, NeverReplies) {
  Fixture f;
  auto obj = f.make(StrategyKind::Silent);
  EXPECT_TRUE(f.deliver(*obj, f.topo.writer(), f.pw_msg(1)).empty());
  EXPECT_TRUE(
      f.deliver(*obj, f.topo.reader(0), wire::ReadMsg{1, 1, 0}).empty());
}

TEST(AmnesiacStrategy, AcksWritesButServesInitialState) {
  Fixture f;
  auto obj = f.make(StrategyKind::Amnesiac);
  auto out = f.deliver(*obj, f.topo.writer(), f.pw_msg(5));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<wire::PwAckMsg>(out[0].msg).ts, 5u);
  // Read: replies with the INITIAL state although write 5 was acked.
  out = f.deliver(*obj, f.topo.reader(0), wire::ReadMsg{1, 3, 0});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::ReadAckMsg>(out[0].msg);
  EXPECT_TRUE(ack.pw.is_bottom());
  EXPECT_TRUE(ack.w.tsval.is_bottom());
}

TEST(ForgerStrategy, FabricatesHigherCandidate) {
  Fixture f;
  auto obj = f.make(StrategyKind::Forger);
  f.deliver(*obj, f.topo.writer(), f.pw_msg(3));
  auto out = f.deliver(*obj, f.topo.reader(0), wire::ReadMsg{1, 1, 0});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::ReadAckMsg>(out[0].msg);
  EXPECT_GT(ack.w.tsval.ts, 3u) << "forged candidate must look fresh";
  EXPECT_EQ(ack.w.tsval.val, "FORGED");
  // The fabricated tsrarray must look writer-made: exactly S-t non-nil rows.
  int non_nil = 0;
  for (const auto& row : ack.w.tsrarray) {
    if (row.has_value()) ++non_nil;
  }
  EXPECT_EQ(non_nil, f.res.quorum());
  // Benign forger rows carry no accusations.
  for (const auto& row : ack.w.tsrarray) {
    if (row.has_value()) {
      for (const auto v : *row) EXPECT_EQ(v, 0u);
    }
  }
}

TEST(AccuserStrategy, RowsAccuseTheRequestingReader) {
  Fixture f;
  auto obj = f.make(StrategyKind::Accuser);
  auto out = f.deliver(*obj, f.topo.reader(1), wire::ReadMsg{1, 2, 0});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::ReadAckMsg>(out[0].msg);
  bool accused = false;
  for (const auto& row : ack.w.tsrarray) {
    if (row.has_value() && row->size() > 1 && (*row)[1] > 1'000'000) {
      accused = true;
    }
  }
  EXPECT_TRUE(accused) << "accuser must claim huge reader timestamps";
}

TEST(EquivocatorStrategy, SendsHonestPlusForgedReplies) {
  Fixture f;
  auto obj = f.make(StrategyKind::Equivocator);
  auto out = f.deliver(*obj, f.topo.reader(0), wire::ReadMsg{1, 4, 0});
  ASSERT_EQ(out.size(), 2u) << "honest reply + forged reply";
  // Distinct readers get distinct forged values.
  auto obj2 = f.make(StrategyKind::Equivocator);
  auto out0 = f.deliver(*obj2, f.topo.reader(0), wire::ReadMsg{1, 4, 0});
  auto obj3 = f.make(StrategyKind::Equivocator);
  auto out1 = f.deliver(*obj3, f.topo.reader(1), wire::ReadMsg{1, 4, 0});
  const auto& forged0 = std::get<wire::ReadAckMsg>(out0[0].msg);
  const auto& forged1 = std::get<wire::ReadAckMsg>(out1[0].msg);
  EXPECT_NE(forged0.w.tsval, forged1.w.tsval);
}

TEST(StaggerStrategy, EscalatesTimestamps) {
  Fixture f;
  auto obj = f.make(StrategyKind::Stagger);
  Ts prev = 0;
  for (int k = 1; k <= 4; ++k) {
    auto out = f.deliver(*obj, f.topo.reader(0),
                         wire::ReadMsg{1, static_cast<ReaderTs>(k), 0});
    ASSERT_EQ(out.size(), 1u);
    const auto ts = std::get<wire::ReadAckMsg>(out[0].msg).w.tsval.ts;
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(ColludeStrategy, IdenticalForgeryAcrossColluders) {
  Fixture f;
  auto a = f.make(StrategyKind::Collude);
  auto b = make_byzantine(StrategyKind::Collude, Flavor::Safe, f.topo, f.res,
                          1);
  auto out_a = f.deliver(*a, f.topo.reader(0), wire::ReadMsg{1, 1, 0});
  auto out_b = f.deliver(*b, f.topo.reader(0), wire::ReadMsg{1, 1, 0});
  ASSERT_EQ(out_a.size(), 1u);
  ASSERT_EQ(out_b.size(), 1u);
  EXPECT_EQ(std::get<wire::ReadAckMsg>(out_a[0].msg).w,
            std::get<wire::ReadAckMsg>(out_b[0].msg).w)
      << "colluders must rendezvous on the same candidate without "
         "communication";
}

TEST(RegularFlavor, ForgerFabricatesHistorySlot) {
  Fixture f;
  auto obj = f.make(StrategyKind::Forger, Flavor::Regular);
  f.deliver(*obj, f.topo.writer(), f.pw_msg(2));
  auto out = f.deliver(*obj, f.topo.reader(0), wire::HistReadMsg{1, 1, 0, 0});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::HistReadAckMsg>(out[0].msg);
  bool has_fake = false;
  for (const auto& [ts, entry] : ack.history) {
    if (ts > 2 && entry.w.has_value()) has_fake = true;
  }
  EXPECT_TRUE(has_fake);
}

TEST(PollFlavor, ForgerAnswersPolls) {
  Fixture f;
  auto obj = f.make(StrategyKind::Forger, Flavor::Poll);
  auto out = f.deliver(*obj, f.topo.reader(0), wire::PollMsg{9, 1});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::PollAckMsg>(out[0].msg);
  EXPECT_EQ(ack.seq, 9u);
  EXPECT_EQ(ack.w.val, "FORGED");
}

TEST(AuthFlavor, ForgerCannotProduceValidMac) {
  Fixture f;
  auto obj = f.make(StrategyKind::Forger, Flavor::Auth);
  auto out = f.deliver(*obj, f.topo.reader(0), wire::AuthReadMsg{3});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::AuthReadAckMsg>(out[0].msg);
  EXPECT_EQ(ack.mac, std::string(32, '\xee')) << "garbage, not a valid MAC";
}

TEST(AbdFlavor, ForgerPoisonsQueries) {
  Fixture f;
  auto obj = f.make(StrategyKind::Forger, Flavor::Abd);
  f.deliver(*obj, f.topo.writer(), wire::AbdStoreMsg{1, TsVal{4, "x"}});
  auto out = f.deliver(*obj, f.topo.reader(0), wire::AbdQueryMsg{2});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(std::get<wire::AbdQueryAckMsg>(out[0].msg).tsval.ts, 4u);
}

TEST(AllStrategies, KeepTheWriterLive) {
  // Every strategy must ack PW/W (or stay silent, which the quorum absorbs):
  // specifically the non-silent ones must produce exactly one ack.
  Fixture f;
  for (const auto kind :
       {StrategyKind::Amnesiac, StrategyKind::Forger, StrategyKind::Accuser,
        StrategyKind::Equivocator, StrategyKind::Stagger,
        StrategyKind::Collude}) {
    auto obj = f.make(kind);
    auto out = f.deliver(*obj, f.topo.writer(), f.pw_msg(1));
    ASSERT_EQ(out.size(), 1u) << to_string(kind);
    EXPECT_TRUE(std::holds_alternative<wire::PwAckMsg>(out[0].msg))
        << to_string(kind);
    out = f.deliver(*obj, f.topo.writer(),
                    wire::WMsg{1, TsVal{1, "v"},
                               WTuple{TsVal{1, "v"}, init_tsrarray(7)}});
    ASSERT_EQ(out.size(), 1u) << to_string(kind);
    EXPECT_TRUE(std::holds_alternative<wire::WAckMsg>(out[0].msg))
        << to_string(kind);
  }
}

TEST(AllStrategies, WireMessagesAreWellFormed) {
  // Everything a strategy emits must survive the codec round-trip: the
  // simulator's reserialize mode depends on it.
  Fixture f;
  for (const auto kind :
       {StrategyKind::Amnesiac, StrategyKind::Forger, StrategyKind::Accuser,
        StrategyKind::Equivocator, StrategyKind::Stagger,
        StrategyKind::Collude, StrategyKind::Random}) {
    for (const auto flavor : {Flavor::Safe, Flavor::Regular, Flavor::Poll,
                              Flavor::Auth, Flavor::Abd}) {
      auto obj = make_byzantine(kind, flavor, f.topo, f.res, 0);
      std::vector<wire::Message> requests = {
          f.pw_msg(1), wire::ReadMsg{1, 1, 0}, wire::HistReadMsg{1, 2, 0, 0},
          wire::PollMsg{1, 1}, wire::AuthReadMsg{1}, wire::AbdQueryMsg{1}};
      for (const auto& req : requests) {
        for (const auto& out : f.deliver(*obj, f.topo.reader(0), req)) {
          SCOPED_TRACE(to_string(kind));
          const auto decoded = wire::decode(wire::encode(out.msg));
          ASSERT_TRUE(decoded.has_value());
          EXPECT_EQ(*decoded, out.msg);
        }
      }
    }
  }
}

}  // namespace
}  // namespace rr::adversary
