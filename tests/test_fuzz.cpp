// ScenarioFuzzer invariants: every generated scenario is parse-legal and
// round-trips bit-identically through the DSL, the fault schedule respects
// the declared (t, b) budget by construction, generation and execution are
// pure functions of the batch seed (same across runs and worker counts),
// the ddmin shrinker is idempotent on the committed fixtures, and a fuzz
// failure's auto-emitted fixture replays the failure standalone.
#include "harness/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/scenario_dsl.hpp"
#include "harness/sweep.hpp"

namespace rr::harness {
namespace {

const std::string kFixtureDir =
    std::string(RR_SOURCE_DIR) + "/tests/fixtures/scenarios";

std::vector<std::string> scn_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scn") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Budget accounting of one generated schedule: #byz <= b and
/// #byz + #crash <= t -- except overload cells, which violate it on
/// purpose (and say so via expect_ok = false).
void expect_budget_respected(const Scenario& s) {
  const Resilience res =
      protocol_traits(s.protocol).resilience_for(s.t, s.b, s.readers);
  int byz = 0;
  int crash = 0;
  for (const auto& ev : s.events) {
    if (ev.kind == FaultEvent::Kind::Byzantine) ++byz;
    if (ev.kind == FaultEvent::Kind::Crash) ++crash;
    // Loss never appears: it violates the channel model and stalls ops.
    EXPECT_NE(ev.kind, FaultEvent::Kind::Loss);
  }
  if (s.expect_ok) {
    EXPECT_LE(byz, res.b);
    EXPECT_LE(byz + crash, res.t);
  } else {
    EXPECT_GT(crash, res.t);  // overload: deliberately past the budget
  }
}

// ---------------------------------------------------------------------------
// The 10k property: every generated scenario parses, re-emits
// bit-identically, and respects the declared budget.
// ---------------------------------------------------------------------------
TEST(Fuzz, TenThousandScenariosRoundTripAndRespectBudget) {
  FuzzOptions opts;
  opts.seed = 0xfeedULL;
  opts.overload_rate = 0.1;
  const ScenarioFuzzer fuzzer(opts);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const Scenario s = fuzzer.generate(i);
    SCOPED_TRACE("index " + std::to_string(i) + " (" + s.name + ")");
    expect_budget_respected(s);

    const std::string text = emit_scenario(s);
    const auto parsed = parse_scenario(text);
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << text;
    EXPECT_EQ(parsed.scenario, s);
    EXPECT_EQ(emit_scenario(parsed.scenario), text);
  }
}

// The fuzzer explores the open-loop and windowed-checker axes: a healthy
// fraction of generated scenarios draws a non-closed arrival process (with
// population/think/horizon churn knobs) and an independent checker window,
// while overload cells stay closed-loop (their stall detection predates the
// engine and must keep failing the same way).
TEST(Fuzz, DrawsOpenLoopArrivalsAndCheckerWindows) {
  FuzzOptions opts;
  opts.seed = 0xa11ceULL;
  opts.overload_rate = 0.1;
  const ScenarioFuzzer fuzzer(opts);
  int open = 0;
  int windowed = 0;
  std::map<ArrivalKind, int> shapes;
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    const Scenario s = fuzzer.generate(i);
    SCOPED_TRACE("index " + std::to_string(i) + " (" + s.name + ")");
    if (!s.expect_ok) {
      EXPECT_EQ(s.arrival, ArrivalKind::Closed);
      EXPECT_EQ(s.checker_window, 0u);
      continue;
    }
    if (s.arrival != ArrivalKind::Closed) {
      ++open;
      ++shapes[s.arrival];
      EXPECT_GE(s.clients, 1u);
      EXPECT_GE(s.think, 1u);
      EXPECT_GE(s.horizon, 1u);
      EXPECT_GE(s.write_fraction, 0.0);
      EXPECT_LE(s.write_fraction, 1.0);
    }
    if (s.checker_window != 0) ++windowed;
  }
  EXPECT_GT(open, 200) << "open-loop draws are too rare";
  EXPECT_GT(windowed, 400) << "windowed-checker draws are too rare";
  EXPECT_GT(shapes[ArrivalKind::Poisson], 0);
  EXPECT_GT(shapes[ArrivalKind::Bursty], 0);
  EXPECT_GT(shapes[ArrivalKind::Diurnal], 0);
}

// Generation is a pure function of (seed, index): regenerating yields the
// identical batch, and distinct seeds diverge.
TEST(Fuzz, GenerationIsDeterministicPerSeed) {
  FuzzOptions opts;
  opts.seed = 42;
  opts.count = 200;
  opts.overload_rate = 0.2;
  const ScenarioFuzzer a(opts);
  const ScenarioFuzzer b(opts);
  EXPECT_EQ(a.batch(), b.batch());

  opts.seed = 43;
  const ScenarioFuzzer c(opts);
  EXPECT_NE(a.batch(), c.batch());
}

// Full-run determinism across worker counts: same seed and count yield
// identical cell keys, verdicts, and DES fingerprints whether the batch
// runs on 1 thread or 4 (the acceptance bar for `sweep_cli --fuzz`).
TEST(Fuzz, RunIsDeterministicAcrossWorkerCounts) {
  FuzzOptions opts;
  opts.seed = 7;
  opts.count = 24;
  opts.backends = {BackendKind::Sim};  // fingerprints only exist on the DES
  opts.overload_rate = 0.15;

  const FuzzResult one = run_fuzz(opts, /*workers=*/1);
  const FuzzResult four = run_fuzz(opts, /*workers=*/4);
  ASSERT_EQ(one.report.cells.size(), four.report.cells.size());
  for (std::size_t i = 0; i < one.report.cells.size(); ++i) {
    const auto& a = one.report.cells[i];
    const auto& b = four.report.cells[i];
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_NE(a.fingerprint, 0u);
  }
  EXPECT_EQ(one.unexpected, four.unexpected);
}

// Overload cells are generated expect-fail, actually fail (the stall is
// guaranteed by construction), and never count as unexpected.
TEST(Fuzz, OverloadCellsFailAsExpected) {
  FuzzOptions opts;
  opts.seed = 11;
  opts.count = 12;
  opts.overload_rate = 1.0;
  const FuzzResult r = run_fuzz(opts, 0);
  EXPECT_EQ(r.overload_cells, opts.count);
  EXPECT_TRUE(r.unexpected.empty()) << r.unexpected.front();
  for (const auto& v : r.report.cells) {
    EXPECT_FALSE(v.expect_ok);
    EXPECT_FALSE(v.ok) << v.key << " completed despite t+1 crashes";
  }
}

// ---------------------------------------------------------------------------
// ddmin idempotence over the committed fixtures: a fixture that still
// reproduces its failure is already 1-minimal (re-shrinking returns the
// identical schedule), and every shrunk schedule round-trips.
// ---------------------------------------------------------------------------
TEST(Fuzz, ShrinkerIsIdempotentOnCommittedFixtures) {
  for (const auto& path : scn_files(kFixtureDir)) {
    SCOPED_TRACE(path);
    const auto loaded = load_scenario_file(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    const Scenario& s = loaded.scenario;
    const CellVerdict v = SweepEngine::run_cell(s);
    if (v.ok) {
      // A passing fixture (e.g. a soak) has nothing to shrink; it must at
      // least declare itself expect-ok.
      EXPECT_TRUE(s.expect_ok);
      continue;
    }
    const ShrinkResult shrunk = SweepEngine::shrink(s);
    EXPECT_EQ(shrunk.minimal.events, s.events)
        << "fixture is not 1-minimal: re-shrinking dropped "
        << s.events.size() - shrunk.minimal.events.size() << " event(s)";
    const auto text = emit_scenario(shrunk.minimal);
    const auto reparsed = parse_scenario(text);
    ASSERT_TRUE(reparsed.ok) << reparsed.error;
    EXPECT_EQ(reparsed.scenario, shrunk.minimal);
  }
}

// ---------------------------------------------------------------------------
// The auto-fixture pipeline, pinned end-to-end with a known-bad semantics
// override: checking a safe-register protocol against Atomic must produce
// failures, each failure's emitted .scn must replay the failure standalone
// (expect fail, so it is committed-ready), and the shrunk twin too.
// ---------------------------------------------------------------------------
TEST(Fuzz, FailingCellsEmitReplayableFixtures) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rr-fuzz-fixtures-test";
  std::filesystem::remove_all(dir);

  FuzzOptions opts;
  opts.seed = 3;
  opts.count = 30;
  opts.protocols = {Protocol::Safe};
  opts.backends = {BackendKind::Sim};
  opts.check_override = Semantics::Atomic;  // known-bad: safe is not atomic
  opts.fixture_dir = dir.string();
  const FuzzResult r = run_fuzz(opts, 0);
  ASSERT_FALSE(r.unexpected.empty())
      << "atomic override on the safe protocol produced no violation in "
      << opts.count << " scenarios";
  ASSERT_FALSE(r.fixtures.empty());

  for (const auto& path : r.fixtures) {
    SCOPED_TRACE(path);
    const auto loaded = load_scenario_file(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_FALSE(loaded.scenario.expect_ok);
    // The fixture alone -- no fuzzer, no batch context -- must reproduce.
    const CellVerdict v = SweepEngine::run_cell(loaded.scenario);
    EXPECT_FALSE(v.ok) << "emitted fixture no longer fails";
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rr::harness
