// Scenario DSL invariants: the round-trip property (parse -> emit -> parse
// is the identity on the Scenario and on the DES fingerprint), zero
// semantic drift between the six legacy enum templates and their committed
// scenario-file twins, and the fixture-replay regression contract for
// tests/fixtures/scenarios/.
#include "harness/scenario_dsl.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace rr::harness {
namespace {

std::vector<std::string> scn_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scn") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::string kLibraryDir = std::string(RR_SOURCE_DIR) + "/scenarios";
const std::string kFixtureDir =
    std::string(RR_SOURCE_DIR) + "/tests/fixtures/scenarios";

// ---------------------------------------------------------------------------
// The round-trip property, pinned over every committed scenario file: parse
// -> emit -> parse yields an identical Scenario, and (for DES cells) running
// both yields the identical schedule fingerprint.
// ---------------------------------------------------------------------------
TEST(ScenarioDsl, RoundTripIsIdentityOnEveryCommittedFile) {
  std::vector<std::string> files = scn_files(kLibraryDir);
  for (auto& f : scn_files(kFixtureDir)) files.push_back(std::move(f));
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const auto first = load_scenario_file(path);
    ASSERT_TRUE(first.ok) << first.error;
    const std::string text = emit_scenario(first.scenario);
    const auto second = parse_scenario(text);
    ASSERT_TRUE(second.ok) << second.error;
    // The file-level name default comes from the filename; the emitted text
    // carries it explicitly, so the structs must match exactly.
    EXPECT_EQ(first.scenario, second.scenario);
    EXPECT_EQ(emit_scenario(second.scenario), text);
    if (first.scenario.backend == BackendKind::Sim) {
      const auto v1 = SweepEngine::run_cell(first.scenario);
      const auto v2 = SweepEngine::run_cell(second.scenario);
      EXPECT_EQ(v1.fingerprint, v2.fingerprint);
      EXPECT_NE(v1.fingerprint, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Zero semantic drift: each committed legacy twin replays bit-identically to
// the enum template it was emitted from. The twin file records the grid
// coordinates (protocol, template, seed) in its scenario/template lines, so
// the enum side is re-materialized from those, with the quick plan's knobs.
// ---------------------------------------------------------------------------
TEST(ScenarioDsl, LegacyTwinFilesMatchEnumTemplateFingerprints) {
  const SweepEngine engine(SweepPlan::quick());
  // Only the legacy-* files are enum twins; the rest of the library holds
  // hand-written scenarios with no enum counterpart.
  std::vector<std::string> files;
  for (auto& f : scn_files(kLibraryDir)) {
    if (std::filesystem::path(f).filename().string().rfind("legacy-", 0) == 0) {
      files.push_back(std::move(f));
    }
  }
  ASSERT_GE(files.size(), 6u);  // one twin per default template
  std::vector<FaultTemplate> seen;
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const auto parsed = load_scenario_file(path);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.scenario.backend, BackendKind::Sim);
    const Scenario enum_twin =
        engine.materialize(parsed.scenario.protocol, parsed.scenario.backend,
                           parsed.scenario.tmpl, parsed.scenario.seed);
    // The twin must carry the exact same schedule...
    EXPECT_EQ(parsed.scenario.events, enum_twin.events);
    EXPECT_EQ(parsed.scenario.run_seed, enum_twin.run_seed);
    // ...and replay to the exact same DES fingerprint.
    EXPECT_EQ(SweepEngine::run_cell(parsed.scenario).fingerprint,
              SweepEngine::run_cell(enum_twin).fingerprint);
    seen.push_back(parsed.scenario.tmpl);
  }
  for (const auto t : default_fault_templates()) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), t), seen.end())
        << "no committed twin for template " << to_string(t);
  }
}

// ---------------------------------------------------------------------------
// Fixture replay: every file under tests/fixtures/scenarios/ runs on its
// recorded protocol/backend/seed and must reproduce its recorded verdict.
// This is where shrinker-emitted minimal failing schedules live forever.
// ---------------------------------------------------------------------------
TEST(ScenarioDsl, FixturesReproduceTheirRecordedVerdicts) {
  const auto files = scn_files(kFixtureDir);
  ASSERT_FALSE(files.empty());
  int expected_failures = 0;
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const auto parsed = load_scenario_file(path);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const CellVerdict v = SweepEngine::run_cell(parsed.scenario);
    EXPECT_EQ(v.ok, parsed.scenario.expect_ok) << v.first_violation;
    if (!parsed.scenario.expect_ok) ++expected_failures;
  }
  // The directory must keep at least one shrunk minimal failing schedule.
  EXPECT_GE(expected_failures, 1);
}

// The library directory also runs through the sweep engine as first-class
// cells, with expect-aware failure counting.
TEST(ScenarioDsl, LibraryRunsAsSweepCells) {
  const auto lib = load_scenario_dir(kFixtureDir);
  ASSERT_TRUE(lib.ok()) << lib.errors.front();
  SweepPlan plan;
  plan.protocols.clear();
  plan.backends.clear();
  plan.templates.clear();
  plan.library = lib.scenarios;
  const SweepEngine engine(std::move(plan));
  EXPECT_EQ(engine.plan().num_cells(), lib.scenarios.size());
  const SweepReport report = engine.run(2);
  EXPECT_EQ(report.failed, 0) << "a fixture's verdict drifted";
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.key.rfind("scn:", 0), 0u) << cell.key;
  }
}

// ---------------------------------------------------------------------------
// Parser surface: sugar (time suffixes, from=/to=, Nx factors) lowers to
// canonical form, and malformed input is a parse error with a line number,
// never an assertion later in the pipeline.
// ---------------------------------------------------------------------------
TEST(ScenarioDsl, SugarLowersToCanonicalForm) {
  const auto parsed = parse_scenario(
      "scenario safe des seed=4 name=sugar\n"
      "workload writes=3 reads=2 write_gap=5us read_gap=3us shards=1\n"
      "fault gray obj=1 slow=8x from=10us to=200us\n"
      "fault flap objs=0,3 period=20us duty=0.5\n"
      "fault crash obj=2 at=40us\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& s = parsed.scenario;
  EXPECT_EQ(s.write_gap, 5'000u);
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].kind, FaultEvent::Kind::Gray);
  EXPECT_DOUBLE_EQ(s.events[0].rate, 8.0);
  EXPECT_EQ(s.events[0].at, 10'000u);
  EXPECT_EQ(s.events[0].duration, 190'000u);  // to - from
  EXPECT_EQ(s.events[1].kind, FaultEvent::Kind::Flap);
  EXPECT_EQ(s.events[1].period, 20'000u);
  EXPECT_EQ(s.events[1].duration, 300'000u);  // default horizon, resolved
  EXPECT_EQ(s.events[2].at, 40'000u);
  // The canonical emission re-parses to the identical scenario.
  const auto again = parse_scenario(emit_scenario(s));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.scenario, s);
}

TEST(ScenarioDsl, HistoryDirectiveRoundTrips) {
  const auto parsed = parse_scenario(
      "scenario regular des seed=3 name=hist\n"
      "history limit=8 gc=off\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.scenario.history_limit, 8u);
  EXPECT_FALSE(parsed.scenario.history_gc);
  const auto again = parse_scenario(emit_scenario(parsed.scenario));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.scenario, parsed.scenario);
  // The defaults (limit=0, gc=on) emit no history line at all, keeping
  // legacy files byte-stable.
  const auto plain = parse_scenario("scenario regular des seed=3 name=x\n");
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(emit_scenario(plain.scenario).find("history"), std::string::npos);
}

TEST(ScenarioDsl, OpenLoopWorkloadKeysRoundTrip) {
  const auto parsed = parse_scenario(
      "scenario safe des seed=5 name=open\n"
      "workload arrival=bursty clients=5000 think=2ms horizon=500us "
      "write_frac=0.2 window=64\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& s = parsed.scenario;
  EXPECT_EQ(s.arrival, ArrivalKind::Bursty);
  EXPECT_EQ(s.clients, 5'000u);
  EXPECT_EQ(s.think, 2'000'000u);
  EXPECT_EQ(s.horizon, 500'000u);
  EXPECT_DOUBLE_EQ(s.write_fraction, 0.2);
  EXPECT_EQ(s.checker_window, 64u);
  const std::string text = emit_scenario(s);
  EXPECT_NE(text.find("arrival=bursty"), std::string::npos) << text;
  const auto again = parse_scenario(text);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.scenario, s);
  EXPECT_EQ(emit_scenario(again.scenario), text);
  // The window is independent of the arrival process: a closed-loop
  // scenario may still stream-check.
  const auto closed = parse_scenario(
      "scenario safe des seed=5 name=win\nworkload window=32\n");
  ASSERT_TRUE(closed.ok) << closed.error;
  EXPECT_EQ(closed.scenario.arrival, ArrivalKind::Closed);
  EXPECT_EQ(closed.scenario.checker_window, 32u);
  const auto closed_again = parse_scenario(emit_scenario(closed.scenario));
  ASSERT_TRUE(closed_again.ok) << closed_again.error;
  EXPECT_EQ(closed_again.scenario, closed.scenario);
  // Defaults (closed loop, batch checker) emit no open-loop keys at all,
  // keeping every committed legacy file byte-stable.
  const auto plain = parse_scenario("scenario safe des seed=5 name=x\n");
  ASSERT_TRUE(plain.ok);
  const std::string plain_text = emit_scenario(plain.scenario);
  EXPECT_EQ(plain_text.find("arrival"), std::string::npos) << plain_text;
  EXPECT_EQ(plain_text.find("window"), std::string::npos) << plain_text;
}

TEST(ScenarioDsl, OpenLoopDesCellsReplayBitIdentically) {
  const auto parsed = parse_scenario(
      "scenario regular des seed=21 name=openrt\n"
      "workload arrival=poisson clients=800 think=8ms horizon=400us "
      "window=24\n"
      "fault gray obj=1 slow=3x at=50us dur=100us\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto again = parse_scenario(emit_scenario(parsed.scenario));
  ASSERT_TRUE(again.ok) << again.error;
  const auto v1 = SweepEngine::run_cell(parsed.scenario);
  const auto v2 = SweepEngine::run_cell(again.scenario);
  EXPECT_EQ(v1.fingerprint, v2.fingerprint);
  EXPECT_NE(v1.fingerprint, 0u);
  EXPECT_GT(v1.hist_retired, 0u) << "window=24 must retire online";
}

TEST(ScenarioDsl, MalformedInputIsARejectionNotAnAbort) {
  const char* cases[] = {
      "",                                          // no scenario line
      "fault crash obj=0\nscenario safe des\n",    // scenario not first
      "scenario warp des\n",                       // unknown protocol
      "scenario safe des\nfault flip obj=0\n",     // unknown fault kind
      "scenario safe des\nfault crash at=5\n",     // missing obj=
      "scenario safe des\nfault crash obj=99 at=5\n",  // object out of range
      "scenario safe des\nfault hold objs=0 at=5\n",   // hold without dur
      "scenario safe des\nfault gray obj=0 slow=0.5\n",  // factor <= 1
      "scenario safe des\nfault loss p=2\n",       // p out of range
      "scenario safe des\nfault loss p=0.1\nfault loss p=0.2\n",  // dup rule
      "scenario safe des\n"                        // byz over budget b=1
      "fault byz obj=0\nfault byz obj=1\n",
      "scenario safe des\nnonsense 1 2 3\n",       // unknown directive
      "scenario regular des\nhistory limit=1\n",   // cap below two slots
      "scenario regular des\nhistory gc=maybe\n",  // bad gc value
      "scenario safe des\nworkload arrival=warp\n",      // unknown arrival
      "scenario safe des\nworkload clients=500\n",       // clients need open
      "scenario safe des\nworkload think=1ms\n",         // think needs open
      "scenario safe des\n"                              // write_frac range
      "workload arrival=poisson write_frac=1.5\n",
      "scenario safe des\n"                              // zero population
      "workload arrival=poisson clients=0\n",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    const auto parsed = parse_scenario(text);
    EXPECT_FALSE(parsed.ok);
    EXPECT_FALSE(parsed.error.empty());
  }
}

// Named scenarios address as "scn:<name>" through the engine, and the name
// defaults to the filename stem for file-backed scenarios.
TEST(ScenarioDsl, NamedScenariosResolveThroughTheEngine) {
  auto parsed = parse_scenario(
      "scenario regular des seed=2 name=probe\nfault crash obj=1 at=9000\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.scenario.key(), "scn:probe");
  SweepPlan plan;
  plan.protocols = {Protocol::Safe};
  plan.library.push_back(parsed.scenario);
  const SweepEngine engine(std::move(plan));
  const auto found = engine.materialize_key("scn:probe");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, parsed.scenario);
  EXPECT_FALSE(engine.materialize_key("scn:absent").has_value());
}

// Client-role targets on gray/skew survive parse -> emit -> parse
// bit-identically, alongside plain object targets.
TEST(ScenarioDsl, ClientRoleTargetsRoundTrip) {
  const auto parsed = parse_scenario(
      "scenario regular des seed=9 name=roles\n"
      "budget t=1 b=0 readers=3\n"
      "fault gray role=writer slow=3 at=5000 dur=2000\n"
      "fault gray role=reader idx=2 slow=2 at=6000 dur=2000\n"
      "fault skew role=writer offset=-1500\n"
      "fault skew role=reader idx=1 offset=800\n"
      "fault gray obj=1 slow=4 at=7000 dur=1000\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& s = parsed.scenario;
  ASSERT_EQ(s.events.size(), 5u);
  EXPECT_EQ(s.events[0].role, Role::Writer);
  EXPECT_EQ(s.events[1].role, Role::Reader);
  EXPECT_EQ(s.events[1].object, 2);
  EXPECT_EQ(s.events[2].role, Role::Writer);
  EXPECT_EQ(s.events[3].role, Role::Reader);
  EXPECT_EQ(s.events[3].object, 1);
  EXPECT_EQ(s.events[4].role, Role::Object);
  const std::string text = emit_scenario(s);
  EXPECT_NE(text.find("role=writer"), std::string::npos);
  EXPECT_NE(text.find("role=reader idx=2"), std::string::npos);
  const auto again = parse_scenario(text);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.scenario, s);
  EXPECT_EQ(emit_scenario(again.scenario), text);
}

// Semantic range errors name the offending fault line, not the end of the
// file -- even when the budget directive (which fixes S and R) comes after
// the fault lines, and even when an earlier fault line is fine.
TEST(ScenarioDsl, RangeErrorsNameTheOffendingLine) {
  {
    const auto parsed = parse_scenario(
        "scenario safe des seed=1 name=bad\n"  // line 1
        "fault crash obj=1 at=5\n"             // line 2 (in range)
        "fault hold objs=0,9 at=5 dur=10\n"    // line 3: object 9 of S=3
        "budget t=1 b=0 readers=2\n");
    ASSERT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("line 3"), std::string::npos) << parsed.error;
  }
  {
    const auto parsed = parse_scenario(
        "scenario safe des seed=1 name=bad\n"
        "budget t=1 b=0 readers=2\n"
        "fault gray role=reader idx=5 slow=2 at=5\n");  // line 3: R=2
    ASSERT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("line 3"), std::string::npos) << parsed.error;
    EXPECT_NE(parsed.error.find("reader"), std::string::npos) << parsed.error;
  }
  {
    const auto parsed = parse_scenario(
        "scenario safe des seed=1 name=bad\n"
        "budget t=1 b=1 readers=2\n"
        "fault byz obj=0\n"
        "fault byz obj=1\n");  // line 4: the (b+1)-th byz is the error
    ASSERT_FALSE(parsed.ok);
    EXPECT_NE(parsed.error.find("line 4"), std::string::npos) << parsed.error;
  }
}

}  // namespace
}  // namespace rr::harness
