// Swap-drain mailbox regression tests for the threaded runtime hot path.
//
// Mirrors tests/test_world_pool.cpp for runtime::Cluster: steady-state
// delivery must not allocate (double-buffered lanes reuse their capacity),
// batched swap-drain and per-message delivery must be semantically
// indistinguishable, and hold/release/crash must interact correctly with a
// partially consumed (mid-swap) batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "net/process.hpp"
#include "runtime/cluster.hpp"

// Global allocation counter: replaced operator new lets the steady-state
// test below assert that delivering a burst performs zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rr::runtime {
namespace {

using namespace std::chrono_literals;

struct Collect final : net::Process {
  int count{0};
  int target{0};
  std::vector<std::pair<ProcessId, Ts>> seen;
  void on_message(net::Context&, ProcessId from,
                  const wire::Message& msg) override {
    ++count;
    seen.push_back({from, std::get<wire::WAckMsg>(msg).ts});
  }
};

/// Lightweight sink for the allocation test: no bookkeeping vector, so the
/// measured window touches nothing but the mailbox itself.
struct CountOnly final : net::Process {
  int count{0};
  int target{0};
  void on_message(net::Context&, ProcessId, const wire::Message&) override {
    ++count;
  }
};

TEST(ClusterMailbox, SteadyStateDeliveryIsAllocationFree) {
  // Acceptance criterion of the swap-drain refactor: once both lanes of
  // the double buffer have grown to working-set size, a send -> swap ->
  // dispatch cycle performs no heap allocation. Both endpoints are passive
  // and driven from this thread, so the measurement is deterministic.
  constexpr int kBurst = 512;
  Cluster c;
  const auto a = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  const auto b = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  auto* sink = static_cast<CountOnly*>(&c.process(b));
  c.start();
  auto burst = [&] {
    c.with_context(a, [b](net::Context& ctx) {
      for (int i = 0; i < kBurst; ++i) {
        ctx.send(b, wire::WAckMsg{static_cast<Ts>(i)});
      }
    });
  };
  auto drain = [&] {
    sink->target += kBurst;
    ASSERT_TRUE(c.drive(
        b, [sink] { return sink->count >= sink->target; }, 5s));
  };
  // Two warmup cycles: the first grows one lane of the double buffer, the
  // swap exposes the other (still empty) lane, and the second grows that.
  burst();
  drain();
  burst();
  drain();
  const std::uint64_t before = g_heap_allocs.load();
  burst();
  drain();
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  EXPECT_EQ(allocs, 0u)
      << "mailbox delivery hot path must not allocate at steady state";
  EXPECT_EQ(c.stats().messages_delivered, 3u * kBurst);
}

/// Runs the same three-sender interleaving under batched or per-message
/// delivery and returns the collector's observations.
std::vector<std::pair<ProcessId, Ts>> interleaved_run(bool batched,
                                                      net::NetStats* stats) {
  ClusterOptions opts;
  opts.batched_drain = batched;
  Cluster c(opts);
  std::vector<ProcessId> senders;
  for (int i = 0; i < 3; ++i) {
    senders.push_back(c.add(std::make_unique<CountOnly>(), /*active=*/false));
  }
  const auto sink = c.add(std::make_unique<Collect>(), /*active=*/true);
  c.start();
  for (Ts round = 1; round <= 40; ++round) {
    for (const auto s : senders) {
      c.with_context(s, [sink, round](net::Context& ctx) {
        ctx.send(sink, wire::WAckMsg{round});
      });
    }
  }
  EXPECT_TRUE(c.run_quiescent(10s));
  if (stats != nullptr) *stats = c.stats();
  auto seen = static_cast<Collect*>(&c.process(sink))->seen;
  c.stop();
  return seen;
}

TEST(ClusterMailbox, BatchedMatchesPerMessageDeliverySemantics) {
  net::NetStats batched_stats, unbatched_stats;
  const auto batched = interleaved_run(/*batched=*/true, &batched_stats);
  const auto unbatched = interleaved_run(/*batched=*/false, &unbatched_stats);
  ASSERT_EQ(batched.size(), 120u);
  ASSERT_EQ(unbatched.size(), 120u);
  EXPECT_EQ(batched_stats.messages_sent, unbatched_stats.messages_sent);
  EXPECT_EQ(batched_stats.messages_delivered,
            unbatched_stats.messages_delivered);
  EXPECT_EQ(batched_stats.bytes_sent, unbatched_stats.bytes_sent);
  EXPECT_EQ(batched_stats.messages_dropped, 0u);
  EXPECT_EQ(unbatched_stats.messages_dropped, 0u);
  // Per-sender FIFO must hold in both modes (cross-sender order is free
  // under the asynchronous model).
  for (const auto& seen : {batched, unbatched}) {
    std::vector<Ts> last(3, 0);
    for (const auto& [from, ts] : seen) {
      ASSERT_GE(from, 0);
      ASSERT_LT(from, 3);
      EXPECT_GT(ts, last[static_cast<std::size_t>(from)])
          << "per-channel FIFO violated";
      last[static_cast<std::size_t>(from)] = ts;
    }
  }
}

TEST(ClusterMailbox, DeploymentParityBatchedVsUnbatched) {
  // End-to-end: the same gv06-safe workload on the threads backend must
  // produce an identical, checker-clean traffic pattern whether delivery
  // is swap-drain batched or per-message (fixed 2-round protocol => the
  // message count is a pure function of the op mix).
  auto run = [](bool batched) {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::Safe;
    opts.backend = harness::BackendKind::Threads;
    opts.res = Resilience::optimal(2, 2, 2);
    opts.seed = 7;
    opts.thread_batched_drain = batched;
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    d.run();
    EXPECT_TRUE(d.check().ok()) << "batched=" << batched;
    return d.stats();
  };
  const auto batched = run(true);
  const auto unbatched = run(false);
  EXPECT_GT(batched.messages_sent, 0u);
  EXPECT_EQ(batched.messages_sent, unbatched.messages_sent);
  EXPECT_EQ(batched.messages_delivered, unbatched.messages_delivered);
  // Byte totals are NOT compared: ack payload sizes depend on which write's
  // value a read observes, which is interleaving-dependent on real threads.
  EXPECT_GT(batched.bytes_sent, 0u);
  EXPECT_EQ(batched.messages_dropped, 0u);
  EXPECT_EQ(unbatched.messages_dropped, 0u);
}

TEST(ClusterMailbox, CrashDropsTheUnconsumedTailOfAMidSwapBatch) {
  // A crash landing while a swapped-out batch is partially consumed must
  // drop the tail of that batch (exactly like queued messages), and the
  // drops must be visible in NetStats so sent == delivered + dropped.
  Cluster c;
  const auto a = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  const auto b = c.add(std::make_unique<Collect>(), /*active=*/false);
  auto* sink = static_cast<Collect*>(&c.process(b));
  c.start();
  c.with_context(a, [b](net::Context& ctx) {
    for (Ts i = 1; i <= 10; ++i) ctx.send(b, wire::WAckMsg{i});
  });
  // Consume 4 of the 10: the first drive refill swaps the whole inbox, so
  // the remaining 6 sit in the slot's private drain buffer (mid-swap).
  ASSERT_TRUE(c.drive(b, [sink] { return sink->count >= 4; }, 5s));
  EXPECT_EQ(sink->count, 4);
  c.crash(b);
  // The tail must be consumed as drops, and quiescence must still be
  // reachable (the 6 tail messages are outstanding work items until then).
  ASSERT_TRUE(c.drive(
      b, [&c] { return c.stats().messages_dropped >= 6; }, 5s));
  ASSERT_TRUE(c.run_quiescent(5s));
  const auto stats = c.stats();
  EXPECT_EQ(stats.messages_sent, 10u);
  EXPECT_EQ(stats.messages_delivered, 4u);
  EXPECT_EQ(stats.messages_dropped, 6u);
  EXPECT_EQ(sink->count, 4) << "no delivery after crash";
}

TEST(ClusterMailbox, CrashDiscardsHeldBuffersAndReleaseCannotResurrect) {
  Cluster c;
  const auto a = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  const auto b = c.add(std::make_unique<Collect>(), /*active=*/false);
  auto* sink = static_cast<Collect*>(&c.process(b));
  c.start();
  c.hold(a, b);
  c.with_context(a, [b](net::Context& ctx) {
    for (Ts i = 1; i <= 5; ++i) ctx.send(b, wire::WAckMsg{i});
  });
  // Held-channel buffers do not count as pending work.
  EXPECT_TRUE(c.run_quiescent(100ms));
  EXPECT_EQ(c.stats().messages_dropped, 0u);
  c.crash(b);
  // The five buffered messages are discarded immediately (they could only
  // ever be dropped at delivery) and counted as dropped; the channel
  // itself stays held.
  EXPECT_EQ(c.stats().messages_dropped, 5u);
  EXPECT_TRUE(c.held(a, b));
  c.release(a, b);
  EXPECT_FALSE(c.held(a, b));
  EXPECT_TRUE(c.run_quiescent(1s))
      << "no deliveries may be scheduled from the discarded buffer";
  EXPECT_EQ(sink->count, 0);
  EXPECT_EQ(c.stats().messages_delivered, 0u);
  EXPECT_EQ(c.stats().messages_dropped, 5u);
}

TEST(ClusterMailbox, ReleasePreservesFifoThroughActiveConsumer) {
  // FIFO through hold/release with an active (threaded) consumer: the
  // single-lock release_all re-injection must keep per-channel order.
  Cluster c;
  const auto a = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  const auto b = c.add(std::make_unique<Collect>(), /*active=*/true);
  auto* sink = static_cast<Collect*>(&c.process(b));
  c.start();
  c.hold_all(b);
  c.with_context(a, [b](net::Context& ctx) {
    for (Ts i = 1; i <= 200; ++i) ctx.send(b, wire::WAckMsg{i});
  });
  EXPECT_TRUE(c.run_quiescent(100ms));
  EXPECT_EQ(sink->count, 0);
  c.release_all(b);
  ASSERT_TRUE(c.run_quiescent(10s));
  c.stop();
  ASSERT_EQ(sink->seen.size(), 200u);
  for (Ts i = 0; i < 200; ++i) {
    EXPECT_EQ(sink->seen[static_cast<std::size_t>(i)].second, i + 1);
  }
}

TEST(ClusterMailbox, HoldAllBatchesUnderOneLockAndSkipsSelfChannel) {
  Cluster c;
  const auto a = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  const auto b = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  const auto d = c.add(std::make_unique<CountOnly>(), /*active=*/false);
  c.start();
  c.hold_all(a);
  EXPECT_FALSE(c.held(a, a)) << "self-channel must not be held";
  EXPECT_TRUE(c.held(a, b));
  EXPECT_TRUE(c.held(b, a));
  EXPECT_TRUE(c.held(a, d));
  EXPECT_TRUE(c.held(d, a));
  EXPECT_FALSE(c.held(b, d));
  c.release_all(a);
  EXPECT_FALSE(c.held(a, b));
  EXPECT_FALSE(c.held(d, a));
}

TEST(ClusterMailbox, ColdLaneClosuresRunAsExclusiveSteps) {
  // Posted closures travel in the cold lane but must still run as steps of
  // the target process (exclusive with message deliveries) and count
  // toward quiescence. Past-due posts take the direct path; future posts
  // go through the timer thread.
  Cluster c;
  const auto a = c.add(std::make_unique<CountOnly>(), /*active=*/true);
  c.start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    c.post(0, a, [&ran](net::Context&) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  c.post(c.now() + 2'000'000, a, [&ran](net::Context&) {
    ran.fetch_add(100, std::memory_order_relaxed);
  });
  ASSERT_TRUE(c.run_quiescent(10s));
  EXPECT_EQ(ran.load(), 150);
}

}  // namespace
}  // namespace rr::runtime
