// Codec tests: round-trip of every message type, malformed-input rejection,
// and a deterministic fuzz sweep (the codec faces bytes from Byzantine
// processes, so it must never crash or over-allocate).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "wire/codec.hpp"

namespace rr::wire {
namespace {

WTuple sample_tuple() {
  WTuple t;
  t.tsval = TsVal{42, "payload"};
  t.tsrarray = init_tsrarray(4);
  t.tsrarray[1] = TsrRow{1, 2, 3};
  t.tsrarray[3] = TsrRow{};
  return t;
}

History sample_history() {
  History h;
  h[0] = HistEntry{TsVal::bottom(), initial_wtuple(4)};
  h[7] = HistEntry{TsVal{7, "v7"}, std::nullopt};
  h[9] = HistEntry{std::nullopt, sample_tuple()};
  return h;
}

std::vector<Message> all_message_samples() {
  return {
      PwMsg{3, TsVal{3, "v3"}, sample_tuple()},
      PwAckMsg{3, TsrRow{9, 8}},
      WMsg{3, TsVal{3, "v3"}, sample_tuple()},
      WAckMsg{3},
      ReadMsg{2, 77, 5},
      ReadAckMsg{1, 77, TsVal{4, "x"}, sample_tuple()},
      HistReadAckMsg{2, 78, sample_history()},
      AbdStoreMsg{11, TsVal{2, "ab"}},
      AbdStoreAckMsg{11},
      AbdQueryMsg{12},
      AbdQueryAckMsg{12, TsVal{5, "q"}},
      BlWriteMsg{1, 6, "bl"},
      BlWriteAckMsg{2, 6},
      FwWriteMsg{7, "fw"},
      FwWriteAckMsg{7},
      PollMsg{13, 4},
      PollAckMsg{13, 4, TsVal{1, "p"}, TsVal{1, "p"}},
      AuthWriteMsg{8, "av", std::string(32, '\x01')},
      AuthWriteAckMsg{8},
      AuthReadMsg{14},
      AuthReadAckMsg{14, 8, "av", std::string(32, '\x01')},
      ScReadMsg{15},
      ScPushMsg{15, 3, TsVal{2, "s"}, TsVal{2, "s"}},
      ScGossipMsg{9, TsVal{9, "g"}, TsVal{8, "g8"}},
      ShardMsg{3, encode(Message{WAckMsg{5}})},
      HistReadMsg{1, 79, 5, 8},
  };
}

// The registry-derived index helper must agree with the variant layout the
// codec tags are built from (benches key JSON per-type stats off it).
static_assert(message_index<PwMsg>() == 0);
static_assert(message_index<HistReadAckMsg>() == 6);
static_assert(message_index<HistReadMsg>() == std::variant_size_v<Message> - 1);

TEST(CodecTest, RoundTripsEveryMessageType) {
  const auto samples = all_message_samples();
  ASSERT_EQ(samples.size(), std::variant_size_v<Message>);
  for (const auto& msg : samples) {
    const std::string bytes = encode(msg);
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.has_value()) << type_name(msg);
    EXPECT_EQ(*decoded, msg) << type_name(msg);
    EXPECT_EQ(encoded_size(msg), bytes.size());
  }
}

TEST(CodecTest, EncodingIsDeterministic) {
  for (const auto& msg : all_message_samples()) {
    EXPECT_EQ(encode(msg), encode(msg)) << type_name(msg);
  }
}

TEST(CodecTest, DistinctMessagesEncodeDistinctly) {
  const auto samples = all_message_samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t k = i + 1; k < samples.size(); ++k) {
      EXPECT_NE(encode(samples[i]), encode(samples[k]));
    }
  }
}

TEST(CodecTest, EmptyInputRejected) {
  EXPECT_FALSE(decode("").has_value());
}

TEST(CodecTest, UnknownTagRejected) {
  std::string bytes(1, static_cast<char>(std::variant_size_v<Message>));
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecTest, TruncationRejected) {
  for (const auto& msg : all_message_samples()) {
    const std::string bytes = encode(msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode(bytes.substr(0, cut)).has_value())
          << type_name(msg) << " truncated to " << cut;
    }
  }
}

TEST(CodecTest, TrailingGarbageRejected) {
  for (const auto& msg : all_message_samples()) {
    EXPECT_FALSE(decode(encode(msg) + "x").has_value()) << type_name(msg);
  }
}

TEST(CodecTest, HugeLengthPrefixRejectedWithoutAllocation) {
  // A PwAckMsg whose tsr row claims 2^32-1 elements: must fail cleanly.
  std::string bytes;
  bytes.push_back(1);  // PwAckMsg tag
  for (int i = 0; i < 8; ++i) bytes.push_back(0);  // ts
  bytes += std::string(4, '\xff');                 // row length prefix
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecTest, FuzzRandomBytesNeverCrash) {
  Rng rng(2024);
  int decoded_ok = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::string bytes;
    const auto len = rng.uniform(0, 64);
    bytes.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    if (decode(bytes).has_value()) ++decoded_ok;
  }
  // Some random inputs may parse (tiny fixed-size messages); most must not.
  EXPECT_LT(decoded_ok, 2000);
}

TEST(CodecTest, FuzzBitFlipsOnValidMessages) {
  Rng rng(77);
  for (const auto& msg : all_message_samples()) {
    const std::string bytes = encode(msg);
    for (int iter = 0; iter < 200; ++iter) {
      std::string mutated = bytes;
      const auto pos = rng.index(mutated.size());
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^
          (1u << rng.uniform(0, 7)));
      // Must not crash; may or may not decode.
      const auto result = decode(mutated);
      if (result.has_value()) {
        // If it decodes, re-encoding must be canonical.
        EXPECT_EQ(encode(*result).size(), mutated.size());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// encoded_size property test: the counting visitor must agree with the
// materializing encoder on every one of the 24 message variants, across
// randomized payloads (empty/huge strings, nil/full tsrarrays, histories).
// ---------------------------------------------------------------------------

Value random_value(Rng& rng) {
  const auto len = rng.index(40);
  Value v;
  v.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    v.push_back(static_cast<char>(rng.uniform(0, 255)));
  }
  return v;
}

TsVal random_tsval(Rng& rng) {
  return TsVal{rng.uniform(0, 1u << 20), random_value(rng)};
}

TsrRow random_tsr_row(Rng& rng) {
  TsrRow row(rng.index(6));
  for (auto& x : row) x = rng.uniform(0, 1000);
  return row;
}

TsrArray random_tsrarray(Rng& rng) {
  TsrArray arr(rng.index(5));
  for (auto& e : arr) {
    if (rng.chance(0.5)) e = random_tsr_row(rng);
  }
  return arr;
}

WTuple random_wtuple(Rng& rng) {
  return WTuple{random_tsval(rng), random_tsrarray(rng)};
}

History random_history(Rng& rng) {
  History h;
  const auto slots = rng.index(8);
  for (std::size_t i = 0; i < slots; ++i) {
    HistEntry e;
    if (rng.chance(0.7)) e.pw = random_tsval(rng);
    if (rng.chance(0.7)) e.w = random_wtuple(rng);
    h[rng.uniform(0, 50)] = std::move(e);
  }
  return h;
}

Message random_message(std::size_t variant, Rng& rng) {
  const auto u8v = [&] { return static_cast<std::uint8_t>(rng.uniform(0, 255)); };
  const auto u32v = [&] { return static_cast<std::uint32_t>(rng.uniform(0, 1u << 30)); };
  const auto u64v = [&] { return rng.uniform(0, 1ull << 40); };
  switch (variant) {
    case 0: return PwMsg{u64v(), random_tsval(rng), random_wtuple(rng)};
    case 1: return PwAckMsg{u64v(), random_tsr_row(rng)};
    case 2: return WMsg{u64v(), random_tsval(rng), random_wtuple(rng)};
    case 3: return WAckMsg{u64v()};
    case 4: return ReadMsg{u8v(), u64v(), u64v()};
    case 5: return ReadAckMsg{u8v(), u64v(), random_tsval(rng), random_wtuple(rng)};
    case 6:
      return HistReadAckMsg{u8v(), u64v(), random_history(rng), u64v(), u8v()};
    case 7: return AbdStoreMsg{u64v(), random_tsval(rng)};
    case 8: return AbdStoreAckMsg{u64v()};
    case 9: return AbdQueryMsg{u64v()};
    case 10: return AbdQueryAckMsg{u64v(), random_tsval(rng)};
    case 11: return BlWriteMsg{u8v(), u64v(), random_value(rng)};
    case 12: return BlWriteAckMsg{u8v(), u64v()};
    case 13: return FwWriteMsg{u64v(), random_value(rng)};
    case 14: return FwWriteAckMsg{u64v()};
    case 15: return PollMsg{u64v(), u32v()};
    case 16: return PollAckMsg{u64v(), u32v(), random_tsval(rng), random_tsval(rng)};
    case 17: return AuthWriteMsg{u64v(), random_value(rng), random_value(rng)};
    case 18: return AuthWriteAckMsg{u64v()};
    case 19: return AuthReadMsg{u64v()};
    case 20: return AuthReadAckMsg{u64v(), u64v(), random_value(rng), random_value(rng)};
    case 21: return ScReadMsg{u64v()};
    case 22: return ScPushMsg{u64v(), u32v(), random_tsval(rng), random_tsval(rng)};
    case 23: return ScGossipMsg{u64v(), random_tsval(rng), random_tsval(rng)};
    case 24: return ShardMsg{u32v(), random_value(rng)};
    case 25: return HistReadMsg{u8v(), u64v(), u64v(), u64v()};
    default: break;
  }
  return WAckMsg{0};
}

TEST(CodecTest, EncodedSizePropertyAllVariants) {
  static_assert(std::variant_size_v<Message> == 26);
  Rng rng(424242);
  for (std::size_t variant = 0; variant < std::variant_size_v<Message>;
       ++variant) {
    for (int iter = 0; iter < 50; ++iter) {
      const Message msg = random_message(variant, rng);
      ASSERT_EQ(msg.index(), variant);
      const std::string bytes = encode(msg);
      EXPECT_EQ(encoded_size(msg), bytes.size())
          << type_name(msg) << " iter " << iter;
      // The counting visitor must not drift from the decoder either.
      const auto decoded = decode(bytes);
      ASSERT_TRUE(decoded.has_value()) << type_name(msg);
      EXPECT_EQ(*decoded, msg) << type_name(msg);
    }
  }
}

TEST(CodecTest, EncodedSizeOfDegenerateShapes) {
  // Empty history, empty strings, all-nil tsrarray, and a large history.
  History empty;
  EXPECT_EQ(encoded_size(Message{HistReadAckMsg{1, 0, empty}}),
            encode(Message{HistReadAckMsg{1, 0, empty}}).size());
  History big;
  for (Ts k = 0; k < 200; ++k) {
    big[k] = HistEntry{TsVal{k, std::string(100, 'x')},
                       WTuple{TsVal{k, ""}, init_tsrarray(8)}};
  }
  const Message m = HistReadAckMsg{2, 9, big};
  EXPECT_EQ(encoded_size(m), encode(m).size());
  const Message auth = AuthWriteMsg{1, "", ""};
  EXPECT_EQ(encoded_size(auth), encode(auth).size());
}

// ---------------------------------------------------------------------------
// Adversarial-bytes torture, every variant: the codec faces frames from
// Byzantine peers via the net backend's framing layer, so each of the 26
// variants is attacked with randomized payloads x truncation, bit flips,
// and hostile length prefixes. Nothing here may crash, over-allocate, or
// accept a non-canonical encoding.
// ---------------------------------------------------------------------------

TEST(CodecTortureTest, RandomizedTruncationRejectedOnEveryVariant) {
  Rng rng(31337);
  for (std::size_t variant = 0; variant < std::variant_size_v<Message>;
       ++variant) {
    for (int iter = 0; iter < 20; ++iter) {
      const std::string bytes = encode(random_message(variant, rng));
      for (int cut_iter = 0; cut_iter < 16; ++cut_iter) {
        const auto cut = rng.index(bytes.size());
        EXPECT_FALSE(decode(bytes.substr(0, cut)).has_value())
            << "variant " << variant << " truncated to " << cut << "/"
            << bytes.size();
      }
    }
  }
}

TEST(CodecTortureTest, RandomizedBitFlipsNeverCrashOnAnyVariant) {
  Rng rng(6061);
  for (std::size_t variant = 0; variant < std::variant_size_v<Message>;
       ++variant) {
    for (int iter = 0; iter < 40; ++iter) {
      std::string bytes = encode(random_message(variant, rng));
      const auto pos = rng.index(bytes.size());
      bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                     (1u << rng.uniform(0, 7)));
      const auto result = decode(bytes);
      if (result.has_value()) {
        // Anything accepted must re-encode without amplification (a history
        // ack's map keys may arrive permuted, so byte identity is only
        // guaranteed up to canonical ordering) and round-trip exactly.
        const std::string reenc = encode(*result);
        EXPECT_LE(reenc.size(), bytes.size()) << "variant " << variant;
        const auto again = decode(reenc);
        ASSERT_TRUE(again.has_value()) << "variant " << variant;
        EXPECT_EQ(*again, *result) << "variant " << variant;
      }
    }
  }
}

TEST(CodecTortureTest, OversizedLengthPrefixesRejectedOnEveryVariant) {
  // Stamp a hostile 0xFFFFFFFF over every aligned 4-byte window of every
  // variant's encoding: whichever length/count prefix it lands on must be
  // rejected without a multi-gigabyte allocation (ASan/OOM would catch it).
  Rng rng(90125);
  for (std::size_t variant = 0; variant < std::variant_size_v<Message>;
       ++variant) {
    const std::string bytes = encode(random_message(variant, rng));
    for (std::size_t pos = 0; pos + 4 <= bytes.size(); ++pos) {
      std::string mutated = bytes;
      mutated.replace(pos, 4, 4, '\xff');
      const auto result = decode(mutated);
      if (result.has_value()) {
        EXPECT_LE(encode(*result).size(), mutated.size())
            << "variant " << variant << " pos " << pos;
      }
    }
  }
}

TEST(CodecTortureTest, AllOnesAndAllZeroBodiesRejectedCleanly) {
  for (std::size_t tag = 0; tag < std::variant_size_v<Message>; ++tag) {
    for (const char fill : {'\x00', '\xff'}) {
      for (const std::size_t len : {0u, 1u, 7u, 32u, 257u}) {
        std::string bytes(1, static_cast<char>(tag));
        bytes += std::string(len, fill);
        const auto result = decode(bytes);  // must not crash; usually rejects
        if (result.has_value()) {
          EXPECT_EQ(encode(*result).size(), bytes.size());
        }
      }
    }
  }
}

TEST(CodecTest, HistoryAckSizeGrowsLinearly) {
  // Byte accounting underpins the Section 5.1 experiment: verify the size
  // of a history ack is linear in the number of slots.
  History h;
  HistReadAckMsg small{1, 1, h};
  for (Ts k = 1; k <= 10; ++k) h[k] = HistEntry{TsVal{k, "v"}, std::nullopt};
  HistReadAckMsg big{1, 1, h};
  const auto small_sz = encoded_size(Message{small});
  const auto big_sz = encoded_size(Message{big});
  EXPECT_GT(big_sz, small_sz + 10 * 8);  // at least the keys
}

}  // namespace
}  // namespace rr::wire
