// Codec tests: round-trip of every message type, malformed-input rejection,
// and a deterministic fuzz sweep (the codec faces bytes from Byzantine
// processes, so it must never crash or over-allocate).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "wire/codec.hpp"

namespace rr::wire {
namespace {

WTuple sample_tuple() {
  WTuple t;
  t.tsval = TsVal{42, "payload"};
  t.tsrarray = init_tsrarray(4);
  t.tsrarray[1] = TsrRow{1, 2, 3};
  t.tsrarray[3] = TsrRow{};
  return t;
}

History sample_history() {
  History h;
  h[0] = HistEntry{TsVal::bottom(), initial_wtuple(4)};
  h[7] = HistEntry{TsVal{7, "v7"}, std::nullopt};
  h[9] = HistEntry{std::nullopt, sample_tuple()};
  return h;
}

std::vector<Message> all_message_samples() {
  return {
      PwMsg{3, TsVal{3, "v3"}, sample_tuple()},
      PwAckMsg{3, TsrRow{9, 8}},
      WMsg{3, TsVal{3, "v3"}, sample_tuple()},
      WAckMsg{3},
      ReadMsg{2, 77, 5},
      ReadAckMsg{1, 77, TsVal{4, "x"}, sample_tuple()},
      HistReadAckMsg{2, 78, sample_history()},
      AbdStoreMsg{11, TsVal{2, "ab"}},
      AbdStoreAckMsg{11},
      AbdQueryMsg{12},
      AbdQueryAckMsg{12, TsVal{5, "q"}},
      BlWriteMsg{1, 6, "bl"},
      BlWriteAckMsg{2, 6},
      FwWriteMsg{7, "fw"},
      FwWriteAckMsg{7},
      PollMsg{13, 4},
      PollAckMsg{13, 4, TsVal{1, "p"}, TsVal{1, "p"}},
      AuthWriteMsg{8, "av", std::string(32, '\x01')},
      AuthWriteAckMsg{8},
      AuthReadMsg{14},
      AuthReadAckMsg{14, 8, "av", std::string(32, '\x01')},
      ScReadMsg{15},
      ScPushMsg{15, 3, TsVal{2, "s"}, TsVal{2, "s"}},
      ScGossipMsg{9, TsVal{9, "g"}, TsVal{8, "g8"}},
  };
}

TEST(CodecTest, RoundTripsEveryMessageType) {
  const auto samples = all_message_samples();
  ASSERT_EQ(samples.size(), std::variant_size_v<Message>);
  for (const auto& msg : samples) {
    const std::string bytes = encode(msg);
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.has_value()) << type_name(msg);
    EXPECT_EQ(*decoded, msg) << type_name(msg);
    EXPECT_EQ(encoded_size(msg), bytes.size());
  }
}

TEST(CodecTest, EncodingIsDeterministic) {
  for (const auto& msg : all_message_samples()) {
    EXPECT_EQ(encode(msg), encode(msg)) << type_name(msg);
  }
}

TEST(CodecTest, DistinctMessagesEncodeDistinctly) {
  const auto samples = all_message_samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t k = i + 1; k < samples.size(); ++k) {
      EXPECT_NE(encode(samples[i]), encode(samples[k]));
    }
  }
}

TEST(CodecTest, EmptyInputRejected) {
  EXPECT_FALSE(decode("").has_value());
}

TEST(CodecTest, UnknownTagRejected) {
  std::string bytes(1, static_cast<char>(std::variant_size_v<Message>));
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecTest, TruncationRejected) {
  for (const auto& msg : all_message_samples()) {
    const std::string bytes = encode(msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode(bytes.substr(0, cut)).has_value())
          << type_name(msg) << " truncated to " << cut;
    }
  }
}

TEST(CodecTest, TrailingGarbageRejected) {
  for (const auto& msg : all_message_samples()) {
    EXPECT_FALSE(decode(encode(msg) + "x").has_value()) << type_name(msg);
  }
}

TEST(CodecTest, HugeLengthPrefixRejectedWithoutAllocation) {
  // A PwAckMsg whose tsr row claims 2^32-1 elements: must fail cleanly.
  std::string bytes;
  bytes.push_back(1);  // PwAckMsg tag
  for (int i = 0; i < 8; ++i) bytes.push_back(0);  // ts
  bytes += std::string(4, '\xff');                 // row length prefix
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(CodecTest, FuzzRandomBytesNeverCrash) {
  Rng rng(2024);
  int decoded_ok = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::string bytes;
    const auto len = rng.uniform(0, 64);
    bytes.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    if (decode(bytes).has_value()) ++decoded_ok;
  }
  // Some random inputs may parse (tiny fixed-size messages); most must not.
  EXPECT_LT(decoded_ok, 2000);
}

TEST(CodecTest, FuzzBitFlipsOnValidMessages) {
  Rng rng(77);
  for (const auto& msg : all_message_samples()) {
    const std::string bytes = encode(msg);
    for (int iter = 0; iter < 200; ++iter) {
      std::string mutated = bytes;
      const auto pos = rng.index(mutated.size());
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^
          (1u << rng.uniform(0, 7)));
      // Must not crash; may or may not decode.
      const auto result = decode(mutated);
      if (result.has_value()) {
        // If it decodes, re-encoding must be canonical.
        EXPECT_EQ(encode(*result).size(), mutated.size());
      }
    }
  }
}

TEST(CodecTest, HistoryAckSizeGrowsLinearly) {
  // Byte accounting underpins the Section 5.1 experiment: verify the size
  // of a history ack is linear in the number of slots.
  History h;
  HistReadAckMsg small{1, 1, h};
  for (Ts k = 1; k <= 10; ++k) h[k] = HistEntry{TsVal{k, "v"}, std::nullopt};
  HistReadAckMsg big{1, 1, h};
  const auto small_sz = encoded_size(Message{small});
  const auto big_sz = encoded_size(Message{big});
  EXPECT_GT(big_sz, small_sz + 10 * 8);  // at least the keys
}

}  // namespace
}  // namespace rr::wire
