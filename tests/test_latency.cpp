// LatencyRecorder tests: bucket-edge correctness of the log-scale
// histogram, bit-identical percentiles on the deterministic DES backend,
// thread-safe recording, and the zero-steady-state-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/latency.hpp"
#include "harness/workload.hpp"

// Global allocation counter: replaced operator new lets the recording test
// below assert that record() performs zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rr::harness {
namespace {

using Recorder = LatencyRecorder;

TEST(LatencyBuckets, SmallValuesAreExact) {
  for (Time v = 0; v < Recorder::kSub; ++v) {
    EXPECT_EQ(Recorder::bucket_index(v), v);
    EXPECT_EQ(Recorder::bucket_floor(Recorder::bucket_index(v)), v);
  }
}

TEST(LatencyBuckets, FloorNeverExceedsValueAndIndexIsMonotone) {
  // Probe every octave edge plus its neighbors across the full u64 range.
  std::vector<Time> probes;
  for (int k = 0; k < 64; ++k) {
    const Time p = Time{1} << k;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(~Time{0});
  std::size_t prev_idx = 0;
  Time prev = 0;
  std::sort(probes.begin(), probes.end());
  for (const Time v : probes) {
    const std::size_t idx = Recorder::bucket_index(v);
    ASSERT_LT(idx, Recorder::kBuckets) << "value " << v;
    EXPECT_LE(Recorder::bucket_floor(idx), v) << "value " << v;
    if (v > prev) {
      EXPECT_GE(idx, prev_idx) << "value " << v;
    }
    // The floor itself must map back into the same bucket.
    EXPECT_EQ(Recorder::bucket_index(Recorder::bucket_floor(idx)), idx);
    prev_idx = idx;
    prev = v;
  }
}

TEST(LatencyBuckets, RelativeQuantizationErrorIsBounded) {
  // Within one octave the sub-bucket width is 2^shift and the bucket floor
  // is at least 16 * 2^shift, so floor > v * (1 - 1/16).
  for (const Time v : {Time{17}, Time{100}, Time{1'000}, Time{123'456},
                       Time{987'654'321}, Time{1} << 40}) {
    const Time floor = Recorder::bucket_floor(Recorder::bucket_index(v));
    EXPECT_LE(floor, v);
    EXPECT_GT(static_cast<double>(floor),
              static_cast<double>(v) * (1.0 - 1.0 / 16.0) - 1.0)
        << "value " << v;
  }
}

TEST(LatencyRecorderTest, ExactStatsOnSmallValues) {
  Recorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.p50(), 0u);
  EXPECT_EQ(r.min(), 0u);
  EXPECT_EQ(r.max(), 0u);
  // Values 1..10 land in exact buckets, so every quantile is exact.
  for (Time v = 1; v <= 10; ++v) r.record(v);
  EXPECT_EQ(r.count(), 10u);
  EXPECT_EQ(r.min(), 1u);
  EXPECT_EQ(r.max(), 10u);
  EXPECT_EQ(r.p50(), 5u);
  EXPECT_EQ(r.quantile(0.0), 1u);
  EXPECT_EQ(r.quantile(1.0), 10u);
  EXPECT_EQ(r.p99(), 10u);
  EXPECT_DOUBLE_EQ(r.mean(), 5.5);
}

TEST(LatencyRecorderTest, QuantilesClampToExactExtremes) {
  Recorder r;
  r.record(1'000'000);  // quantized bucket, exact min/max kept separately
  r.record(1'000'001);
  EXPECT_EQ(r.quantile(0.0), 1'000'000u);
  EXPECT_EQ(r.quantile(1.0), 1'000'001u);
  // Both samples share a bucket; every quantile must stay within [min, max]
  // even though the bucket floor is below both.
  EXPECT_GE(r.p50(), 1'000'000u);
  EXPECT_LE(r.p50(), 1'000'001u);
}

TEST(LatencyRecorderTest, MergeFoldsCountsAndExtremes) {
  Recorder a, b;
  for (Time v = 1; v <= 100; ++v) a.record(v);
  for (Time v = 1'000; v <= 1'099; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1'099u);
  // The median of the merged multiset sits at the top of the low block.
  EXPECT_LE(a.p50(), 100u);
  EXPECT_GE(a.p99(), 1'000u * 15 / 16);
}

TEST(LatencyRecorderTest, RecordingIsAllocationFree) {
  Recorder r;
  const std::uint64_t before = g_heap_allocs.load();
  for (Time v = 0; v < 200'000; ++v) r.record(v * 977 + 13);
  (void)r.p50();
  (void)r.p95();
  (void)r.p99();
  (void)r.max();
  (void)r.mean();
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  EXPECT_EQ(allocs, 0u)
      << "record() and the quantile readers must never allocate";
  EXPECT_EQ(r.count(), 200'000u);
}

TEST(LatencyRecorderTest, ConcurrentRecordingLosesNothing) {
  Recorder r;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        r.record(static_cast<Time>(t) * 1'000 + i % 997);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(r.count(), kThreads * kPerThread);
  EXPECT_EQ(r.min(), 0u);
  EXPECT_EQ(r.max(), 3'000u + 996u);
}

/// Runs one DES deployment and returns the percentile tuple of its write
/// and read histograms.
std::vector<Time> des_profile(std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = Protocol::RegularOptimized;
  opts.res = Resilience::optimal(2, 1, 2);
  opts.seed = seed;
  Deployment d(opts);
  MixedWorkloadOptions w;
  w.writes = 30;
  w.reads_per_reader = 30;
  mixed_workload(d, w);
  d.run();
  const auto& wl = d.write_latency();
  const auto& rl = d.read_latency();
  return {wl.count(), wl.p50(),  wl.p95(), wl.p99(), wl.max(), wl.min(),
          rl.count(), rl.p50(),  rl.p95(), rl.p99(), rl.max(), rl.min()};
}

TEST(LatencyRecorderTest, DesPercentilesAreBitIdenticalAcrossRuns) {
  // Virtual-time latencies are deterministic given the seed, so every
  // derived number must match exactly, run to run.
  const auto a = des_profile(71);
  const auto b = des_profile(71);
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0], 0u);  // writes recorded
  EXPECT_GT(a[6], 0u);  // reads recorded
  // A different seed must actually change the latencies (the recorder is
  // not reporting constants).
  const auto c = des_profile(72);
  EXPECT_NE(a, c);
}

TEST(LatencyRecorderTest, DeploymentRecordsEveryOperation) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Safe;
  opts.res = Resilience::optimal(1, 1, 2);
  opts.seed = 3;
  opts.shards = 2;
  Deployment d(opts);
  MixedWorkloadOptions w;
  w.writes = 5;
  w.reads_per_reader = 4;
  mixed_workload(d, w);
  d.run();
  // 2 shards x 5 writes; 2 shards x 2 readers x 4 reads.
  EXPECT_EQ(d.write_latency().count(), 10u);
  EXPECT_EQ(d.read_latency().count(), 16u);
  EXPECT_GT(d.read_latency().min(), 0u);
  // A recorder fed OpStats' exact samples agrees with the exact-percentile
  // path (quantized floor <= exact percentile; exact extremes match).
  MixedWorkloadStats stats;
  DeploymentOptions opts2 = opts;
  opts2.shards = 1;
  Deployment d2(opts2);
  mixed_workload(d2, w, &stats);
  d2.run();
  Recorder hist;
  for (const Time l : stats.reads.latencies()) hist.record(l);
  EXPECT_EQ(hist.count(), stats.reads.count());
  EXPECT_LE(hist.p95(), stats.reads.latency_p95());
  EXPECT_EQ(hist.max(), stats.reads.latency_max());
  EXPECT_EQ(hist.min(), stats.reads.latency_min());
}

}  // namespace
}  // namespace rr::harness
