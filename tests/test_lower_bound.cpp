// Executable Proposition 1 (paper Figure 1): no safe fast-read storage with
// S = 2t+2b objects. The orchestrator builds the proof's runs against the
// strawman fast-read implementations and must observe (a) byte-identical
// reader views across runs 3/4/5 and (b) a safety violation in run4 or run5
// -- for every (t, b) and for both decision-rule horns.
#include <gtest/gtest.h>

#include "lowerbound/figure_one.hpp"

namespace rr::lowerbound {
namespace {

struct Params {
  int t;
  int b;
  bool aggressive;
};

class FigureOneTest : public ::testing::TestWithParam<Params> {};

TEST_P(FigureOneTest, LowerBoundManifests) {
  const auto [t, b, aggressive] = GetParam();
  Resilience res;
  res.t = t;
  res.b = b;
  res.num_objects = 2 * t + 2 * b;
  res.num_readers = 1;

  const auto report = run_figure_one(
      [&] { return make_strawman(res, aggressive); }, res, "v1");

  EXPECT_TRUE(report.reader_decided)
      << "a fast READ must decide on S-t replies";
  EXPECT_TRUE(report.views_identical)
      << "the reader views of runs 3, 4 and 5 must be byte-identical";
  // Indistinguishability forces the same return value everywhere.
  EXPECT_EQ(report.returned3, report.returned4);
  EXPECT_EQ(report.returned3, report.returned5);
  EXPECT_TRUE(report.safety_violated()) << report.summary();

  // The two horns of the dilemma: trusting thin evidence fails when nothing
  // was written (run5); demanding b+1 confirmations misses a completed
  // write (run4).
  if (aggressive) {
    EXPECT_TRUE(report.run5_violation) << report.summary();
    EXPECT_FALSE(report.run4_violation) << report.summary();
  } else {
    EXPECT_TRUE(report.run4_violation) << report.summary();
    EXPECT_FALSE(report.run5_violation) << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FigureOneTest,
    ::testing::Values(Params{1, 1, true}, Params{1, 1, false},
                      Params{2, 1, true}, Params{2, 1, false},
                      Params{2, 2, true}, Params{2, 2, false},
                      Params{3, 2, true}, Params{3, 2, false},
                      Params{4, 4, true}, Params{4, 4, false},
                      Params{5, 3, true}, Params{5, 3, false}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.t) + "b" +
             std::to_string(info.param.b) +
             (info.param.aggressive ? "_aggressive" : "_conservative");
    });

TEST(FigureOneTest, WriteRoundCountDoesNotMatter) {
  // The bound is independent of writer round complexity: the strawman's
  // 2-round write is enough to exhibit it, and the report records the
  // count for documentation.
  Resilience res;
  res.t = 2;
  res.b = 2;
  res.num_objects = 8;
  const auto report =
      run_figure_one([&] { return make_strawman(res, true); }, res, "vX");
  EXPECT_EQ(report.write_rounds, 2);
  EXPECT_TRUE(report.safety_violated());
}

}  // namespace
}  // namespace rr::lowerbound
