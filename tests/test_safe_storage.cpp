// The paper's safe storage (Figures 2-4): Proposition 2 (2-round ops at
// optimal resilience), Theorem 1 (safety), Theorem 2 (wait-freedom) --
// exercised under crash faults, every Byzantine strategy, adversarial
// delays, and (t, b) sweeps.
#include <gtest/gtest.h>

#include "core/safe_reader.hpp"
#include "core/writer.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::FaultPlan;
using harness::Protocol;

DeploymentOptions safe_opts(int t, int b, int readers, std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Safe;
  opts.res = Resilience::optimal(t, b, readers);
  opts.seed = seed;
  return opts;
}

void expect_all_complete(Deployment& d) {
  for (const auto& op : d.log().snapshot()) {
    EXPECT_TRUE(op.complete) << "wait-freedom violated";
  }
}

TEST(SafeStorage, ReadAfterWriteReturnsWrittenValue) {
  auto opts = safe_opts(1, 1, 1, 1);
  Deployment d(opts);
  TsVal got;
  d.invoke_write(0, "hello", nullptr);
  d.invoke_read(100'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  EXPECT_EQ(got, (TsVal{1, "hello"}));
}

TEST(SafeStorage, ReadBeforeAnyWriteReturnsInitialValue) {
  auto opts = safe_opts(2, 1, 1, 3);
  Deployment d(opts);
  bool returned_default = false;
  TsVal got{99, "x"};
  d.invoke_read(0, 0, [&](const core::ReadResult& r) {
    got = r.tsval;
    returned_default = r.tsval.is_bottom();
  });
  d.run();
  EXPECT_TRUE(got.is_bottom());
  EXPECT_TRUE(returned_default);
}

TEST(SafeStorage, EveryOperationTakesExactlyTwoRounds) {
  // Proposition 2: both READ and WRITE complete in (at most) 2 rounds; our
  // implementation always initiates exactly 2.
  auto opts = safe_opts(2, 2, 2, 5);
  Deployment d(opts);
  harness::MixedWorkloadStats stats;
  harness::MixedWorkloadOptions w;
  w.writes = 15;
  w.reads_per_reader = 15;
  harness::mixed_workload(d, w, &stats);
  d.run();
  EXPECT_EQ(stats.writes.rounds_min(), 2);
  EXPECT_EQ(stats.writes.rounds_max(), 2);
  EXPECT_EQ(stats.reads.rounds_min(), 2);
  EXPECT_EQ(stats.reads.rounds_max(), 2);
  EXPECT_TRUE(d.check().ok());
}

class SafeCrashTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SafeCrashTest, ToleratesTCrashedObjects) {
  const auto [t, b] = GetParam();
  auto opts = safe_opts(t, b, 2, 11);
  opts.faults = FaultPlan::crash_only(t);  // the full crash budget
  Deployment d(opts);
  harness::sequential_then_reads(d, 6, 5);
  d.run();
  expect_all_complete(d);
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

INSTANTIATE_TEST_SUITE_P(
    Resiliences, SafeCrashTest,
    ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1}, std::tuple{2, 2},
                      std::tuple{3, 1}, std::tuple{3, 3}, std::tuple{4, 2},
                      std::tuple{5, 5}),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "b" +
             std::to_string(std::get<1>(info.param));
    });

struct ByzCase {
  int t;
  int b;
  adversary::StrategyKind kind;
};

class SafeByzantineTest : public ::testing::TestWithParam<ByzCase> {};

TEST_P(SafeByzantineTest, SafetyAndLivenessUnderAttack) {
  const auto p = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto opts = safe_opts(p.t, p.b, 2, seed * 97);
    // Full Byzantine budget, plus crash the remaining fault budget.
    opts.faults = FaultPlan::mixed(p.b, p.kind, p.t - p.b);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 8;
    w.reads_per_reader = 8;
    harness::mixed_workload(d, w);
    d.run();
    expect_all_complete(d);
    const auto report = d.check();
    EXPECT_TRUE(report.ok())
        << "strategy=" << adversary::to_string(p.kind) << " seed=" << seed
        << "\n"
        << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SafeByzantineTest,
    ::testing::Values(
        ByzCase{1, 1, adversary::StrategyKind::Silent},
        ByzCase{1, 1, adversary::StrategyKind::Amnesiac},
        ByzCase{1, 1, adversary::StrategyKind::Forger},
        ByzCase{1, 1, adversary::StrategyKind::Accuser},
        ByzCase{1, 1, adversary::StrategyKind::Equivocator},
        ByzCase{1, 1, adversary::StrategyKind::Stagger},
        ByzCase{1, 1, adversary::StrategyKind::Collude},
        ByzCase{1, 1, adversary::StrategyKind::Random},
        ByzCase{2, 2, adversary::StrategyKind::Forger},
        ByzCase{2, 2, adversary::StrategyKind::Accuser},
        ByzCase{2, 2, adversary::StrategyKind::Collude},
        ByzCase{2, 2, adversary::StrategyKind::Random},
        ByzCase{3, 2, adversary::StrategyKind::Forger},
        ByzCase{3, 3, adversary::StrategyKind::Collude},
        ByzCase{3, 3, adversary::StrategyKind::Random},
        ByzCase{4, 2, adversary::StrategyKind::Equivocator}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.t) + "b" +
             std::to_string(info.param.b) + "_" +
             adversary::to_string(info.param.kind);
    });

TEST(SafeStorage, ForgedCandidateIsNeverReturned) {
  // Directed check: with `collude` forgers, the fake candidate has exactly b
  // vouchers -- one short of safe(c)'s b+1 -- so reads never return it.
  auto opts = safe_opts(3, 3, 1, 21);
  opts.faults = FaultPlan::mixed(3, adversary::StrategyKind::Collude, 0);
  Deployment d(opts);
  std::vector<TsVal> results;
  harness::write_stream(d, 0, 2'000, 5);
  for (int k = 0; k < 10; ++k) {
    d.invoke_read(200'000 + static_cast<Time>(k) * 50'000, 0,
                  [&](const core::ReadResult& r) { results.push_back(r.tsval); });
  }
  d.run();
  ASSERT_EQ(results.size(), 10u);
  for (const auto& r : results) {
    EXPECT_NE(r.val, "COLLUDE");
    EXPECT_LE(r.ts, 5u);
  }
}

TEST(SafeStorage, AccuserCannotBlockRoundOne) {
  // Lemma 1 / Lemma 2: conflicts never involve two correct objects, so the
  // first round terminates even when every Byzantine object accuses every
  // honest one.
  auto opts = safe_opts(2, 2, 1, 33);
  opts.faults = FaultPlan::mixed(2, adversary::StrategyKind::Accuser, 0);
  Deployment d(opts);
  int reads_done = 0;
  harness::write_stream(d, 0, 2'000, 3);
  for (int k = 0; k < 5; ++k) {
    d.invoke_read(100'000 + static_cast<Time>(k) * 80'000, 0,
                  [&](const core::ReadResult&) { ++reads_done; });
  }
  d.run();
  EXPECT_EQ(reads_done, 5);
  // The conflict machinery actually fired (diagnostic).
  EXPECT_GT(d.safe_reader(0).diag().round1_acks, 0);
}

TEST(SafeStorage, WorstCaseSchedulingWithHeldChannels) {
  // Adversarial schedule: hide t honest objects from the reader during both
  // rounds; the predicate-driven waits must still complete using the
  // remaining replies, and safety must hold.
  const int t = 2, b = 1;
  auto opts = safe_opts(t, b, 1, 44);
  opts.delay = harness::DelayKind::Fixed;
  opts.delay_lo = 1'000;
  Deployment d(opts);
  TsVal got;
  d.invoke_write(0, "target", nullptr);
  d.world().run();
  // Hold the channels between the reader and the last t honest objects.
  for (int i = opts.res.num_objects - t; i < opts.res.num_objects; ++i) {
    d.world().hold(d.reader_pid(0), d.object_pid(i));
    d.world().hold(d.object_pid(i), d.reader_pid(0));
  }
  d.invoke_read(d.world().now() + 1'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  EXPECT_EQ(got, (TsVal{1, "target"}));
}

TEST(SafeStorage, ReaderWaitsBeyondQuorumWhenQuorumIsUninformative) {
  // The paper's key subtlety: the first S-t replies can contain only ONE
  // holder of the latest value. The read must not return a stale value; it
  // waits for more replies (still 2 rounds). We force the composition with
  // holds: hide t holders, let the old-state objects answer first.
  const int t = 2, b = 1;  // S = 6, quorum = 4
  auto opts = safe_opts(t, b, 1, 55);
  opts.delay = harness::DelayKind::Fixed;
  opts.delay_lo = 1'000;
  Deployment d(opts);

  // Write v1 reaching everyone.
  d.invoke_write(0, "v1", nullptr);
  d.world().run();
  // Write v2, but hold the writer's channels to objects 0 and 1 so they
  // keep v1 (they are the "stale correct" objects)...
  for (int i = 0; i < 2; ++i) {
    d.world().hold(d.writer_pid(), d.object_pid(i));
  }
  d.invoke_write(d.world().now() + 1'000, "v2", nullptr);
  d.world().run();
  // ...and hide two holders of v2 from the reader (objects 4, 5).
  for (int i = 4; i < 6; ++i) {
    d.world().hold(d.reader_pid(0), d.object_pid(i));
    d.world().hold(d.object_pid(i), d.reader_pid(0));
  }
  TsVal got;
  d.invoke_read(d.world().now() + 1'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  // Visible: objects 0,1 (stale v1), 2,3 (v2) -- that is a full quorum of 4
  // with only two v2 vouchers... which happens to satisfy safe() with b+1=2.
  // Either way, safety demands v2.
  EXPECT_EQ(got, (TsVal{2, "v2"}));
}

TEST(SafeStorage, ConcurrentReadersDoNotInterfere) {
  auto opts = safe_opts(2, 2, 4, 66);
  Deployment d(opts);
  harness::MixedWorkloadOptions w;
  w.writes = 12;
  w.reads_per_reader = 12;
  harness::mixed_workload(d, w);
  d.run();
  expect_all_complete(d);
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(SafeStorage, WriterCrashMidWriteLeavesReadsLive) {
  // Crash the writer between rounds: the write never completes, but reads
  // must still terminate (wait-freedom is per-client) and safety must hold
  // for reads concurrent with the incomplete write.
  auto opts = safe_opts(2, 1, 1, 77);
  opts.delay = harness::DelayKind::Fixed;
  opts.delay_lo = 1'000;
  Deployment d(opts);
  d.logged_write(0, "done");
  d.run();
  // Start a second write and crash the writer shortly after the PW batch
  // goes out (before it can send W).
  d.logged_write(d.world().now() + 100, "half");
  d.world().run_until(d.world().now() + 1'500);
  d.world().crash(d.writer_pid());
  int completed = 0;
  for (int k = 0; k < 4; ++k) {
    d.logged_read(d.world().now() + 2'000 + static_cast<Time>(k) * 40'000, 0,
                  [&](const core::ReadResult&) { ++completed; });
  }
  d.run();
  EXPECT_EQ(completed, 4);
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(SafeStorage, ManyReadersHeavyTailDelays) {
  auto opts = safe_opts(2, 2, 6, 88);
  opts.delay = harness::DelayKind::HeavyTail;
  opts.delay_lo = 2'000;
  opts.delay_hi = 200'000;
  Deployment d(opts);
  harness::MixedWorkloadOptions w;
  w.writes = 10;
  w.reads_per_reader = 6;
  harness::mixed_workload(d, w);
  d.run();
  expect_all_complete(d);
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(SafeStorage, ReserializedMessagesBehaveIdentically) {
  // Round-tripping every message through the codec must not change any
  // outcome (protocol state depends only on message contents).
  auto run = [](bool reserialize) {
    auto opts = safe_opts(2, 1, 2, 123);
    opts.reserialize = reserialize;
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 6;
    w.reads_per_reader = 6;
    harness::mixed_workload(d, w);
    d.run();
    std::vector<std::pair<Ts, Value>> reads;
    for (const auto& op : d.log().snapshot()) {
      if (op.kind == checker::OpRecord::Kind::Read) {
        reads.emplace_back(op.ts, op.value);
      }
    }
    return reads;
  };
  EXPECT_EQ(run(false), run(true));
}

class SafePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SafePropertyTest, RandomizedRunsStaySafeAndLive) {
  const auto [t, b, seed_base] = GetParam();
  if (b > t) GTEST_SKIP() << "model requires b <= t";
  for (int variant = 0; variant < 3; ++variant) {
    const auto seed = static_cast<std::uint64_t>(seed_base * 131 + variant);
    auto opts = safe_opts(t, b, 3, seed);
    Rng rng(seed);
    // Random fault plan within budget.
    const int byz = static_cast<int>(rng.uniform(0, static_cast<Ts>(b)));
    const int crash =
        static_cast<int>(rng.uniform(0, static_cast<Ts>(t - byz)));
    const auto kinds = {adversary::StrategyKind::Forger,
                        adversary::StrategyKind::Random,
                        adversary::StrategyKind::Equivocator,
                        adversary::StrategyKind::Amnesiac};
    const auto kind = *(kinds.begin() + static_cast<int>(rng.index(4)));
    opts.faults = FaultPlan::mixed(byz, kind, crash);
    opts.delay = rng.chance(0.5) ? harness::DelayKind::Uniform
                                 : harness::DelayKind::HeavyTail;
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 6 + static_cast<int>(rng.uniform(0, 6));
    w.reads_per_reader = 6;
    w.write_gap = rng.uniform(500, 20'000);
    w.read_gap = rng.uniform(500, 20'000);
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete) << "seed " << seed;
    }
    const auto report = d.check();
    ASSERT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SafePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),  // t
                       ::testing::Values(1, 2, 3),     // b
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "b" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace rr
