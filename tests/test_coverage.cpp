// Coverage gate over the committed scenario library: scenarios/ must
// exercise every model-legal fault primitive on every protocol family, and
// a gap fails with the missing cell spelled out (so the failure says what
// scenario to write, not just that one is absent). The same accountant
// backs `sweep_cli --coverage --check` in CI.
#include "harness/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/scenario_dsl.hpp"

namespace rr::harness {
namespace {

std::vector<Scenario> load_dir(const std::string& dir) {
  std::vector<Scenario> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    const auto parsed = load_scenario_file(entry.path().string());
    EXPECT_TRUE(parsed.ok) << entry.path() << ": " << parsed.error;
    if (parsed.ok) out.push_back(parsed.scenario);
  }
  return out;
}

// The pin: every model-legal primitive x protocol cell is exercised by the
// committed library alone (fixtures and fuzz batches only add on top). A
// red run here names the exact cell a deleted or edited scenario vacated.
TEST(Coverage, CommittedLibraryCoversEveryModelLegalCell) {
  CoverageMatrix matrix;
  matrix.add_all(load_dir(std::string(RR_SOURCE_DIR) + "/scenarios"));
  ASSERT_GT(matrix.scenarios_seen, 0);
  const auto gaps = matrix.missing();
  EXPECT_TRUE(gaps.empty()) << gaps.size()
                            << " uncovered cell(s), first: " << gaps.front();
}

// missing() names cells as "<primitive> x <protocol>", skips byz for
// protocols whose resilience recipe forces b = 0 (abd), and never lists
// primitives outside the channel model (loss, dup).
TEST(Coverage, MissingCellsAreNamedAndModelLegalOnly) {
  const auto parsed = parse_scenario(
      "scenario safe des seed=1 name=only-crash\n"
      "fault crash obj=0 at=5\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  CoverageMatrix matrix;
  matrix.add(parsed.scenario);

  const auto gaps = matrix.missing();
  ASSERT_FALSE(gaps.empty());
  const auto has = [&gaps](const std::string& cell) {
    return std::find(gaps.begin(), gaps.end(), cell) != gaps.end();
  };
  EXPECT_TRUE(has("byz x safe"));
  EXPECT_TRUE(has("crash x abd"));  // one scenario covers one protocol only
  EXPECT_FALSE(has("crash x safe"));
  EXPECT_FALSE(has("byz x abd"));   // abd is crash-only by construction
  EXPECT_FALSE(has("loss x safe"));
  EXPECT_FALSE(has("dup x safe"));
}

// table() renders every protocol column and primitive row, reports the
// budgets seen, and carries the gate verdict in prose.
TEST(Coverage, TableListsProtocolsPrimitivesAndVerdict) {
  CoverageMatrix matrix;
  matrix.add_all(load_dir(std::string(RR_SOURCE_DIR) + "/scenarios"));
  const std::string table = matrix.table();
  for (const char* token :
       {"safe", "regular-opt", "abd", "polling", "fastwrite", "auth",
        "gray-client", "skew-client", "reorder", "budgets:", "complete"}) {
    EXPECT_NE(table.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace rr::harness
