// Consistency-checker tests on hand-crafted histories: each checker must
// accept the legal histories of its semantics and flag the canonical
// violations (the checkers are the oracle for every other test, so they get
// adversarial testing of their own).
#include <gtest/gtest.h>

#include "checker/history.hpp"

namespace rr::checker {
namespace {

OpRecord write_op(Ts ts, const Value& v, Time inv, Time resp) {
  OpRecord op;
  op.kind = OpRecord::Kind::Write;
  op.client = -1;
  op.invoked_at = inv;
  op.responded_at = resp;
  op.complete = true;
  op.ts = ts;
  op.value = v;
  return op;
}

OpRecord incomplete_write(const Value& v, Time inv) {
  OpRecord op;
  op.kind = OpRecord::Kind::Write;
  op.client = -1;
  op.invoked_at = inv;
  op.complete = false;
  op.value = v;
  return op;
}

OpRecord read_op(int client, Ts ts, const Value& v, Time inv, Time resp) {
  OpRecord op;
  op.kind = OpRecord::Kind::Read;
  op.client = client;
  op.invoked_at = inv;
  op.responded_at = resp;
  op.complete = true;
  op.ts = ts;
  op.value = v;
  return op;
}

TEST(SafetyChecker, AcceptsSequentialHistory) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      read_op(0, 1, "v1", 20, 30),
      write_op(2, "v2", 40, 50),
      read_op(0, 2, "v2", 60, 70),
  };
  EXPECT_TRUE(check_safety(ops).ok());
}

TEST(SafetyChecker, AcceptsInitialValueBeforeAnyWrite) {
  const std::vector<OpRecord> ops = {
      read_op(0, 0, "", 0, 5),
      write_op(1, "v1", 10, 20),
  };
  EXPECT_TRUE(check_safety(ops).ok());
}

TEST(SafetyChecker, FlagsStaleRead) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      write_op(2, "v2", 20, 30),
      read_op(0, 1, "v1", 40, 50),  // must return v2
  };
  const auto report = check_safety(ops);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("safety"), std::string::npos);
}

TEST(SafetyChecker, FlagsNeverWrittenValue) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      read_op(0, 1, "FORGED", 20, 30),
  };
  EXPECT_FALSE(check_safety(ops).ok());
}

TEST(SafetyChecker, IgnoresReadsConcurrentWithWrites) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 100),
      read_op(0, 99, "anything", 10, 20),  // concurrent: unconstrained
  };
  EXPECT_TRUE(check_safety(ops).ok());
}

TEST(SafetyChecker, IncompleteWriteMakesLaterReadsConcurrent) {
  // A crashed writer's operation never responds; reads invoked after it are
  // concurrent with it forever, so safety does not constrain them.
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      incomplete_write("v2", 20),
      read_op(0, 1, "v1", 100, 110),   // still fine
      read_op(0, 2, "v2", 200, 210),   // also fine (concurrent)
  };
  EXPECT_TRUE(check_safety(ops).ok());
}

TEST(RegularityChecker, AcceptsEitherOfConcurrentValues) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      write_op(2, "v2", 20, 100),
      read_op(0, 1, "v1", 30, 40),  // concurrent with wr2: v1 allowed
      read_op(1, 2, "v2", 30, 40),  // ... and v2 allowed
  };
  EXPECT_TRUE(check_regularity(ops).ok());
}

TEST(RegularityChecker, FlagsValueOlderThanPrecedingWrite) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      write_op(2, "v2", 20, 30),
      read_op(0, 1, "v1", 40, 50),
  };
  const auto report = check_regularity(ops);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("regularity(2)"), std::string::npos);
}

TEST(RegularityChecker, FlagsUnwrittenValue) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      read_op(0, 7, "v7", 20, 30),  // ts 7 was never even invoked
  };
  const auto report = check_regularity(ops);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("regularity(1)"), std::string::npos);
}

TEST(RegularityChecker, FlagsValueFromTheFuture) {
  // Read returns val_2 although WRITE(v2) is invoked only after the read
  // responded (condition 3).
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      read_op(0, 2, "v2", 20, 30),
      write_op(2, "v2", 40, 50),
  };
  const auto report = check_regularity(ops);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.find("regularity(3)") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.summary();
}

TEST(RegularityChecker, AcceptsValueOfIncompleteConcurrentWrite) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      incomplete_write("v2", 20),
      read_op(0, 2, "v2", 30, 40),  // concurrent with the incomplete wr2
  };
  EXPECT_TRUE(check_regularity(ops).ok());
}

TEST(AtomicityChecker, FlagsNewOldInversion) {
  // Both reads are legal under regularity (concurrent with wr2), but the
  // second read is ordered after the first and goes backwards.
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      write_op(2, "v2", 20, 200),
      read_op(0, 2, "v2", 30, 40),
      read_op(0, 1, "v1", 50, 60),
  };
  EXPECT_TRUE(check_regularity(ops).ok());
  const auto report = check_atomicity(ops);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.find("new-old inversion") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AtomicityChecker, AcceptsMonotoneReads) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      write_op(2, "v2", 20, 200),
      read_op(0, 1, "v1", 30, 40),
      read_op(0, 2, "v2", 50, 60),
      read_op(1, 2, "v2", 70, 80),
  };
  EXPECT_TRUE(check_atomicity(ops).ok());
}

TEST(WellFormedChecker, FlagsNonDenseTimestamps) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 10),
      write_op(3, "v3", 20, 30),  // skipped 2
  };
  EXPECT_FALSE(check_well_formed(ops).ok());
}

TEST(WellFormedChecker, FlagsOverlappingClientOps) {
  const std::vector<OpRecord> ops = {
      read_op(0, 0, "", 0, 50),
      read_op(0, 0, "", 20, 70),  // same reader overlaps itself
  };
  EXPECT_FALSE(check_well_formed(ops).ok());
}

TEST(WellFormedChecker, AcceptsInterleavedDistinctClients) {
  const std::vector<OpRecord> ops = {
      write_op(1, "v1", 0, 50),
      read_op(0, 0, "", 10, 20),
      read_op(1, 0, "", 15, 25),
  };
  EXPECT_TRUE(check_well_formed(ops).ok());
}

TEST(HistoryLogTest, RecordsInvocationAndResponse) {
  HistoryLog log;
  const auto w = log.record_invocation(OpRecord::Kind::Write, -1, 5, "vv");
  const auto r = log.record_invocation(OpRecord::Kind::Read, 0, 6);
  log.record_write_response(w, 15, 1, "vv");
  log.record_read_response(r, 16, TsVal{1, "vv"});
  const auto ops = log.snapshot();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].complete);
  EXPECT_EQ(ops[0].ts, 1u);
  EXPECT_EQ(ops[1].value, "vv");
}

TEST(HistoryLogTest, IncompleteOpsStayIncomplete) {
  HistoryLog log;
  log.record_invocation(OpRecord::Kind::Write, -1, 5, "lost");
  const auto ops = log.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_FALSE(ops[0].complete);
  EXPECT_EQ(ops[0].value, "lost");
}

}  // namespace
}  // namespace rr::checker
