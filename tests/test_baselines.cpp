// Baseline protocols: ABD (crash-only atomic), the polling safe storage
// (readers don't write; the b+1-round regime), the fast-write configuration
// (S >= 2t+2b+1), and the authenticated regular storage. Includes the
// negative demonstrations the paper's positioning relies on: ABD breaks
// under a single Byzantine object; polling reads pay extra rounds under
// attack; authentication buys 1-round operations.
#include <gtest/gtest.h>

#include "baselines/authenticated.hpp"
#include "baselines/polling.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::FaultPlan;
using harness::Protocol;

// ---------------------------------------------------------------------------
// ABD
// ---------------------------------------------------------------------------

DeploymentOptions abd_opts(int t, int readers, std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Abd;
  opts.res = Resilience{2 * t + 1, t, 0, readers};
  opts.seed = seed;
  return opts;
}

TEST(Abd, AtomicUnderConcurrency) {
  for (std::uint64_t seed : {1ULL, 5ULL, 42ULL}) {
    Deployment d(abd_opts(2, 3, seed));
    harness::MixedWorkloadOptions w;
    w.writes = 20;
    w.reads_per_reader = 20;
    w.write_gap = 1'000;
    w.read_gap = 800;
    harness::mixed_workload(d, w);
    d.run();
    const auto report = d.check(harness::Semantics::Atomic);
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
  }
}

TEST(Abd, OneRoundWritesTwoRoundReads) {
  Deployment d(abd_opts(2, 1, 3));
  harness::MixedWorkloadStats stats;
  harness::MixedWorkloadOptions w;
  w.writes = 10;
  w.reads_per_reader = 10;
  harness::mixed_workload(d, w, &stats);
  d.run();
  EXPECT_EQ(stats.writes.rounds_max(), 1);
  EXPECT_EQ(stats.reads.rounds_max(), 2);
}

TEST(Abd, ToleratesTCrashes) {
  auto opts = abd_opts(3, 2, 7);
  opts.faults = FaultPlan::crash_only(3);
  Deployment d(opts);
  harness::sequential_then_reads(d, 5, 5);
  d.run();
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(Abd, SingleByzantineObjectBreaksIt) {
  // The motivating negative result: ABD trusts the highest timestamp it
  // sees, so one forging object (within a t=2 crash budget!) can serve a
  // never-written value. This is why Byzantine-tolerant storage needs the
  // machinery of the paper.
  auto opts = abd_opts(2, 1, 11);
  opts.res.b = 0;  // ABD makes no Byzantine promise; we inject anyway.
  opts.faults.byzantine[0] = adversary::StrategyKind::Forger;
  // Bypass the budget assertion: claim b = 1 for construction purposes.
  opts.res.b = 1;
  opts.res.t = 2;
  Deployment d(opts);
  harness::sequential_then_reads(d, 3, 10);
  d.run();
  const auto report = d.check(harness::Semantics::Safe);
  EXPECT_FALSE(report.ok())
      << "expected the forger to defeat ABD's read rule";
}

// ---------------------------------------------------------------------------
// Polling baseline (readers do not modify object state)
// ---------------------------------------------------------------------------

DeploymentOptions polling_opts(int t, int b, int readers, std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Polling;
  opts.res = Resilience::optimal(t, b, readers);
  opts.seed = seed;
  return opts;
}

TEST(Polling, SafeOnBenignRuns) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Deployment d(polling_opts(2, 2, 2, seed));
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    d.run();
    EXPECT_TRUE(d.check().ok()) << d.check().summary();
  }
}

TEST(Polling, OneRoundWhenUncontended) {
  Deployment d(polling_opts(2, 2, 1, 5));
  harness::MixedWorkloadStats stats;
  harness::sequential_then_reads(d, 3, 10, &stats);
  d.run();
  // Without Byzantine interference and without write concurrency, the
  // evidence rule decides on the first quorum view.
  EXPECT_EQ(stats.reads.rounds_max(), 1);
}

TEST(Polling, SafeUnderEveryStrategy) {
  for (const auto kind :
       {adversary::StrategyKind::Silent, adversary::StrategyKind::Amnesiac,
        adversary::StrategyKind::Forger, adversary::StrategyKind::Stagger,
        adversary::StrategyKind::Collude, adversary::StrategyKind::Random}) {
    auto opts = polling_opts(2, 2, 2, 17);
    opts.faults = FaultPlan::mixed(2, kind, 0);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 8;
    w.reads_per_reader = 8;
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete) << adversary::to_string(kind);
    }
    EXPECT_TRUE(d.check().ok())
        << adversary::to_string(kind) << "\n" << d.check().summary();
  }
}

TEST(Polling, StaggerAttackInflatesRoundCount) {
  // The regime the paper escapes: without reader-written control data, a
  // Byzantine object can keep injecting fresh fake candidates, forcing the
  // reader to keep polling. Measured rounds must exceed the GV06 constant 2
  // for some read.
  auto opts = polling_opts(3, 3, 1, 23);
  opts.faults = FaultPlan::mixed(3, adversary::StrategyKind::Stagger, 0);
  opts.delay = harness::DelayKind::HeavyTail;
  opts.delay_lo = 1'000;
  opts.delay_hi = 50'000;
  Deployment d(opts);
  harness::MixedWorkloadStats stats;
  harness::MixedWorkloadOptions w;
  w.writes = 10;
  w.reads_per_reader = 15;
  harness::mixed_workload(d, w, &stats);
  d.run();
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
  EXPECT_GT(stats.reads.rounds_max(), 1)
      << "attack should force extra poll rounds";
}

// ---------------------------------------------------------------------------
// Fast-write configuration (S >= 2t+2b+1)
// ---------------------------------------------------------------------------

DeploymentOptions fastwrite_opts(int t, int b, int readers,
                                 std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = Protocol::FastWrite;
  opts.res = Resilience{2 * t + 2 * b + 1, t, b, readers};
  opts.seed = seed;
  return opts;
}

TEST(FastWrite, OneRoundBothOperationsBeyondTheFrontier) {
  Deployment d(fastwrite_opts(2, 2, 2, 9));
  harness::MixedWorkloadStats stats;
  harness::sequential_then_reads(d, 8, 8, &stats);
  d.run();
  EXPECT_EQ(stats.writes.rounds_max(), 1)
      << "S = 2t+2b+1 admits 1-round writes";
  EXPECT_EQ(stats.reads.rounds_max(), 1)
      << "beyond 2t+2b objects reads are fast (Proposition 1 is tight)";
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(FastWrite, SafeUnderByzantineAttack) {
  for (const auto kind :
       {adversary::StrategyKind::Forger, adversary::StrategyKind::Collude,
        adversary::StrategyKind::Random}) {
    auto opts = fastwrite_opts(2, 2, 2, 13);
    opts.faults = FaultPlan::mixed(2, kind, 0);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 8;
    w.reads_per_reader = 8;
    harness::mixed_workload(d, w);
    d.run();
    EXPECT_TRUE(d.check().ok())
        << adversary::to_string(kind) << "\n" << d.check().summary();
  }
}

// ---------------------------------------------------------------------------
// Authenticated baseline
// ---------------------------------------------------------------------------

DeploymentOptions auth_opts(int t, int b, int readers, std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Auth;
  opts.res = Resilience::optimal(t, b, readers);
  opts.seed = seed;
  return opts;
}

TEST(Auth, RegularWithOneRoundOperations) {
  Deployment d(auth_opts(2, 2, 2, 3));
  harness::MixedWorkloadStats stats;
  harness::MixedWorkloadOptions w;
  w.writes = 12;
  w.reads_per_reader = 12;
  harness::mixed_workload(d, w, &stats);
  d.run();
  EXPECT_EQ(stats.writes.rounds_max(), 1);
  EXPECT_EQ(stats.reads.rounds_max(), 1);
  EXPECT_TRUE(d.check(harness::Semantics::Regular).ok())
      << d.check().summary();
}

TEST(Auth, ForgedMacsAreRejected) {
  auto opts = auth_opts(2, 2, 1, 7);
  opts.faults = FaultPlan::mixed(2, adversary::StrategyKind::Forger, 0);
  Deployment d(opts);
  harness::sequential_then_reads(d, 5, 10);
  d.run();
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
  // The reader actually saw and rejected forgeries.
  EXPECT_GT(d.auth_reader(0).rejected_macs(), 0u);
}

TEST(Auth, ReplayOfStaleAuthenticDataLosesTimestampRace) {
  // Amnesiac objects serve old-but-authentic state: regularity condition
  // (2) still holds because some correct object in every quorum has the
  // newest pair.
  auto opts = auth_opts(2, 2, 1, 9);
  opts.faults = FaultPlan::mixed(2, adversary::StrategyKind::Amnesiac, 0);
  Deployment d(opts);
  harness::sequential_then_reads(d, 6, 10);
  d.run();
  EXPECT_TRUE(d.check(harness::Semantics::Regular).ok())
      << d.check().summary();
}

}  // namespace
}  // namespace rr
