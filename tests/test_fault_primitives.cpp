// Gray-failure fault library: the new primitives -- seeded loss /
// duplication / reorder, asymmetric partitions, flapping channels,
// slow-but-alive gray processes, clock skew -- behave identically enough
// across both backends to share one scenario format: same NetStats
// accounting, same Scenario encoding, same verdict logic. Clock skew is
// DES-only (wall clocks don't lie) and the Backend contract says so.
#include <gtest/gtest.h>

#include <string>

#include "harness/deployment.hpp"
#include "harness/protocol.hpp"
#include "harness/sweep.hpp"
#include "harness/workload.hpp"

namespace rr::harness {
namespace {

Scenario base_scenario(BackendKind backend) {
  Scenario s;
  s.protocol = Protocol::Regular;
  s.backend = backend;
  s.tmpl = FaultTemplate::None;
  s.seed = 5;
  s.writes = 5;
  s.reads_per_reader = 4;
  s.name = "prim";  // library-style cell: run_seed derived, key scn:prim
  if (backend != BackendKind::Sim) {
    s.max_wall_ms = 10'000;  // stalls degrade to a verdict, never a hang
  }
  return s;
}

FaultEvent link_event(FaultEvent::Kind kind, double p) {
  FaultEvent ev;
  ev.kind = kind;
  ev.rate = p;
  return ev;
}

class FaultPrimitivesOnBothBackends
    : public ::testing::TestWithParam<BackendKind> {};

// Loss: messages vanish at send time, are counted, and (since reliable
// channels are part of the liveness argument, not safety) any completed
// operations still check out.
TEST_P(FaultPrimitivesOnBothBackends, LossIsInjectedAndCounted) {
  Scenario s = base_scenario(GetParam());
  s.events.push_back(link_event(FaultEvent::Kind::Loss, 0.25));
  s.expect_ok = false;  // dropped requests may legitimately stall quorums
  const CellVerdict v = SweepEngine::run_cell(s);
  EXPECT_GT(v.net.messages_lost, 0u);
  EXPECT_EQ(v.violations, 0) << v.first_violation;  // safety holds regardless
}

TEST_P(FaultPrimitivesOnBothBackends, DuplicationIsInjectedAndCounted) {
  Scenario s = base_scenario(GetParam());
  s.events.push_back(link_event(FaultEvent::Kind::Duplicate, 0.4));
  const CellVerdict v = SweepEngine::run_cell(s);
  EXPECT_GT(v.net.messages_duplicated, 0u);
  EXPECT_TRUE(v.ok) << v.first_violation;  // idempotent acks: dup is benign
}

TEST_P(FaultPrimitivesOnBothBackends, ReorderIsInjectedAndCounted) {
  Scenario s = base_scenario(GetParam());
  FaultEvent ev = link_event(FaultEvent::Kind::Reorder, 0.5);
  ev.period = 30'000;  // extra delay >> the base delay band
  s.events.push_back(ev);
  const CellVerdict v = SweepEngine::run_cell(s);
  EXPECT_GT(v.net.messages_reordered, 0u);
  EXPECT_TRUE(v.ok) << v.first_violation;  // reorder is legal in the model
}

// Asymmetric partition: one direction of every channel into (or out of) an
// object is held for a window, then released; within the budget t the run
// must stay wait-free on both substrates.
TEST_P(FaultPrimitivesOnBothBackends, AsymmetricPartitionWithinBudgetIsOk) {
  for (const auto kind :
       {FaultEvent::Kind::PartitionIn, FaultEvent::Kind::PartitionOut}) {
    Scenario s = base_scenario(GetParam());
    FaultEvent ev;
    ev.kind = kind;
    ev.held = {1};
    ev.at = 20'000;
    ev.duration = 60'000;
    s.events.push_back(ev);
    const CellVerdict v = SweepEngine::run_cell(s);
    EXPECT_TRUE(v.ok) << ev.describe() << ": " << v.first_violation;
  }
}

TEST_P(FaultPrimitivesOnBothBackends, FlappingChannelWithinBudgetIsOk) {
  Scenario s = base_scenario(GetParam());
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Flap;
  ev.held = {0};
  ev.at = 10'000;
  ev.duration = 150'000;
  ev.period = 25'000;
  ev.rate = 0.4;
  ev.jitter = 3'000;
  s.events.push_back(ev);
  const CellVerdict v = SweepEngine::run_cell(s);
  EXPECT_TRUE(v.ok) << v.first_violation;
}

TEST_P(FaultPrimitivesOnBothBackends, GrayProcessStaysCorrectJustSlow) {
  Scenario s = base_scenario(GetParam());
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Gray;
  ev.object = 2;
  ev.rate = 6.0;
  ev.at = 5'000;
  ev.duration = 200'000;
  s.events.push_back(ev);
  const CellVerdict v = SweepEngine::run_cell(s);
  EXPECT_TRUE(v.ok) << v.first_violation;
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultPrimitivesOnBothBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads,
                                           BackendKind::Net),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// DES-only guarantees.
// ---------------------------------------------------------------------------

// Every new primitive composed at once stays bit-deterministic: same
// scenario, same fingerprint, across repeated runs.
TEST(FaultPrimitives, DesRunsWithAllPrimitivesAreBitDeterministic) {
  Scenario s = base_scenario(BackendKind::Sim);
  s.events.push_back(link_event(FaultEvent::Kind::Loss, 0.05));
  s.events.push_back(link_event(FaultEvent::Kind::Duplicate, 0.1));
  {
    FaultEvent ev = link_event(FaultEvent::Kind::Reorder, 0.3);
    ev.period = 15'000;
    s.events.push_back(ev);
  }
  {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Gray;
    ev.object = 1;
    ev.rate = 3.0;
    ev.at = 10'000;
    ev.duration = 100'000;
    s.events.push_back(ev);
  }
  {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Skew;
    ev.object = 3;
    ev.skew = -4'000;
    s.events.push_back(ev);
  }
  {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Flap;
    ev.held = {0};
    ev.at = 30'000;
    ev.duration = 90'000;
    ev.period = 20'000;
    ev.rate = 0.5;
    ev.jitter = 1'000;
    s.events.push_back(ev);
  }
  s.expect_ok = false;  // loss may stall ops; determinism is what's pinned
  const CellVerdict a = SweepEngine::run_cell(s);
  const CellVerdict b = SweepEngine::run_cell(s);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.fingerprint, 0u);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.net.messages_lost, b.net.messages_lost);
  EXPECT_EQ(a.net.messages_duplicated, b.net.messages_duplicated);
  EXPECT_EQ(a.net.messages_reordered, b.net.messages_reordered);
}

// Clock skew shifts a process's Context::now() on the DES -- the global
// event clock is untouched, only the local reading lies -- and the threads
// backend honestly refuses (wall clocks can't be skewed per thread).
TEST(FaultPrimitives, ClockSkewIsDesOnly) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Regular;
  opts.backend = BackendKind::Sim;
  opts.res = protocol_traits(Protocol::Regular).resilience_for(2, 1, 2);
  opts.seed = 77;
  {
    Deployment d(opts);
    const ProcessId skewed = d.object_pid(0);
    const ProcessId honest = d.object_pid(1);
    EXPECT_TRUE(d.backend().set_clock_skew(skewed, 50'000));
    Time at_skewed = 0;
    Time at_honest = 0;
    d.backend().post(1'000, skewed,
                     [&at_skewed](net::Context& ctx) { at_skewed = ctx.now(); });
    d.backend().post(1'000, honest,
                     [&at_honest](net::Context& ctx) { at_honest = ctx.now(); });
    d.run();
    EXPECT_EQ(at_honest, 1'000u);
    EXPECT_EQ(at_skewed, 51'000u);  // same instant, lying local clock
  }
  opts.backend = BackendKind::Threads;
  {
    Deployment d(opts);
    EXPECT_FALSE(d.backend().set_clock_skew(d.object_pid(0), 9'000));
  }

  // A skew-bearing scenario is still a passing, deterministic cell.
  Scenario with_skew = base_scenario(BackendKind::Sim);
  FaultEvent ev;
  ev.kind = FaultEvent::Kind::Skew;
  ev.object = 0;
  ev.skew = 50'000;
  with_skew.events.push_back(ev);
  const CellVerdict a = SweepEngine::run_cell(with_skew);
  EXPECT_TRUE(a.ok) << a.first_violation;  // skew is legal: safety holds
  EXPECT_EQ(a.fingerprint, SweepEngine::run_cell(with_skew).fingerprint);
}

// A threads cell whose fault plan stalls its quorums degrades to a liveness
// verdict under a bounded deadline instead of aborting the process.
TEST(FaultPrimitives, ThreadsOverloadDegradesToLivenessVerdict) {
  const SweepEngine engine(SweepPlan::quick());
  Scenario s = engine.materialize(Protocol::Safe, BackendKind::Threads,
                                  FaultTemplate::Overload, 1);
  ASSERT_GT(s.max_wall_ms, 0u);
  s.max_wall_ms = 1'500;  // keep the test fast; the stall shows immediately
  const CellVerdict v = SweepEngine::run_cell(s);
  EXPECT_FALSE(v.ok);
  EXPECT_GT(v.ops_stuck, 0);
  EXPECT_NE(v.first_violation.find("liveness"), std::string::npos)
      << v.first_violation;
}

}  // namespace
}  // namespace rr::harness
