// Cross-cutting property soak: randomized deployments of every protocol
// under combined crash + Byzantine + chaos-schedule + delay-model stress,
// plus metamorphic properties (seed determinism, codec invariance) that
// must hold across the whole stack.
#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::Protocol;

Resilience resilience_for(Protocol p, int t, int b, int readers) {
  if (p == Protocol::Abd) return Resilience{2 * t + 1, t, 0, readers};
  if (p == Protocol::FastWrite) {
    return Resilience{2 * t + 2 * b + 1, t, b, readers};
  }
  return Resilience::optimal(t, b, readers);
}

DeploymentOptions random_options(Protocol p, Rng& rng) {
  DeploymentOptions opts;
  opts.protocol = p;
  const int t = 1 + static_cast<int>(rng.index(3));
  const int b = p == Protocol::Abd ? 0 : 1 + static_cast<int>(rng.index(
                                             static_cast<std::size_t>(t)));
  const int readers = 1 + static_cast<int>(rng.index(3));
  opts.res = resilience_for(p, t, b, readers);
  opts.seed = rng();
  const int byz =
      b == 0 ? 0 : static_cast<int>(rng.uniform(0, static_cast<Ts>(b)));
  const int crash =
      static_cast<int>(rng.uniform(0, static_cast<Ts>(t - byz)));
  const adversary::StrategyKind kinds[] = {
      adversary::StrategyKind::Silent,      adversary::StrategyKind::Amnesiac,
      adversary::StrategyKind::Forger,      adversary::StrategyKind::Accuser,
      adversary::StrategyKind::Equivocator, adversary::StrategyKind::Stagger,
      adversary::StrategyKind::Collude,     adversary::StrategyKind::Random};
  opts.faults = harness::FaultPlan::mixed(byz, kinds[rng.index(8)], crash);
  opts.delay = rng.chance(0.3) ? harness::DelayKind::HeavyTail
                               : harness::DelayKind::Uniform;
  opts.delay_lo = 500;
  opts.delay_hi = rng.uniform(3'000, 80'000);
  if (p == Protocol::Regular || p == Protocol::RegularOptimized) {
    opts.history_limit = rng.chance(0.4) ? 2 + rng.index(8) : 0;
  }
  opts.reserialize = rng.chance(0.25);
  return opts;
}

class SoakTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(SoakTest, RandomizedStressMatrix) {
  const Protocol p = GetParam();
  Rng meta(0xC0FFEE + static_cast<std::uint64_t>(p));
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto opts = random_options(p, meta);
    Deployment d(opts);
    const int chaos_budget = opts.res.t - opts.faults.total_faulty();
    if (chaos_budget > 0 && meta.chance(0.5)) {
      harness::ChaosOptions chaos;
      chaos.max_held = chaos_budget;
      chaos.seed = meta();
      chaos.horizon = 800'000;
      harness::inject_chaos(d, chaos);
    }
    harness::MixedWorkloadOptions w;
    w.writes = 4 + static_cast<int>(meta.index(8));
    w.reads_per_reader = 4 + static_cast<int>(meta.index(8));
    w.write_gap = meta.uniform(200, 20'000);
    w.read_gap = meta.uniform(200, 20'000);
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete)
          << harness::to_string(p) << " iteration " << iteration
          << " seed " << opts.seed;
    }
    const auto report = d.check();
    ASSERT_TRUE(report.ok())
        << harness::to_string(p) << " iteration " << iteration << " seed "
        << opts.seed << "\n"
        << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SoakTest,
    ::testing::Values(Protocol::Safe, Protocol::Regular,
                      Protocol::RegularOptimized, Protocol::Abd,
                      Protocol::Polling, Protocol::FastWrite, Protocol::Auth),
    [](const auto& info) {
      std::string name = harness::to_string(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SoakMetamorphic, IdenticalSeedsProduceIdenticalHistories) {
  // Full-stack determinism: same options -> byte-identical operation logs.
  auto run = [] {
    DeploymentOptions opts;
    opts.protocol = Protocol::Safe;
    opts.res = Resilience::optimal(2, 2, 3);
    opts.seed = 987654321;
    opts.faults =
        harness::FaultPlan::mixed(2, adversary::StrategyKind::Random, 0);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    d.run();
    std::vector<std::tuple<int, Time, Time, Ts, Value>> trace;
    for (const auto& op : d.log().snapshot()) {
      trace.emplace_back(op.client, op.invoked_at, op.responded_at, op.ts,
                         op.value);
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(SoakMetamorphic, ReserializationIsBehaviorPreservingEverywhere) {
  for (const auto p : {Protocol::Safe, Protocol::Regular, Protocol::Abd,
                       Protocol::Polling, Protocol::Auth}) {
    auto run = [p](bool reserialize) {
      DeploymentOptions opts;
      opts.protocol = p;
      opts.res = resilience_for(p, 2, p == Protocol::Abd ? 0 : 1, 2);
      opts.seed = 24680;
      opts.reserialize = reserialize;
      Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 8;
      w.reads_per_reader = 8;
      harness::mixed_workload(d, w);
      d.run();
      std::vector<std::pair<Ts, Value>> reads;
      for (const auto& op : d.log().snapshot()) {
        if (op.kind == checker::OpRecord::Kind::Read) {
          reads.emplace_back(op.ts, op.value);
        }
      }
      return reads;
    };
    EXPECT_EQ(run(false), run(true)) << harness::to_string(p);
  }
}

TEST(SoakMetamorphic, ByzantineCountMonotonicity) {
  // Adding Byzantine objects (within budget) must never break consistency
  // -- sweep 0..b impostors with everything else fixed.
  for (int byz = 0; byz <= 2; ++byz) {
    DeploymentOptions opts;
    opts.protocol = Protocol::Safe;
    opts.res = Resilience::optimal(2, 2, 2);
    opts.seed = 1357;
    opts.faults =
        harness::FaultPlan::mixed(byz, adversary::StrategyKind::Forger, 0);
    Deployment d(opts);
    harness::sequential_then_reads(d, 5, 5);
    d.run();
    const auto report = d.check();
    EXPECT_TRUE(report.ok()) << "byz=" << byz << "\n" << report.summary();
    // Reads after quiescent writes must pin the exact final value.
    for (const auto& op : d.log().snapshot()) {
      if (op.kind == checker::OpRecord::Kind::Read) {
        EXPECT_EQ(op.ts, 5u) << "byz=" << byz;
      }
    }
  }
}

}  // namespace
}  // namespace rr
