// Cross-backend equivalence: the same seeded workloads, fault plans and
// sharded deployments run under the discrete-event simulator and under the
// threaded cluster, and every resulting history must pass the protocol's
// promised consistency check. This is what lets us trust the threaded
// backend "for free": the automata are shared, so a consistency bug in the
// thread path would be a transport bug, and the checker would catch it.
#include <gtest/gtest.h>

#include <string>

#include "harness/chaos.hpp"
#include "harness/deployment.hpp"
#include "harness/protocol.hpp"
#include "harness/shard.hpp"
#include "harness/workload.hpp"

namespace rr::harness {
namespace {

DeploymentOptions base_options(Protocol p, BackendKind backend) {
  DeploymentOptions opts;
  opts.protocol = p;
  opts.backend = backend;
  opts.res = protocol_traits(p).resilience_for(2, 2, 2);
  opts.seed = 90210;
  opts.reserialize = true;  // prove automata survive the codec on both paths
  if (backend != BackendKind::Sim) opts.thread_jitter_us = 20;
  return opts;
}

checker::CheckReport run_and_check(DeploymentOptions opts) {
  Deployment d(std::move(opts));
  MixedWorkloadOptions w;
  w.writes = 8;
  w.reads_per_reader = 5;
  mixed_workload(d, w);
  d.run();
  return d.check();
}

class CrossBackendEveryProtocol
    : public ::testing::TestWithParam<BackendKind> {};

TEST_P(CrossBackendEveryProtocol, SeededWorkloadPassesPromisedSemantics) {
  for (const auto& traits : protocol_registry()) {
    const auto report = run_and_check(base_options(traits.id, GetParam()));
    EXPECT_TRUE(report.ok())
        << traits.name << " on " << to_string(GetParam()) << ":\n"
        << report.summary();
    EXPECT_EQ(report.writes_checked, 8) << traits.name;
    // Safety constrains only reads concurrent with no write, so a fully
    // concurrent mixed workload may legitimately pin zero reads there;
    // regular/atomic protocols must check every completed read.
    if (traits.semantics != Semantics::Safe) {
      EXPECT_GT(report.reads_checked, 0) << traits.name;
    }
  }
}

TEST_P(CrossBackendEveryProtocol, FaultedGv06ProtocolsStayCorrect) {
  // The paper's own protocols under the full budget: b Byzantine forgers
  // plus crashes up to t, identical plan on both substrates.
  for (const Protocol p :
       {Protocol::Safe, Protocol::Regular, Protocol::RegularOptimized}) {
    auto opts = base_options(p, GetParam());
    opts.faults = FaultPlan::mixed(2, adversary::StrategyKind::Forger, 0);
    const auto report = run_and_check(std::move(opts));
    EXPECT_TRUE(report.ok())
        << to_string(p) << " forged, on " << to_string(GetParam()) << ":\n"
        << report.summary();
  }
  auto crash_opts = base_options(Protocol::Safe, GetParam());
  crash_opts.faults = FaultPlan::crash_only(2);
  const auto report = run_and_check(std::move(crash_opts));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_P(CrossBackendEveryProtocol, ChaosHoldsAndReleasesOnBothSubstrates) {
  auto opts = base_options(Protocol::Regular, GetParam());
  Deployment d(std::move(opts));
  ChaosOptions chaos;
  chaos.max_held = 2;
  chaos.seed = 7;
  inject_chaos(d, chaos);
  MixedWorkloadOptions w;
  w.writes = 10;
  w.reads_per_reader = 6;
  mixed_workload(d, w);
  d.run();
  const auto report = d.check();
  EXPECT_TRUE(report.ok())
      << "chaos on " << to_string(GetParam()) << ":\n" << report.summary();
}

TEST_P(CrossBackendEveryProtocol, ShardedDeploymentPassesPerShardChecks) {
  for (const Protocol p : {Protocol::Safe, Protocol::RegularOptimized}) {
    DeploymentOptions opts;
    opts.protocol = p;
    opts.backend = GetParam();
    opts.res = Resilience::optimal(1, 1, 2);
    opts.shards = 4;
    opts.seed = 4242;
    opts.reserialize = true;
    if (GetParam() != BackendKind::Sim) opts.thread_jitter_us = 10;
    Deployment d(std::move(opts));
    MixedWorkloadOptions w;
    w.writes = 6;
    w.reads_per_reader = 4;
    mixed_workload(d, w);
    d.run();
    for (int s = 0; s < d.shards(); ++s) {
      const auto report = d.check_shard(s);
      EXPECT_TRUE(report.ok()) << to_string(p) << " shard " << s << " on "
                               << to_string(GetParam()) << ":\n"
                               << report.summary();
      EXPECT_EQ(d.log(s).size(),
                static_cast<std::size_t>(6 + 2 * 4))
          << "every shard must serve its own full workload";
    }
    EXPECT_TRUE(d.check().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CrossBackendEveryProtocol,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads,
                                           BackendKind::Net),
                         [](const auto& info) {
                           const std::string name = to_string(info.param);
                           if (name == "des") return std::string("Des");
                           if (name == "net") return std::string("Net");
                           return std::string("Threads");
                         });

TEST(ShardLayoutTest, PidMappingRoundTrips) {
  const ShardLayout layout{4, 3, 5};
  EXPECT_EQ(layout.num_processes(), 4 * (1 + 3) + 5);
  for (int s = 0; s < layout.shards; ++s) {
    EXPECT_EQ(layout.shard_of(layout.writer(s)), s);
    EXPECT_EQ(layout.to_logical(layout.writer(s)), 0);
    EXPECT_EQ(layout.to_physical(s, 0), layout.writer(s));
    for (int j = 0; j < layout.readers; ++j) {
      const ProcessId pid = layout.reader(s, j);
      EXPECT_EQ(layout.shard_of(pid), s);
      EXPECT_EQ(layout.to_logical(pid), 1 + j);
      EXPECT_EQ(layout.to_physical(s, 1 + j), pid);
    }
  }
  for (int i = 0; i < layout.objects; ++i) {
    const ProcessId pid = layout.object(i);
    EXPECT_EQ(layout.shard_of(pid), -1);
    EXPECT_EQ(layout.to_logical(pid), 1 + layout.readers + i);
    for (int s = 0; s < layout.shards; ++s) {
      EXPECT_EQ(layout.to_physical(s, 1 + layout.readers + i), pid);
    }
  }
}

TEST(ShardedDeterminismTest, SameSeedSameTrafficOnTheDes) {
  auto run_once = [] {
    DeploymentOptions opts;
    opts.protocol = Protocol::RegularOptimized;
    opts.res = Resilience::optimal(1, 1, 2);
    opts.shards = 4;
    opts.seed = 99;
    Deployment d(std::move(opts));
    MixedWorkloadOptions w;
    w.writes = 6;
    w.reads_per_reader = 3;
    mixed_workload(d, w);
    d.run();
    return d.stats();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.messages_sent, 0u);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(ShardedWireTest, EveryShardedMessageIsAShardEnvelope) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Safe;
  opts.res = Resilience::optimal(1, 1, 1);
  opts.shards = 3;
  Deployment d(std::move(opts));
  MixedWorkloadOptions w;
  w.writes = 3;
  w.reads_per_reader = 2;
  mixed_workload(d, w);
  d.run();
  const auto stats = d.stats();
  constexpr std::size_t kShardIdx = 24;  // ShardMsg variant index
  static_assert(
      std::is_same_v<std::variant_alternative_t<kShardIdx, wire::Message>,
                     wire::ShardMsg>);
  EXPECT_EQ(stats.messages_by_type[kShardIdx], stats.messages_sent)
      << "sharded deployments must tag every wire message with its register";
}

TEST(ThreadBackendTest, SingleShardMatchesRobustRegisterSemantics) {
  // A tiny smoke of the protocol-agnostic invoke path on threads: write
  // then read through the harness (not the RobustRegister facade).
  DeploymentOptions opts;
  opts.protocol = Protocol::Safe;
  opts.backend = BackendKind::Threads;
  opts.res = Resilience::optimal(1, 1, 1);
  Deployment d(std::move(opts));
  d.logged_write(0, "hello");
  d.run();
  d.logged_read(0, 0);
  d.run();
  const auto ops = d.log().snapshot();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[1].complete);
  EXPECT_EQ(ops[1].ts, 1u);
  EXPECT_EQ(ops[1].value, "hello");
  EXPECT_TRUE(d.check().ok());
}

}  // namespace
}  // namespace rr::harness
