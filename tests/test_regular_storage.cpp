// The paper's regular storage (Figures 5-6): Theorem 3 (regularity),
// Theorem 4 (wait-freedom), the Section 5.1 cached-suffix optimization, and
// regular-specific behaviours (history growth, candidate invalidation).
#include <gtest/gtest.h>

#include "core/regular_reader.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "objects/regular_object.hpp"
#include "sim/world.hpp"

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::FaultPlan;
using harness::Protocol;

DeploymentOptions regular_opts(int t, int b, int readers, std::uint64_t seed,
                               bool optimized = false) {
  DeploymentOptions opts;
  opts.protocol = optimized ? Protocol::RegularOptimized : Protocol::Regular;
  opts.res = Resilience::optimal(t, b, readers);
  opts.seed = seed;
  return opts;
}

TEST(RegularStorage, ReadAfterWriteReturnsWrittenValue) {
  Deployment d(regular_opts(2, 1, 1, 1));
  TsVal got;
  d.invoke_write(0, "value-1", nullptr);
  d.invoke_read(200'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  EXPECT_EQ(got, (TsVal{1, "value-1"}));
}

TEST(RegularStorage, TwoRoundsAlways) {
  Deployment d(regular_opts(2, 2, 2, 3));
  harness::MixedWorkloadStats stats;
  harness::MixedWorkloadOptions w;
  w.writes = 10;
  w.reads_per_reader = 10;
  harness::mixed_workload(d, w, &stats);
  d.run();
  EXPECT_EQ(stats.reads.rounds_min(), 2);
  EXPECT_EQ(stats.reads.rounds_max(), 2);
  EXPECT_EQ(stats.writes.rounds_max(), 2);
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(RegularStorage, RegularityUnderHeavyConcurrency) {
  // Many writes concurrent with many reads: every read must return a
  // written value no older than the last preceding write (regularity, not
  // just safety -- the stronger guarantee is the point of Section 5).
  for (std::uint64_t seed : {1ULL, 9ULL, 77ULL, 1234ULL}) {
    Deployment d(regular_opts(2, 2, 3, seed));
    harness::MixedWorkloadOptions w;
    w.writes = 25;
    w.reads_per_reader = 25;
    w.write_gap = 1'000;
    w.read_gap = 700;
    harness::mixed_workload(d, w);
    d.run();
    const auto report = d.check(harness::Semantics::Regular);
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
  }
}

struct ByzCase {
  int t;
  int b;
  adversary::StrategyKind kind;
};

class RegularByzantineTest : public ::testing::TestWithParam<ByzCase> {};

TEST_P(RegularByzantineTest, RegularityAndLivenessUnderAttack) {
  const auto p = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto opts = regular_opts(p.t, p.b, 2, seed * 131);
    opts.faults = FaultPlan::mixed(p.b, p.kind, p.t - p.b);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 8;
    w.reads_per_reader = 8;
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete)
          << "wait-freedom, strategy " << adversary::to_string(p.kind);
    }
    const auto report = d.check();
    EXPECT_TRUE(report.ok())
        << "strategy=" << adversary::to_string(p.kind) << " seed=" << seed
        << "\n"
        << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, RegularByzantineTest,
    ::testing::Values(
        ByzCase{1, 1, adversary::StrategyKind::Silent},
        ByzCase{1, 1, adversary::StrategyKind::Amnesiac},
        ByzCase{1, 1, adversary::StrategyKind::Forger},
        ByzCase{1, 1, adversary::StrategyKind::Accuser},
        ByzCase{1, 1, adversary::StrategyKind::Equivocator},
        ByzCase{1, 1, adversary::StrategyKind::Stagger},
        ByzCase{1, 1, adversary::StrategyKind::Collude},
        ByzCase{1, 1, adversary::StrategyKind::Random},
        ByzCase{2, 2, adversary::StrategyKind::Forger},
        ByzCase{2, 2, adversary::StrategyKind::Collude},
        ByzCase{2, 2, adversary::StrategyKind::Random},
        ByzCase{3, 3, adversary::StrategyKind::Random},
        ByzCase{3, 2, adversary::StrategyKind::Equivocator}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.t) + "b" +
             std::to_string(info.param.b) + "_" +
             adversary::to_string(info.param.kind);
    });

TEST(RegularStorage, HistoryGrowsWithWrites) {
  // The Section 5 price: objects store the entire write history.
  Deployment d(regular_opts(1, 1, 1, 5));
  harness::write_stream(d, 0, 1'000, 20);
  d.run();
  auto& obj = dynamic_cast<objects::RegularObject&>(d.object_process(0));
  EXPECT_EQ(obj.history_size(), 21u);  // slots 0..20
}

// ---------------------------------------------------------------------------
// Section 5.1 optimization
// ---------------------------------------------------------------------------

TEST(OptimizedRegular, SameResultsAsUnoptimized) {
  auto run = [](bool optimized) {
    Deployment d(regular_opts(2, 1, 2, 99, optimized));
    harness::MixedWorkloadOptions w;
    w.writes = 12;
    w.reads_per_reader = 12;
    harness::mixed_workload(d, w);
    d.run();
    EXPECT_TRUE(d.check().ok()) << d.check().summary();
    std::vector<std::pair<Ts, Value>> reads;
    for (const auto& op : d.log().snapshot()) {
      if (op.kind == checker::OpRecord::Kind::Read) {
        reads.emplace_back(op.ts, op.value);
      }
    }
    return reads;
  };
  // Identical seeds and schedules: the returned values must coincide
  // (the optimization only prunes what objects ship, never the outcome).
  EXPECT_EQ(run(false), run(true));
}

TEST(OptimizedRegular, DeltaShippingKeepsHistoryTrafficLinear) {
  auto slots_received = [](bool optimized) {
    Deployment d(regular_opts(1, 1, 1, 7, optimized));
    std::uint64_t total = 0;
    // Interleave: write, read, write, read ... so the history keeps growing.
    for (int k = 0; k < 15; ++k) {
      d.logged_write(static_cast<Time>(k) * 200'000, harness::value_for(
                                                         static_cast<Ts>(k + 1)));
      d.logged_read(static_cast<Time>(k) * 200'000 + 100'000, 0,
                    [&d, &total](const core::ReadResult&) {
                      total += d.regular_reader(0).diag()
                                   .history_slots_received;
                    });
    }
    d.run();
    EXPECT_TRUE(d.check().ok());
    return total;
  };
  const auto full = slots_received(false);
  const auto suffix = slots_received(true);
  // Ack-driven delta shipping kills the O(history) tail for BOTH variants:
  // read k merges only the slots written since read k-1 from each object
  // (the pre-delta protocol shipped the whole suffix-from-cache, ~k slots
  // per object on read k for the unoptimized variant => quadratic total,
  // well over 1000 slots here).
  EXPECT_LT(full, 256u) << "full=" << full;
  EXPECT_LE(suffix, full) << "full=" << full << " suffix=" << suffix;
}

TEST(OptimizedRegular, CacheAdvancesWithReturnedValues) {
  Deployment d(regular_opts(1, 1, 1, 13, /*optimized=*/true));
  d.logged_write(0, "a");
  d.logged_read(100'000, 0);
  d.logged_write(200'000, "b");
  d.logged_read(300'000, 0);
  d.run();
  EXPECT_TRUE(d.check().ok());
  EXPECT_EQ(d.regular_reader(0).cache().ts, 2u);
  EXPECT_EQ(d.regular_reader(0).cache().val, "b");
}

TEST(OptimizedRegular, RepeatedReadsWithoutWritesStayCorrect) {
  // After the cache reaches the top timestamp, subsequent reads get tiny
  // suffixes; they must still return the same value, not fall apart.
  Deployment d(regular_opts(2, 2, 1, 17, /*optimized=*/true));
  harness::write_stream(d, 0, 1'000, 5);
  std::vector<TsVal> results;
  for (int k = 0; k < 6; ++k) {
    d.logged_read(500'000 + static_cast<Time>(k) * 100'000, 0,
                  [&](const core::ReadResult& r) { results.push_back(r.tsval); });
  }
  d.run();
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) EXPECT_EQ(r, (TsVal{5, "v5"}));
  EXPECT_TRUE(d.check().ok());
}

TEST(OptimizedRegular, ByzantineCannotExploitSuffixes) {
  for (const auto kind :
       {adversary::StrategyKind::Forger, adversary::StrategyKind::Stagger,
        adversary::StrategyKind::Random}) {
    auto opts = regular_opts(2, 2, 2, 31, /*optimized=*/true);
    opts.faults = FaultPlan::mixed(2, kind, 0);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 10;
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete);
    }
    EXPECT_TRUE(d.check().ok())
        << adversary::to_string(kind) << "\n" << d.check().summary();
  }
}

TEST(RegularStorage, CrashBudgetSweep) {
  for (int t = 1; t <= 4; ++t) {
    for (int b = 1; b <= t; ++b) {
      auto opts = regular_opts(t, b, 1, static_cast<std::uint64_t>(t * 10 + b));
      opts.faults = FaultPlan::crash_only(t);
      Deployment d(opts);
      harness::sequential_then_reads(d, 4, 4);
      d.run();
      const auto report = d.check();
      EXPECT_TRUE(report.ok())
          << "t=" << t << " b=" << b << "\n" << report.summary();
    }
  }
}

TEST(RegularStorage, WriterCrashMidWriteReadsStillRegular) {
  auto opts = regular_opts(2, 1, 1, 41);
  opts.delay = harness::DelayKind::Fixed;
  opts.delay_lo = 1'000;
  Deployment d(opts);
  d.logged_write(0, "stable");
  d.run();
  d.logged_write(d.world().now() + 100, "torn");
  d.world().run_until(d.world().now() + 1'500);  // PW sent, W not yet
  d.world().crash(d.writer_pid());
  int completed = 0;
  for (int k = 0; k < 4; ++k) {
    d.logged_read(d.world().now() + 2'000 + static_cast<Time>(k) * 50'000, 0,
                  [&](const core::ReadResult&) { ++completed; });
  }
  d.run();
  EXPECT_EQ(completed, 4);
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

class RegularPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(RegularPropertyTest, RandomizedRegularitySweep) {
  const auto [t, b, optimized] = GetParam();
  if (b > t) GTEST_SKIP() << "model requires b <= t";
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto opts = regular_opts(t, b, 2, seed * 17 + static_cast<std::uint64_t>(t),
                             optimized);
    Rng rng(seed * 1000 + static_cast<std::uint64_t>(t * 10 + b));
    const int byz = static_cast<int>(rng.uniform(0, static_cast<Ts>(b)));
    opts.faults = FaultPlan::mixed(
        byz, adversary::StrategyKind::Random,
        static_cast<int>(rng.uniform(0, static_cast<Ts>(t - byz))));
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 10;
    w.reads_per_reader = 8;
    w.write_gap = rng.uniform(200, 10'000);
    w.read_gap = rng.uniform(200, 10'000);
    harness::mixed_workload(d, w);
    d.run();
    const auto report = d.check();
    ASSERT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegularPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2),
                       ::testing::Bool()),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_opt" : "_full");
    });

}  // namespace
}  // namespace rr
