// Chaos-schedule fuzzing: random hold/release waves (temporary "partitions"
// of up to the fault budget) on top of Byzantine objects and random delays.
// Wait-freedom and the storage semantics must survive every schedule --
// this is the closest executable analogue of quantifying over the model's
// adversarial schedulers.
#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace rr {
namespace {

using harness::ChaosOptions;
using harness::Deployment;
using harness::DeploymentOptions;
using harness::Protocol;

struct ChaosCase {
  Protocol protocol;
  int t, b;
  int byz;
  adversary::StrategyKind kind;
};

class ChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosTest, SurvivesHoldReleaseWaves) {
  const auto p = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DeploymentOptions opts;
    opts.protocol = p.protocol;
    opts.res = (p.protocol == Protocol::Abd)
                   ? Resilience{2 * p.t + 1, p.t, 0, 2}
                   : Resilience::optimal(p.t, p.b, 2);
    opts.seed = seed * 7 + 3;
    if (p.byz > 0) {
      opts.faults = harness::FaultPlan::mixed(p.byz, p.kind, 0);
    }
    Deployment d(opts);

    ChaosOptions chaos;
    chaos.max_held = p.t - p.byz;
    chaos.seed = seed * 13 + 1;
    chaos.horizon = 1'500'000;
    chaos.hold_duration = 25'000;
    chaos.gap = 15'000;
    if (chaos.max_held > 0) {
      harness::inject_chaos(d, chaos);
    }

    harness::MixedWorkloadOptions w;
    w.writes = 12;
    w.reads_per_reader = 12;
    w.write_gap = 4'000;
    w.read_gap = 3'000;
    harness::mixed_workload(d, w);
    d.run();

    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete)
          << "wait-freedom under chaos, seed " << seed;
    }
    const auto report = d.check();
    ASSERT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosTest,
    ::testing::Values(
        ChaosCase{Protocol::Safe, 2, 1, 0, adversary::StrategyKind::Silent},
        ChaosCase{Protocol::Safe, 2, 1, 1, adversary::StrategyKind::Forger},
        ChaosCase{Protocol::Safe, 3, 2, 2, adversary::StrategyKind::Collude},
        ChaosCase{Protocol::Safe, 3, 3, 2, adversary::StrategyKind::Random},
        ChaosCase{Protocol::Regular, 2, 1, 1,
                  adversary::StrategyKind::Forger},
        ChaosCase{Protocol::Regular, 3, 2, 2,
                  adversary::StrategyKind::Equivocator},
        ChaosCase{Protocol::RegularOptimized, 3, 2, 1,
                  adversary::StrategyKind::Stagger},
        ChaosCase{Protocol::Abd, 3, 0, 0, adversary::StrategyKind::Silent},
        ChaosCase{Protocol::Polling, 2, 2, 1,
                  adversary::StrategyKind::Forger},
        ChaosCase{Protocol::Auth, 2, 2, 1,
                  adversary::StrategyKind::Amnesiac}),
    [](const auto& info) {
      std::string name = std::string(harness::to_string(info.param.protocol)) +
                         "_t" + std::to_string(info.param.t) + "b" +
                         std::to_string(info.param.b) + "_byz" +
                         std::to_string(info.param.byz);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ChaosTest, HeldBeyondBudgetIsRejected) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Safe;
  opts.res = Resilience::optimal(2, 1, 1);
  opts.faults = harness::FaultPlan::crash_only(2);  // full budget used
  Deployment d(opts);
  ChaosOptions chaos;
  chaos.max_held = 1;  // 2 crashed + 1 held > t = 2
  EXPECT_DEATH(harness::inject_chaos(d, chaos), "budget");
}

TEST(ChaosTest, OperationsIssuedDuringHoldCompleteAfterRelease) {
  DeploymentOptions opts;
  opts.protocol = Protocol::Safe;
  opts.res = Resilience::optimal(1, 1, 1);  // S = 4
  opts.seed = 5;
  opts.delay = harness::DelayKind::Fixed;
  opts.delay_lo = 1'000;
  Deployment d(opts);
  d.logged_write(0, "v1");
  d.run();
  // Hold TWO objects (> t!) -- the read cannot finish while they are held,
  // because only 2 of 4 objects are reachable (quorum is 3). It must
  // complete once one is released.
  d.world().hold_all(d.object_pid(0));
  d.world().hold_all(d.object_pid(1));
  bool done = false;
  d.logged_read(d.world().now() + 1'000, 0,
                [&](const core::ReadResult&) { done = true; });
  d.world().run();
  EXPECT_FALSE(done) << "quorum unreachable while 2 of 4 objects held";
  d.world().release_all(d.object_pid(0));
  d.world().run();
  EXPECT_TRUE(done) << "read resumes when the quorum becomes reachable";
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

}  // namespace
}  // namespace rr
