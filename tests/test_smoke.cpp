// End-to-end smoke tests: every protocol completes a simple workload and
// satisfies its promised semantics under benign asynchrony.
#include <gtest/gtest.h>

#include "harness/deployment.hpp"
#include "harness/workload.hpp"

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::Protocol;

DeploymentOptions base_options(Protocol p, int t, int b, int readers,
                               std::uint64_t seed) {
  DeploymentOptions opts;
  opts.protocol = p;
  opts.res = (p == Protocol::Abd)
                 ? Resilience{2 * t + 1, t, 0, readers}
                 : (p == Protocol::FastWrite
                        ? Resilience{2 * t + 2 * b + 1, t, b, readers}
                        : Resilience::optimal(t, b, readers));
  // ABD's Resilience has b = 0 which our validity check allows only with
  // b >= 0; keep t >= 1.
  opts.seed = seed;
  return opts;
}

class SmokeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(SmokeTest, SequentialWritesThenReadsAreConsistent) {
  auto opts = base_options(GetParam(), 2, GetParam() == Protocol::Abd ? 0 : 2,
                           2, 42);
  Deployment d(opts);
  harness::sequential_then_reads(d, 5, 4);
  d.run();
  const auto report = d.check();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(d.log().snapshot().size(), 5u + 2u * 4u);
  for (const auto& op : d.log().snapshot()) {
    EXPECT_TRUE(op.complete) << "wait-freedom: every operation completes";
  }
}

TEST_P(SmokeTest, ConcurrentMixedWorkloadIsConsistent) {
  auto opts = base_options(GetParam(), 2, GetParam() == Protocol::Abd ? 0 : 2,
                           3, 7);
  Deployment d(opts);
  harness::MixedWorkloadOptions w;
  w.writes = 10;
  w.reads_per_reader = 10;
  harness::mixed_workload(d, w);
  d.run();
  const auto report = d.check();
  EXPECT_TRUE(report.ok()) << report.summary();
  for (const auto& op : d.log().snapshot()) {
    EXPECT_TRUE(op.complete);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SmokeTest,
    ::testing::Values(Protocol::Safe, Protocol::Regular,
                      Protocol::RegularOptimized, Protocol::Abd,
                      Protocol::Polling, Protocol::FastWrite, Protocol::Auth),
    [](const auto& info) {
      std::string name = harness::to_string(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rr
