// The real-network substrate: frame reassembly over actual sockets,
// adversarial byte streams, the reconnect backoff schedule, the mesh's
// fault proxy (hold/release, crash blackholing, seeded link faults, gray
// delay), and the bounded-run degradation contract -- a stalled net run
// must end as Backend::timed_out(), never as a hang or an abort.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "harness/backend.hpp"
#include "harness/protocol.hpp"
#include "harness/sweep.hpp"
#include "netio/backoff.hpp"
#include "netio/mesh.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rr {
namespace {

using wire::FrameDecoder;
using wire::Message;

std::vector<Message> sample_messages() {
  return {
      wire::WAckMsg{7},
      wire::AbdQueryAckMsg{12, TsVal{5, "quorum"}},
      wire::BlWriteMsg{1, 6, std::string(300, 'x')},
      wire::FwWriteMsg{9, "fw"},
  };
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripsOverARealSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const auto sent = sample_messages();
  std::string bytes;
  for (const auto& m : sent) bytes += wire::encode_frame(m);
  ASSERT_EQ(::write(sv[0], bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  ::close(sv[0]);  // EOF after the last frame

  FrameDecoder dec;
  std::vector<Message> got;
  char chunk[64];  // force many partial reads per frame
  for (;;) {
    const ssize_t n = ::read(sv[1], chunk, sizeof(chunk));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    EXPECT_TRUE(dec.feed(chunk, static_cast<std::size_t>(n),
                         [&](Message&& m) { got.push_back(std::move(m)); }));
  }
  ::close(sv[1]);
  EXPECT_EQ(got, sent);
  EXPECT_EQ(dec.stats().frames, sent.size());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(FrameTest, ReassemblesOneByteAtATime) {
  const auto sent = sample_messages();
  std::string bytes;
  for (const auto& m : sent) bytes += wire::encode_frame(m);
  FrameDecoder dec;
  std::vector<Message> got;
  for (const char c : bytes) {
    EXPECT_TRUE(
        dec.feed(&c, 1, [&](Message&& m) { got.push_back(std::move(m)); }));
  }
  EXPECT_EQ(got, sent);
  EXPECT_FALSE(dec.mid_frame()) << "no partial frame may remain";
}

TEST(FrameTest, MidFrameIsVisibleForReadTimeouts) {
  const std::string frame = wire::encode_frame(Message{wire::WAckMsg{1}});
  FrameDecoder dec;
  int delivered = 0;
  // Everything but the last byte: the decoder must report a pending frame.
  dec.feed(frame.data(), frame.size() - 1, [&](Message&&) { ++delivered; });
  EXPECT_TRUE(dec.mid_frame());
  EXPECT_EQ(delivered, 0);
  dec.feed(frame.data() + frame.size() - 1, 1, [&](Message&&) { ++delivered; });
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(dec.mid_frame());
}

TEST(FrameTest, BadPayloadIsCountedAndSkippedStreamContinues) {
  // A well-framed frame whose payload wire::decode() rejects must not kill
  // the stream: framing is intact, so the next frame still parses.
  std::string bytes = wire::encode_frame(Message{wire::WAckMsg{1}});
  bytes += wire::wrap_frame("\xff\xff garbage payload");
  bytes += wire::encode_frame(Message{wire::WAckMsg{2}});
  FrameDecoder dec;
  std::vector<Message> got;
  EXPECT_TRUE(dec.feed(bytes.data(), bytes.size(),
                       [&](Message&& m) { got.push_back(std::move(m)); }));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], Message{wire::WAckMsg{1}});
  EXPECT_EQ(got[1], Message{wire::WAckMsg{2}});
  EXPECT_EQ(dec.stats().bad_payload, 1u);
  EXPECT_FALSE(dec.poisoned());
}

TEST(FrameTest, BadMagicPoisonsTheStream) {
  std::string bytes = wire::encode_frame(Message{wire::WAckMsg{1}});
  bytes += "XXXXXXXX";  // not a header
  bytes += wire::encode_frame(Message{wire::WAckMsg{2}});
  FrameDecoder dec;
  int delivered = 0;
  EXPECT_FALSE(
      dec.feed(bytes.data(), bytes.size(), [&](Message&&) { ++delivered; }));
  EXPECT_EQ(delivered, 1) << "frames before the corruption still deliver";
  EXPECT_TRUE(dec.poisoned());
  EXPECT_EQ(dec.stats().bad_magic, 1u);
  // A poisoned decoder is inert until reset.
  EXPECT_FALSE(dec.feed(bytes.data(), 1, [&](Message&&) { ++delivered; }));
  EXPECT_EQ(delivered, 1);
}

TEST(FrameTest, OversizedLengthPrefixPoisonsWithoutAllocating) {
  FrameDecoder dec(/*max_payload=*/1024);
  std::string header;
  const std::uint32_t magic = wire::kFrameMagic;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header += std::string(4, '\xff');  // claims a ~4 GiB payload
  int delivered = 0;
  EXPECT_FALSE(
      dec.feed(header.data(), header.size(), [&](Message&&) { ++delivered; }));
  EXPECT_TRUE(dec.poisoned());
  EXPECT_EQ(dec.stats().oversized, 1u);
  EXPECT_EQ(delivered, 0);
}

TEST(FrameTest, ResetClearsPoisonButKeepsCounters) {
  FrameDecoder dec;
  std::string junk = "junkjunk";
  dec.feed(junk.data(), junk.size(), [](Message&&) {});
  ASSERT_TRUE(dec.poisoned());
  dec.reset();
  EXPECT_FALSE(dec.poisoned());
  EXPECT_EQ(dec.stats().bad_magic, 1u) << "totals accumulate across reconnects";
  const std::string frame = wire::encode_frame(Message{wire::WAckMsg{3}});
  int delivered = 0;
  EXPECT_TRUE(
      dec.feed(frame.data(), frame.size(), [&](Message&&) { ++delivered; }));
  EXPECT_EQ(delivered, 1);
}

// Bit-flip torture across whole frame streams: any single-bit corruption is
// either survived (payload skipped) or detected (poison); never a crash,
// never a bogus extra message.
TEST(FrameTest, BitFlipTortureNeverCrashes) {
  std::string bytes;
  const auto sent = sample_messages();
  for (const auto& m : sent) bytes += wire::encode_frame(m);
  Rng rng(1234);
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = bytes;
    const auto pos = rng.index(mutated.size());
    mutated[pos] = static_cast<char>(static_cast<unsigned char>(mutated[pos]) ^
                                     (1u << rng.uniform(0, 7)));
    FrameDecoder dec;
    std::size_t delivered = 0;
    dec.feed(mutated.data(), mutated.size(), [&](Message&&) { ++delivered; });
    EXPECT_LE(delivered, sent.size());
    const auto& st = dec.stats();
    if (delivered < sent.size()) {
      EXPECT_GT(st.bad_magic + st.bad_payload + st.oversized +
                    (dec.mid_frame() ? 1u : 0u),
                0u)
          << "a lost message must be visible in the robustness counters";
    }
  }
}

// ---------------------------------------------------------------------------
// Reconnect backoff.
// ---------------------------------------------------------------------------

TEST(BackoffTest, ScheduleIsBoundedExponential) {
  netio::BackoffPolicy p;
  p.base_ns = 1'000'000;
  p.cap_ns = 8'000'000;
  EXPECT_EQ(netio::backoff_nominal_ns(p, 0), 0u) << "first attempt: immediate";
  EXPECT_EQ(netio::backoff_nominal_ns(p, 1), 1'000'000u);
  EXPECT_EQ(netio::backoff_nominal_ns(p, 2), 2'000'000u);
  EXPECT_EQ(netio::backoff_nominal_ns(p, 3), 4'000'000u);
  EXPECT_EQ(netio::backoff_nominal_ns(p, 4), 8'000'000u);
  EXPECT_EQ(netio::backoff_nominal_ns(p, 5), 8'000'000u) << "capped";
  EXPECT_EQ(netio::backoff_nominal_ns(p, 63), 8'000'000u)
      << "huge attempt counts must not overflow";
}

TEST(BackoffTest, JitterStaysInsideTheBand) {
  netio::BackoffPolicy p;
  p.base_ns = 1'000'000;
  p.cap_ns = 100'000'000;
  p.jitter = 0.25;
  Rng rng(99);
  for (std::uint32_t attempt = 1; attempt < 10; ++attempt) {
    const auto nominal = netio::backoff_nominal_ns(p, attempt);
    for (int i = 0; i < 50; ++i) {
      const auto d = netio::backoff_delay_ns(p, attempt, rng);
      EXPECT_GE(d, nominal - nominal / 4);
      EXPECT_LE(d, nominal + nominal / 4);
    }
  }
}

// ---------------------------------------------------------------------------
// The socket mesh and its fault proxy.
// ---------------------------------------------------------------------------

/// Counts deliveries; replies to BlWriteMsg with BlWriteAckMsg.
class EchoProcess : public net::Process {
 public:
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    received.fetch_add(1, std::memory_order_relaxed);
    if (const auto* w = std::get_if<wire::BlWriteMsg>(&msg)) {
      ctx.send(from, wire::BlWriteAckMsg{w->phase, w->ts});
    }
  }
  std::atomic<std::uint64_t> received{0};
};

struct EchoMesh {
  explicit EchoMesh(const netio::MeshOptions& opts,
                    const net::LinkFaults* lf = nullptr)
      : mesh(opts) {
    for (int i = 0; i < 2; ++i) {
      auto p = std::make_unique<EchoProcess>();
      procs.push_back(p.get());
      mesh.add(std::move(p));
    }
    if (lf != nullptr) mesh.set_link_faults(*lf);  // contract: before start()
    mesh.start();
  }
  /// Posts `n` BlWriteMsg sends 0 -> 1 as steps of process 0.
  void send_writes(int n) {
    for (int i = 0; i < n; ++i) {
      mesh.post(0, 0, [](net::Context& ctx) {
        ctx.send(1, wire::BlWriteMsg{1, 5, "payload"});
      });
    }
  }
  netio::Mesh mesh;
  std::vector<EchoProcess*> procs;
};

TEST(MeshTest, PingPongQuiescesWithExactAccounting) {
  netio::MeshOptions opts;
  opts.seed = 7;
  EchoMesh m(opts);
  m.send_writes(20);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  EXPECT_EQ(m.procs[1]->received.load(), 20u);
  EXPECT_EQ(m.procs[0]->received.load(), 20u) << "every write acked";
  const auto stats = m.mesh.stats();
  EXPECT_EQ(stats.messages_sent, 40u);
  EXPECT_EQ(stats.messages_delivered, 40u);
  EXPECT_GT(stats.bytes_sent, 0u);
  const auto t = m.mesh.transport();
  EXPECT_GE(t.connects, 1u);
  EXPECT_EQ(t.corrupt_frames, 0u);
  EXPECT_EQ(t.partial_timeouts, 0u);
}

TEST(MeshTest, HoldBuffersInTransitAndReleaseRedeliversFifo) {
  netio::MeshOptions opts;
  opts.seed = 8;
  EchoMesh m(opts);
  m.mesh.hold(0, 1);
  m.send_writes(5);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)))
      << "held frames are in transit, not pending work";
  EXPECT_EQ(m.procs[1]->received.load(), 0u);
  m.mesh.release(0, 1);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  EXPECT_EQ(m.procs[1]->received.load(), 5u);
  EXPECT_EQ(m.procs[0]->received.load(), 5u) << "acks flowed after release";
}

TEST(MeshTest, CrashBlackholesAndDropsAreCounted) {
  netio::MeshOptions opts;
  opts.seed = 9;
  EchoMesh m(opts);
  m.send_writes(3);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  m.mesh.crash(1);
  EXPECT_TRUE(m.mesh.crashed(1));
  m.send_writes(4);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)))
      << "sends to a crashed node must not stall quiescence";
  EXPECT_EQ(m.procs[1]->received.load(), 3u) << "no delivery after crash";
  const auto stats = m.mesh.stats();
  EXPECT_GE(stats.messages_dropped, 4u);
}

TEST(MeshTest, CrashDiscardsHeldBacklog) {
  netio::MeshOptions opts;
  opts.seed = 10;
  EchoMesh m(opts);
  m.mesh.hold(0, 1);
  m.send_writes(6);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  m.mesh.crash(1);
  m.mesh.release(0, 1);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  EXPECT_EQ(m.procs[1]->received.load(), 0u)
      << "a crashed node's backlog must never be delivered";
}

TEST(MeshTest, SeededLossIsDeterministicAndCounted) {
  auto run = [](std::uint64_t seed) {
    netio::MeshOptions opts;
    opts.seed = 3;
    net::LinkFaults lf;
    lf.loss.p = 0.5;
    lf.seed = seed;
    EchoMesh m(opts, &lf);
    // One-directional traffic so the sampling order is a deterministic
    // function of the (seeded) channel stream, not of thread interleaving.
    for (int i = 0; i < 40; ++i) {
      m.mesh.post(0, 0, [](net::Context& ctx) {
        ctx.send(1, wire::FwWriteMsg{7, "fw"});
      });
    }
    if (!m.mesh.run_quiescent(std::chrono::milliseconds(10'000))) {
      ADD_FAILURE() << "mesh failed to quiesce";
    }
    return m.mesh.stats();
  };
  const auto a = run(41);
  EXPECT_GT(a.messages_lost, 0u);
  EXPECT_LT(a.messages_lost, 40u);
  EXPECT_EQ(a.messages_delivered + a.messages_lost, a.messages_sent);
  const auto b = run(41);
  EXPECT_EQ(a.messages_lost, b.messages_lost)
      << "same fault seed, same channel stream, same casualties";
  const auto c = run(1441);
  EXPECT_NE(a.messages_lost, c.messages_lost);
}

TEST(MeshTest, DuplicationAndReorderDeliverCorrectCounts) {
  netio::MeshOptions opts;
  opts.seed = 4;
  net::LinkFaults lf;
  lf.duplicate.p = 0.5;
  lf.reorder.p = 0.4;
  lf.reorder_delay = 2'000'000;  // 2ms: clearly observable deferral
  lf.seed = 5;
  EchoMesh m(opts, &lf);
  for (int i = 0; i < 30; ++i) {
    m.mesh.post(0, 0, [](net::Context& ctx) {
      ctx.send(1, wire::FwWriteMsg{7, "fw"});
    });
  }
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  const auto stats = m.mesh.stats();
  EXPECT_GT(stats.messages_duplicated, 0u);
  EXPECT_GT(stats.messages_reordered, 0u);
  EXPECT_EQ(stats.messages_delivered, 30u + stats.messages_duplicated);
  EXPECT_EQ(m.procs[1]->received.load(), stats.messages_delivered);
}

TEST(MeshTest, GrayNodeIsSlowButDeliversEverything) {
  netio::MeshOptions opts;
  opts.seed = 11;
  EchoMesh m(opts);
  m.mesh.set_gray(1, 2'000'000);  // 2ms per delivered frame
  m.send_writes(5);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  const auto wall =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  EXPECT_EQ(m.procs[1]->received.load(), 5u);
  EXPECT_EQ(m.procs[0]->received.load(), 5u);
  EXPECT_GE(wall, 8.0) << "5 gray deliveries at 2ms each must show up";
  m.mesh.set_gray(1, 0);  // clears
  m.send_writes(1);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  EXPECT_EQ(m.procs[1]->received.load(), 6u);
}

TEST(MeshTest, SeveredConnectionReestablishesWithBackoff) {
  netio::MeshOptions opts;
  opts.seed = 12;
  opts.backoff.base_ns = 500'000;  // keep the retry schedule test-fast
  EchoMesh m(opts);
  m.send_writes(3);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)));
  const auto before = m.mesh.transport();
  m.mesh.sever(0, 1);
  m.send_writes(3);
  ASSERT_TRUE(m.mesh.run_quiescent(std::chrono::milliseconds(10'000)))
      << "traffic across a severed link must force a reconnect, not a stall";
  EXPECT_EQ(m.procs[1]->received.load(), 6u);
  const auto after = m.mesh.transport();
  EXPECT_GT(after.connects, before.connects) << "a fresh handshake happened";
}

// ---------------------------------------------------------------------------
// Backend-level degradation: bounded runs report timed_out(), never hang.
// ---------------------------------------------------------------------------

TEST(NetBackendTest, BoundedRunDegradesToTimedOut) {
  harness::BackendConfig cfg;
  cfg.seed = 1;
  cfg.max_wall_time_ms = 300;
  auto backend = harness::make_backend(harness::BackendKind::Net, cfg);
  backend->add_process(std::make_unique<EchoProcess>());
  backend->add_process(std::make_unique<EchoProcess>());
  backend->start();
  // A step scheduled 30 virtual seconds out: the mesh cannot quiesce before
  // the wall deadline, so run() must give up and report, not block.
  backend->post(30'000'000'000ULL, 0, [](net::Context&) {});
  const auto t0 = std::chrono::steady_clock::now();
  backend->run();
  const auto wall = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_TRUE(backend->timed_out());
  EXPECT_LT(wall, 10'000.0) << "must end well before the 30s timer";
}

// The acceptance-criterion shape: a sweep cell whose fault plan stalls its
// quorums on the net backend ends as a liveness verdict under the bounded
// deadline instead of hanging the sweep.
TEST(NetBackendTest, OverloadSweepCellDegradesToLivenessVerdict) {
  const harness::SweepEngine engine(harness::SweepPlan::quick());
  harness::Scenario s = engine.materialize(
      harness::Protocol::Safe, harness::BackendKind::Net,
      harness::FaultTemplate::Overload, 1);
  ASSERT_GT(s.max_wall_ms, 0u) << "net overload cells must be bounded";
  s.max_wall_ms = 1'500;  // keep the test fast; the stall shows immediately
  const harness::CellVerdict v = harness::SweepEngine::run_cell(s);
  EXPECT_FALSE(v.ok);
  EXPECT_GT(v.ops_stuck, 0);
  EXPECT_NE(v.first_violation.find("liveness"), std::string::npos)
      << v.first_violation;
}

}  // namespace
}  // namespace rr
