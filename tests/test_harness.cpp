// Harness infrastructure: deployments, workloads, stats accumulation and
// table rendering -- the glue every experiment trusts.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/deployment.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace rr::harness {
namespace {

TEST(DeploymentTest, TopologyMatchesRegistrationOrder) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(1, 1, 2);
  Deployment d(opts);
  EXPECT_EQ(d.writer_pid(), 0);
  EXPECT_EQ(d.reader_pid(0), 1);
  EXPECT_EQ(d.reader_pid(1), 2);
  EXPECT_EQ(d.object_pid(0), 3);
  EXPECT_EQ(d.world().num_processes(), 1 + 2 + 4);
}

TEST(DeploymentTest, RejectsOverBudgetFaultPlans) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(1, 1, 1);
  opts.faults = FaultPlan::crash_only(2);  // t = 1
  EXPECT_DEATH(Deployment{opts}, "budget");
}

TEST(DeploymentTest, RejectsTooManyByzantine) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(2, 1, 1);
  opts.faults = FaultPlan::mixed(2, adversary::StrategyKind::Forger, 0);
  EXPECT_DEATH(Deployment{opts}, "Byzantine");
}

TEST(DeploymentTest, PromisedSemanticsPerProtocol) {
  EXPECT_EQ(promised_semantics(Protocol::Safe), Semantics::Safe);
  EXPECT_EQ(promised_semantics(Protocol::Polling), Semantics::Safe);
  EXPECT_EQ(promised_semantics(Protocol::FastWrite), Semantics::Safe);
  EXPECT_EQ(promised_semantics(Protocol::Regular), Semantics::Regular);
  EXPECT_EQ(promised_semantics(Protocol::RegularOptimized),
            Semantics::Regular);
  EXPECT_EQ(promised_semantics(Protocol::Auth), Semantics::Regular);
  EXPECT_EQ(promised_semantics(Protocol::Abd), Semantics::Atomic);
}

TEST(DeploymentTest, LoggedOpsRecordAccurateTimes) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(1, 1, 1);
  opts.delay = DelayKind::Fixed;
  opts.delay_lo = 1'000;
  Deployment d(opts);
  d.logged_write(5'000, "x");
  d.run();
  const auto ops = d.log().snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].invoked_at, 5'000u);
  // 2 rounds x 2 x 1000ns fixed delay = 4000ns.
  EXPECT_EQ(ops[0].responded_at, 9'000u);
}

TEST(WorkloadTest, WriteStreamChainsSequentially) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(1, 1, 1);
  Deployment d(opts);
  OpStats stats;
  bool done = false;
  write_stream(d, 0, 1'000, 7, &stats, [&] { done = true; });
  d.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(stats.count(), 7u);
  // Writes must be strictly sequential.
  const auto ops = d.log().snapshot();
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_GE(ops[i].invoked_at, ops[i - 1].responded_at);
  }
}

TEST(WorkloadTest, ValuesFollowNamingScheme) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(1, 1, 1);
  Deployment d(opts);
  write_stream(d, 0, 100, 3);
  d.run();
  const auto ops = d.log().snapshot();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].value, "v1");
  EXPECT_EQ(ops[2].value, "v3");
}

TEST(WorkloadTest, SequentialThenReadsHasNoOverlap) {
  DeploymentOptions opts;
  opts.res = Resilience::optimal(1, 1, 2);
  Deployment d(opts);
  sequential_then_reads(d, 4, 3);
  d.run();
  Time last_write_response = 0;
  Time first_read_invocation = ~Time{0};
  for (const auto& op : d.log().snapshot()) {
    if (op.kind == checker::OpRecord::Kind::Write) {
      last_write_response = std::max(last_write_response, op.responded_at);
    } else {
      first_read_invocation = std::min(first_read_invocation, op.invoked_at);
    }
  }
  EXPECT_LT(last_write_response, first_read_invocation);
}

TEST(OpStatsTest, PercentilesAndRounds) {
  OpStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.add(static_cast<Time>(i * 10), 2 + (i % 2));
  }
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_EQ(stats.latency_min(), 10u);
  EXPECT_EQ(stats.latency_max(), 1000u);
  EXPECT_NEAR(static_cast<double>(stats.latency_p50()), 500.0, 20.0);
  EXPECT_GE(stats.latency_p99(), 980u);
  EXPECT_EQ(stats.rounds_min(), 2);
  EXPECT_EQ(stats.rounds_max(), 3);
  EXPECT_NEAR(stats.rounds_mean(), 2.5, 0.01);
  EXPECT_NEAR(stats.latency_mean(), 505.0, 1.0);
}

TEST(OpStatsTest, EmptyStatsAreZero) {
  OpStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.latency_p50(), 0u);
  EXPECT_EQ(stats.rounds_max(), 0);
  EXPECT_EQ(stats.latency_mean(), 0.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row("x", 1);
  t.add_row("longer-name", 123.456);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("123.46"), std::string::npos);  // %.2f formatting
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, MixedCellTypes) {
  Table t({"a", "b", "c", "d"});
  t.add_row(std::string("s"), 42, 3.14159, "literal");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(FaultPlanTest, Builders) {
  const auto crash = FaultPlan::crash_only(3);
  EXPECT_EQ(crash.crashed.size(), 3u);
  EXPECT_EQ(crash.total_faulty(), 3);
  const auto mixed = FaultPlan::mixed(2, adversary::StrategyKind::Forger, 1);
  EXPECT_EQ(mixed.byzantine.size(), 2u);
  EXPECT_EQ(mixed.crashed.size(), 1u);
  EXPECT_EQ(mixed.total_faulty(), 3);
  // Byzantine indices come first, then crashes.
  EXPECT_TRUE(mixed.byzantine.contains(0));
  EXPECT_TRUE(mixed.byzantine.contains(1));
  EXPECT_EQ(mixed.crashed[0], 2);
}

}  // namespace
}  // namespace rr::harness
