// SHA-256 / HMAC-SHA256 against the standard FIPS 180-4 and RFC 4231 test
// vectors, plus the MAC helpers of the authenticated baseline.
#include <gtest/gtest.h>

#include "baselines/authenticated.hpp"
#include "crypto/sha256.hpp"

namespace rr::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, ExactlyOneBlock) {
  // 64 bytes: forces the padding into a second block.
  const std::string m(64, 'a');
  EXPECT_EQ(to_hex(sha256(m)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, MillionAs) {
  const std::string m(1'000'000, 'a');
  EXPECT_EQ(to_hex(sha256(m)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, LengthBoundaraySweep) {
  // Hash every length around the block boundaries; verify self-consistency
  // (same input -> same digest; one-char difference -> different digest).
  for (std::size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string a(n, 'x');
    std::string b = a;
    EXPECT_EQ(to_hex(sha256(a)), to_hex(sha256(a)));
    if (!b.empty()) {
      b[0] = 'y';
      EXPECT_NE(to_hex(sha256(a)), to_hex(sha256(b)));
    }
  }
}

TEST(HmacTest, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string data(50, '\xdd');
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231LongKey) {
  // Keys longer than the block size are hashed first.
  const std::string key(131, '\xaa');
  EXPECT_EQ(
      to_hex(hmac_sha256(key,
                         "Test Using Larger Than Block-Size Key - Hash Key "
                         "First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(MacEqualTest, ConstantTimeCompareBehaviour) {
  const Digest d = sha256("x");
  EXPECT_TRUE(mac_equal(d, to_bytes(d)));
  std::string other = to_bytes(d);
  other[31] ^= 1;
  EXPECT_FALSE(mac_equal(d, other));
  EXPECT_FALSE(mac_equal(d, "short"));
}

TEST(AuthMacTest, BindsTimestampAndValue) {
  using baselines::make_mac;
  using baselines::verify_mac;
  const std::string key = "k";
  const auto mac = make_mac(key, 5, "value");
  EXPECT_TRUE(verify_mac(key, 5, "value", mac));
  EXPECT_FALSE(verify_mac(key, 6, "value", mac));   // splice timestamp
  EXPECT_FALSE(verify_mac(key, 5, "valuf", mac));   // tamper value
  EXPECT_FALSE(verify_mac("k2", 5, "value", mac));  // wrong key
}

TEST(AuthMacTest, DistinctPairsDistinctMacs) {
  using baselines::make_mac;
  const std::string key = "writer-key";
  EXPECT_NE(make_mac(key, 1, "a"), make_mac(key, 2, "a"));
  EXPECT_NE(make_mac(key, 1, "a"), make_mac(key, 1, "b"));
}

}  // namespace
}  // namespace rr::crypto
