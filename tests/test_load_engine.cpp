// Open-loop load engine + windowed streaming checker invariants:
//
//   - windowing is invisible: every committed scenario file produces a
//     bit-identical verdict and DES fingerprint with the window on and off;
//   - retirement never outruns verifiability: an incomplete op (or a read
//     naming a not-yet-invoked write) pins the window;
//   - the streaming verdict agrees with the batch checkers on randomized
//     adversarial histories, with tiny windows forcing aggressive eviction;
//   - the steady-state client loop allocates nothing (counting global
//     operator new in this binary);
//   - open-loop DES cells are deterministic and keep checker residency
//     O(window), and the arrival shapes match their documented envelopes.
#include "harness/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "checker/history.hpp"
#include "common/rng.hpp"
#include "harness/scenario_dsl.hpp"
#include "harness/sweep.hpp"

// ---------------------------------------------------------------------------
// Counting global operator new. This override is visible to the whole test
// binary (each tests/*.cpp builds its own executable), so the zero-alloc pin
// below measures the real allocation behavior of the hot paths, not a mock.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

// Replacement allocation functions legitimately pair malloc with free; GCC
// cannot know that and flags the pairing as mismatched.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace rr::harness {
namespace {

using checker::OpRecord;
using Kind = OpRecord::Kind;

std::vector<std::string> scn_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scn") out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Windowing is invisible. Every committed DES scenario -- library and
// shrinker fixtures, passing and expected-failing alike -- must produce the
// same verdict, the same first violation and the same fingerprint with the
// streaming checker retiring ops online as with the keep-everything batch
// checker, while actually retiring a nonzero prefix somewhere.
// ---------------------------------------------------------------------------
TEST(WindowedChecker, VerdictsAndFingerprintsMatchBatchOnCommittedScenarios) {
  std::vector<std::string> files =
      scn_files(std::string(RR_SOURCE_DIR) + "/scenarios");
  for (auto& f :
       scn_files(std::string(RR_SOURCE_DIR) + "/tests/fixtures/scenarios")) {
    files.push_back(std::move(f));
  }
  ASSERT_FALSE(files.empty());
  std::uint64_t total_retired = 0;
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const auto parsed = load_scenario_file(path);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    if (parsed.scenario.backend != BackendKind::Sim) continue;
    Scenario batch = parsed.scenario;
    batch.checker_window = 0;
    Scenario windowed = parsed.scenario;
    windowed.checker_window = 8;
    const CellVerdict vb = SweepEngine::run_cell(batch);
    const CellVerdict vw = SweepEngine::run_cell(windowed);
    EXPECT_EQ(vb.ok, vw.ok);
    EXPECT_EQ(vb.violations, vw.violations);
    EXPECT_EQ(vb.first_violation, vw.first_violation);
    EXPECT_EQ(vb.fingerprint, vw.fingerprint);
    EXPECT_EQ(vb.ops_complete, vw.ops_complete);
    EXPECT_EQ(vb.ops_stuck, vw.ops_stuck);
    EXPECT_EQ(vb.hist_retired, 0u);
    total_retired += vw.hist_retired;
  }
  EXPECT_GT(total_retired, 0u);
}

// ---------------------------------------------------------------------------
// Retirement never outruns verifiability: an op that is still incomplete
// pins the frontier, so nothing invoked at-or-after it can retire, no matter
// how far past the window the residual grows.
// ---------------------------------------------------------------------------
TEST(WindowedChecker, IncompleteOpPinsRetirement) {
  checker::HistoryLog log;
  log.enable_window(4, checker::Property::Regular);
  const auto w = log.record_invocation(Kind::Write, -1, 10, "v1");
  Time t = 20;
  for (int i = 0; i < 64; ++i) {
    const auto r = log.record_invocation(Kind::Read, 0, t);
    log.record_read_response(r, t + 5, TsVal{});  // initial value: legal
    t += 10;
  }
  auto ws = log.window_stats();
  EXPECT_EQ(ws.retired, 0u) << "retired past an incomplete op";
  EXPECT_EQ(ws.live, 65u);
  EXPECT_TRUE(log.final_check().ok());

  // Completing the pinned write (plus one later event to advance the
  // frontier past its response) unblocks retirement.
  log.record_write_response(w, t, 1, "v1");
  const auto r = log.record_invocation(Kind::Read, 0, t + 1);
  log.record_read_response(r, t + 6, TsVal{1, "v1"});
  ws = log.window_stats();
  EXPECT_GT(ws.retired, 0u);
  EXPECT_TRUE(log.final_check().ok());
}

// A read naming a write that has not been invoked yet (a Byzantine forgery)
// is unverifiable while the run lives -- the writer might still catch up --
// so it must stay resident, and the final pass must then convict it.
TEST(WindowedChecker, ForgedFutureReadIsHeldThenConvicted) {
  checker::HistoryLog log;
  log.enable_window(2, checker::Property::Regular);
  const auto w = log.record_invocation(Kind::Write, -1, 10, "v1");
  log.record_write_response(w, 20, 1, "v1");
  const auto forged = log.record_invocation(Kind::Read, 0, 30);
  log.record_read_response(forged, 40, TsVal{3, "v3"});
  Time t = 50;
  for (int i = 0; i < 32; ++i) {
    const auto r = log.record_invocation(Kind::Read, 1, t);
    log.record_read_response(r, t + 5, TsVal{1, "v1"});
    t += 10;
  }
  const auto ws = log.window_stats();
  EXPECT_LE(ws.retired, 1u) << "retired an unverifiable forged read";
  EXPECT_GE(ws.live, 33u);
  const auto report = log.final_check();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("regularity(1)"), std::string::npos)
      << report.violations[0];
}

// ---------------------------------------------------------------------------
// Randomized adversarial histories: replay the identical op stream into a
// windowed log (window 4: maximal eviction pressure) and a batch log, and
// the streaming verdict must agree with the batch checkers -- same ok bit,
// same violation and checked-op counts, same fingerprint. (Message texts may
// differ only in the documented below-floor case, hence counts, not strings.)
// ---------------------------------------------------------------------------
TEST(WindowedChecker, RandomHistoriesAgreeWithBatchCheckers) {
  struct GenOp {
    Kind kind;
    int client;
    Time invoke;
    Time respond;
    Ts ts;
    Value val;
  };
  for (const auto property :
       {checker::Property::Safe, checker::Property::Regular}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      SCOPED_TRACE(static_cast<int>(property) * 1000 + seed);
      Rng rng(mix64(seed ^ 0xfeedULL));
      std::vector<GenOp> gen;
      Ts next_ts = 0;
      Time writer_free = 0;
      Time reader_free[3] = {0, 0, 0};
      for (int i = 0; i < 200; ++i) {
        if (rng.chance(0.3)) {
          const Time inv = writer_free + rng.uniform(0, 20);
          const Time rsp = inv + 1 + rng.uniform(0, 30);
          ++next_ts;
          gen.push_back(
              {Kind::Write, -1, inv, rsp, next_ts, value_for(next_ts)});
          writer_free = rsp + 1;
        } else {
          const int c = static_cast<int>(rng.index(3));
          const Time inv = reader_free[c] + rng.uniform(0, 20);
          const Time rsp = inv + 1 + rng.uniform(0, 30);
          // Mostly plausible timestamps; occasionally stale, forged-future
          // or with a corrupted payload.
          Ts ts = next_ts == 0 ? 0 : rng.uniform(0, next_ts);
          if (rng.chance(0.05)) ts = next_ts + 1 + rng.uniform(0, 2);
          Value val = ts == 0 ? Value{} : value_for(ts);
          if (rng.chance(0.08)) val = "junk";
          gen.push_back({Kind::Read, c, inv, rsp, ts, val});
          reader_free[c] = rsp + 1;
        }
      }
      // Interleave as a timeline: invocations in invocation order (this is
      // the log order), each response applied at its own time.
      struct Event {
        Time at;
        bool is_response;
        std::size_t op;
      };
      std::vector<Event> events;
      for (std::size_t i = 0; i < gen.size(); ++i) {
        events.push_back({gen[i].invoke, false, i});
        events.push_back({gen[i].respond, true, i});
      }
      std::stable_sort(events.begin(), events.end(),
                       [](const Event& a, const Event& b) {
                         if (a.at != b.at) return a.at < b.at;
                         return a.is_response < b.is_response;
                       });
      checker::HistoryLog windowed;
      windowed.enable_window(4, property);
      checker::HistoryLog batch;
      std::vector<std::size_t> handles_w(gen.size()), handles_b(gen.size());
      for (const auto& ev : events) {
        const GenOp& op = gen[ev.op];
        if (!ev.is_response) {
          handles_w[ev.op] = windowed.record_invocation(
              op.kind, op.client, op.invoke,
              op.kind == Kind::Write ? op.val : Value{});
          handles_b[ev.op] = batch.record_invocation(
              op.kind, op.client, op.invoke,
              op.kind == Kind::Write ? op.val : Value{});
        } else if (op.kind == Kind::Write) {
          windowed.record_write_response(handles_w[ev.op], op.respond, op.ts,
                                         op.val);
          batch.record_write_response(handles_b[ev.op], op.respond, op.ts,
                                      op.val);
        } else {
          windowed.record_read_response(handles_w[ev.op], op.respond,
                                        TsVal{op.ts, op.val});
          batch.record_read_response(handles_b[ev.op], op.respond,
                                     TsVal{op.ts, op.val});
        }
      }
      const auto streamed = windowed.final_check();
      const auto snap = batch.snapshot();
      const auto wf = checker::check_well_formed(snap);
      const auto prop = property == checker::Property::Safe
                            ? checker::check_safety(snap)
                            : checker::check_regularity(snap);
      EXPECT_EQ(streamed.ok(), wf.ok() && prop.ok());
      EXPECT_EQ(streamed.violations.size(),
                wf.violations.size() + prop.violations.size());
      EXPECT_EQ(streamed.reads_checked, prop.reads_checked);
      EXPECT_EQ(streamed.writes_checked, prop.writes_checked);
      EXPECT_EQ(windowed.history_fingerprint(), batch.history_fingerprint());
      EXPECT_EQ(windowed.size(), batch.size());
      EXPECT_GT(windowed.window_stats().retired, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// The steady-state client loop allocates nothing: arrival sampling, station
// FIFO traffic and latency recording -- the per-op bookkeeping the engine
// performs a million times -- must not touch the heap after construction.
// ---------------------------------------------------------------------------
TEST(LoadEngine, SteadyStateClientPathsDoNotAllocate) {
  OpenLoopOptions ol;
  ol.arrival = ArrivalKind::Bursty;
  ol.clients = 1'000'000;
  ol.mean_think = 1'000'000'000;
  ol.horizon = 10'000'000;
  ArrivalSampler sampler(ol, 42);
  StationRing ring(256);
  LatencyRecorder sojourn;
  // Warm-up: first touches may lazily allocate (none should, but the pin is
  // about the steady state).
  Time now = 0;
  now += sampler.next(now);
  (void)ring.push(now, 1);
  Time at = 0;
  std::uint32_t client = 0;
  ring.pop(at, client);
  sojourn.record(17);

  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 100'000; ++i) {
    now += sampler.next(now);
    (void)ring.push(now, static_cast<std::uint32_t>(i));
    if (ring.size() > 128) ring.pop(at, client);
    sojourn.record(now > at ? now - at : 1);
  }
  while (!ring.empty()) ring.pop(at, client);
  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in the steady-state loop";
}

// StationRing is a bounded FIFO: refuses pushes at capacity, preserves
// arrival order, never grows.
TEST(LoadEngine, StationRingIsABoundedFifo) {
  StationRing ring(4);
  EXPECT_TRUE(ring.empty());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.push(100 + i, i));
  }
  EXPECT_FALSE(ring.push(999, 99)) << "push past capacity must shed";
  EXPECT_EQ(ring.size(), 4u);
  Time at = 0;
  std::uint32_t client = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    ring.pop(at, client);
    EXPECT_EQ(at, 100 + i);
    EXPECT_EQ(client, i);
  }
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// Open-loop DES cells: bit-deterministic across runs, identical fingerprint
// with the window on and off, and checker residency O(window) -- the peak
// stays within window + in-flight slack while the retired count covers
// nearly the whole run.
// ---------------------------------------------------------------------------
TEST(LoadEngine, OpenLoopDesCellIsDeterministicAndBounded) {
  Scenario s;
  s.protocol = Protocol::Safe;
  s.backend = BackendKind::Sim;
  s.tmpl = FaultTemplate::None;
  s.seed = 7;
  s.shards = 2;
  s.arrival = ArrivalKind::Poisson;
  s.clients = 2'000;
  s.think = 10'000'000;
  s.horizon = 1'500'000;
  s.write_fraction = 0.2;
  s.checker_window = 32;
  const CellVerdict v1 = SweepEngine::run_cell(s);
  const CellVerdict v2 = SweepEngine::run_cell(s);
  EXPECT_TRUE(v1.ok) << v1.first_violation;
  EXPECT_EQ(v1.ops_stuck, 0);
  EXPECT_GT(v1.ops_complete, 100);
  EXPECT_EQ(v1.fingerprint, v2.fingerprint);
  EXPECT_NE(v1.fingerprint, 0u);
  EXPECT_GT(v1.hist_retired, 0u);
  EXPECT_LE(v1.hist_peak_live, 32u + 64u)
      << "checker residency must stay O(window)";

  Scenario batch = s;
  batch.checker_window = 0;
  const CellVerdict v0 = SweepEngine::run_cell(batch);
  EXPECT_EQ(v0.ok, v1.ok);
  EXPECT_EQ(v0.fingerprint, v1.fingerprint);
  EXPECT_EQ(v0.ops_complete, v1.ops_complete);
  EXPECT_EQ(v0.hist_retired, 0u);
  EXPECT_GT(v0.hist_peak_live, v1.hist_peak_live)
      << "batch mode must retain everything";
}

// The open-loop engine also runs under chaos faults with the windowed
// checker: holds stall ops mid-flight (pinning retirement), yet the final
// verdict stays clean and matches the batch twin.
TEST(LoadEngine, OpenLoopSurvivesChaosWithWindowedChecker) {
  Scenario s;
  s.protocol = Protocol::Regular;
  s.backend = BackendKind::Sim;
  s.tmpl = FaultTemplate::None;
  s.seed = 11;
  s.arrival = ArrivalKind::Bursty;
  s.clients = 1'000;
  s.think = 10'000'000;
  s.horizon = 1'000'000;
  s.checker_window = 24;
  FaultEvent hold;
  hold.kind = FaultEvent::Kind::Hold;
  hold.held = {0, 1};
  hold.at = 200'000;
  hold.duration = 150'000;
  s.events.push_back(hold);
  const CellVerdict vw = SweepEngine::run_cell(s);
  EXPECT_TRUE(vw.ok) << vw.first_violation;
  Scenario batch = s;
  batch.checker_window = 0;
  const CellVerdict vb = SweepEngine::run_cell(batch);
  EXPECT_EQ(vb.fingerprint, vw.fingerprint);
  EXPECT_EQ(vb.ok, vw.ok);
}

// ---------------------------------------------------------------------------
// Arrival shapes match their documented envelopes (docs/WORKLOADS.md).
// ---------------------------------------------------------------------------
TEST(LoadEngine, ArrivalShapesMatchTheirEnvelopes) {
  OpenLoopOptions ol;
  ol.clients = 2'000;
  ol.mean_think = 10'000'000;  // base rate 2e-4/ns -> mean gap 5000ns
  ol.horizon = 10'000'000;

  {  // Poisson: thinning accepts everything; empirical mean ~= think/clients.
    ol.arrival = ArrivalKind::Poisson;
    ArrivalSampler sampler(ol, 5);
    EXPECT_DOUBLE_EQ(sampler.accept_probability(123), 1.0);
    Time now = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) now += sampler.next(now);
    const double mean = static_cast<double>(now) / n;
    EXPECT_NEAR(mean, 5'000.0, 5'000.0 * 0.15);
  }
  {  // Bursty: accept 1 inside the duty window, 1/boost outside.
    ol.arrival = ArrivalKind::Bursty;
    ol.burst_period = 100'000;
    ol.burst_duty = 0.25;
    ol.burst_boost = 4.0;
    ArrivalSampler sampler(ol, 5);
    EXPECT_DOUBLE_EQ(sampler.accept_probability(1'000), 1.0);
    EXPECT_DOUBLE_EQ(sampler.accept_probability(90'000), 0.25);
    EXPECT_DOUBLE_EQ(sampler.accept_probability(101'000), 1.0);  // periodic
  }
  {  // Diurnal: triangle ramp, low at the horizon's ends, peak at its middle.
    ol.arrival = ArrivalKind::Diurnal;
    ArrivalSampler sampler(ol, 5);
    const double lo = sampler.accept_probability(0);
    const double mid = sampler.accept_probability(ol.horizon / 2);
    const double hi_end = sampler.accept_probability(ol.horizon);
    EXPECT_DOUBLE_EQ(lo, 0.1);
    EXPECT_DOUBLE_EQ(mid, 1.0);
    EXPECT_DOUBLE_EQ(hi_end, 0.1);
    EXPECT_DOUBLE_EQ(sampler.accept_probability(ol.horizon * 3), 0.1)
        << "past the horizon the tail stays at the floor";
  }
}

}  // namespace
}  // namespace rr::harness
