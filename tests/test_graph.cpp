// Exact maximum-independent-set solver, validated against brute force on
// random graphs -- liveness of the readers' round-1 quorum condition
// depends on its exactness.
#include <gtest/gtest.h>

#include <bit>

#include "common/graph.hpp"
#include "common/rng.hpp"

namespace rr {
namespace {

int brute_force_mis(const std::vector<std::uint64_t>& adj,
                    std::uint64_t vertices) {
  const int n = static_cast<int>(adj.size());
  int best = 0;
  for (std::uint64_t subset = 0; subset < (1ULL << n); ++subset) {
    if ((subset & vertices) != subset) continue;
    bool independent = true;
    for (int v = 0; v < n && independent; ++v) {
      if (!(subset & (1ULL << v))) continue;
      if (adj[static_cast<std::size_t>(v)] & subset & ~(1ULL << v)) {
        independent = false;
      }
    }
    if (independent) best = std::max(best, std::popcount(subset));
  }
  return best;
}

TEST(MisTest, EmptyGraphIsAllVertices) {
  std::vector<std::uint64_t> adj(8, 0);
  EXPECT_EQ(max_independent_set_size(adj, 0xff), 8);
  EXPECT_TRUE(has_independent_set(adj, 0xff, 8));
  EXPECT_FALSE(has_independent_set(adj, 0xff, 9));
}

TEST(MisTest, CompleteGraphIsOne) {
  const int n = 6;
  std::vector<std::uint64_t> adj(n, 0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      if (i != k) adj[static_cast<std::size_t>(i)] |= 1ULL << k;
    }
  }
  EXPECT_EQ(max_independent_set_size(adj, (1ULL << n) - 1), 1);
}

TEST(MisTest, PathGraph) {
  // Path 0-1-2-3-4: MIS = {0,2,4}, size 3.
  std::vector<std::uint64_t> adj(5, 0);
  for (int i = 0; i + 1 < 5; ++i) {
    adj[static_cast<std::size_t>(i)] |= 1ULL << (i + 1);
    adj[static_cast<std::size_t>(i + 1)] |= 1ULL << i;
  }
  EXPECT_EQ(max_independent_set_size(adj, 0x1f), 3);
}

TEST(MisTest, RestrictedVertexSet) {
  // Complete graph on {0,1,2}, but only {1,2} considered, plus isolated 3.
  std::vector<std::uint64_t> adj(4, 0);
  adj[0] = 0b0110;
  adj[1] = 0b0101;
  adj[2] = 0b0011;
  EXPECT_EQ(max_independent_set_size(adj, 0b1110), 2);  // {1 or 2} + {3}
}

TEST(MisTest, SelfLoopsIgnored) {
  std::vector<std::uint64_t> adj(3, 0);
  adj[0] = 0b001;  // self loop on 0
  EXPECT_EQ(max_independent_set_size(adj, 0b111), 3);
}

TEST(MisTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    const int n = 3 + static_cast<int>(rng.uniform(0, 11));  // up to 14
    std::vector<std::uint64_t> adj(static_cast<std::size_t>(n), 0);
    const double p = rng.uniform01() * 0.6;
    for (int i = 0; i < n; ++i) {
      for (int k = i + 1; k < n; ++k) {
        if (rng.chance(p)) {
          adj[static_cast<std::size_t>(i)] |= 1ULL << k;
          adj[static_cast<std::size_t>(k)] |= 1ULL << i;
        }
      }
    }
    const std::uint64_t vertices = (1ULL << n) - 1;
    const int expected = brute_force_mis(adj, vertices);
    EXPECT_EQ(max_independent_set_size(adj, vertices), expected)
        << "iter " << iter << " n " << n;
    EXPECT_TRUE(has_independent_set(adj, vertices, expected));
    EXPECT_FALSE(has_independent_set(adj, vertices, expected + 1));
  }
}

TEST(MisTest, ConflictShapedGraphs) {
  // The shape arising in the protocol: a few "accuser" vertices adjacent to
  // many honest vertices, honest vertices pairwise non-adjacent. MIS must
  // recover all honest vertices.
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    const int honest = 5 + static_cast<int>(rng.uniform(0, 10));
    const int byz = 1 + static_cast<int>(rng.uniform(0, 3));
    const int n = honest + byz;
    std::vector<std::uint64_t> adj(static_cast<std::size_t>(n), 0);
    for (int a = honest; a < n; ++a) {
      for (int h = 0; h < honest; ++h) {
        if (rng.chance(0.7)) {
          adj[static_cast<std::size_t>(a)] |= 1ULL << h;
          adj[static_cast<std::size_t>(h)] |= 1ULL << a;
        }
      }
    }
    const std::uint64_t vertices = (1ULL << n) - 1;
    EXPECT_GE(max_independent_set_size(adj, vertices), honest);
  }
}

}  // namespace
}  // namespace rr
