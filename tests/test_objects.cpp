// Unit tests of the base-object automata (paper Figures 3 and 5): timestamp
// guards, reader-timestamp storage, ack suppression, history bookkeeping and
// the Section 5.1 suffix behaviour. Uses a capturing context, no simulator.
#include <gtest/gtest.h>

#include "adversary/capture.hpp"
#include "objects/regular_object.hpp"
#include "objects/safe_object.hpp"

namespace rr::objects {
namespace {

using adversary::CapturingContext;
using adversary::Outgoing;

/// Minimal real context backing the capturing one.
class NullContext final : public net::Context {
 public:
  [[nodiscard]] ProcessId self() const override { return 99; }
  [[nodiscard]] Time now() const override { return 0; }
  void send(ProcessId, wire::Message) override {}
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Rng rng_{1};
};

struct Fixture {
  Topology topo{2, 4};  // 2 readers, 4 objects
  NullContext null;

  std::vector<Outgoing> deliver(net::Process& obj, ProcessId from,
                                wire::Message msg) {
    CapturingContext cap(null);
    obj.on_message(cap, from, msg);
    return cap.take();
  }

  WTuple tuple(Ts ts, const Value& v) {
    return WTuple{TsVal{ts, v}, init_tsrarray(4)};
  }
};

// ---------------------------------------------------------------------------
// SafeObject (Figure 3)
// ---------------------------------------------------------------------------

TEST(SafeObjectTest, InitialStateIsBottom) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  EXPECT_EQ(obj.state().ts, 0u);
  EXPECT_TRUE(obj.state().pw.is_bottom());
  EXPECT_EQ(obj.state().w, initial_wtuple(4));
  EXPECT_EQ(obj.state().tsr, TsrRow(2, 0));
}

TEST(SafeObjectTest, PwAdoptsStrictlyNewer) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  auto out = f.deliver(obj, f.topo.writer(),
                       wire::PwMsg{1, TsVal{1, "v1"}, f.tuple(0, "")});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::PwAckMsg>(out[0].msg);
  EXPECT_EQ(ack.ts, 1u);
  EXPECT_EQ(ack.tsr, TsrRow(2, 0));
  EXPECT_EQ(obj.state().pw, (TsVal{1, "v1"}));

  // Same timestamp again: no state change, no ack (Figure 3's if-guard).
  out = f.deliver(obj, f.topo.writer(),
                  wire::PwMsg{1, TsVal{1, "other"}, f.tuple(0, "")});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(obj.state().pw.val, "v1");
}

TEST(SafeObjectTest, WAdoptsEqualOrNewer) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  f.deliver(obj, f.topo.writer(),
            wire::PwMsg{2, TsVal{2, "v2"}, f.tuple(1, "v1")});
  // W with the same ts must be adopted and acked (>= guard).
  auto out = f.deliver(obj, f.topo.writer(),
                       wire::WMsg{2, TsVal{2, "v2"}, f.tuple(2, "v2")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<wire::WAckMsg>(out[0].msg).ts, 2u);
  EXPECT_EQ(obj.state().w, f.tuple(2, "v2"));
  // Older W rejected silently.
  out = f.deliver(obj, f.topo.writer(),
                  wire::WMsg{1, TsVal{1, "v1"}, f.tuple(1, "v1")});
  EXPECT_TRUE(out.empty());
}

TEST(SafeObjectTest, WBeforePwIsHandled) {
  // Channels are not FIFO: the W of write k can arrive before its PW.
  Fixture f;
  SafeObject obj(f.topo, 0);
  auto out = f.deliver(obj, f.topo.writer(),
                       wire::WMsg{3, TsVal{3, "v3"}, f.tuple(3, "v3")});
  ASSERT_EQ(out.size(), 1u);
  // The late PW of the same write must be ignored (ts not strictly newer).
  out = f.deliver(obj, f.topo.writer(),
                  wire::PwMsg{3, TsVal{3, "v3"}, f.tuple(2, "v2")});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(obj.state().w, f.tuple(3, "v3"));
}

TEST(SafeObjectTest, ReadStoresTimestampBeforeReplying) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  auto out = f.deliver(obj, f.topo.reader(1), wire::ReadMsg{1, 5, 0});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::ReadAckMsg>(out[0].msg);
  EXPECT_EQ(ack.tsr, 5u);
  EXPECT_EQ(obj.state().tsr[1], 5u);
  EXPECT_EQ(obj.state().tsr[0], 0u) << "other reader's slot untouched";
}

TEST(SafeObjectTest, StaleReaderTimestampSuppressed) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  f.deliver(obj, f.topo.reader(0), wire::ReadMsg{1, 5, 0});
  // Equal or lower timestamps get no reply (replay protection).
  EXPECT_TRUE(f.deliver(obj, f.topo.reader(0), wire::ReadMsg{1, 5, 0}).empty());
  EXPECT_TRUE(f.deliver(obj, f.topo.reader(0), wire::ReadMsg{2, 4, 0}).empty());
  EXPECT_EQ(obj.state().tsr[0], 5u);
}

TEST(SafeObjectTest, NonWriterCannotWrite) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  auto out = f.deliver(obj, f.topo.reader(0),
                       wire::PwMsg{9, TsVal{9, "evil"}, f.tuple(9, "evil")});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(obj.state().ts, 0u);
}

TEST(SafeObjectTest, NonReaderCannotRead) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  EXPECT_TRUE(f.deliver(obj, f.topo.writer(), wire::ReadMsg{1, 5, 0}).empty());
  EXPECT_TRUE(
      f.deliver(obj, f.topo.object(1), wire::ReadMsg{1, 5, 0}).empty());
}

TEST(SafeObjectTest, IgnoresForeignMessageTypes) {
  Fixture f;
  SafeObject obj(f.topo, 0);
  EXPECT_TRUE(f.deliver(obj, f.topo.writer(), wire::AbdQueryMsg{1}).empty());
  EXPECT_TRUE(f.deliver(obj, f.topo.reader(0), wire::PollMsg{1, 1}).empty());
}

TEST(SafeObjectTest, SetStateSupportsForging) {
  // The lower-bound orchestration relies on state save/restore.
  Fixture f;
  SafeObject obj(f.topo, 0);
  f.deliver(obj, f.topo.writer(),
            wire::PwMsg{4, TsVal{4, "v4"}, f.tuple(3, "v3")});
  const auto snapshot = obj.state();
  SafeObject clone(f.topo, 0);
  clone.set_state(snapshot);
  EXPECT_EQ(clone.state(), obj.state());
}

// ---------------------------------------------------------------------------
// RegularObject (Figure 5)
// ---------------------------------------------------------------------------

TEST(RegularObjectTest, InitialHistoryHasSlotZero) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  ASSERT_EQ(obj.history_size(), 1u);
  const auto& e = obj.state().history.at(0);
  ASSERT_TRUE(e.pw.has_value());
  EXPECT_TRUE(e.pw->is_bottom());
  ASSERT_TRUE(e.w.has_value());
  EXPECT_EQ(*e.w, initial_wtuple(4));
}

TEST(RegularObjectTest, PwOpensSlotAndBackfillsPrevious) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  // PW of write 2 carries write 1's full tuple: slot 2 opens with pw only,
  // slot 1 is completed from the carried tuple.
  const WTuple w1 = f.tuple(1, "v1");
  auto out =
      f.deliver(obj, f.topo.writer(), wire::PwMsg{2, TsVal{2, "v2"}, w1});
  ASSERT_EQ(out.size(), 1u);
  const auto& h = obj.state().history;
  ASSERT_TRUE(h.contains(2));
  EXPECT_EQ(h.at(2).pw, (TsVal{2, "v2"}));
  EXPECT_FALSE(h.at(2).w.has_value());
  ASSERT_TRUE(h.contains(1));
  EXPECT_EQ(h.at(1).w, w1);
  EXPECT_EQ(h.at(1).pw, w1.tsval);
}

TEST(RegularObjectTest, WCompletesSlot) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  const WTuple w2 = f.tuple(2, "v2");
  f.deliver(obj, f.topo.writer(), wire::PwMsg{2, TsVal{2, "v2"}, f.tuple(1, "v1")});
  auto out = f.deliver(obj, f.topo.writer(), wire::WMsg{2, TsVal{2, "v2"}, w2});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(obj.state().history.at(2).w, w2);
}

TEST(RegularObjectTest, HistoryNeverShrinks) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  for (Ts k = 1; k <= 5; ++k) {
    f.deliver(obj, f.topo.writer(),
              wire::PwMsg{k, TsVal{k, "v"}, f.tuple(k - 1, "p")});
    f.deliver(obj, f.topo.writer(),
              wire::WMsg{k, TsVal{k, "v"}, f.tuple(k, "v")});
  }
  EXPECT_EQ(obj.history_size(), 6u);  // slots 0..5
}

TEST(RegularObjectTest, ReadReturnsFullHistoryByDefault) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  for (Ts k = 1; k <= 3; ++k) {
    f.deliver(obj, f.topo.writer(),
              wire::WMsg{k, TsVal{k, "v"}, f.tuple(k, "v")});
  }
  auto out = f.deliver(obj, f.topo.reader(0), wire::HistReadMsg{1, 1, 0, 0});
  ASSERT_EQ(out.size(), 1u);
  const auto& ack = std::get<wire::HistReadAckMsg>(out[0].msg);
  EXPECT_EQ(ack.history.size(), 4u);  // 0..3
  EXPECT_EQ(ack.since, 0u);
  EXPECT_EQ(ack.resync, 0u);
}

TEST(RegularObjectTest, SuffixRequestTrimsHistory) {
  // Section 5.1: a reader with cache_ts = 2 receives only slots >= 2.
  Fixture f;
  RegularObject obj(f.topo, 0);
  for (Ts k = 1; k <= 4; ++k) {
    f.deliver(obj, f.topo.writer(),
              wire::WMsg{k, TsVal{k, "v"}, f.tuple(k, "v")});
  }
  auto out = f.deliver(obj, f.topo.reader(0), wire::HistReadMsg{1, 1, 2, 0});
  const auto& ack = std::get<wire::HistReadAckMsg>(out[0].msg);
  EXPECT_EQ(ack.history.size(), 3u);  // slots 2, 3, 4
  EXPECT_FALSE(ack.history.contains(0));
  EXPECT_FALSE(ack.history.contains(1));
  EXPECT_TRUE(ack.history.contains(2));
  EXPECT_EQ(ack.since, 2u);
}

TEST(RegularObjectTest, AckedWatermarkShipsDeltaOnly) {
  // A reader that already merged up to slot 3 (have = 3) receives only the
  // inclusive suffix [3, ts]; the floor slot itself re-ships because its w
  // can still fill in later.
  Fixture f;
  RegularObject obj(f.topo, 0);
  for (Ts k = 1; k <= 5; ++k) {
    f.deliver(obj, f.topo.writer(),
              wire::WMsg{k, TsVal{k, "v"}, f.tuple(k, "v")});
  }
  auto out = f.deliver(obj, f.topo.reader(0), wire::HistReadMsg{1, 1, 0, 3});
  const auto& ack = std::get<wire::HistReadAckMsg>(out[0].msg);
  EXPECT_EQ(ack.history.size(), 3u);  // slots 3, 4, 5
  EXPECT_TRUE(ack.history.contains(3));
  EXPECT_EQ(ack.since, 3u);
  EXPECT_EQ(ack.resync, 0u);
  EXPECT_EQ(obj.acked()[0], 3u);
}

TEST(RegularObjectTest, StaleWriterTimestampIgnored) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  f.deliver(obj, f.topo.writer(),
            wire::WMsg{5, TsVal{5, "v5"}, f.tuple(5, "v5")});
  // An older PW must not touch the history (ts' > ts required).
  auto out = f.deliver(obj, f.topo.writer(),
                       wire::PwMsg{3, TsVal{3, "v3"}, f.tuple(2, "v2")});
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(obj.state().history.contains(3));
}

TEST(RegularObjectTest, ReaderTimestampGuardMatchesSafeObject) {
  Fixture f;
  RegularObject obj(f.topo, 0);
  EXPECT_FALSE(
      f.deliver(obj, f.topo.reader(1), wire::HistReadMsg{1, 7, 0, 0}).empty());
  EXPECT_TRUE(
      f.deliver(obj, f.topo.reader(1), wire::HistReadMsg{2, 7, 0, 0}).empty());
  EXPECT_FALSE(
      f.deliver(obj, f.topo.reader(1), wire::HistReadMsg{2, 8, 0, 0}).empty());
}

}  // namespace
}  // namespace rr::objects
