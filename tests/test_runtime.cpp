// Threaded runtime: the same automata on real threads. Blocking client
// facade, concurrent readers, Byzantine objects, and jittered scheduling.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/register.hpp"

namespace rr::runtime {
namespace {

TEST(RobustRegisterTest, WriteThenRead) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(1, 1, 1);
  RobustRegister reg(opts);
  const auto w = reg.write("hello");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->ts, 1u);
  EXPECT_EQ(w->rounds, 2);
  const auto r = reg.read();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tsval, (TsVal{1, "hello"}));
  EXPECT_EQ(r->rounds, 2);
}

TEST(RobustRegisterTest, ReadBeforeWriteIsBottom) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(2, 1, 1);
  RobustRegister reg(opts);
  const auto r = reg.read();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->tsval.is_bottom());
}

TEST(RobustRegisterTest, SequentialValuesObservedInOrder) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(2, 2, 1);
  RobustRegister reg(opts);
  for (int k = 1; k <= 20; ++k) {
    ASSERT_TRUE(reg.write("v" + std::to_string(k)).has_value());
    const auto r = reg.read();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->tsval.ts, static_cast<Ts>(k));
    EXPECT_EQ(r->tsval.val, "v" + std::to_string(k));
  }
}

TEST(RobustRegisterTest, RegularVariantWorks) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(1, 1, 2);
  opts.regular = true;
  opts.optimized = true;
  RobustRegister reg(opts);
  ASSERT_TRUE(reg.write("r1").has_value());
  const auto r = reg.read(1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tsval.val, "r1");
}

TEST(RobustRegisterTest, ConcurrentReadersAndWriter) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(2, 1, 4);
  opts.max_jitter_us = 50;
  RobustRegister reg(opts);

  std::atomic<bool> stop{false};
  std::atomic<int> reads_done{0};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> threads;
  for (int j = 0; j < 4; ++j) {
    threads.emplace_back([&, j] {
      Ts last = 0;
      while (!stop.load()) {
        const auto r = reg.read(j);
        if (!r.has_value()) continue;
        // Per-reader timestamps may regress only within regularity limits;
        // in a quiescent gap they must not regress below a value this
        // reader already saw AFTER the corresponding write completed. We
        // check the weaker but still meaningful property that reads return
        // valid written timestamps.
        if (r->tsval.ts < last && last - r->tsval.ts > 1) {
          // allow single-step concurrency effects; larger regressions are
          // suspicious for a SWMR register under a serial writer
          monotone.store(false);
        }
        last = std::max(last, r->tsval.ts);
        reads_done.fetch_add(1);
      }
    });
  }
  for (int k = 1; k <= 30; ++k) {
    ASSERT_TRUE(reg.write("w" + std::to_string(k)).has_value());
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_GT(reads_done.load(), 0);
  EXPECT_TRUE(monotone.load());
}

TEST(RobustRegisterTest, ByzantineObjectsAreHarmless) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(2, 2, 1);
  opts.byzantine[0] = adversary::StrategyKind::Forger;
  opts.byzantine[1] = adversary::StrategyKind::Collude;
  RobustRegister reg(opts);
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(reg.write("b" + std::to_string(k)).has_value());
    const auto r = reg.read();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->tsval.ts, static_cast<Ts>(k));
    EXPECT_EQ(r->tsval.val, "b" + std::to_string(k));
  }
}

TEST(RobustRegisterTest, JitteredSchedulingStaysCorrect) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(1, 1, 2);
  opts.max_jitter_us = 200;
  opts.regular = true;
  RobustRegister reg(opts);
  std::thread reader([&] {
    for (int i = 0; i < 10; ++i) {
      const auto r = reg.read(0);
      ASSERT_TRUE(r.has_value());
    }
  });
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(reg.write("j" + std::to_string(k)).has_value());
  }
  reader.join();
  const auto fin = reg.read(1);
  ASSERT_TRUE(fin.has_value());
  EXPECT_EQ(fin->tsval.ts, 10u);
}

TEST(ClusterTest, MessagesDeliveredCountAdvances) {
  RobustRegister::Options opts;
  opts.res = Resilience::optimal(1, 1, 1);
  RobustRegister reg(opts);
  ASSERT_TRUE(reg.write("x").has_value());
  EXPECT_GT(reg.cluster().messages_delivered(), 0u);
}

}  // namespace
}  // namespace rr::runtime
