// White-box tests of the regular reader automaton (Figure 6): per-slot
// safe/invalid predicates, the one-reply-per-object-per-round guard,
// suffix-request plumbing, cache behaviour, and hostile histories.
#include <gtest/gtest.h>

#include <optional>

#include "adversary/capture.hpp"
#include "core/regular_reader.hpp"

namespace rr::core {
namespace {

using adversary::CapturingContext;

class NullContext final : public net::Context {
 public:
  [[nodiscard]] ProcessId self() const override { return 1; }
  [[nodiscard]] Time now() const override { return 0; }
  void send(ProcessId, wire::Message) override {}
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Rng rng_{3};
};

class RegularHarness {
 public:
  explicit RegularHarness(bool optimized = false)
      : topo_(1, res_.num_objects),
        reader_(res_, topo_, 0, optimized) {}

  void start() {
    CapturingContext cap(null_);
    reader_.read(cap, [this](const ReadResult& r) { result_ = r; });
    auto sent = cap.take();
    ASSERT_EQ(sent.size(), 4u);
    const auto& req = std::get<wire::HistReadMsg>(sent[0].msg);
    round1_tsr_ = req.tsr;
    requested_cache_ts_ = req.cache_ts;
  }

  void ack(int i, std::uint8_t round, ReaderTs tsr, wire::History h,
           Ts since = 0, std::uint8_t resync = 0) {
    CapturingContext cap(null_);
    reader_.on_message(
        cap, topo_.object(i),
        wire::HistReadAckMsg{round, tsr, std::move(h), since, resync});
    for (const auto& out : cap.sent()) {
      if (const auto* rd = std::get_if<wire::HistReadMsg>(&out.msg)) {
        if (rd->round == 2) round2_started_ = true;
      }
    }
  }

  [[nodiscard]] WTuple tuple(Ts ts, const Value& v) const {
    return WTuple{TsVal{ts, v}, init_tsrarray(4)};
  }

  /// History with slot 0 plus complete slots 1..k.
  [[nodiscard]] wire::History full_history(Ts k) const {
    wire::History h;
    h[0] = wire::HistEntry{TsVal::bottom(), initial_wtuple(4)};
    for (Ts ts = 1; ts <= k; ++ts) {
      const Value v = "v" + std::to_string(ts);
      h[ts] = wire::HistEntry{TsVal{ts, v}, tuple(ts, v)};
    }
    return h;
  }

  Resilience res_ = Resilience::optimal(1, 1, 1);  // S = 4, quorum = 3
  Topology topo_;
  NullContext null_;
  RegularReader reader_;
  ReaderTs round1_tsr_{0};
  Ts requested_cache_ts_{99};
  bool round2_started_{false};
  std::optional<ReadResult> result_;
};

TEST(RegularReaderUnit, ReturnsNewestSafeSlot) {
  RegularHarness h;
  h.start();
  EXPECT_EQ(h.requested_cache_ts_, 0u) << "unoptimized reads ask from 0";
  for (int i = 0; i < 3; ++i) {
    h.ack(i, 1, h.round1_tsr_, h.full_history(2));
  }
  // Round-1 evidence alone yields b+1 = 2 vouchers for slot 2: the read
  // returns as soon as round 2 starts.
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{2, "v2"}));
  EXPECT_EQ(h.result_->rounds, 2);
}

TEST(RegularReaderUnit, DuplicateRoundAcksIgnored) {
  RegularHarness h;
  h.start();
  h.ack(0, 1, h.round1_tsr_, h.full_history(1));
  h.ack(0, 1, h.round1_tsr_, h.full_history(3));  // same object, same round
  EXPECT_FALSE(h.round2_started_) << "object 0 may fill its slot only once";
  EXPECT_EQ(h.reader_.diag().round1_acks, 1);
}

TEST(RegularReaderUnit, PwOnlySlotDoesNotBecomeCandidate) {
  // A slot holding only the pre-write (w = nil) is not a candidate, but its
  // pw can vouch for the tuple once some object reports the full slot.
  RegularHarness h;
  h.start();
  wire::History pw_only = h.full_history(0);
  pw_only[5] = wire::HistEntry{TsVal{5, "v5"}, std::nullopt};
  wire::History full = h.full_history(0);
  full[5] = wire::HistEntry{TsVal{5, "v5"}, h.tuple(5, "v5")};
  h.ack(0, 1, h.round1_tsr_, pw_only);
  h.ack(1, 1, h.round1_tsr_, pw_only);
  h.ack(2, 1, h.round1_tsr_, full);
  // Candidate <5, v5> exists (object 2) and has 2 vouchers via the pw
  // entries of objects 0 and 1 -> safe at round-2 entry.
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{5, "v5"}));
}

TEST(RegularReaderUnit, ForgedSlotDiesByInvalidation) {
  RegularHarness h;
  h.start();
  wire::History forged = h.full_history(1);
  forged[9] = wire::HistEntry{TsVal{9, "evil"}, h.tuple(9, "evil")};
  h.ack(0, 1, h.round1_tsr_, forged);           // the liar
  h.ack(1, 1, h.round1_tsr_, h.full_history(1));
  h.ack(2, 1, h.round1_tsr_, h.full_history(1));
  ASSERT_TRUE(h.round2_started_);
  EXPECT_FALSE(h.result_.has_value())
      << "slot 9 has one voucher and only 2 denials so far";
  // A third honest reply without slot 9 reaches invalid(c)'s t+b+1 = 3.
  h.ack(3, 2, h.round1_tsr_ + 1, h.full_history(1));
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{1, "v1"}));
  EXPECT_EQ(h.reader_.diag().candidates_removed, 1);
}

TEST(RegularReaderUnit, MismatchedSlotContentCountsAsDenial) {
  // Same slot number, different value: honest objects deny the forged
  // variant even though they HAVE the slot (Figure 6 line 2's pw/w
  // mismatch arm).
  RegularHarness h;
  h.start();
  wire::History forged = h.full_history(0);
  forged[1] = wire::HistEntry{TsVal{1, "EVIL"}, h.tuple(1, "EVIL")};
  h.ack(0, 1, h.round1_tsr_, forged);
  h.ack(1, 1, h.round1_tsr_, h.full_history(1));  // genuine v1 at slot 1
  h.ack(2, 1, h.round1_tsr_, h.full_history(1));
  // Candidates: <1,EVIL> (1 voucher) and <1,v1> (2 vouchers, safe). Both
  // are highCand (same ts); the safe one is returned.
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{1, "v1"}));
}

TEST(RegularReaderUnit, OptimizedRequestsSuffixFromCache) {
  RegularHarness h(/*optimized=*/true);
  h.start();
  EXPECT_EQ(h.requested_cache_ts_, 0u) << "cold cache asks from 0";
  for (int i = 0; i < 3; ++i) h.ack(i, 1, h.round1_tsr_, h.full_history(3));
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval.ts, 3u);
  // Second read must request the suffix from the cached timestamp.
  h.result_.reset();
  h.round2_started_ = false;
  h.start();
  EXPECT_EQ(h.requested_cache_ts_, 3u);
}

TEST(RegularReaderUnit, EmptyDeltasReuseTheMirrorCandidates) {
  RegularHarness h(/*optimized=*/true);
  h.start();
  for (int i = 0; i < 3; ++i) h.ack(i, 1, h.round1_tsr_, h.full_history(2));
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval.ts, 2u);
  h.result_.reset();
  h.round2_started_ = false;
  // Next read: nothing was written, so objects ship EMPTY deltas. The
  // candidate is re-derived from the persistent mirrors (which still vouch
  // for slot 2) -- a real return, not a cache fallback.
  h.start();
  for (int i = 0; i < 3; ++i) h.ack(i, 1, h.round1_tsr_, wire::History{});
  ASSERT_TRUE(h.round2_started_);
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval, (TsVal{2, "v2"}));
  EXPECT_FALSE(h.result_->returned_default);
}

TEST(RegularReaderUnit, OptimizedFallsBackToCacheWhenCandidatesDrain) {
  RegularHarness h(/*optimized=*/true);
  h.start();
  for (int i = 0; i < 3; ++i) h.ack(i, 1, h.round1_tsr_, h.full_history(2));
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->tsval.ts, 2u);
  h.result_.reset();
  h.round2_started_ = false;
  // Next read: every object hard-capped its history past the reader's floor
  // and answers with a flagged resync carrying nothing the reader can use.
  // The mirrors are rebuilt from the (empty) flagged suffixes, C drains,
  // and the read must return the cached value instead of blocking.
  h.start();
  for (int i = 0; i < 3; ++i) {
    h.ack(i, 1, h.round1_tsr_, wire::History{}, /*since=*/9, /*resync=*/1);
  }
  ASSERT_TRUE(h.round2_started_);
  ASSERT_TRUE(h.result_.has_value())
      << "empty candidate set must fall back to the cache";
  EXPECT_EQ(h.result_->tsval, (TsVal{2, "v2"}));
  EXPECT_TRUE(h.result_->returned_default);
  EXPECT_TRUE(h.reader_.diag().returned_from_cache);
  EXPECT_EQ(h.reader_.diag().resyncs, 3u);
}

TEST(RegularReaderUnit, ConflictViaHistoryTuple) {
  RegularHarness h;
  h.start();
  // Object 2's history contains a tuple accusing object 0 of a huge reader
  // timestamp -> conflict(0, 2) blocks quorums containing both.
  WTuple accusing = h.tuple(4, "x");
  TsrRow row(1, 0);
  row[0] = 1'000'000'000;
  accusing.tsrarray[0] = std::move(row);
  wire::History evil = h.full_history(0);
  evil[4] = wire::HistEntry{TsVal{4, "x"}, accusing};
  h.ack(0, 1, h.round1_tsr_, h.full_history(0));
  h.ack(1, 1, h.round1_tsr_, h.full_history(0));
  h.ack(2, 1, h.round1_tsr_, evil);
  EXPECT_FALSE(h.round2_started_);
  h.ack(3, 1, h.round1_tsr_, h.full_history(0));
  EXPECT_TRUE(h.round2_started_) << "{0,1,3} is a clean quorum";
}

TEST(RegularReaderUnit, WaitsWhenRoundTwoCandidateLacksVouchers) {
  // Empty-ish round 1 followed by a round-2-only candidate: regularity's
  // proof machinery (case 2.b) lives in the DES tests; here we only pin
  // that the reader does not return an unvouched round-2 discovery.
  RegularHarness h;
  h.start();
  for (int i = 0; i < 3; ++i) h.ack(i, 1, h.round1_tsr_, h.full_history(0));
  ASSERT_TRUE(h.round2_started_);
  ASSERT_TRUE(h.result_.has_value())
      << "slot 0 alone is safe (every object vouches for w0)";
  EXPECT_TRUE(h.result_->tsval.is_bottom());
}

}  // namespace
}  // namespace rr::core
