// History garbage collection for regular objects (the extension the paper's
// Section 5 calls for: full histories "might raise issues of storage
// exhaustion and need careful garbage collection").
//
// Policy under test: keep the newest `history_limit` slots. Must bound
// memory, preserve regularity and wait-freedom (reads steer to newer values
// when old slots are denied), and compose with the Section 5.1 cached
// suffixes.
#include <gtest/gtest.h>

#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "objects/regular_object.hpp"

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::Protocol;

DeploymentOptions gc_opts(int t, int b, std::size_t limit, std::uint64_t seed,
                          bool optimized = false) {
  DeploymentOptions opts;
  opts.protocol = optimized ? Protocol::RegularOptimized : Protocol::Regular;
  opts.res = Resilience::optimal(t, b, 2);
  opts.seed = seed;
  opts.history_limit = limit;
  return opts;
}

TEST(HistoryGc, MemoryIsBounded) {
  Deployment d(gc_opts(1, 1, 4, 1));
  harness::write_stream(d, 0, 1'000, 50);
  d.run();
  for (int i = 0; i < d.res().num_objects; ++i) {
    auto& obj = dynamic_cast<objects::RegularObject&>(d.object_process(i));
    EXPECT_LE(obj.history_size(), 4u) << "object " << i;
  }
}

TEST(HistoryGc, NewestSlotsSurvive) {
  Deployment d(gc_opts(1, 1, 3, 2));
  harness::write_stream(d, 0, 1'000, 30);
  d.run();
  auto& obj = dynamic_cast<objects::RegularObject&>(d.object_process(0));
  EXPECT_TRUE(obj.state().history.contains(30));
  EXPECT_TRUE(obj.state().history.contains(29));
  EXPECT_FALSE(obj.state().history.contains(1));
}

TEST(HistoryGc, ReadsRemainCorrectAfterPruning) {
  Deployment d(gc_opts(2, 2, 4, 3));
  harness::sequential_then_reads(d, 30, 8);
  d.run();
  const auto report = d.check();
  EXPECT_TRUE(report.ok()) << report.summary();
  // Every read must have returned the latest value.
  for (const auto& op : d.log().snapshot()) {
    if (op.kind == checker::OpRecord::Kind::Read) {
      EXPECT_EQ(op.ts, 30u);
    }
  }
}

class HistoryGcSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(HistoryGcSweep, RegularityUnderConcurrencyAndFaults) {
  const auto [limit, optimized] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto opts = gc_opts(2, 2, limit, seed * 37, optimized);
    opts.faults =
        harness::FaultPlan::mixed(2, adversary::StrategyKind::Random, 0);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 20;
    w.reads_per_reader = 15;
    w.write_gap = 2'000;
    w.read_gap = 1'500;
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete) << "limit " << limit << " seed " << seed;
    }
    const auto report = d.check();
    EXPECT_TRUE(report.ok())
        << "limit " << limit << " seed " << seed << "\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Limits, HistoryGcSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8}, std::size_t{0}),
                       ::testing::Bool()),
    [](const auto& info) {
      const auto limit = std::get<0>(info.param);
      return (limit == 0 ? std::string("unlimited")
                         : "limit" + std::to_string(limit)) +
             (std::get<1>(info.param) ? "_opt" : "_full");
    });

TEST(HistoryGc, StaleCacheReaderStillTerminates) {
  // A reader whose cache points below the pruned horizon: objects ship only
  // the surviving suffix; the read must still terminate and return a value
  // no older than the cache (regularity of the optimized variant).
  Deployment d(gc_opts(1, 1, 2, 7, /*optimized=*/true));
  // Prime the cache at ts=1.
  d.logged_write(0, "old");
  d.logged_read(100'000, 0);
  // Push the history far past the horizon.
  harness::write_stream(d, 200'000, 1'000, 20);
  TsVal got;
  d.invoke_read(5'000'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  EXPECT_EQ(got.ts, 21u) << "must return the newest value";
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(HistoryGc, RejectsUnusableLimit) {
  const Topology topo(1, 4);
  EXPECT_DEATH(objects::RegularObject(topo, 0, 1), "two live slots");
}

}  // namespace
}  // namespace rr
