// History garbage collection for regular objects (the extension the paper's
// Section 5 calls for: full histories "might raise issues of storage
// exhaustion and need careful garbage collection").
//
// Policy under test: keep the newest `history_limit` slots. Must bound
// memory, preserve regularity and wait-freedom (reads steer to newer values
// when old slots are denied), and compose with the Section 5.1 cached
// suffixes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "adversary/capture.hpp"
#include "core/regular_reader.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "objects/regular_object.hpp"
#include "sim/delay.hpp"
#include "sim/world.hpp"

// Global allocation counter for the steady-state write-path test below
// (same pattern as test_world_pool.cpp): every heap allocation in this
// binary bumps the counter, so a measured window can assert zero.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rr {
namespace {

using harness::Deployment;
using harness::DeploymentOptions;
using harness::Protocol;

DeploymentOptions gc_opts(int t, int b, std::size_t limit, std::uint64_t seed,
                          bool optimized = false) {
  DeploymentOptions opts;
  opts.protocol = optimized ? Protocol::RegularOptimized : Protocol::Regular;
  opts.res = Resilience::optimal(t, b, 2);
  opts.seed = seed;
  opts.history_limit = limit;
  return opts;
}

TEST(HistoryGc, MemoryIsBounded) {
  Deployment d(gc_opts(1, 1, 4, 1));
  harness::write_stream(d, 0, 1'000, 50);
  d.run();
  for (int i = 0; i < d.res().num_objects; ++i) {
    auto& obj = dynamic_cast<objects::RegularObject&>(d.object_process(i));
    EXPECT_LE(obj.history_size(), 4u) << "object " << i;
  }
}

TEST(HistoryGc, NewestSlotsSurvive) {
  Deployment d(gc_opts(1, 1, 3, 2));
  harness::write_stream(d, 0, 1'000, 30);
  d.run();
  auto& obj = dynamic_cast<objects::RegularObject&>(d.object_process(0));
  EXPECT_TRUE(obj.state().history.contains(30));
  EXPECT_TRUE(obj.state().history.contains(29));
  EXPECT_FALSE(obj.state().history.contains(1));
}

TEST(HistoryGc, ReadsRemainCorrectAfterPruning) {
  Deployment d(gc_opts(2, 2, 4, 3));
  harness::sequential_then_reads(d, 30, 8);
  d.run();
  const auto report = d.check();
  EXPECT_TRUE(report.ok()) << report.summary();
  // Every read must have returned the latest value.
  for (const auto& op : d.log().snapshot()) {
    if (op.kind == checker::OpRecord::Kind::Read) {
      EXPECT_EQ(op.ts, 30u);
    }
  }
}

class HistoryGcSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(HistoryGcSweep, RegularityUnderConcurrencyAndFaults) {
  const auto [limit, optimized] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto opts = gc_opts(2, 2, limit, seed * 37, optimized);
    opts.faults =
        harness::FaultPlan::mixed(2, adversary::StrategyKind::Random, 0);
    Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 20;
    w.reads_per_reader = 15;
    w.write_gap = 2'000;
    w.read_gap = 1'500;
    harness::mixed_workload(d, w);
    d.run();
    for (const auto& op : d.log().snapshot()) {
      ASSERT_TRUE(op.complete) << "limit " << limit << " seed " << seed;
    }
    const auto report = d.check();
    EXPECT_TRUE(report.ok())
        << "limit " << limit << " seed " << seed << "\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Limits, HistoryGcSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8}, std::size_t{0}),
                       ::testing::Bool()),
    [](const auto& info) {
      const auto limit = std::get<0>(info.param);
      return (limit == 0 ? std::string("unlimited")
                         : "limit" + std::to_string(limit)) +
             (std::get<1>(info.param) ? "_opt" : "_full");
    });

TEST(HistoryGc, StaleCacheReaderStillTerminates) {
  // A reader whose cache points below the pruned horizon: objects ship only
  // the surviving suffix; the read must still terminate and return a value
  // no older than the cache (regularity of the optimized variant).
  Deployment d(gc_opts(1, 1, 2, 7, /*optimized=*/true));
  // Prime the cache at ts=1.
  d.logged_write(0, "old");
  d.logged_read(100'000, 0);
  // Push the history far past the horizon.
  harness::write_stream(d, 200'000, 1'000, 20);
  TsVal got;
  d.invoke_read(5'000'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  EXPECT_EQ(got.ts, 21u) << "must return the newest value";
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

TEST(HistoryGc, RejectsUnusableLimit) {
  const Topology topo(1, 4);
  EXPECT_DEATH(objects::RegularObject(topo, 0, 1), "two live slots");
}

// ---------------------------------------------------------------------------
// Watermark bookkeeping (unit level, capturing context).
// ---------------------------------------------------------------------------

/// Minimal real context backing the capturing one.
class NullContext final : public net::Context {
 public:
  [[nodiscard]] ProcessId self() const override { return 99; }
  [[nodiscard]] Time now() const override { return 0; }
  void send(ProcessId, wire::Message) override {}
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Rng rng_{1};
};

TEST(HistoryGc, AckedWatermarksAreMonotone) {
  // A reader's acked watermark may only advance: a later request with a
  // *lower* floor (a reader that resynced and rebuilt a shorter mirror)
  // must not drag the GC horizon back down, and a stale-tsr replay must not
  // touch it at all.
  const Topology topo(2, 4);
  objects::RegularObject obj(topo, 0, /*history_limit=*/0,
                             /*history_gc=*/false);
  NullContext null;
  auto deliver = [&](ProcessId from, wire::Message m) {
    adversary::CapturingContext cap(null);
    obj.on_message(cap, from, std::move(m));
  };
  auto write = [&](Ts ts) {
    const WTuple prev{TsVal{ts - 1, "v"}, init_tsrarray(4)};
    deliver(topo.writer(), wire::PwMsg{ts, TsVal{ts, "v"}, prev});
    deliver(topo.writer(),
            wire::WMsg{ts, TsVal{ts, "v"}, WTuple{TsVal{ts, "v"}, {}}});
  };
  for (Ts ts = 1; ts <= 6; ++ts) write(ts);

  deliver(topo.reader(0), wire::HistReadMsg{1, 10, 0, 4});
  EXPECT_EQ(obj.acked()[0], 4u);
  // Newer tsr, lower floor: the watermark holds.
  deliver(topo.reader(0), wire::HistReadMsg{2, 11, 0, 2});
  EXPECT_EQ(obj.acked()[0], 4u);
  // Stale tsr replay: ignored entirely.
  deliver(topo.reader(0), wire::HistReadMsg{1, 10, 0, 6});
  EXPECT_EQ(obj.acked()[0], 4u);
  // Genuine progress advances it; the other reader's watermark is untouched.
  deliver(topo.reader(0), wire::HistReadMsg{1, 12, 5, 6});
  EXPECT_EQ(obj.acked()[0], 6u);
  EXPECT_EQ(obj.acked()[1], 0u);
}

// ---------------------------------------------------------------------------
// GC soundness under link chaos, and the hard cap's flagged escape hatch.
// ---------------------------------------------------------------------------

TEST(HistoryGc, WatermarkGcNeverForcesResyncsUnderLinkChaos) {
  // With no hard cap the watermark rule alone decides eviction, and a
  // watermark is only raised by a floor the reader itself sent -- so GC can
  // never evict a slot a reader still needs, no matter how the network
  // mangles the request/reply stream. Lost, duplicated and reordered
  // deltas must therefore produce zero flagged resyncs and no safety
  // violation (loss is model-violating, so ops may stall; safety may not).
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const bool optimized : {false, true}) {
      auto opts = gc_opts(1, 1, /*limit=*/0, seed * 101, optimized);
      opts.link_faults.loss = {0.03, 0, 0, {}};
      opts.link_faults.duplicate = {0.05, 0, 0, {}};
      opts.link_faults.reorder = {0.10, 0, 0, {}};
      opts.link_faults.seed = seed;
      Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 25;
      w.reads_per_reader = 12;
      w.write_gap = 2'000;
      w.read_gap = 3'000;
      harness::mixed_workload(d, w);
      d.run();
      const auto report = d.check();
      EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
      for (int i = 0; i < d.res().num_objects; ++i) {
        auto& obj =
            dynamic_cast<objects::RegularObject&>(d.object_process(i));
        EXPECT_EQ(obj.resyncs_served(), 0u) << "object " << i;
      }
      for (int j = 0; j < d.res().num_readers; ++j) {
        EXPECT_EQ(d.regular_reader(j).diag().resyncs, 0u) << "reader " << j;
      }
    }
  }
}

TEST(HistoryGc, HardCapEvictsPastACrashedReaderAndFlagsResyncs) {
  // Reader 1 never reads (a crashed reader never acks), so its watermark
  // pins the GC horizon at 0 and only the hard cap bounds memory. The cap
  // keeps evicting slots reader 0 has not acked yet (its reads are far
  // apart), which must surface as explicit flagged resyncs -- and the reads
  // must still return the newest value.
  auto opts = gc_opts(1, 1, /*limit=*/4, 13, /*optimized=*/true);
  Deployment d(opts);
  harness::write_stream(d, 0, 1'000, 40);
  harness::read_stream(d, /*reader=*/0, /*start=*/10'000, /*gap=*/12'000, 4);
  TsVal got;
  d.invoke_read(5'000'000, 0,
                [&](const core::ReadResult& r) { got = r.tsval; });
  d.run();
  std::uint64_t served = 0;
  for (int i = 0; i < d.res().num_objects; ++i) {
    auto& obj = dynamic_cast<objects::RegularObject&>(d.object_process(i));
    EXPECT_LE(obj.history_size(), 4u) << "object " << i;
    served += obj.resyncs_served();
  }
  EXPECT_GT(served, 0u) << "the cap must have outrun reader 0's watermark";
  EXPECT_GT(d.regular_reader(0).diag().resyncs, 0u);
  EXPECT_EQ(got.ts, 40u) << "resynced reads must still find the newest value";
  EXPECT_TRUE(d.check().ok()) << d.check().summary();
}

// ---------------------------------------------------------------------------
// GC transparency: collecting the acked prefix may not change anything a
// client or the checker can observe -- same ops, same verdicts, and (since
// the shipped deltas start at the reader's floor either way) the very same
// DES schedule, message for message.
// ---------------------------------------------------------------------------

TEST(HistoryGc, VerdictsAndScheduleAreIdenticalWithGcOnAndOff) {
  for (const bool optimized : {false, true}) {
    std::uint64_t fp[2] = {0, 0};
    std::vector<checker::OpRecord> ops[2];
    bool ok[2] = {false, false};
    for (const int gc : {0, 1}) {
      auto opts = gc_opts(2, 1, /*limit=*/0, 99, optimized);
      opts.history_gc = gc != 0;
      opts.trace_fingerprint = true;
      Deployment d(opts);
      harness::MixedWorkloadOptions w;
      w.writes = 15;
      w.reads_per_reader = 10;
      harness::mixed_workload(d, w);
      d.run();
      fp[gc] = d.world().schedule_fingerprint();
      ops[gc] = d.log().snapshot();
      ok[gc] = d.check().ok();
      if (opts.history_gc) {
        // ...and GC actually collected something in the twin being compared.
        auto& obj =
            dynamic_cast<objects::RegularObject&>(d.object_process(0));
        EXPECT_LT(obj.history_size(), 16u);
      }
    }
    EXPECT_EQ(fp[0], fp[1]) << "GC changed the message schedule";
    EXPECT_TRUE(ok[0]);
    EXPECT_TRUE(ok[1]);
    ASSERT_EQ(ops[0].size(), ops[1].size());
    for (std::size_t i = 0; i < ops[0].size(); ++i) {
      EXPECT_EQ(ops[0][i].ts, ops[1][i].ts) << "op " << i;
      EXPECT_EQ(ops[0][i].value, ops[1][i].value) << "op " << i;
      EXPECT_EQ(ops[0][i].complete, ops[1][i].complete) << "op " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// The arena payoff: a garbage-collected object's write/ack path at steady
// state -- PW opens a slot, W completes it, the watermark rule collects the
// prefix, acks go out -- touches the heap zero times. Slots, parked
// payloads and event-pool entries are all recycled.
// ---------------------------------------------------------------------------

TEST(HistoryGc, SteadyStateWritePathIsAllocationFree) {
  struct Sink final : net::Process {
    void on_message(net::Context&, ProcessId, const wire::Message&) override {}
  };
  const Topology topo(0, 1);  // writer + one object, no readers
  sim::World w;
  w.set_delay_model(std::make_unique<sim::FixedDelay>(10));
  const auto writer = w.add_process(std::make_unique<Sink>());
  ASSERT_EQ(writer, topo.writer());
  auto obj = std::make_unique<objects::RegularObject>(topo, 0,
                                                      /*history_limit=*/4);
  auto* obj_raw = obj.get();
  const auto obj_pid = w.add_process(std::move(obj));
  ASSERT_EQ(obj_pid, topo.object(0));
  // Short values stay in the string's inline buffer; empty tsrarrays keep
  // the tuples heap-free. The write path itself must not allocate either
  // way once the arena is warm.
  auto burst = [&](Time at, Ts from, int count) {
    w.post(at, writer, [obj_pid, from, count](net::Context& ctx) {
      for (Ts ts = from; ts < from + static_cast<Ts>(count); ++ts) {
        const TsVal pw{ts, "v"};
        ctx.send(obj_pid, wire::PwMsg{ts, pw, WTuple{TsVal{ts - 1, "u"}, {}}});
        ctx.send(obj_pid, wire::WMsg{ts, pw, WTuple{pw, {}}});
      }
    });
  };
  burst(0, 1, 300);  // warm-up: slab, free lists, arena, parked payloads
  w.run();
  ASSERT_EQ(obj_raw->state().ts, 300u);
  burst(w.now() + 100, 301, 200);
  ASSERT_TRUE(w.step());  // execute the posting closure (sends reuse slots)
  const std::uint64_t before = g_heap_allocs.load();
  w.run();
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  EXPECT_EQ(allocs, 0u)
      << "steady-state PW/W handling and acks must not allocate";
  EXPECT_EQ(obj_raw->state().ts, 500u);
  EXPECT_LE(obj_raw->history_size(), 4u);
}

}  // namespace
}  // namespace rr
