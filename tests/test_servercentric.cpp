// Server-centric model (Section 6): push-based reads complete with a single
// client message; gossip propagates writes between servers; the Proposition
// 1 lower bound still applies (the Figure 1 orchestration is re-run under
// the push-model reading discipline).
#include <gtest/gtest.h>

#include "baselines/polling.hpp"
#include "checker/history.hpp"
#include "lowerbound/figure_one.hpp"
#include "servercentric/server.hpp"
#include "sim/world.hpp"

namespace rr::servercentric {
namespace {

struct ScWorld {
  Resilience res;
  Topology topo;
  sim::World world;
  baselines::PollingWriter* writer{nullptr};
  std::vector<Reader*> readers;
  std::vector<Server*> servers;
  checker::HistoryLog log;

  explicit ScWorld(int t, int b, int num_readers, std::uint64_t seed)
      : res(Resilience::optimal(t, b, num_readers)),
        topo(num_readers, res.num_objects),
        world(sim::WorldOptions{seed, true, false, 50'000'000}) {
    auto w = std::make_unique<baselines::PollingWriter>(res, topo);
    writer = w.get();
    world.add_process(std::move(w));
    for (int j = 0; j < num_readers; ++j) {
      auto r = std::make_unique<Reader>(res, topo, j);
      readers.push_back(r.get());
      world.add_process(std::move(r));
    }
    for (int i = 0; i < res.num_objects; ++i) {
      auto s = std::make_unique<Server>(topo, i);
      servers.push_back(s.get());
      world.add_process(std::move(s));
    }
    world.start();
  }

  void logged_write(Time at, Value v) {
    world.post(at, topo.writer(), [this, v](net::Context& ctx) {
      const auto h = log.record_invocation(checker::OpRecord::Kind::Write, -1,
                                           ctx.now(), v);
      writer->write(ctx, v, [this, h, v](const core::WriteResult& r) {
        log.record_write_response(h, r.completed_at, r.ts, v);
      });
    });
  }

  void logged_read(Time at, int j,
                   core::ReadCallback extra = nullptr) {
    world.post(at, topo.reader(j), [this, j, extra](net::Context& ctx) {
      const auto h =
          log.record_invocation(checker::OpRecord::Kind::Read, j, ctx.now());
      readers[static_cast<std::size_t>(j)]->read(
          ctx, [this, h, extra](const core::ReadResult& r) {
            log.record_read_response(h, r.completed_at, r.tsval);
            if (extra) extra(r);
          });
    });
  }
};

TEST(ServerCentric, ReadAfterWriteReturnsValue) {
  ScWorld sc(2, 1, 1, 1);
  TsVal got;
  sc.logged_write(0, "pushed");
  sc.logged_read(500'000, 0,
                 [&](const core::ReadResult& r) { got = r.tsval; });
  sc.world.run();
  EXPECT_EQ(got, (TsVal{1, "pushed"}));
  EXPECT_TRUE(checker::check_safety(sc.log.snapshot()).ok());
}

TEST(ServerCentric, ReadsUseOneClientMessageRound) {
  ScWorld sc(2, 2, 2, 3);
  std::vector<int> rounds;
  sc.logged_write(0, "a");
  for (int k = 0; k < 5; ++k) {
    sc.logged_read(300'000 + static_cast<Time>(k) * 100'000, 0,
                   [&](const core::ReadResult& r) { rounds.push_back(r.rounds); });
  }
  sc.world.run();
  ASSERT_EQ(rounds.size(), 5u);
  for (const int r : rounds) EXPECT_EQ(r, 1);
}

TEST(ServerCentric, GossipLetsSlowServersCatchUp) {
  // Hold the writer's channel to server 0: it must still learn the value
  // through peer gossip and eventually push it.
  ScWorld sc(1, 1, 1, 5);
  sc.world.hold(sc.topo.writer(), sc.topo.object(0));
  sc.logged_write(0, "gossiped");
  sc.world.run();
  EXPECT_EQ(sc.servers[0]->state().w, (TsVal{1, "gossiped"}));
}

TEST(ServerCentric, PushOnLateWriteCompletesPendingRead) {
  // The read starts when no quorum has the value; a concurrent write's
  // pushes complete it without any further client message.
  ScWorld sc(2, 1, 1, 7);
  TsVal got;
  sc.logged_read(0, 0, [&](const core::ReadResult& r) { got = r.tsval; });
  sc.logged_write(5'000, "late");
  sc.world.run();
  // Either the initial value (decided before the write propagated) or the
  // written one -- both are legal for a concurrent read; safety is what the
  // checker verifies.
  EXPECT_TRUE(checker::check_safety(sc.log.snapshot()).ok());
  EXPECT_TRUE(got.is_bottom() || got == (TsVal{1, "late"}));
}

TEST(ServerCentric, ConcurrentWorkloadStaysSafe) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    ScWorld sc(2, 2, 2, seed);
    for (int k = 0; k < 10; ++k) {
      sc.logged_write(static_cast<Time>(k) * 40'000, "v" + std::to_string(k + 1));
      sc.logged_read(static_cast<Time>(k) * 40'000 + 13'000, 0);
      sc.logged_read(static_cast<Time>(k) * 40'000 + 27'000, 1);
    }
    sc.world.run();
    for (const auto& op : sc.log.snapshot()) {
      ASSERT_TRUE(op.complete) << "seed " << seed;
    }
    const auto report = checker::check_safety(sc.log.snapshot());
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.summary();
  }
}

TEST(ServerCentric, CancelStopsPushes) {
  ScWorld sc(1, 1, 1, 9);
  sc.logged_read(0, 0);
  sc.world.run();
  const auto pushes_after_read = sc.servers[0]->pushes_sent();
  // Subsequent writes must not push to the completed (cancelled) read.
  sc.logged_write(sc.world.now() + 1'000, "post");
  sc.world.run();
  EXPECT_EQ(sc.servers[0]->pushes_sent(), pushes_after_read);
}

TEST(ServerCentric, LowerBoundStillHoldsInPushModel) {
  // Section 6: the Figure 1 argument migrates -- a fast read in the push
  // model is "one client message, servers reply immediately". That is
  // exactly the discipline the orchestrator drives, so the same
  // construction defeats the strawman here too.
  Resilience res;
  res.t = 2;
  res.b = 2;
  res.num_objects = 2 * res.t + 2 * res.b;
  for (const bool aggressive : {true, false}) {
    const auto report = lowerbound::run_figure_one(
        [&] { return lowerbound::make_strawman(res, aggressive); }, res,
        "v1");
    EXPECT_TRUE(report.views_identical);
    EXPECT_TRUE(report.safety_violated()) << report.summary();
  }
}

}  // namespace
}  // namespace rr::servercentric
