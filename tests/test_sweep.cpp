// Sweep-engine guarantees: seeded-chaos determinism (same seed => bit-
// identical cell fingerprints, across repeated runs and across worker
// counts; different seeds => distinct schedules), deliberate-violation
// shrinking to a minimal replayable schedule, and the quick grid's CI
// contract (>= 1000 cells, >= 3 protocols, both backends).
#include <gtest/gtest.h>

#include <set>

#include "harness/sweep.hpp"

namespace rr::harness {
namespace {

SweepPlan small_des_plan() {
  SweepPlan plan;
  plan.protocols = {Protocol::Safe, Protocol::Regular};
  plan.backends = {BackendKind::Sim};
  plan.templates = {FaultTemplate::Crash, FaultTemplate::Chaos,
                    FaultTemplate::ByzChaos};
  plan.seeds = 6;
  return plan;
}

TEST(Sweep, SameSeedBitIdenticalFingerprintAcrossRuns) {
  SweepEngine engine(small_des_plan());
  for (std::size_t i = 0; i < engine.plan().num_cells(); i += 7) {
    const Scenario s = engine.materialize(i);
    const CellVerdict a = SweepEngine::run_cell(s);
    const CellVerdict b = SweepEngine::run_cell(s);
    EXPECT_TRUE(a.ok) << a.key << ": " << a.first_violation;
    EXPECT_NE(a.fingerprint, 0u) << a.key;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << a.key;
    EXPECT_EQ(a.events, b.events) << a.key;
    EXPECT_EQ(a.net.bytes_sent, b.net.bytes_sent) << a.key;
    EXPECT_EQ(a.read_p95, b.read_p95) << a.key;
  }
}

TEST(Sweep, WorkerCountDoesNotChangeVerdicts) {
  SweepEngine engine(small_des_plan());
  const SweepReport serial = engine.run(1);
  const SweepReport parallel = engine.run(4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].key, parallel.cells[i].key);
    EXPECT_EQ(serial.cells[i].fingerprint, parallel.cells[i].fingerprint)
        << serial.cells[i].key;
    EXPECT_EQ(serial.cells[i].ok, parallel.cells[i].ok);
    EXPECT_EQ(serial.cells[i].events, parallel.cells[i].events);
  }
  EXPECT_EQ(serial.failed, 0);
  EXPECT_EQ(parallel.failed, 0);
}

TEST(Sweep, DistinctSeedsProduceDistinctSchedules) {
  SweepEngine engine(small_des_plan());
  std::set<std::uint64_t> fingerprints;
  constexpr std::uint64_t kSeeds = 24;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Scenario s = engine.materialize(Protocol::Safe, BackendKind::Sim,
                                          FaultTemplate::Chaos, seed);
    fingerprints.insert(SweepEngine::run_cell(s).fingerprint);
  }
  // A collision would mean two different seeds produced the same delivery
  // schedule, history, and traffic -- the seed would not be reaching the
  // chaos/workload generation.
  EXPECT_EQ(fingerprints.size(), kSeeds);
}

TEST(Sweep, ReplayByKeyReproducesTheCell) {
  SweepEngine engine(small_des_plan());
  const Scenario original = engine.materialize(
      Protocol::Regular, BackendKind::Sim, FaultTemplate::ByzChaos, 17);
  const auto replayed = engine.materialize_key("regular:des:byzchaos:17");
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->key(), original.key());
  EXPECT_EQ(SweepEngine::run_cell(*replayed).fingerprint,
            SweepEngine::run_cell(original).fingerprint);

  EXPECT_FALSE(engine.materialize_key("regular:des:byzchaos").has_value());
  EXPECT_FALSE(engine.materialize_key("nope:des:chaos:1").has_value());
  EXPECT_FALSE(engine.materialize_key("safe:des:chaos:x").has_value());
  // Overload on threads materializes with a bounded wall-clock deadline, so
  // a replay degrades to a liveness verdict instead of aborting.
  const auto overload = engine.materialize_key("safe:threads:overload:1");
  ASSERT_TRUE(overload.has_value());
  EXPECT_GT(overload->max_wall_ms, 0u);
}

TEST(Sweep, QuickGridMeetsTheCiContract) {
  const SweepPlan quick = SweepPlan::quick();
  EXPECT_GE(quick.num_cells(), 1000u);
  EXPECT_GE(quick.protocols.size(), 3u);
  EXPECT_EQ(quick.backends.size(), 2u);  // both substrates
}

// The overload template is the engine's deliberate liveness violation: t+1
// timed crashes (quorums of S-t permanently unreachable) plus hold-wave
// noise. The shrinker must strip the noise and return exactly the t+1
// crashes -- a minimal schedule: dropping any one more crash re-enters the
// budget and the run passes.
TEST(Sweep, OverloadShrinksToMinimalCrashSchedule) {
  SweepEngine engine(small_des_plan());
  const Scenario s = engine.materialize(Protocol::Safe, BackendKind::Sim,
                                        FaultTemplate::Overload, 1);
  ASSERT_GT(s.events.size(), static_cast<std::size_t>(s.t + 1));

  const CellVerdict full = SweepEngine::run_cell(s);
  ASSERT_FALSE(full.ok);
  EXPECT_GT(full.ops_stuck, 0);

  const ShrinkResult shrunk = SweepEngine::shrink(s);
  EXPECT_EQ(shrunk.original_events, static_cast<int>(s.events.size()));
  ASSERT_EQ(shrunk.minimal.events.size(), static_cast<std::size_t>(s.t + 1));
  for (const auto& ev : shrunk.minimal.events) {
    EXPECT_EQ(ev.kind, FaultEvent::Kind::Crash);
  }
  // Still failing, and replayable through the reported key.
  EXPECT_FALSE(SweepEngine::run_cell(shrunk.minimal).ok);
  const auto replayed = engine.materialize_key(shrunk.key);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_FALSE(SweepEngine::run_cell(*replayed).ok);
  // Minimality: dropping any single remaining crash re-enters the budget.
  for (std::size_t i = 0; i < shrunk.minimal.events.size(); ++i) {
    Scenario candidate = shrunk.minimal;
    candidate.events.erase(candidate.events.begin() +
                           static_cast<std::ptrdiff_t>(i));
    EXPECT_TRUE(SweepEngine::run_cell(candidate).ok);
  }
}

// A deliberately-injected *checker* violation: checking atomic semantics
// against a protocol that only promises safe storage. Under a Byzantine
// impostor the safe protocol legally returns stale values to reads
// concurrent with writes, which the stronger checker flags. The shrinker
// must pin the violation to the fault events it actually depends on.
TEST(Sweep, SemanticsOverrideViolationShrinksAndReplays) {
  SweepPlan plan = small_des_plan();
  plan.protocols = {Protocol::Safe};
  plan.templates = {FaultTemplate::Byz};
  plan.seeds = 60;
  plan.check_override = Semantics::Atomic;
  SweepEngine engine(plan);

  // Deterministic scan: given fixed generation code the first failing seed
  // is always the same cell.
  std::optional<Scenario> failing;
  for (std::size_t i = 0; i < engine.plan().num_cells() && !failing; ++i) {
    const Scenario s = engine.materialize(i);
    const CellVerdict v = SweepEngine::run_cell(s);
    if (!v.ok) {
      EXPECT_GT(v.violations, 0) << "expected a checker violation, not "
                                 << v.first_violation;
      failing = s;
    }
  }
  ASSERT_TRUE(failing.has_value())
      << "no seed in the scan produced the injected violation";

  const ShrinkResult shrunk = SweepEngine::shrink(*failing);
  EXPECT_LE(shrunk.minimal.events.size(), failing->events.size());
  EXPECT_FALSE(shrunk.first_violation.empty());
  const CellVerdict minimal_run = SweepEngine::run_cell(shrunk.minimal);
  EXPECT_FALSE(minimal_run.ok);
  EXPECT_GT(minimal_run.violations, 0);
}

TEST(Sweep, JsonReportIsWritten) {
  SweepPlan plan = small_des_plan();
  plan.protocols = {Protocol::Safe};
  plan.templates = {FaultTemplate::None};
  plan.seeds = 2;
  SweepEngine engine(plan);
  const SweepReport report = engine.run(1);
  const std::string path = ::testing::TempDir() + "sweep_report.json";
  ASSERT_TRUE(SweepEngine::write_json(report, engine.plan(), path));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_NE(std::string(buf).find("scenario_sweep"), std::string::npos);
}

}  // namespace
}  // namespace rr::harness
