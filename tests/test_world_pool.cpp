// Event-pool regression tests for the zero-allocation simulator hot path.
//
// The golden fingerprints below were captured from the seed implementation
// (std::priority_queue<Event> with copy-from-top) before the slab/4-ary-heap
// refactor; the refactor must not change delivery order, virtual times, or
// NetStats for any seed.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "net/process.hpp"
#include "sim/world.hpp"
#include "wire/codec.hpp"

// Global allocation counter: replaced operator new lets the steady-state
// test below assert that delivering events performs zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rr::sim {
namespace {

/// FNV-1a over a stream of u64s.
class Fingerprint {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_{0xcbf29ce484222325ULL};
};

class Recorder final : public net::Process {
 public:
  explicit Recorder(Fingerprint* fp) : fp_(fp) {}
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    fp_->mix(ctx.now());
    fp_->mix(static_cast<std::uint64_t>(from));
    fp_->mix(static_cast<std::uint64_t>(ctx.self()));
    fp_->mix(msg.index());
  }

 private:
  Fingerprint* fp_;
};

/// A mesh of processes ping-ponging a few message shapes through uniform
/// delays, with one channel held and released mid-run and one crash.
/// `single_step` drains the world through repeated step() instead of the
/// batched run() -- both must produce the identical execution.
std::uint64_t mesh_fingerprint(std::uint64_t seed, NetStats* stats_out,
                               bool single_step = false) {
  Fingerprint fp;
  WorldOptions opts;
  opts.seed = seed;
  World w(opts);
  const int n = 6;
  std::vector<ProcessId> pids;
  for (int i = 0; i < n; ++i) {
    pids.push_back(w.add_process(std::make_unique<Recorder>(&fp)));
  }
  w.hold(pids[0], pids[1]);
  for (int round = 0; round < 40; ++round) {
    const Time at = static_cast<Time>(round) * 100;
    w.post(at, pids[round % n], [&, round](net::Context& ctx) {
      const ProcessId to = pids[(round + 1) % n];
      ctx.send(to, wire::WAckMsg{static_cast<Ts>(round)});
      ctx.send(to, wire::ReadMsg{1, static_cast<ReaderTs>(round), 0});
      if (round % 3 == 0) {
        ctx.send(pids[(round + 2) % n],
                 wire::PwMsg{static_cast<Ts>(round), TsVal{1, "payload"},
                             initial_wtuple(4)});
      }
    });
  }
  w.post(1500, pids[2], [&](net::Context&) { w.release(pids[0], pids[1]); });
  w.post(2500, pids[3], [&](net::Context&) { w.crash(pids[5]); });
  if (single_step) {
    while (w.step()) {
    }
  } else {
    w.run();
  }
  fp.mix(w.now());
  if (stats_out != nullptr) *stats_out = w.stats();
  return fp.value();
}

// Captured from the seed implementation; see file header.
constexpr std::uint64_t kGoldenFingerprintSeed7 = 0x77ec912a0b593120ULL;
constexpr std::uint64_t kGoldenFingerprintSeed99 = 0xb8c91dd7dbfb4c22ULL;

TEST(EventPool, DeliveryOrderMatchesSeedImplementation) {
  NetStats stats;
  EXPECT_EQ(mesh_fingerprint(7, &stats), kGoldenFingerprintSeed7);
  EXPECT_EQ(stats.messages_sent, 90u);
  EXPECT_EQ(stats.messages_delivered, 64u);
  EXPECT_EQ(stats.messages_dropped, 26u);
  EXPECT_EQ(stats.bytes_sent, 1698u);
  EXPECT_EQ(mesh_fingerprint(99, nullptr), kGoldenFingerprintSeed99);
}

TEST(EventPool, BatchedRunMatchesSingleStepExecution) {
  // run() dispatches equal-(time, dest) delivery runs as one batch; the
  // execution (order, clock, stats) must be indistinguishable from
  // repeated step(), and both must still match the seed goldens.
  NetStats stepped;
  EXPECT_EQ(mesh_fingerprint(7, &stepped, /*single_step=*/true),
            kGoldenFingerprintSeed7);
  NetStats batched;
  EXPECT_EQ(mesh_fingerprint(7, &batched, /*single_step=*/false),
            kGoldenFingerprintSeed7);
  EXPECT_EQ(stepped.messages_delivered, batched.messages_delivered);
  EXPECT_EQ(stepped.messages_dropped, batched.messages_dropped);
  EXPECT_EQ(stepped.bytes_sent, batched.bytes_sent);
  EXPECT_EQ(mesh_fingerprint(99, nullptr, /*single_step=*/true),
            kGoldenFingerprintSeed99);
}

TEST(EventPool, BatchingPreservesOrderAcrossDestinations) {
  // With a fixed delay, alternating sends to two destinations all land at
  // the same virtual time: the per-destination batches must still execute
  // in global (time, seq) order, i.e. perfectly interleaved.
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  struct Collect final : net::Process {
    std::vector<std::pair<ProcessId, Ts>>* order{nullptr};
    void on_message(net::Context& ctx, ProcessId,
                    const wire::Message& msg) override {
      order->push_back({ctx.self(), std::get<wire::WAckMsg>(msg).ts});
    }
  };
  std::vector<std::pair<ProcessId, Ts>> order;
  auto mk = [&] {
    auto p = std::make_unique<Collect>();
    p->order = &order;
    return p;
  };
  const auto a = w.add_process(mk());
  const auto b = w.add_process(mk());
  const auto c = w.add_process(mk());
  // Runs of two per destination: exercises real multi-event batches (b,b),
  // (c,c) as well as the batch boundary between them.
  w.post(0, a, [b, c](net::Context& ctx) {
    for (Ts i = 0; i < 52; ++i) ctx.send(i % 4 < 2 ? b : c, wire::WAckMsg{i});
  });
  w.run();
  ASSERT_EQ(order.size(), 52u);
  for (Ts i = 0; i < 52; ++i) {
    EXPECT_EQ(order[i].second, i);
    EXPECT_EQ(order[i].first, i % 4 < 2 ? b : c);
  }
}

TEST(EventPool, SameSeedIdenticalStatsAndOrder) {
  NetStats a, b;
  EXPECT_EQ(mesh_fingerprint(1234, &a), mesh_fingerprint(1234, &b));
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
}

TEST(EventPool, FullDeploymentFingerprintStable) {
  // End-to-end determinism through the harness: a regular-storage deployment
  // must produce identical traffic stats run-to-run.
  auto run_once = [] {
    harness::DeploymentOptions opts;
    opts.protocol = harness::Protocol::RegularOptimized;
    opts.res = Resilience::optimal(2, 1, 2);
    opts.seed = 5;
    harness::Deployment d(opts);
    harness::MixedWorkloadOptions w;
    w.writes = 8;
    w.reads_per_reader = 4;
    harness::mixed_workload(d, w);
    d.run();
    return d.world().stats();
  };
  const NetStats a = run_once();
  const NetStats b = run_once();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_GT(a.messages_sent, 0u);
}

TEST(EventPool, ReleasePreservesFifoAcrossManyMessages) {
  // FIFO through hold/release with enough messages to force pool growth and
  // slot reuse inside the heap.
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  struct Collect final : net::Process {
    std::vector<Ts> seen;
    void on_message(net::Context&, ProcessId,
                    const wire::Message& msg) override {
      seen.push_back(std::get<wire::WAckMsg>(msg).ts);
    }
  };
  auto probe = std::make_unique<Collect>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Collect>());
  const auto b = w.add_process(std::move(probe));
  w.hold(a, b);
  w.post(0, a, [b](net::Context& ctx) {
    for (Ts i = 1; i <= 500; ++i) ctx.send(b, wire::WAckMsg{i});
  });
  w.run();
  ASSERT_TRUE(p->seen.empty());
  w.release(a, b);
  w.run();
  ASSERT_EQ(p->seen.size(), 500u);
  for (Ts i = 0; i < 500; ++i) EXPECT_EQ(p->seen[i], i + 1);
}

TEST(EventPool, HoldAllCreatesNoSelfChannel) {
  World w;
  const auto a = w.add_process(std::make_unique<Recorder>(nullptr));
  const auto b = w.add_process(std::make_unique<Recorder>(nullptr));
  const auto c = w.add_process(std::make_unique<Recorder>(nullptr));
  w.hold_all(a);
  EXPECT_FALSE(w.held(a, a)) << "self-channel must not be held";
  EXPECT_TRUE(w.held(a, b));
  EXPECT_TRUE(w.held(b, a));
  EXPECT_TRUE(w.held(a, c));
  EXPECT_TRUE(w.held(c, a));
  EXPECT_FALSE(w.held(b, c));
  w.release_all(a);
  EXPECT_FALSE(w.held(a, b));
  EXPECT_FALSE(w.held(c, a));
}

TEST(EventPool, CrashDropsHeldBuffers) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  Fingerprint fp;
  auto probe = std::make_unique<Recorder>(&fp);
  const auto a = w.add_process(std::make_unique<Recorder>(&fp));
  const auto b = w.add_process(std::move(probe));
  w.hold(a, b);
  w.post(0, a, [b](net::Context& ctx) {
    for (Ts i = 1; i <= 5; ++i) ctx.send(b, wire::WAckMsg{i});
  });
  w.run();
  EXPECT_EQ(w.stats().messages_dropped, 0u);
  w.crash(b);
  // The five buffered messages are discarded immediately (they could only
  // ever be dropped at delivery) and counted as dropped.
  EXPECT_EQ(w.stats().messages_dropped, 5u);
  // Post-crash sends on the still-held channel must not refill the buffer.
  w.post(w.now() + 1, a,
         [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{9}); });
  w.run();
  EXPECT_EQ(w.stats().messages_dropped, 6u);
  w.release(a, b);
  EXPECT_EQ(w.run(), 0u) << "no deliveries may be scheduled from the "
                            "discarded buffer";
  EXPECT_EQ(w.stats().messages_dropped, 6u);
  EXPECT_EQ(w.stats().messages_delivered, 0u);
}

TEST(EventPool, InterleavedHoldReleaseReusesSlots) {
  // Alternating bursts of scheduled and held traffic exercise free-list
  // reuse; delivery order must stay (time, seq)-sorted throughout.
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(50));
  struct Collect final : net::Process {
    std::vector<std::pair<Time, Ts>> seen;
    void on_message(net::Context& ctx, ProcessId,
                    const wire::Message& msg) override {
      seen.push_back({ctx.now(), std::get<wire::WAckMsg>(msg).ts});
    }
  };
  auto probe = std::make_unique<Collect>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Collect>());
  const auto b = w.add_process(std::move(probe));
  Ts next = 0;
  for (int burst = 0; burst < 20; ++burst) {
    w.hold(a, b);
    const Time at = static_cast<Time>(burst) * 1000;
    w.post(at, a, [&, b](net::Context& ctx) {
      for (int i = 0; i < 10; ++i) ctx.send(b, wire::WAckMsg{++next});
    });
    w.run_until(at + 10);
    w.release(a, b);
    w.run_until(at + 500);
  }
  w.run();
  ASSERT_EQ(p->seen.size(), 200u);
  for (std::size_t i = 0; i < p->seen.size(); ++i) {
    EXPECT_EQ(p->seen[i].second, static_cast<Ts>(i + 1));
    if (i > 0) {
      EXPECT_GE(p->seen[i].first, p->seen[i - 1].first);
    }
  }
}

TEST(EventPool, SteadyStateDeliveryIsAllocationFree) {
  // Acceptance criterion of the hot-path refactor: once the slab, heap and
  // free list have grown to working-set size, delivering events performs no
  // heap allocation -- events are moved out of recycled slots and byte
  // accounting uses the counting visitor.
  struct Sink final : net::Process {
    void on_message(net::Context&, ProcessId, const wire::Message&) override {}
  };
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  const auto a = w.add_process(std::make_unique<Sink>());
  const auto b = w.add_process(std::make_unique<Sink>());
  auto burst = [&](Time at) {
    w.post(at, a, [b](net::Context& ctx) {
      for (int i = 0; i < 1000; ++i) ctx.send(b, wire::WAckMsg{1});
    });
  };
  burst(0);
  w.run();  // warm-up: grows the slab, the heap array and the free list
  burst(w.now() + 100);
  ASSERT_TRUE(w.step());  // execute the posting closure (sends reuse slots)
  const std::uint64_t before = g_heap_allocs.load();
  const std::uint64_t delivered = w.run();
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  EXPECT_EQ(delivered, 1000u);
  EXPECT_EQ(allocs, 0u)
      << "delivery hot path must not allocate at steady state";
}

TEST(EventPool, SteadyStatePostedClosuresAreAllocationFree) {
  // PostFn gives posted closures small-buffer storage: once the slab has
  // grown, posting a harness-sized capture (pointers, ints, a small array)
  // and executing it must not touch the heap.
  struct Sink final : net::Process {
    void on_message(net::Context&, ProcessId, const wire::Message&) override {}
  };
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  const auto a = w.add_process(std::make_unique<Sink>());
  std::uint64_t sum = 0;
  std::array<std::uint64_t, 8> payload{};  // 64-byte capture by value
  auto make_post = [&](Time at) {
    w.post(at, a, [&sum, payload](net::Context& ctx) {
      for (const auto v : payload) sum += v + ctx.now();
    });
  };
  static_assert(net::PostFn::stored_inline<
                    decltype([](net::Context&) {})>(),
                "captureless closures must be inline");
  // Warm-up sized to the later burst so the slab, heap array and free list
  // never grow during the measured window.
  for (int i = 0; i < 1100; ++i) make_post(static_cast<Time>(i));
  w.run();
  const std::uint64_t before = g_heap_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    make_post(w.now() + 1 + static_cast<Time>(i));
  }
  w.run();
  const std::uint64_t allocs = g_heap_allocs.load() - before;
  EXPECT_EQ(allocs, 0u)
      << "posting and running small closures must not allocate at steady "
         "state";
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace rr::sim
