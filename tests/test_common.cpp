// Unit tests for common/: core types, resilience arithmetic, topology
// mapping, and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rr {
namespace {

TEST(TsValTest, BottomIsTimestampZero) {
  EXPECT_TRUE(TsVal::bottom().is_bottom());
  EXPECT_EQ(TsVal::bottom().ts, 0u);
  EXPECT_FALSE((TsVal{1, "x"}).is_bottom());
}

TEST(TsValTest, OrderingIsByTimestampFirst) {
  EXPECT_LT((TsVal{1, "z"}), (TsVal{2, "a"}));
  EXPECT_LT((TsVal{1, "a"}), (TsVal{1, "b"}));
  EXPECT_EQ((TsVal{3, "v"}), (TsVal{3, "v"}));
}

TEST(WTupleTest, EqualityIncludesTsrArray) {
  WTuple a{TsVal{1, "v"}, init_tsrarray(3)};
  WTuple b = a;
  EXPECT_EQ(a, b);
  b.tsrarray[0] = TsrRow{7};
  EXPECT_NE(a, b);
}

TEST(InitialWTupleTest, HasBottomAndAllNilRows) {
  const WTuple w0 = initial_wtuple(4);
  EXPECT_TRUE(w0.tsval.is_bottom());
  ASSERT_EQ(w0.tsrarray.size(), 4u);
  for (const auto& row : w0.tsrarray) EXPECT_FALSE(row.has_value());
}

TEST(ResilienceTest, OptimalMatchesPaperBound) {
  // S = 2t + b + 1 (Martin-Alvisi-Dahlin optimal resilience).
  const auto r = Resilience::optimal(3, 2, 5);
  EXPECT_EQ(r.num_objects, 9);
  EXPECT_EQ(r.t, 3);
  EXPECT_EQ(r.b, 2);
  EXPECT_EQ(r.num_readers, 5);
  EXPECT_TRUE(r.valid());
  EXPECT_TRUE(r.feasible());
}

TEST(ResilienceTest, QuorumIsSMinusT) {
  const auto r = Resilience::optimal(3, 2);
  EXPECT_EQ(r.quorum(), 9 - 3);
  // The quorum always equals t + b + 1 at optimal resilience.
  EXPECT_EQ(r.quorum(), r.t + r.b + 1);
}

TEST(ResilienceTest, InfeasibleBelowLowerBound) {
  Resilience r;
  r.num_objects = 5;  // one short of 2t+b+1 = 6 with t=2, b=1
  r.t = 2;
  r.b = 1;
  EXPECT_FALSE(r.feasible());
  r.num_objects = 6;
  EXPECT_TRUE(r.feasible());
}

TEST(ResilienceTest, ValidityRejectsNonsense) {
  Resilience r = Resilience::optimal(2, 1);
  r.b = 3;  // b > t
  EXPECT_FALSE(r.valid());
  r = Resilience::optimal(2, 1);
  r.num_readers = 0;
  EXPECT_FALSE(r.valid());
}

TEST(TopologyTest, RoundTripsRolesAndIndices) {
  const Topology topo(/*num_readers=*/3, /*num_objects=*/7);
  EXPECT_EQ(topo.num_processes(), 1 + 3 + 7);
  EXPECT_EQ(topo.role_of(topo.writer()), Role::Writer);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(topo.role_of(topo.reader(j)), Role::Reader);
    EXPECT_EQ(topo.reader_index(topo.reader(j)), j);
  }
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(topo.role_of(topo.object(i)), Role::Object);
    EXPECT_EQ(topo.object_index(topo.object(i)), i);
    EXPECT_TRUE(topo.is_object(topo.object(i)));
  }
  EXPECT_FALSE(topo.is_object(topo.writer()));
  EXPECT_FALSE(topo.is_object(topo.reader(2)));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, IndexWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(13), 13u);
  }
}

}  // namespace
}  // namespace rr
