// White-box tests of the writer automaton (Figure 2): phase transitions,
// tsrarray harvesting, stale-ack filtering, and tuple assembly.
#include <gtest/gtest.h>

#include <optional>

#include "adversary/capture.hpp"
#include "core/writer.hpp"

namespace rr::core {
namespace {

using adversary::CapturingContext;
using adversary::Outgoing;

class NullContext final : public net::Context {
 public:
  [[nodiscard]] ProcessId self() const override { return 0; }
  [[nodiscard]] Time now() const override { return 0; }
  void send(ProcessId, wire::Message) override {}
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Rng rng_{5};
};

class WriterHarness {
 public:
  WriterHarness() : topo_(2, res_.num_objects), writer_(res_, topo_) {}

  /// Starts a write; returns the captured PW broadcast.
  std::vector<Outgoing> start(const Value& v) {
    CapturingContext cap(null_);
    writer_.write(cap, v, [this](const WriteResult& r) { result_ = r; });
    return cap.take();
  }

  /// Delivers an ack; returns what the writer sent in response.
  std::vector<Outgoing> ack(int i, wire::Message msg) {
    CapturingContext cap(null_);
    writer_.on_message(cap, topo_.object(i), msg);
    return cap.take();
  }

  Resilience res_ = Resilience::optimal(1, 1, 2);  // S = 4, quorum = 3
  Topology topo_;
  NullContext null_;
  Writer writer_;
  std::optional<WriteResult> result_;
};

TEST(WriterUnit, PwBroadcastCarriesPreviousTuple) {
  WriterHarness h;
  const auto sent = h.start("v1");
  ASSERT_EQ(sent.size(), 4u);
  const auto& pw = std::get<wire::PwMsg>(sent[0].msg);
  EXPECT_EQ(pw.ts, 1u);
  EXPECT_EQ(pw.pw, (TsVal{1, "v1"}));
  EXPECT_EQ(pw.w, initial_wtuple(4)) << "first write carries w0";
}

TEST(WriterUnit, HarvestedRowsLandInTheTuple) {
  WriterHarness h;
  h.start("v1");
  // Three PW acks with distinct reader rows.
  h.ack(0, wire::PwAckMsg{1, TsrRow{10, 20}});
  h.ack(1, wire::PwAckMsg{1, TsrRow{30, 40}});
  const auto sent = h.ack(3, wire::PwAckMsg{1, TsrRow{50, 60}});
  // Quorum reached: the W broadcast must embed exactly those rows.
  ASSERT_EQ(sent.size(), 4u);
  const auto& w = std::get<wire::WMsg>(sent[0].msg);
  ASSERT_TRUE(w.w.tsrarray[0].has_value());
  EXPECT_EQ(*w.w.tsrarray[0], (TsrRow{10, 20}));
  EXPECT_EQ(*w.w.tsrarray[1], (TsrRow{30, 40}));
  EXPECT_FALSE(w.w.tsrarray[2].has_value()) << "object 2 never acked";
  EXPECT_EQ(*w.w.tsrarray[3], (TsrRow{50, 60}));
}

TEST(WriterUnit, CompletesAfterQuorumOfWAcks) {
  WriterHarness h;
  h.start("v1");
  for (int i = 0; i < 3; ++i) h.ack(i, wire::PwAckMsg{1, TsrRow{0, 0}});
  EXPECT_FALSE(h.result_.has_value());
  h.ack(0, wire::WAckMsg{1});
  h.ack(1, wire::WAckMsg{1});
  EXPECT_FALSE(h.result_.has_value());
  h.ack(2, wire::WAckMsg{1});
  ASSERT_TRUE(h.result_.has_value());
  EXPECT_EQ(h.result_->ts, 1u);
  EXPECT_EQ(h.result_->rounds, 2);
  EXPECT_FALSE(h.writer_.busy());
}

TEST(WriterUnit, DuplicateAcksCountOnce) {
  WriterHarness h;
  h.start("v1");
  for (int k = 0; k < 5; ++k) h.ack(0, wire::PwAckMsg{1, TsrRow{0, 0}});
  EXPECT_TRUE(h.writer_.busy()) << "one object cannot form a quorum";
}

TEST(WriterUnit, StaleAcksIgnored) {
  WriterHarness h;
  h.start("v1");
  // Acks for a different timestamp (e.g. replayed from an earlier write).
  h.ack(0, wire::PwAckMsg{9, TsrRow{0, 0}});
  h.ack(1, wire::PwAckMsg{0, TsrRow{0, 0}});
  h.ack(2, wire::WAckMsg{1});  // W ack during PW phase
  EXPECT_TRUE(h.writer_.busy());
}

TEST(WriterUnit, MalformedRowsAreNormalized) {
  WriterHarness h;
  h.start("v1");
  // A Byzantine object reports a row of the wrong width; the writer must
  // normalize it to R entries so reader-side indexing stays total.
  h.ack(0, wire::PwAckMsg{1, TsrRow{1, 2, 3, 4, 5}});
  h.ack(1, wire::PwAckMsg{1, TsrRow{}});
  const auto sent = h.ack(2, wire::PwAckMsg{1, TsrRow{7, 8}});
  ASSERT_EQ(sent.size(), 4u);
  const auto& w = std::get<wire::WMsg>(sent[0].msg);
  EXPECT_EQ(w.w.tsrarray[0]->size(), 2u) << "truncated to R";
  EXPECT_EQ(w.w.tsrarray[1]->size(), 2u) << "padded to R";
  EXPECT_EQ((*w.w.tsrarray[1])[0], 0u);
}

TEST(WriterUnit, SecondWriteCarriesFirstTuple) {
  WriterHarness h;
  h.start("v1");
  for (int i = 0; i < 3; ++i) h.ack(i, wire::PwAckMsg{1, TsrRow{3, 4}});
  for (int i = 0; i < 3; ++i) h.ack(i, wire::WAckMsg{1});
  ASSERT_TRUE(h.result_.has_value());
  const auto sent = h.start("v2");
  const auto& pw = std::get<wire::PwMsg>(sent[0].msg);
  EXPECT_EQ(pw.ts, 2u);
  EXPECT_EQ(pw.w.tsval, (TsVal{1, "v1"}))
      << "the PW of write 2 commits write 1's tuple";
  ASSERT_TRUE(pw.w.tsrarray[0].has_value());
  EXPECT_EQ(*pw.w.tsrarray[0], (TsrRow{3, 4}));
}

TEST(WriterUnit, FreshTsrArrayPerWrite) {
  WriterHarness h;
  h.start("v1");
  for (int i = 0; i < 3; ++i) h.ack(i, wire::PwAckMsg{1, TsrRow{9, 9}});
  for (int i = 0; i < 3; ++i) h.ack(i, wire::WAckMsg{1});
  h.start("v2");
  // Only object 3 acks the second PW: the new tuple must not inherit rows
  // from write 1's harvest.
  h.ack(3, wire::PwAckMsg{2, TsrRow{1, 1}});
  h.ack(0, wire::PwAckMsg{2, TsrRow{2, 2}});
  const auto sent = h.ack(1, wire::PwAckMsg{2, TsrRow{3, 3}});
  const auto& w = std::get<wire::WMsg>(sent[0].msg);
  EXPECT_FALSE(w.w.tsrarray[2].has_value());
  EXPECT_EQ(*w.w.tsrarray[3], (TsrRow{1, 1}));
}

TEST(WriterUnit, AcksFromNonObjectsIgnored) {
  WriterHarness h;
  h.start("v1");
  CapturingContext cap(h.null_);
  // From a reader pid.
  h.writer_.on_message(cap, h.topo_.reader(0),
                       wire::PwAckMsg{1, TsrRow{0, 0}});
  EXPECT_TRUE(h.writer_.busy());
}

}  // namespace
}  // namespace rr::core
