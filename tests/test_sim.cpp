// Discrete-event simulator semantics: deterministic ordering, channel
// holds/releases, crash behaviour, delay models, byte accounting.
#include <gtest/gtest.h>

#include "net/process.hpp"
#include "sim/world.hpp"
#include "wire/codec.hpp"

namespace rr::sim {
namespace {

/// Test process: remembers deliveries, optionally echoes.
class Probe final : public net::Process {
 public:
  explicit Probe(bool echo = false) : echo_(echo) {}

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    deliveries.push_back({ctx.now(), from, msg});
    if (echo_) ctx.send(from, wire::WAckMsg{++echo_ts_});
  }

  struct Delivery {
    Time at;
    ProcessId from;
    wire::Message msg;
  };
  std::vector<Delivery> deliveries;

 private:
  bool echo_;
  Ts echo_ts_{0};
};

TEST(WorldTest, DeliversWithFixedDelay) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(500));
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.post(100, a, [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{1}); });
  w.run();
  ASSERT_EQ(p->deliveries.size(), 1u);
  EXPECT_EQ(p->deliveries[0].at, 600u);
  EXPECT_EQ(p->deliveries[0].from, a);
}

TEST(WorldTest, SameSeedSameSchedule) {
  auto run_once = [](std::uint64_t seed) {
    WorldOptions opts;
    opts.seed = seed;
    World w(opts);
    auto probe = std::make_unique<Probe>();
    auto* p = probe.get();
    const auto a = w.add_process(std::make_unique<Probe>());
    const auto b = w.add_process(std::move(probe));
    for (int i = 0; i < 50; ++i) {
      w.post(static_cast<Time>(i), a, [b, i](net::Context& ctx) {
        ctx.send(b, wire::WAckMsg{static_cast<Ts>(i)});
      });
    }
    w.run();
    std::vector<Time> times;
    for (const auto& d : p->deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(WorldTest, HeldChannelBuffersUntilRelease) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.hold(a, b);
  w.post(0, a, [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{1}); });
  w.run();
  EXPECT_TRUE(p->deliveries.empty()) << "held message must not deliver";
  w.release(a, b);
  w.run();
  ASSERT_EQ(p->deliveries.size(), 1u);
}

TEST(WorldTest, ReleasePreservesFifoOrder) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(10));
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.hold(a, b);
  w.post(0, a, [b](net::Context& ctx) {
    for (Ts i = 1; i <= 5; ++i) ctx.send(b, wire::WAckMsg{i});
  });
  w.run();
  w.release(a, b);
  w.run();
  ASSERT_EQ(p->deliveries.size(), 5u);
  for (Ts i = 0; i < 5; ++i) {
    EXPECT_EQ(std::get<wire::WAckMsg>(p->deliveries[i].msg).ts, i + 1);
  }
}

TEST(WorldTest, CrashedProcessReceivesNothing) {
  World w;
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.crash(b);
  w.post(0, a, [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{1}); });
  w.run();
  EXPECT_TRUE(p->deliveries.empty());
  EXPECT_EQ(w.stats().messages_dropped, 1u);
}

TEST(WorldTest, CrashedProcessTakesNoPostedSteps) {
  World w;
  const auto a = w.add_process(std::make_unique<Probe>());
  bool ran = false;
  w.crash(a);
  w.post(0, a, [&ran](net::Context&) { ran = true; });
  w.run();
  EXPECT_FALSE(ran);
}

TEST(WorldTest, CrashMidRunDropsInFlight) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(1000));
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.post(0, a, [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{1}); });
  // Crash b at time 500 -- before the delivery at 1000.
  w.post(500, a, [&w, b](net::Context&) { w.crash(b); });
  w.run();
  EXPECT_TRUE(p->deliveries.empty());
}

TEST(WorldTest, EventOrderIsStableForSimultaneousEvents) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(0));
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.post(5, a, [b](net::Context& ctx) {
    ctx.send(b, wire::WAckMsg{1});
    ctx.send(b, wire::WAckMsg{2});
  });
  w.run();
  ASSERT_EQ(p->deliveries.size(), 2u);
  EXPECT_EQ(std::get<wire::WAckMsg>(p->deliveries[0].msg).ts, 1u);
  EXPECT_EQ(std::get<wire::WAckMsg>(p->deliveries[1].msg).ts, 2u);
}

TEST(WorldTest, ByteAccountingMatchesCodec) {
  World w;
  auto probe = std::make_unique<Probe>();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  const wire::Message msg = wire::PwMsg{1, TsVal{1, "hello"},
                                        initial_wtuple(3)};
  w.post(0, a, [b, msg](net::Context& ctx) { ctx.send(b, msg); });
  w.run();
  EXPECT_EQ(w.stats().messages_sent, 1u);
  EXPECT_EQ(w.stats().bytes_sent, wire::encoded_size(msg));
}

TEST(WorldTest, ReserializeOptionRoundTripsMessages) {
  WorldOptions opts;
  opts.reserialize = true;
  World w(opts);
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  const wire::Message msg =
      wire::ReadAckMsg{1, 9, TsVal{2, "x"}, initial_wtuple(2)};
  w.post(0, a, [b, msg](net::Context& ctx) { ctx.send(b, msg); });
  w.run();
  ASSERT_EQ(p->deliveries.size(), 1u);
  EXPECT_EQ(p->deliveries[0].msg, msg);
}

TEST(WorldTest, RunUntilStopsAtDeadline) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(100));
  auto probe = std::make_unique<Probe>();
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  for (Time at : {Time{0}, Time{500}, Time{1000}}) {
    w.post(at, a, [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{1}); });
  }
  w.run_until(650);
  EXPECT_EQ(p->deliveries.size(), 2u);  // deliveries at 100 and 600
  EXPECT_EQ(w.now(), 650u);
  w.run();
  EXPECT_EQ(p->deliveries.size(), 3u);
}

TEST(WorldTest, HoldAllAndReleaseAll) {
  World w;
  w.set_delay_model(std::make_unique<FixedDelay>(1));
  auto probe = std::make_unique<Probe>(/*echo=*/true);
  auto* p = probe.get();
  const auto a = w.add_process(std::make_unique<Probe>());
  const auto b = w.add_process(std::move(probe));
  w.hold_all(b);
  w.post(0, a, [b](net::Context& ctx) { ctx.send(b, wire::WAckMsg{1}); });
  w.run();
  EXPECT_TRUE(p->deliveries.empty());
  w.release_all(b);
  w.run();
  EXPECT_EQ(p->deliveries.size(), 1u);
}

TEST(DelayModelTest, UniformRespectsBounds) {
  Rng rng(3);
  UniformDelay model(100, 200);
  for (int i = 0; i < 1000; ++i) {
    const Time d = model.sample(0, 1, 0, rng);
    EXPECT_GE(d, 100u);
    EXPECT_LE(d, 200u);
  }
}

TEST(DelayModelTest, BiasedPenalizesHighIds) {
  Rng rng(3);
  BiasedDelay model(10, 5);
  EXPECT_LT(model.sample(0, 3, 0, rng), model.sample(0, 7, 0, rng));
}

}  // namespace
}  // namespace rr::sim
