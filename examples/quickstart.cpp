// Quickstart: a wait-free Byzantine-tolerant register in a dozen lines.
//
// Deploys the paper's safe storage over S = 2t+b+1 = 6 in-process base
// objects (t = 2 may fail, b = 1 of those arbitrarily), writes a few
// values and reads them back. Both operations take exactly two
// communication round-trips -- the optimum proved in the paper.
//
//   $ ./example_quickstart
#include <cstdio>

#include "runtime/register.hpp"

int main() {
  rr::runtime::RobustRegister::Options opts;
  opts.res = rr::Resilience::optimal(/*t=*/2, /*b=*/1, /*num_readers=*/1);
  rr::runtime::RobustRegister reg(opts);

  std::printf("robust register over S=%d base objects (t=%d, b=%d)\n",
              opts.res.num_objects, opts.res.t, opts.res.b);

  for (int k = 1; k <= 3; ++k) {
    const std::string value = "checkpoint-" + std::to_string(k);
    const auto w = reg.write(value);
    if (!w) {
      std::fprintf(stderr, "write timed out\n");
      return 1;
    }
    const auto r = reg.read();
    if (!r) {
      std::fprintf(stderr, "read timed out\n");
      return 1;
    }
    std::printf("  wrote \"%s\" (ts=%llu, %d rounds) -> read \"%s\" "
                "(ts=%llu, %d rounds)\n",
                value.c_str(), static_cast<unsigned long long>(w->ts),
                w->rounds, r->tsval.val.c_str(),
                static_cast<unsigned long long>(r->tsval.ts), r->rounds);
  }

  std::printf("done: every operation used exactly 2 round-trips (the tight "
              "bound of the paper)\n");
  return 0;
}
