// Scenario sweep CLI: run a deterministic {protocol x backend x fault
// template x seed} grid of adversarial scenarios, shrink any failure to a
// minimal schedule, and replay any cell by its key.
//
//   $ ./sweep_cli --quick                 # the CI grid: 1008 cells
//   $ ./sweep_cli --protocols=safe,auth --backends=des --seeds=200
//   $ ./sweep_cli --replay safe:des:chaos:42
//   $ ./sweep_cli --templates=overload --backends=des --seeds=2
//       (deliberate liveness violations; exercises shrink + replay)
//   $ ./sweep_cli --scenarios scenarios/              # the scenario library
//   $ ./sweep_cli --scenario tests/fixtures/scenarios/foo.scn
//   $ ./sweep_cli --replay safe:des:chaos:42 --emit-scenario foo.scn
//       (export any cell -- or a shrunk failure -- as a DSL file)
//   $ ./sweep_cli --fuzz seed=20260808 count=500 fixtures=fuzz-failures/
//       (seeded generator batch; failures auto-shrink into .scn fixtures)
//   $ ./sweep_cli --coverage --scenarios scenarios,tests/fixtures/scenarios
//       (the primitive x protocol x budget matrix those files exercise)
//
// Writes BENCH_scenario_sweep.json with per-cell verdicts and, for every
// failure, the minimal fault schedule plus the --replay flag reproducing it.
// Exits nonzero when any cell fails (scenario cells fail when the verdict
// differs from their "expect" line).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "harness/fuzz.hpp"
#include "harness/scenario_dsl.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"

namespace {

using namespace rr;

std::string protocol_list() {
  std::string out;
  for (const auto& traits : harness::protocol_registry()) {
    if (!out.empty()) out += "|";
    out += traits.cli_name;
  }
  return out;
}

std::vector<std::string> split_commas(const std::string& in) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= in.size()) {
    const auto comma = in.find(',', start);
    out.push_back(in.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void usage() {
  std::printf(
      "usage: sweep_cli [--quick] [--protocols=%s|all,...]\n"
      "  [--backends=des,threads,net|both|all] [--templates=none,crash,byz,"
      "mixed,"
      "chaos,byzchaos,overload|default]\n"
      "  (default = the 6 budget-respecting templates; the deliberately-"
      "failing overload\n   template must be named explicitly)\n"
      "  [--seeds=N] [--base-seed=N] [--t=N] [--b=N] [--readers=N]\n"
      "  [--writes=N] [--reads=N] [--check=safe|regular|atomic] [--jobs=N]\n"
      "  [--json=PATH] [--replay KEY] [--emit-scenario FILE]\n"
      "  [--scenarios DIR[,DIR...]] [--scenario FILE] [--check]\n"
      "  [--fuzz [seed=K] [count=N] [overload=RATE] [fixtures=DIR]]\n"
      "  [--coverage]\n"
      "With --scenarios and no grid flags, only the library runs. --replay\n"
      "with --emit-scenario writes the cell (shrunk first when it fails on\n"
      "the DES) as a scenario file instead of just replaying it.\n"
      "--fuzz runs a seeded generator batch (scoped by --protocols/\n"
      "--backends/--check); unexpected failures shrink and land in\n"
      "fixtures=DIR as replayable .scn files. --coverage prints the fault-\n"
      "primitive x protocol matrix of --scenarios (plus the --fuzz batch if\n"
      "given, without running it); with --check it exits 1 on any missing\n"
      "model-legal cell.\n",
      protocol_list().c_str());
}

int replay(const harness::SweepEngine& engine, const std::string& key,
           const std::string& emit_path) {
  const auto scenario = engine.materialize_key(key);
  if (!scenario) {
    std::fprintf(stderr,
                 "bad cell key '%s' (want protocol:backend:template:seed, "
                 "e.g. safe:des:chaos:42, or scn:NAME with --scenarios)\n",
                 key.c_str());
    return 2;
  }
  std::printf("replaying %s: %d writes, %dx%d reads, %d shard%s, "
              "%zu fault event(s)\n",
              key.c_str(), scenario->writes, scenario->readers,
              scenario->reads_per_reader, scenario->shards,
              scenario->shards == 1 ? "" : "s", scenario->events.size());
  for (const auto& ev : scenario->events) {
    std::printf("  - %s\n", ev.describe().c_str());
  }
  const auto verdict = harness::SweepEngine::run_cell(*scenario);
  std::printf("verdict: %s; %d ops complete, %d stuck, %llu events, "
              "fingerprint %016llx\n",
              verdict.ok ? "OK" : "FAIL", verdict.ops_complete,
              verdict.ops_stuck,
              static_cast<unsigned long long>(verdict.events),
              static_cast<unsigned long long>(verdict.fingerprint));
  if (verdict.hist_retired > 0) {
    std::printf("checker residency: peak %llu op(s) live, %llu retired "
                "online (window=%zu)\n",
                static_cast<unsigned long long>(verdict.hist_peak_live),
                static_cast<unsigned long long>(verdict.hist_retired),
                scenario->checker_window);
  }
  const bool unexpected = verdict.ok != scenario->expect_ok;
  if (!verdict.ok) {
    std::printf("failure%s: %s\n", unexpected ? "" : " (expected)",
                verdict.first_violation.c_str());
  }

  harness::Scenario to_emit = *scenario;
  // Expected failures (committed fixtures) are already minimal; only an
  // unexpected failure is worth shrinking.
  if (unexpected && !verdict.ok &&
      scenario->backend == harness::BackendKind::Sim &&
      !scenario->events.empty()) {
    const auto shrunk = harness::SweepEngine::shrink(*scenario);
    std::printf("minimal failing schedule (%d -> %zu events, %d reruns):\n",
                shrunk.original_events, shrunk.minimal.events.size(),
                shrunk.reruns);
    for (const auto& ev : shrunk.minimal.events) {
      std::printf("  - %s\n", ev.describe().c_str());
    }
    std::printf("  failure: %s\n", shrunk.first_violation.c_str());
    to_emit = shrunk.minimal;
  }
  if (!emit_path.empty()) {
    // A failing cell is exported as a fixture: a file that *passes* the
    // library run exactly when the failure keeps reproducing.
    if (!verdict.ok) to_emit.expect_ok = false;
    if (!harness::save_scenario_file(to_emit, emit_path)) {
      std::fprintf(stderr, "cannot write %s\n", emit_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", emit_path.c_str());
  }
  return unexpected ? 1 : 0;
}

int replay_file(const std::string& path, const std::string& emit_path) {
  auto parsed = harness::load_scenario_file(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), parsed.error.c_str());
    return 2;
  }
  harness::SweepPlan plan;
  plan.protocols.clear();
  plan.templates.clear();
  plan.backends.clear();
  plan.library.push_back(parsed.scenario);
  const harness::SweepEngine engine(std::move(plan));
  return replay(engine, parsed.scenario.key(), emit_path);
}

}  // namespace

int main(int argc, char** argv) {
  harness::SweepPlan plan;
  plan.protocols.clear();
  std::string replay_key;
  std::string scenario_file;
  std::vector<std::string> scenario_dirs;
  std::string emit_path;
  std::string json_path = "BENCH_scenario_sweep.json";
  harness::FuzzOptions fuzz;
  int jobs = 0;
  bool quick = false;
  bool check_mode = false;
  bool fuzz_mode = false;
  bool coverage_mode = false;
  bool protocols_given = false, templates_given = false, seeds_given = false;
  bool writes_given = false, reads_given = false, grid_given = false;
  bool backends_given = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--quick") {
      quick = true;
      grid_given = true;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_key = argv[++i];
    } else if (auto v = value("replay")) {
      replay_key = *v;
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_file = argv[++i];
    } else if (auto v = value("scenario")) {
      scenario_file = *v;
    } else if (arg == "--scenarios" && i + 1 < argc) {
      scenario_dirs = split_commas(argv[++i]);
    } else if (auto v = value("scenarios")) {
      scenario_dirs = split_commas(*v);
    } else if (arg == "--fuzz") {
      fuzz_mode = true;
    } else if (arg == "--coverage") {
      coverage_mode = true;
    } else if (fuzz_mode && arg.rfind("--", 0) != 0 &&
               arg.find('=') != std::string::npos) {
      // --fuzz sub-arguments: bare key=value tokens.
      const auto eq = arg.find('=');
      const std::string key = arg.substr(0, eq);
      const std::string val = arg.substr(eq + 1);
      if (key == "seed") {
        fuzz.seed = std::strtoull(val.c_str(), nullptr, 10);
      } else if (key == "count") {
        fuzz.count = std::atoi(val.c_str());
      } else if (key == "overload") {
        fuzz.overload_rate = std::atof(val.c_str());
      } else if (key == "fixtures") {
        fuzz.fixture_dir = val;
      } else {
        std::fprintf(stderr,
                     "unknown --fuzz key '%s' (seed|count|overload|"
                     "fixtures)\n",
                     key.c_str());
        return 2;
      }
    } else if (arg == "--emit-scenario" && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (auto v = value("emit-scenario")) {
      emit_path = *v;
    } else if (arg == "--check") {
      check_mode = true;
    } else if (auto v = value("protocols")) {
      grid_given = true;
      protocols_given = true;
      for (const auto& name : split_commas(*v)) {
        if (name == "all") {
          for (const auto& traits : harness::protocol_registry()) {
            plan.protocols.push_back(traits.id);
          }
          continue;
        }
        const auto p = harness::protocol_from_name(name);
        if (!p) {
          std::fprintf(stderr, "unknown protocol '%s' (known: %s)\n",
                       name.c_str(), protocol_list().c_str());
          return 2;
        }
        plan.protocols.push_back(*p);
      }
    } else if (auto v = value("backends")) {
      grid_given = true;
      backends_given = true;
      plan.backends.clear();
      for (const auto& name : split_commas(*v)) {
        if (name == "both") {
          // Historical spelling for the two original substrates; "all"
          // follows the registry (currently adds the net backend).
          plan.backends.push_back(harness::BackendKind::Sim);
          plan.backends.push_back(harness::BackendKind::Threads);
        } else if (name == "all") {
          for (const auto& t : harness::backend_registry()) {
            plan.backends.push_back(t.kind);
          }
        } else if (const auto kind = harness::backend_from_name(name)) {
          plan.backends.push_back(*kind);
        } else {
          std::fprintf(stderr, "unknown backend '%s' (%s|both|all)\n",
                       name.c_str(), harness::backend_names().c_str());
          return 2;
        }
      }
    } else if (auto v = value("templates")) {
      templates_given = true;
      grid_given = true;
      plan.templates.clear();
      for (const auto& name : split_commas(*v)) {
        if (name == "default") {
          plan.templates = harness::default_fault_templates();
          continue;
        }
        const auto t = harness::fault_template_from_name(name);
        if (!t) {
          std::fprintf(stderr,
                       "unknown template '%s' (none|crash|byz|mixed|chaos|"
                       "byzchaos|overload)\n",
                       name.c_str());
          return 2;
        }
        plan.templates.push_back(*t);
      }
    } else if (auto v = value("seeds")) {
      seeds_given = true;
      grid_given = true;
      plan.seeds = std::atoi(v->c_str());
    } else if (auto v = value("base-seed")) {
      plan.base_seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value("t")) {
      plan.t = std::atoi(v->c_str());
    } else if (auto v = value("b")) {
      plan.b = std::atoi(v->c_str());
    } else if (auto v = value("readers")) {
      plan.readers = std::atoi(v->c_str());
    } else if (auto v = value("writes")) {
      writes_given = true;
      plan.writes = std::atoi(v->c_str());
    } else if (auto v = value("reads")) {
      reads_given = true;
      plan.reads_per_reader = std::atoi(v->c_str());
    } else if (auto v = value("check")) {
      if (*v == "safe") plan.check_override = harness::Semantics::Safe;
      else if (*v == "regular") plan.check_override = harness::Semantics::Regular;
      else if (*v == "atomic") plan.check_override = harness::Semantics::Atomic;
      else {
        std::fprintf(stderr, "unknown semantics '%s' (safe|regular|atomic)\n",
                     v->c_str());
        return 2;
      }
    } else if (auto v = value("jobs")) {
      jobs = std::atoi(v->c_str());
    } else if (auto v = value("json")) {
      json_path = *v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (!scenario_file.empty()) return replay_file(scenario_file, emit_path);

  for (const auto& dir : scenario_dirs) {
    const auto lib = harness::load_scenario_dir(dir);
    for (const auto& err : lib.errors) {
      std::fprintf(stderr, "%s\n", err.c_str());
    }
    if (!lib.ok()) return 2;
    if (lib.scenarios.empty()) {
      std::fprintf(stderr, "no *.scn files in %s\n", dir.c_str());
      return 2;
    }
    plan.library.insert(plan.library.end(), lib.scenarios.begin(),
                        lib.scenarios.end());
  }

  // Scope the fuzz pools with the same flags the grid uses.
  if (fuzz_mode || coverage_mode) {
    if (protocols_given) fuzz.protocols = plan.protocols;
    if (backends_given) fuzz.backends = plan.backends;
    fuzz.check_override = plan.check_override;
  }

  if (coverage_mode) {
    // Static accounting: which primitive x protocol x budget cells do the
    // named scenario files (plus the generated fuzz batch, if any) touch?
    harness::CoverageMatrix matrix;
    matrix.add_all(plan.library);
    if (fuzz_mode) {
      matrix.add_all(harness::ScenarioFuzzer(fuzz).batch());
    }
    std::printf("%s", matrix.table().c_str());
    return check_mode && !matrix.missing().empty() ? 1 : 0;
  }

  if (fuzz_mode) {
    std::printf("fuzzing %d scenario(s): seed %llu, overload rate %.2f\n",
                fuzz.count, static_cast<unsigned long long>(fuzz.seed),
                fuzz.overload_rate);
    const auto result = harness::run_fuzz(fuzz, jobs);
    int pass = 0, reproduced = 0;
    for (const auto& c : result.report.cells) {
      if (c.ok == c.expect_ok) {
        if (c.expect_ok) ++pass; else ++reproduced;
      }
    }
    std::printf("%zu cell(s): %d pass, %d expected-fail reproduced, "
                "%zu unexpected in %.1f ms on %d workers\n",
                result.report.cells.size(), pass, reproduced,
                result.unexpected.size(), result.report.wall_ms,
                result.report.workers);
    for (const auto& key : result.unexpected) {
      for (const auto& c : result.report.cells) {
        if (c.key != key) continue;
        std::printf("  UNEXPECTED %s (expect %s): %s\n", key.c_str(),
                    c.expect_ok ? "ok" : "fail",
                    c.first_violation.empty() ? "stuck/timeout"
                                              : c.first_violation.c_str());
      }
    }
    for (const auto& path : result.fixtures) {
      std::printf("  fixture: %s\n", path.c_str());
    }
    if (!check_mode) {
      harness::SweepPlan fuzz_plan;
      fuzz_plan.protocols.clear();
      fuzz_plan.templates.clear();
      fuzz_plan.library = result.scenarios;
      if (!harness::SweepEngine::write_json(result.report, fuzz_plan,
                                            json_path)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 2;
      }
      std::printf("wrote %s\n", json_path.c_str());
    }
    return result.unexpected.empty() ? 0 : 1;
  }

  // With a scenario library and no grid flags, only the library runs.
  const bool library_only = !plan.library.empty() && !grid_given;
  if (library_only) {
    plan.protocols.clear();
    plan.templates.clear();
    plan.backends.clear();
  } else if (quick) {
    harness::SweepPlan q = harness::SweepPlan::quick();
    if (!protocols_given) plan.protocols = q.protocols;
    if (!templates_given) plan.templates = q.templates;
    if (!seeds_given) plan.seeds = q.seeds;
    if (!writes_given) plan.writes = q.writes;
    if (!reads_given) plan.reads_per_reader = q.reads_per_reader;
  } else if (plan.protocols.empty() && !protocols_given) {
    for (const auto& traits : harness::protocol_registry()) {
      plan.protocols.push_back(traits.id);
    }
  }
  if (!library_only &&
      (plan.protocols.empty() || plan.templates.empty() || plan.seeds < 1)) {
    usage();
    return 2;
  }

  harness::SweepEngine engine(std::move(plan));
  if (!replay_key.empty()) return replay(engine, replay_key, emit_path);

  const auto& p = engine.plan();
  std::printf("sweeping %zu cells: %zu protocol(s) x %zu backend(s) x %zu "
              "template(s) x %d seed(s) + %zu scenario file(s)\n",
              p.num_cells(), p.protocols.size(), p.backends.size(),
              p.templates.size(), p.seeds, p.library.size());
  const auto report = engine.run(jobs);

  // Aggregate verdicts per protocol x backend for the console summary.
  harness::Table table({"protocol", "backend", "cells", "pass", "fail",
                        "stuck-ops", "avg-events", "read p95 us (max)"});
  for (const auto protocol : p.protocols) {
    for (const auto backend : p.backends) {
      int cells = 0, pass = 0, fail = 0, stuck = 0;
      std::uint64_t events = 0, p95_max = 0;
      for (const auto& c : report.cells) {
        if (c.protocol != protocol || c.backend != backend) continue;
        ++cells;
        if (c.ok) ++pass; else ++fail;
        stuck += c.ops_stuck;
        events += c.events;
        p95_max = std::max<std::uint64_t>(p95_max, c.read_p95);
      }
      table.add_row(harness::protocol_traits(protocol).cli_name,
                    harness::to_string(backend), cells, pass, fail, stuck,
                    cells > 0 ? events / static_cast<std::uint64_t>(cells) : 0,
                    static_cast<double>(p95_max) / 1000.0);
    }
  }
  table.print();
  // Library cells, one line each (their keys don't aggregate into the grid).
  for (std::size_t i = p.num_grid_cells(); i < report.cells.size(); ++i) {
    const auto& c = report.cells[i];
    std::printf("%-40s %s (expect %s)%s%s\n", c.key.c_str(),
                c.ok ? "OK" : "FAIL", c.expect_ok ? "ok" : "fail",
                c.ok == c.expect_ok ? "" : "  <-- UNEXPECTED: ",
                c.ok == c.expect_ok ? "" : c.first_violation.c_str());
  }
  std::printf("%d/%zu cells failed in %.1f ms on %d workers\n", report.failed,
              report.cells.size(), report.wall_ms, report.workers);

  for (const auto& shrunk : report.shrinks) {
    std::printf("\nfailing cell %s: %d fault event(s) shrunk to %zu "
                "(%d reruns); replay with: --replay %s\n",
                shrunk.key.c_str(), shrunk.original_events,
                shrunk.minimal.events.size(), shrunk.reruns,
                shrunk.key.c_str());
    for (const auto& ev : shrunk.minimal.events) {
      std::printf("  - %s\n", ev.describe().c_str());
    }
    std::printf("  failure: %s\n", shrunk.first_violation.c_str());
  }

  // --check: verdicts only (e.g. the CI scenario-library smoke); don't
  // clobber the grid's BENCH JSON artifact.
  if (!check_mode) {
    if (!harness::SweepEngine::write_json(report, p, json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return report.all_ok() ? 0 : 1;
}
