// Scenario sweep CLI: run a deterministic {protocol x backend x fault
// template x seed} grid of adversarial scenarios, shrink any failure to a
// minimal schedule, and replay any cell by its key.
//
//   $ ./sweep_cli --quick                 # the CI grid: 1008 cells
//   $ ./sweep_cli --protocols=safe,auth --backends=des --seeds=200
//   $ ./sweep_cli --replay safe:des:chaos:42
//   $ ./sweep_cli --templates=overload --backends=des --seeds=2
//       (deliberate liveness violations; exercises shrink + replay)
//
// Writes BENCH_scenario_sweep.json with per-cell verdicts and, for every
// failure, the minimal fault schedule plus the --replay flag reproducing it.
// Exits nonzero when any cell fails.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "harness/table.hpp"

namespace {

using namespace rr;

std::string protocol_list() {
  std::string out;
  for (const auto& traits : harness::protocol_registry()) {
    if (!out.empty()) out += "|";
    out += traits.cli_name;
  }
  return out;
}

std::vector<std::string> split_commas(const std::string& in) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= in.size()) {
    const auto comma = in.find(',', start);
    out.push_back(in.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void usage() {
  std::printf(
      "usage: sweep_cli [--quick] [--protocols=%s|all,...]\n"
      "  [--backends=des|threads|both] [--templates=none,crash,byz,mixed,"
      "chaos,byzchaos,overload|default]\n"
      "  (default = the 6 budget-respecting templates; the deliberately-"
      "failing overload\n   template must be named explicitly)\n"
      "  [--seeds=N] [--base-seed=N] [--t=N] [--b=N] [--readers=N]\n"
      "  [--writes=N] [--reads=N] [--check=safe|regular|atomic] [--jobs=N]\n"
      "  [--json=PATH] [--replay KEY]\n",
      protocol_list().c_str());
}

int replay(const harness::SweepEngine& engine, const std::string& key) {
  const auto scenario = engine.materialize_key(key);
  if (!scenario) {
    std::fprintf(stderr,
                 "bad cell key '%s' (want protocol:backend:template:seed, "
                 "e.g. safe:des:chaos:42; overload replays on des only)\n",
                 key.c_str());
    return 2;
  }
  std::printf("replaying %s: %d writes, %dx%d reads, %d shard%s, "
              "%zu fault event(s)\n",
              key.c_str(), scenario->writes, scenario->readers,
              scenario->reads_per_reader, scenario->shards,
              scenario->shards == 1 ? "" : "s", scenario->events.size());
  for (const auto& ev : scenario->events) {
    std::printf("  - %s\n", ev.describe().c_str());
  }
  const auto verdict = harness::SweepEngine::run_cell(*scenario);
  std::printf("verdict: %s; %d ops complete, %d stuck, %llu events, "
              "fingerprint %016llx\n",
              verdict.ok ? "OK" : "FAIL", verdict.ops_complete,
              verdict.ops_stuck,
              static_cast<unsigned long long>(verdict.events),
              static_cast<unsigned long long>(verdict.fingerprint));
  if (verdict.ok) return 0;

  std::printf("failure: %s\n", verdict.first_violation.c_str());
  if (scenario->backend == harness::BackendKind::Sim &&
      !scenario->events.empty()) {
    const auto shrunk = harness::SweepEngine::shrink(*scenario);
    std::printf("minimal failing schedule (%d -> %zu events, %d reruns):\n",
                shrunk.original_events, shrunk.minimal.events.size(),
                shrunk.reruns);
    for (const auto& ev : shrunk.minimal.events) {
      std::printf("  - %s\n", ev.describe().c_str());
    }
    std::printf("  failure: %s\n", shrunk.first_violation.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  harness::SweepPlan plan;
  plan.protocols.clear();
  std::string replay_key;
  std::string json_path = "BENCH_scenario_sweep.json";
  int jobs = 0;
  bool quick = false;
  bool protocols_given = false, templates_given = false, seeds_given = false;
  bool writes_given = false, reads_given = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_key = argv[++i];
    } else if (auto v = value("replay")) {
      replay_key = *v;
    } else if (auto v = value("protocols")) {
      protocols_given = true;
      for (const auto& name : split_commas(*v)) {
        if (name == "all") {
          for (const auto& traits : harness::protocol_registry()) {
            plan.protocols.push_back(traits.id);
          }
          continue;
        }
        const auto p = harness::protocol_from_name(name);
        if (!p) {
          std::fprintf(stderr, "unknown protocol '%s' (known: %s)\n",
                       name.c_str(), protocol_list().c_str());
          return 2;
        }
        plan.protocols.push_back(*p);
      }
    } else if (auto v = value("backends")) {
      if (*v == "both") {
        plan.backends = {harness::BackendKind::Sim,
                         harness::BackendKind::Threads};
      } else if (const auto kind = harness::backend_from_name(*v)) {
        plan.backends = {*kind};
      } else {
        std::fprintf(stderr, "unknown backend '%s' (des|threads|both)\n",
                     v->c_str());
        return 2;
      }
    } else if (auto v = value("templates")) {
      templates_given = true;
      plan.templates.clear();
      for (const auto& name : split_commas(*v)) {
        if (name == "default") {
          plan.templates = harness::default_fault_templates();
          continue;
        }
        const auto t = harness::fault_template_from_name(name);
        if (!t) {
          std::fprintf(stderr,
                       "unknown template '%s' (none|crash|byz|mixed|chaos|"
                       "byzchaos|overload)\n",
                       name.c_str());
          return 2;
        }
        plan.templates.push_back(*t);
      }
    } else if (auto v = value("seeds")) {
      seeds_given = true;
      plan.seeds = std::atoi(v->c_str());
    } else if (auto v = value("base-seed")) {
      plan.base_seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value("t")) {
      plan.t = std::atoi(v->c_str());
    } else if (auto v = value("b")) {
      plan.b = std::atoi(v->c_str());
    } else if (auto v = value("readers")) {
      plan.readers = std::atoi(v->c_str());
    } else if (auto v = value("writes")) {
      writes_given = true;
      plan.writes = std::atoi(v->c_str());
    } else if (auto v = value("reads")) {
      reads_given = true;
      plan.reads_per_reader = std::atoi(v->c_str());
    } else if (auto v = value("check")) {
      if (*v == "safe") plan.check_override = harness::Semantics::Safe;
      else if (*v == "regular") plan.check_override = harness::Semantics::Regular;
      else if (*v == "atomic") plan.check_override = harness::Semantics::Atomic;
      else {
        std::fprintf(stderr, "unknown semantics '%s' (safe|regular|atomic)\n",
                     v->c_str());
        return 2;
      }
    } else if (auto v = value("jobs")) {
      jobs = std::atoi(v->c_str());
    } else if (auto v = value("json")) {
      json_path = *v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (quick) {
    harness::SweepPlan q = harness::SweepPlan::quick();
    if (!protocols_given) plan.protocols = q.protocols;
    if (!templates_given) plan.templates = q.templates;
    if (!seeds_given) plan.seeds = q.seeds;
    if (!writes_given) plan.writes = q.writes;
    if (!reads_given) plan.reads_per_reader = q.reads_per_reader;
  } else if (plan.protocols.empty() && !protocols_given) {
    for (const auto& traits : harness::protocol_registry()) {
      plan.protocols.push_back(traits.id);
    }
  }
  if (plan.protocols.empty() || plan.templates.empty() || plan.seeds < 1) {
    usage();
    return 2;
  }

  bool has_overload = false;
  for (const auto t : plan.templates) {
    has_overload = has_overload || t == harness::FaultTemplate::Overload;
  }
  if (has_overload) {
    for (const auto bk : plan.backends) {
      if (bk != harness::BackendKind::Sim) {
        std::fprintf(stderr,
                     "the overload template requires --backends=des (it "
                     "stalls quorums forever; threads would abort)\n");
        return 2;
      }
    }
  }

  harness::SweepEngine engine(std::move(plan));
  if (!replay_key.empty()) return replay(engine, replay_key);

  const auto& p = engine.plan();
  std::printf("sweeping %zu cells: %zu protocol(s) x %zu backend(s) x %zu "
              "template(s) x %d seed(s)\n",
              p.num_cells(), p.protocols.size(), p.backends.size(),
              p.templates.size(), p.seeds);
  const auto report = engine.run(jobs);

  // Aggregate verdicts per protocol x backend for the console summary.
  harness::Table table({"protocol", "backend", "cells", "pass", "fail",
                        "stuck-ops", "avg-events", "read p95 us (max)"});
  for (const auto protocol : p.protocols) {
    for (const auto backend : p.backends) {
      int cells = 0, pass = 0, fail = 0, stuck = 0;
      std::uint64_t events = 0, p95_max = 0;
      for (const auto& c : report.cells) {
        if (c.protocol != protocol || c.backend != backend) continue;
        ++cells;
        if (c.ok) ++pass; else ++fail;
        stuck += c.ops_stuck;
        events += c.events;
        p95_max = std::max<std::uint64_t>(p95_max, c.read_p95);
      }
      table.add_row(harness::protocol_traits(protocol).cli_name,
                    harness::to_string(backend), cells, pass, fail, stuck,
                    cells > 0 ? events / static_cast<std::uint64_t>(cells) : 0,
                    static_cast<double>(p95_max) / 1000.0);
    }
  }
  table.print();
  std::printf("%d/%zu cells failed in %.1f ms on %d workers\n", report.failed,
              report.cells.size(), report.wall_ms, report.workers);

  for (const auto& shrunk : report.shrinks) {
    std::printf("\nfailing cell %s: %d fault event(s) shrunk to %zu "
                "(%d reruns); replay with: --replay %s\n",
                shrunk.key.c_str(), shrunk.original_events,
                shrunk.minimal.events.size(), shrunk.reruns,
                shrunk.key.c_str());
    for (const auto& ev : shrunk.minimal.events) {
      std::printf("  - %s\n", ev.describe().c_str());
    }
    std::printf("  failure: %s\n", shrunk.first_violation.c_str());
  }

  if (!harness::SweepEngine::write_json(report, p, json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return report.all_ok() ? 0 : 1;
}
