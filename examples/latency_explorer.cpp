// Latency explorer: how do deployment choices move read/write latency?
//
// Runs the deterministic simulator across protocol families, resilience
// levels and network-delay distributions, printing a latency/round matrix.
// This is the "capacity planning" view a storage operator would want before
// choosing between the paper's 2-round optimally-resilient storage and the
// alternatives (more objects for 1-round ops, or cryptography).
//
//   $ ./example_latency_explorer
#include <cstdio>

#include "harness/deployment.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

int main() {
  using namespace rr;

  harness::Table table({"protocol", "t", "b", "S", "delay model",
                        "wr p50 us", "rd p50 us", "rd p99 us", "rd rounds"});

  struct Config {
    harness::Protocol protocol;
    int t, b;
  };
  const Config configs[] = {
      {harness::Protocol::Safe, 1, 1},
      {harness::Protocol::Safe, 3, 3},
      {harness::Protocol::Regular, 3, 3},
      {harness::Protocol::Abd, 3, 0},
      {harness::Protocol::FastWrite, 3, 3},
      {harness::Protocol::Auth, 3, 3},
  };
  const std::pair<const char*, harness::DelayKind> delays[] = {
      {"uniform 1-10us", harness::DelayKind::Uniform},
      {"heavy-tail", harness::DelayKind::HeavyTail},
      {"fixed 5us", harness::DelayKind::Fixed},
  };

  for (const auto& cfg : configs) {
    for (const auto& [name, kind] : delays) {
      harness::DeploymentOptions opts;
      opts.protocol = cfg.protocol;
      if (cfg.protocol == harness::Protocol::Abd) {
        opts.res = Resilience{2 * cfg.t + 1, cfg.t, 0, 2};
      } else if (cfg.protocol == harness::Protocol::FastWrite) {
        opts.res = Resilience{2 * cfg.t + 2 * cfg.b + 1, cfg.t, cfg.b, 2};
      } else {
        opts.res = Resilience::optimal(cfg.t, cfg.b, 2);
      }
      opts.seed = 404;
      opts.delay = kind;
      opts.delay_lo = kind == harness::DelayKind::Fixed ? 5'000 : 1'000;
      opts.delay_hi = kind == harness::DelayKind::HeavyTail ? 80'000 : 10'000;
      harness::Deployment d(opts);
      harness::MixedWorkloadStats stats;
      harness::MixedWorkloadOptions w;
      w.writes = 20;
      w.reads_per_reader = 20;
      harness::mixed_workload(d, w, &stats);
      d.run();
      if (!d.check().ok()) {
        std::fprintf(stderr, "consistency violation!?\n%s\n",
                     d.check().summary().c_str());
        return 1;
      }
      table.add_row(harness::to_string(cfg.protocol), cfg.t, cfg.b,
                    opts.res.num_objects, name,
                    stats.writes.latency_p50() / 1000.0,
                    stats.reads.latency_p50() / 1000.0,
                    stats.reads.latency_p99() / 1000.0,
                    stats.reads.rounds_max());
    }
  }
  table.print();
  std::printf(
      "\nReading guide: gv06 pays ~2x one delay round-trip per operation at "
      "minimal S;\nfastwrite halves latency by adding b objects; heavy tails "
      "hurt everyone's p99 but\nnever stall anybody (wait-freedom).\n");
  return 0;
}
