// Tamper audit: replay the paper's Figure 1 attack interactively.
//
// First runs the five-run construction against a strawman one-round reader
// on S = 2t+2b commodity disks and prints the byte-identical views the
// reader cannot tell apart -- demonstrating *why* somebody always gets
// cheated. Then deploys the paper's 2-round reader at S = 2t+b+1 under the
// same class of forging objects, in the deterministic simulator, and shows
// the conflict/vouching machinery rejecting every forgery, with the
// consistency checker as notary.
//
//   $ ./example_tamper_audit
#include <cstdio>

#include "core/safe_reader.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "lowerbound/figure_one.hpp"

int main() {
  using namespace rr;

  const int t = 2, b = 2;
  std::printf("== Part 1: why one round cannot work (Figure 1, t=%d b=%d, "
              "S=2t+2b=%d) ==\n",
              t, b, 2 * t + 2 * b);
  for (const bool aggressive : {true, false}) {
    Resilience res;
    res.t = t;
    res.b = b;
    res.num_objects = 2 * t + 2 * b;
    const auto report = lowerbound::run_figure_one(
        [&] { return lowerbound::make_strawman(res, aggressive); }, res,
        "v1");
    std::printf("\n%s\n", report.summary().c_str());
  }

  std::printf("\n== Part 2: the 2-round reader at S=2t+b+1=%d shrugs off the "
              "same forgers ==\n",
              2 * t + b + 1);
  harness::DeploymentOptions opts;
  opts.protocol = harness::Protocol::Safe;
  opts.res = Resilience::optimal(t, b, 1);
  opts.seed = 2006;  // PODC'06
  opts.faults = harness::FaultPlan::mixed(
      b, adversary::StrategyKind::Forger, 0);
  harness::Deployment d(opts);
  harness::sequential_then_reads(d, 5, 8);
  d.run();

  const auto& diag = d.safe_reader(0).diag();
  std::printf("  last read diagnostics: %d round-1 acks, %d round-2 acks, "
              "%d candidates seen, %d discarded\n",
              diag.round1_acks, diag.round2_acks, diag.candidates_added,
              diag.candidates_removed);

  const auto report = d.check();
  std::printf("  checker: %d reads pinned exactly, %zu violations\n",
              report.reads_checked, report.violations.size());
  if (!report.ok()) {
    std::printf("%s\nFAILED\n", report.summary().c_str());
    return 1;
  }
  std::printf(
      "\naudit passed: with one more object than 2t+2b-impossible deployments"
      "\nand one more round than fast reads, every forged candidate died.\n");
  return 0;
}
