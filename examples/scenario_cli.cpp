// Scenario CLI: drive any protocol deployment from the command line, on
// either execution backend, with any number of register shards.
//
//   $ ./example_scenario_cli --protocol=safe --t=2 --b=2 --readers=3
//       --byzantine=forger --crashes=0 --writes=20 --reads=20
//       --backend=threads --shards=4 --chaos --seed=42
//   (one command line; wrapped here for width)
//
// Prints the run's operation log summary, round counts, network statistics
// and the per-shard consistency verdict. Useful for poking at corner
// configurations without writing a test. The protocol list comes from the
// protocol-traits registry, so newly registered protocols show up here
// automatically.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/chaos.hpp"
#include "harness/deployment.hpp"
#include "harness/protocol.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "wire/messages.hpp"

namespace {

using namespace rr;

std::string protocol_list() {
  std::string out;
  for (const auto& traits : harness::protocol_registry()) {
    if (!out.empty()) out += "|";
    out += traits.cli_name;
  }
  return out;
}

struct Args {
  std::string protocol = "safe";
  std::string backend = "des";
  int t = 2;
  int b = 1;
  int readers = 2;
  int shards = 1;
  std::string byzantine = "";  // strategy name, empty = none
  int byz_count = -1;          // default: full budget b when strategy given
  int crashes = 0;
  int writes = 10;
  int reads = 10;
  bool chaos = false;
  std::uint64_t seed = 1;
  std::size_t history_limit = 0;

  static std::optional<Args> parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* key) -> std::optional<std::string> {
        const std::string prefix = std::string("--") + key + "=";
        if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
        return std::nullopt;
      };
      if (auto v = value("protocol")) a.protocol = *v;
      else if (auto v1 = value("backend")) a.backend = *v1;
      else if (auto v2 = value("t")) a.t = std::atoi(v2->c_str());
      else if (auto v3 = value("b")) a.b = std::atoi(v3->c_str());
      else if (auto v4 = value("readers")) a.readers = std::atoi(v4->c_str());
      else if (auto vs = value("shards")) a.shards = std::atoi(vs->c_str());
      else if (auto v5 = value("byzantine")) a.byzantine = *v5;
      else if (auto v6 = value("byz-count")) a.byz_count = std::atoi(v6->c_str());
      else if (auto v7 = value("crashes")) a.crashes = std::atoi(v7->c_str());
      else if (auto v8 = value("writes")) a.writes = std::atoi(v8->c_str());
      else if (auto v9 = value("reads")) a.reads = std::atoi(v9->c_str());
      else if (auto va = value("seed")) a.seed = std::strtoull(va->c_str(), nullptr, 10);
      else if (auto vb = value("history-limit")) {
        a.history_limit = std::strtoull(vb->c_str(), nullptr, 10);
      } else if (arg == "--chaos") {
        a.chaos = true;
      } else if (arg == "--help" || arg == "-h") {
        return std::nullopt;
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return std::nullopt;
      }
    }
    return a;
  }
};

void usage() {
  std::printf(
      "usage: example_scenario_cli [--protocol=%s]\n"
      "  [--backend=des|threads|net] [--shards=K]\n"
      "  [--t=N] [--b=N] [--readers=N] [--byzantine=STRATEGY] "
      "[--byz-count=N]\n"
      "  [--crashes=N] [--writes=N] [--reads=N] [--history-limit=N] "
      "[--chaos] [--seed=N]\n"
      "strategies: silent amnesiac forger accuser equivocator stagger "
      "collude random\n",
      protocol_list().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = Args::parse(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  const Args& a = *parsed;

  const auto protocol = harness::protocol_from_name(a.protocol);
  if (!protocol) {
    std::fprintf(stderr, "unknown protocol '%s' (known: %s)\n",
                 a.protocol.c_str(), protocol_list().c_str());
    return 2;
  }
  const auto backend = harness::backend_from_name(a.backend);
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s' (known: %s)\n",
                 a.backend.c_str(), harness::backend_names().c_str());
    return 2;
  }
  if (a.shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }

  const auto& traits = harness::protocol_traits(*protocol);
  harness::DeploymentOptions opts;
  opts.protocol = *protocol;
  opts.backend = *backend;
  opts.shards = a.shards;
  opts.res = traits.resilience_for(a.t, a.b, a.readers);
  opts.seed = a.seed;
  opts.history_limit = a.history_limit;
  int byz = 0;
  if (!a.byzantine.empty()) {
    byz = a.byz_count >= 0 ? a.byz_count : a.b;
    opts.faults = harness::FaultPlan::mixed(
        byz, adversary::strategy_from_name(a.byzantine), a.crashes);
  } else if (a.crashes > 0) {
    opts.faults = harness::FaultPlan::crash_only(a.crashes);
  }

  std::printf("deploying %s on %s: S=%d t=%d b=%d readers=%d shards=%d",
              traits.name, harness::to_string(*backend),
              opts.res.num_objects, opts.res.t, opts.res.b, a.readers,
              a.shards);
  if (byz > 0) std::printf(", %d x %s", byz, a.byzantine.c_str());
  if (a.crashes > 0) std::printf(", %d crashed", a.crashes);
  if (a.chaos) std::printf(", chaos on");
  std::printf(", seed=%llu\n", static_cast<unsigned long long>(a.seed));

  harness::Deployment d(opts);
  if (a.chaos) {
    harness::ChaosOptions chaos;
    chaos.max_held = opts.res.t - opts.faults.total_faulty();
    chaos.seed = a.seed * 31 + 7;
    if (chaos.max_held > 0) harness::inject_chaos(d, chaos);
  }
  harness::MixedWorkloadStats stats;
  harness::MixedWorkloadOptions w;
  w.writes = a.writes;
  w.reads_per_reader = a.reads;
  harness::mixed_workload(d, w, &stats);
  const auto events = d.run();

  harness::Table table({"metric", "writes", "reads"});
  table.add_row("operations", stats.writes.count(), stats.reads.count());
  table.add_row("rounds (min/max)",
                std::to_string(stats.writes.rounds_min()) + " / " +
                    std::to_string(stats.writes.rounds_max()),
                std::to_string(stats.reads.rounds_min()) + " / " +
                    std::to_string(stats.reads.rounds_max()));
  table.add_row("latency p50 us", stats.writes.latency_p50() / 1000.0,
                stats.reads.latency_p50() / 1000.0);
  table.add_row("latency p95 us", stats.writes.latency_p95() / 1000.0,
                stats.reads.latency_p95() / 1000.0);
  table.add_row("latency p99 us", stats.writes.latency_p99() / 1000.0,
                stats.reads.latency_p99() / 1000.0);
  table.add_row("latency max us", stats.writes.latency_max() / 1000.0,
                stats.reads.latency_max() / 1000.0);
  table.print();

  // The deployment-level histogram sees every operation (all shards, all
  // readers) in backend clock units -- virtual ns on the DES, wall ns on
  // threads.
  const auto& wl = d.write_latency();
  const auto& rl = d.read_latency();
  std::printf("latency histogram (us): writes p50/p95/p99/max = "
              "%.1f/%.1f/%.1f/%.1f, reads = %.1f/%.1f/%.1f/%.1f\n",
              wl.p50() / 1000.0, wl.p95() / 1000.0, wl.p99() / 1000.0,
              wl.max() / 1000.0, rl.p50() / 1000.0, rl.p95() / 1000.0,
              rl.p99() / 1000.0, rl.max() / 1000.0);

  const auto net = d.stats();
  std::printf("network: %llu msgs (%llu bytes) sent, %llu delivered, %llu "
              "dropped; %llu events\n",
              static_cast<unsigned long long>(net.messages_sent),
              static_cast<unsigned long long>(net.bytes_sent),
              static_cast<unsigned long long>(net.messages_delivered),
              static_cast<unsigned long long>(net.messages_dropped),
              static_cast<unsigned long long>(events));

  int incomplete = 0;
  for (int s = 0; s < d.shards(); ++s) {
    for (const auto& op : d.log(s).snapshot()) {
      if (!op.complete) ++incomplete;
    }
  }
  const auto report = d.check();
  std::printf("consistency (%s, %d shard%s): %s; %d reads pinned, %d ops "
              "stuck\n",
              traits.name, d.shards(), d.shards() == 1 ? "" : "s",
              report.ok() ? "OK" : "VIOLATED", report.reads_checked,
              incomplete);
  if (!report.ok()) {
    std::printf("%s\n", report.summary().c_str());
    return 1;
  }
  return incomplete == 0 ? 0 : 1;
}
