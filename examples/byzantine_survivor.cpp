// Byzantine survivor: the register keeps serving correct data while the
// full Byzantine budget actively lies.
//
// Deploys the regular storage (with the Section 5.1 optimization) at t = b
// = 2 over S = 7 objects, replaces two objects with impostors -- one
// fabricating high-timestamp candidates, one colluding forger -- and runs a
// writer thread against four concurrent reader threads. Every read must
// return a genuinely written value (never "FORGED"/"COLLUDE"), and all
// operations stay wait-free.
//
//   $ ./example_byzantine_survivor
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/register.hpp"

int main() {
  rr::runtime::RobustRegister::Options opts;
  opts.res = rr::Resilience::optimal(/*t=*/2, /*b=*/2, /*num_readers=*/4);
  opts.regular = true;
  opts.optimized = true;
  opts.byzantine[0] = rr::adversary::StrategyKind::Forger;
  opts.byzantine[1] = rr::adversary::StrategyKind::Collude;
  opts.max_jitter_us = 20;
  rr::runtime::RobustRegister reg(opts);

  std::printf(
      "register over S=%d objects; objects #0 (forger) and #1 (collude) "
      "are Byzantine\n",
      opts.res.num_objects);

  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::atomic<int> poisoned{0};
  std::vector<std::thread> readers;
  for (int j = 0; j < 4; ++j) {
    readers.emplace_back([&, j] {
      while (!stop.load()) {
        const auto r = reg.read(j);
        if (!r) continue;
        reads.fetch_add(1);
        const auto& v = r->tsval.val;
        if (v.find("FORGED") != std::string::npos ||
            v.find("COLLUDE") != std::string::npos) {
          poisoned.fetch_add(1);
        }
      }
    });
  }

  for (int k = 1; k <= 50; ++k) {
    const auto w = reg.write("ledger-entry-" + std::to_string(k));
    if (!w) {
      std::fprintf(stderr, "write %d timed out\n", k);
      return 1;
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  const auto last = reg.read(0);
  std::printf("  %d concurrent reads served, %d poisoned values returned\n",
              reads.load(), poisoned.load());
  std::printf("  final state: ts=%llu value=\"%s\"\n",
              static_cast<unsigned long long>(last ? last->tsval.ts : 0),
              last ? last->tsval.val.c_str() : "?");

  if (poisoned.load() != 0 || !last || last->tsval.val != "ledger-entry-50") {
    std::printf("FAILED: Byzantine objects influenced a read!\n");
    return 1;
  }
  std::printf(
      "survived: b+1 vouching keeps forged candidates out of every read\n");
  return 0;
}
