#include "common/graph.hpp"

namespace rr {
namespace {

int popcount(std::uint64_t v) { return std::popcount(v); }

/// Strips vertices with no neighbours inside the set (always in any MIS).
/// Returns their count; `working` is reduced to the entangled core.
int strip_free(const std::vector<std::uint64_t>& adj,
               std::uint64_t& working) {
  int free_vertices = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::uint64_t rest = working;
    while (rest) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      if ((adj[static_cast<std::size_t>(v)] & working & ~(1ULL << v)) == 0) {
        ++free_vertices;
        working &= ~(1ULL << v);
        changed = true;  // removing v may free its former neighbours? no --
                         // v had no neighbours; but keep the loop shape for
                         // clarity (it converges immediately).
      }
    }
  }
  return free_vertices;
}

int pick_pivot(const std::vector<std::uint64_t>& adj, std::uint64_t working) {
  int pivot = -1;
  int pivot_degree = -1;
  std::uint64_t scan = working;
  while (scan) {
    const int v = std::countr_zero(scan);
    scan &= scan - 1;
    const int d =
        popcount(adj[static_cast<std::size_t>(v)] & working & ~(1ULL << v));
    if (d > pivot_degree) {
      pivot_degree = d;
      pivot = v;
    }
  }
  return pivot;
}

int mis_exact(const std::vector<std::uint64_t>& adj, std::uint64_t vertices) {
  std::uint64_t working = vertices;
  const int free_vertices = strip_free(adj, working);
  if (working == 0) return free_vertices;
  const int pivot = pick_pivot(adj, working);
  const std::uint64_t pivot_bit = 1ULL << pivot;
  const int with_pivot =
      1 + mis_exact(adj, working &
                             ~(pivot_bit | adj[static_cast<std::size_t>(pivot)]));
  const int without_pivot = mis_exact(adj, working & ~pivot_bit);
  return free_vertices + std::max(with_pivot, without_pivot);
}

bool has_is(const std::vector<std::uint64_t>& adj, std::uint64_t vertices,
            int k) {
  if (k <= 0) return true;
  std::uint64_t working = vertices;
  const int free_vertices = strip_free(adj, working);
  k -= free_vertices;
  if (k <= 0) return true;
  if (popcount(working) < k) return false;
  const int pivot = pick_pivot(adj, working);
  const std::uint64_t pivot_bit = 1ULL << pivot;
  if (has_is(adj,
             working & ~(pivot_bit | adj[static_cast<std::size_t>(pivot)]),
             k - 1)) {
    return true;
  }
  return has_is(adj, working & ~pivot_bit, k);
}

}  // namespace

int max_independent_set_size(const std::vector<std::uint64_t>& adj,
                             std::uint64_t vertices) {
  RR_ASSERT(adj.size() <= 64);
  return mis_exact(adj, vertices);
}

bool has_independent_set(const std::vector<std::uint64_t>& adj,
                         std::uint64_t vertices, int k) {
  RR_ASSERT(adj.size() <= 64);
  if (k <= 0) return true;
  if (popcount(vertices) < k) return false;
  return has_is(adj, vertices, k);
}

}  // namespace rr
