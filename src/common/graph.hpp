// Tiny exact maximum-independent-set solver.
//
// The safe/regular readers' first round terminates when there exists a
// subset Resp1OK of responders, of size >= S - t, with no pairwise conflict
// (Figure 4 / Figure 6, line 11). Deciding that is a maximum-independent-set
// question on the conflict graph. The graphs are tiny (|V| = S <= 64) and
// almost always edgeless (Lemma 1: correct objects never conflict; only
// Byzantine accusations add edges), so an exact branch-and-bound is both
// required for liveness (a greedy under-approximation could block a read
// forever) and cheap in practice.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rr {

/// Returns the size of a maximum independent set of the graph whose vertices
/// are the set bits of `vertices` and whose adjacency is `adj[v]` (bitmask of
/// neighbours of v). Self-loops are ignored. Requires adj.size() <= 64.
int max_independent_set_size(const std::vector<std::uint64_t>& adj,
                             std::uint64_t vertices);

/// True iff the graph restricted to `vertices` contains an independent set
/// of size >= k. Short-circuits, so typically cheaper than computing the
/// maximum.
bool has_independent_set(const std::vector<std::uint64_t>& adj,
                         std::uint64_t vertices, int k);

}  // namespace rr
