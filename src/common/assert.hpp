// Contract checking. RR_ASSERT is always on (the library is a research
// artifact: failing loudly beats returning garbage); RR_DCHECK compiles out
// in NDEBUG builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rr::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "RR_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}
}  // namespace rr::detail

#define RR_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::rr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                \
  } while (0)

#define RR_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      ::rr::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define RR_DCHECK(expr) ((void)0)
#else
#define RR_DCHECK(expr) RR_ASSERT(expr)
#endif
