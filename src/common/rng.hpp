// Deterministic pseudo-random number generation.
//
// All randomness in the library flows from explicitly seeded Rng instances so
// every simulation, test and benchmark is reproducible from its printed seed.
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace rr {

/// SplitMix64 step: advances `state` and returns the next output word.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot SplitMix64 mix of a single word: the shared one-way mix behind
/// Rng seeding, sweep-cell seed derivation and schedule fingerprints.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t z) {
  return splitmix64(z);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  result_type operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    RR_DCHECK(lo <= hi);
    const std::uint64_t span = hi - lo + 1;  // span==0 means the full range
    if (span == 0) return next();
    // Rejection-free multiply-shift (Lemire); bias negligible for our use.
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * span;
    return lo + static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    RR_DCHECK(n > 0);
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Derives an independent child generator (for per-process streams).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t next() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t state_[4]{};
};

}  // namespace rr
