// Core value types shared by every protocol in the library.
//
// Terminology follows Guerraoui & Vukolic, "How Fast Can a Very Robust Read
// Be?" (PODC 2006): the storage emulates a single-writer multi-reader (SWMR)
// register over S base objects, of which at most t may fail and at most b of
// those failures may be arbitrary (Byzantine).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rr {

/// Writer timestamp. Timestamp 0 is reserved for the initial value (bottom).
using Ts = std::uint64_t;

/// Reader timestamp (the control data readers store into base objects).
using ReaderTs = std::uint64_t;

/// Virtual time in nanoseconds (discrete-event simulator clock).
using Time = std::uint64_t;

/// Identifies one register instance in a sharded deployment. A classic
/// single-register emulation is shard 0 of a 1-shard deployment; sharded
/// deployments host K independent SWMR registers over the same base
/// objects, each with its own writer and reader set.
using RegisterId = std::uint32_t;

/// Opaque register contents. The initial register value ("bottom", the paper's
/// special value that is not a valid WRITE input) is represented by the empty
/// payload at timestamp 0; see TsVal::is_bottom().
using Value = std::string;

/// A timestamp-value pair <ts, v>: the unit the writer pre-writes (the paper's
/// "pw" field contents).
struct TsVal {
  Ts ts{0};
  Value val{};

  /// The register's initial content: <0, bottom>.
  [[nodiscard]] static TsVal bottom() { return TsVal{}; }
  [[nodiscard]] bool is_bottom() const { return ts == 0; }

  friend bool operator==(const TsVal&, const TsVal&) = default;
  friend auto operator<=>(const TsVal&, const TsVal&) = default;
};

/// One base object's vector of reader timestamps, indexed by reader id
/// (the paper's tsr[1..R] field). Size R.
using TsrRow = std::vector<ReaderTs>;

/// The array-of-arrays of reader timestamps the writer collects in its first
/// (PW) round and embeds into the written tuple (the paper's
/// "tsrarray[1..S][1..R]"). Entry i is nil (nullopt) when object i's PW_ACK
/// was not among the S-t the writer awaited.
using TsrArray = std::vector<std::optional<TsrRow>>;

/// The full tuple stored in an object's "w" field: <tsval, tsrarray>.
/// Candidate values in the read protocol range over WTuples.
struct WTuple {
  TsVal tsval{};
  TsrArray tsrarray{};

  friend bool operator==(const WTuple&, const WTuple&) = default;
};

/// Initial tsrarray: all entries nil.
[[nodiscard]] inline TsrArray init_tsrarray(std::size_t num_objects) {
  return TsrArray(num_objects);
}

/// Initial w-field tuple w0 = <<0, bottom>, inittsrarray>.
[[nodiscard]] inline WTuple initial_wtuple(std::size_t num_objects) {
  return WTuple{TsVal::bottom(), init_tsrarray(num_objects)};
}

/// Resilience configuration of a storage emulation.
///
/// Invariants (checked by validate()): b >= 1 (the paper assumes b > 0;
/// crash-only configurations are expressed by the ABD baseline), b <= t,
/// and num_objects >= 2t + b + 1 (the optimal-resilience lower bound of
/// Martin, Alvisi & Dahlin, except for the lower-bound module which
/// deliberately instantiates infeasible configurations).
struct Resilience {
  int num_objects{0};  ///< S
  int t{0};            ///< max faulty base objects
  int b{0};            ///< max arbitrary-faulty base objects (b <= t)
  int num_readers{1};  ///< R

  [[nodiscard]] static Resilience optimal(int t, int b, int num_readers = 1) {
    return Resilience{2 * t + b + 1, t, b, num_readers};
  }

  /// Size of the quorum a client awaits per round: S - t.
  [[nodiscard]] int quorum() const { return num_objects - t; }

  /// True when the configuration satisfies the feasibility bound S >= 2t+b+1.
  [[nodiscard]] bool feasible() const {
    return num_objects >= 2 * t + b + 1;
  }

  [[nodiscard]] bool valid() const {
    return t >= 1 && b >= 0 && b <= t && num_objects >= 1 &&
           num_readers >= 1 && quorum() >= 1;
  }

  friend bool operator==(const Resilience&, const Resilience&) = default;
};

/// Identifies the role of a process in the emulation.
enum class Role : std::uint8_t { Writer, Reader, Object };

[[nodiscard]] constexpr const char* to_string(Role r) {
  switch (r) {
    case Role::Writer: return "writer";
    case Role::Reader: return "reader";
    case Role::Object: return "object";
  }
  return "?";
}

/// Flat process identifier used by both runtimes. The conventional layout for
/// a deployment with R readers and S objects is: writer = 0, readers =
/// 1..R, objects = R+1..R+S (see Topology).
using ProcessId = std::int32_t;

constexpr ProcessId kNoProcess = -1;

/// Maps between (role, index) pairs and flat ProcessIds for the standard
/// single-writer deployment.
class Topology {
 public:
  Topology(int num_readers, int num_objects)
      : num_readers_(num_readers), num_objects_(num_objects) {}

  [[nodiscard]] ProcessId writer() const { return 0; }
  [[nodiscard]] ProcessId reader(int j) const { return 1 + j; }  // j in [0,R)
  [[nodiscard]] ProcessId object(int i) const {                  // i in [0,S)
    return 1 + num_readers_ + i;
  }

  [[nodiscard]] int num_readers() const { return num_readers_; }
  [[nodiscard]] int num_objects() const { return num_objects_; }
  [[nodiscard]] int num_processes() const {
    return 1 + num_readers_ + num_objects_;
  }

  [[nodiscard]] Role role_of(ProcessId p) const {
    if (p == 0) return Role::Writer;
    if (p <= num_readers_) return Role::Reader;
    return Role::Object;
  }
  /// Reader index of a reader ProcessId.
  [[nodiscard]] int reader_index(ProcessId p) const { return p - 1; }
  /// Object index of an object ProcessId.
  [[nodiscard]] int object_index(ProcessId p) const {
    return p - 1 - num_readers_;
  }
  [[nodiscard]] bool is_object(ProcessId p) const {
    return p > num_readers_ && p < num_processes();
  }

 private:
  int num_readers_;
  int num_objects_;
};

}  // namespace rr
