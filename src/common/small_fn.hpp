// Move-only callable wrapper with small-buffer storage.
//
// std::function heap-allocates any capture larger than its tiny SSO buffer
// (two pointers on libstdc++), which makes every timer post in the harness
// hot path an allocation: the Deployment's invocation closures capture a
// Value string plus a completion callback. SmallFn stores callables up to
// `Cap` bytes inline in the owning object -- for the simulator that means
// inside the recycled event slab, so a steady-state post() performs no heap
// allocation at all. Larger callables transparently fall back to the heap.
//
// Differences from std::function, all deliberate:
//   - move-only (the event queues never copy closures),
//   - no target()/target_type() RTTI,
//   - invoking an empty SmallFn is undefined (the event loop never does).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rr::common {

template <class Sig, std::size_t Cap = 64>
class SmallFn;

template <class R, class... Args, std::size_t Cap>
class SmallFn<R(Args...), Cap> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace<D>(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(&buf_, &other.buf_);
    other.ops_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this == &other) return *this;
    reset();
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(&buf_, &other.buf_);
    other.ops_ = nullptr;
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace<D>(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->call(&buf_, std::forward<Args>(args)...);
  }

  /// True when a callable of type D would live in the inline buffer (used
  /// by the zero-allocation tests to keep Cap honest).
  template <class D>
  [[nodiscard]] static constexpr bool stored_inline() {
    return fits_inline<std::decay_t<D>>;
  }

 private:
  struct Ops {
    R (*call)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr bool fits_inline =
      sizeof(D) <= Cap && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class D, class F>
  void emplace(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      static constexpr Ops ops{
          [](void* p, Args&&... a) -> R {
            return (*std::launder(reinterpret_cast<D*>(p)))(
                std::forward<Args>(a)...);
          },
          [](void* dst, void* src) {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); }};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(&buf_)) D*(new D(std::forward<F>(f)));
      static constexpr Ops ops{
          [](void* p, Args&&... a) -> R {
            return (**std::launder(reinterpret_cast<D**>(p)))(
                std::forward<Args>(a)...);
          },
          [](void* dst, void* src) {
            D** s = std::launder(reinterpret_cast<D**>(src));
            ::new (dst) D*(*s);
          },
          [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); }};
      ops_ = &ops;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Cap];
  const Ops* ops_{nullptr};
};

}  // namespace rr::common
