#include "lowerbound/figure_one.hpp"

#include <functional>
#include <memory>
#include <sstream>

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::lowerbound {
namespace {

/// Index blocks of the proof: T1 and T2 of size t, B1 and B2 of size b,
/// S = 2t + 2b.
struct Blocks {
  std::vector<int> t1, t2, b1, b2;
};

Blocks make_blocks(int t, int b) {
  Blocks blk;
  int next = 0;
  for (int i = 0; i < t; ++i) blk.t1.push_back(next++);
  for (int i = 0; i < t; ++i) blk.t2.push_back(next++);
  for (int i = 0; i < b; ++i) blk.b1.push_back(next++);
  for (int i = 0; i < b; ++i) blk.b2.push_back(next++);
  return blk;
}

using ObjectSet = std::vector<std::unique_ptr<LbObject>>;

/// Drives a write session to completion, delivering its per-round broadcast
/// to exactly the objects in `recipients` (the proof's "skips T1"), feeding
/// acks back in index order. Asserts the write completes (wait-freedom: the
/// recipients cover a quorum).
void drive_write(LbWriteSession& write, ObjectSet& objects,
                 const std::vector<int>& recipients) {
  int guard = 0;
  while (!write.complete()) {
    RR_ASSERT_MSG(++guard < 64, "write did not complete within round budget");
    const wire::Message msg = write.current_message();
    bool advanced = false;
    for (const int i : recipients) {
      auto replies = objects[static_cast<std::size_t>(i)]->handle(msg);
      for (const auto& r : replies) {
        advanced = write.on_ack(i, r) || advanced;
        if (advanced) break;  // round changed: stop delivering stale round
      }
      if (advanced || write.complete()) break;
    }
    if (write.complete()) break;
    RR_ASSERT_MSG(advanced,
                  "write made no progress although a quorum responded");
  }
}

/// Delivers the read request to the objects in `block`, returning the
/// encoded replies in delivery order.
std::vector<std::string> deliver_read(const wire::Message& request,
                                      ObjectSet& objects,
                                      const std::vector<int>& block,
                                      LbReadSession& read) {
  std::vector<std::string> encoded;
  for (const int i : block) {
    auto replies = objects[static_cast<std::size_t>(i)]->handle(request);
    for (const auto& r : replies) {
      encoded.push_back(wire::encode(r));
      read.on_reply(i, r);
    }
  }
  return encoded;
}

struct RunOutcome {
  TsVal returned{};
  bool decided{false};
  std::vector<std::string> view;  ///< encoded replies, delivery order
  int write_rounds{0};
};

enum class RunShape {
  Run3,  ///< all correct; read round-1 reaches B1 before the write
  Run4,  ///< B1 malicious (forges sigma1 pre-write, sigma0 pre-reply);
         ///< read invoked after the write completes
  Run5,  ///< B2 malicious (forges sigma2); no write at all
};

RunOutcome execute_run(const ProtocolFactory& factory, const Resilience& res,
                       const Blocks& blk, const Value& v1, RunShape shape) {
  auto proto = factory();
  const int S = res.num_objects;
  ObjectSet objects;
  objects.reserve(static_cast<std::size_t>(S));
  for (int i = 0; i < S; ++i) objects.push_back(proto->make_object(i));

  // Recipients of writer messages: everything but T1 (wr1 "skips T1").
  std::vector<int> write_recipients;
  for (const int i : blk.t2) write_recipients.push_back(i);
  for (const int i : blk.b1) write_recipients.push_back(i);
  for (const int i : blk.b2) write_recipients.push_back(i);

  auto read = proto->make_read();
  const wire::Message request = read->request();

  RunOutcome out;

  // --- Stage 1: B1 receives the read request (or forges having done so).
  std::vector<std::unique_ptr<LbObject>> sigma0_b1;  // for run4's re-forge
  if (shape == RunShape::Run3) {
    // Genuine early delivery to B1 only; the replies are "in transit" and
    // will reach the reader later (we record them now, deliver at stage 3).
    for (const int i : blk.b1) {
      sigma0_b1.push_back(objects[static_cast<std::size_t>(i)]->clone());
    }
    // handled below at stage 3 via pre-recorded replies:
    // we must capture them *now*, before the write mutates nothing (reads
    // are state-preserving in the strawman, but the contract allows state
    // changes, so order matters).
    out.view = deliver_read(request, objects, blk.b1, *read);
  } else if (shape == RunShape::Run4) {
    // B1 is malicious: it forges sigma1 by privately simulating the
    // delivery of the read request on a scratch copy. The scratch replies
    // are remembered; the real state adopts sigma1 so the writer observes
    // run3's world.
    for (const int i : blk.b1) {
      auto scratch = objects[static_cast<std::size_t>(i)]->clone();
      sigma0_b1.push_back(objects[static_cast<std::size_t>(i)]->clone());
      auto replies = scratch->handle(request);
      for (const auto& r : replies) {
        out.view.push_back(wire::encode(r));
        read->on_reply(i, r);
      }
      objects[static_cast<std::size_t>(i)] = std::move(scratch);
    }
  } else {
    // Run5: B1 is honest and simply receives the request now (the write
    // never happens, so timing relative to the write is moot).
    out.view = deliver_read(request, objects, blk.b1, *read);
  }

  // --- Stage 2: the write (skipping T1), except in run5.
  if (shape != RunShape::Run5) {
    auto write = proto->make_write(v1);
    drive_write(*write, objects, write_recipients);
    out.write_rounds = write->rounds_used();
  } else {
    // Run5: B2 is malicious and forges sigma2 -- the state B2 would have
    // after the run3 write. Simulate that write privately on scratch
    // copies of the *whole* system (malicious processes can compute
    // anything), then adopt the B2 states.
    ObjectSet scratch;
    scratch.reserve(static_cast<std::size_t>(S));
    for (int i = 0; i < S; ++i) {
      scratch.push_back(objects[static_cast<std::size_t>(i)]->clone());
    }
    // In the simulated world B1 had received the read request first, as in
    // run3 (sigma2 is defined by run2/run3's history).
    for (const int i : blk.b1) {
      (void)scratch[static_cast<std::size_t>(i)]->handle(request);
    }
    auto fake_proto = factory();
    auto fake_write = fake_proto->make_write(v1);
    drive_write(*fake_write, scratch, write_recipients);
    for (const int i : blk.b2) {
      objects[static_cast<std::size_t>(i)] =
          scratch[static_cast<std::size_t>(i)]->clone();
    }
  }

  // --- Stage 3: remaining read deliveries: B2 then T1 (T2 skipped -- its
  // messages stay in transit / it appears crashed).
  if (shape == RunShape::Run4) {
    // B1 now forges back to sigma0 before answering the (re-delivered)
    // read request, producing byte-identical replies to run3's early ones.
    for (std::size_t k = 0; k < blk.b1.size(); ++k) {
      objects[static_cast<std::size_t>(blk.b1[k])] =
          sigma0_b1[k]->clone();
    }
    // The replies were already fed to the reader at stage 1 (they are the
    // same bytes); nothing to redo for B1.
  }
  auto b2_view = deliver_read(request, objects, blk.b2, *read);
  auto t1_view = deliver_read(request, objects, blk.t1, *read);
  out.view.insert(out.view.end(), b2_view.begin(), b2_view.end());
  out.view.insert(out.view.end(), t1_view.begin(), t1_view.end());

  out.decided = read->decided();
  if (out.decided) out.returned = read->result();
  return out;
}

}  // namespace

std::string FigureOneReport::summary() const {
  std::ostringstream os;
  os << "Figure-1 orchestration vs " << protocol << " (t=" << t << ", b=" << b
     << ", S=" << num_objects << ")\n"
     << "  reader fast-decided: " << (reader_decided ? "yes" : "NO") << "\n"
     << "  views byte-identical (runs 3/4/5): "
     << (views_identical ? "yes" : "NO") << "\n"
     << "  vR = <" << returned3.ts << ",\"" << returned3.val << "\">\n"
     << "  run4 (read succeeds WRITE(" << written_value
     << ")): " << (run4_violation ? "SAFETY VIOLATED" : "ok") << "\n"
     << "  run5 (nothing written): "
     << (run5_violation ? "SAFETY VIOLATED" : "ok") << "\n"
     << "  => lower bound "
     << (safety_violated() ? "CONFIRMED: no safe fast read with 2t+2b objects"
                           : "NOT demonstrated");
  return os.str();
}

FigureOneReport run_figure_one(const ProtocolFactory& factory,
                               const Resilience& res, const Value& v1) {
  RR_ASSERT_MSG(res.num_objects == 2 * res.t + 2 * res.b,
                "Proposition 1 is about S = 2t+2b object deployments");
  RR_ASSERT(res.t >= 1 && res.b >= 1);

  const Blocks blk = make_blocks(res.t, res.b);

  FigureOneReport report;
  report.t = res.t;
  report.b = res.b;
  report.num_objects = res.num_objects;
  report.protocol = factory()->name();
  report.written_value = v1;

  const RunOutcome r3 = execute_run(factory, res, blk, v1, RunShape::Run3);
  const RunOutcome r4 = execute_run(factory, res, blk, v1, RunShape::Run4);
  const RunOutcome r5 = execute_run(factory, res, blk, v1, RunShape::Run5);

  report.reader_decided = r3.decided && r4.decided && r5.decided;
  report.views_identical = (r3.view == r4.view) && (r3.view == r5.view);
  report.returned3 = r3.returned;
  report.returned4 = r4.returned;
  report.returned5 = r5.returned;
  report.write_rounds = r3.write_rounds;
  // In run4 the read succeeds wr1, so safety demands v1; in run5 nothing
  // was written, so safety demands the initial value.
  report.run4_violation = r4.decided && r4.returned.val != v1;
  report.run5_violation = r5.decided && !r5.returned.is_bottom();
  return report;
}

}  // namespace rr::lowerbound
