#include "lowerbound/fast_read.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"

namespace rr::lowerbound {
namespace {

/// Base object of the strawman: a <pw, w> pair written in two phases,
/// polled without state changes.
class StrawmanObject final : public LbObject {
 public:
  std::vector<wire::Message> handle(const wire::Message& m) override {
    std::vector<wire::Message> out;
    if (const auto* wr = std::get_if<wire::BlWriteMsg>(&m)) {
      if (wr->phase == 1) {
        if (wr->ts > pw_.ts) pw_ = TsVal{wr->ts, wr->val};
      } else {
        if (wr->ts > w_.ts) {
          w_ = TsVal{wr->ts, wr->val};
          if (wr->ts > pw_.ts) pw_ = w_;
        }
      }
      out.push_back(wire::BlWriteAckMsg{wr->phase, wr->ts});
    } else if (const auto* poll = std::get_if<wire::PollMsg>(&m)) {
      out.push_back(wire::PollAckMsg{poll->seq, poll->round, pw_, w_});
    }
    return out;
  }

  [[nodiscard]] std::unique_ptr<LbObject> clone() const override {
    return std::make_unique<StrawmanObject>(*this);
  }

 private:
  TsVal pw_{TsVal::bottom()};
  TsVal w_{TsVal::bottom()};
};

class StrawmanWrite final : public LbWriteSession {
 public:
  StrawmanWrite(const Resilience& res, Ts ts, Value v)
      : res_(res), ts_(ts), val_(std::move(v)) {}

  [[nodiscard]] wire::Message current_message() const override {
    return wire::BlWriteMsg{static_cast<std::uint8_t>(phase_), ts_, val_};
  }

  bool on_ack(int object_index, const wire::Message& ack) override {
    const auto* a = std::get_if<wire::BlWriteAckMsg>(&ack);
    if (a == nullptr || complete_) return false;
    if (a->phase != phase_ || a->ts != ts_) return false;
    if (acked_.count(object_index) != 0) return false;
    acked_.insert({object_index, true});
    if (static_cast<int>(acked_.size()) < res_.quorum()) return false;
    if (phase_ == 1) {
      phase_ = 2;
      acked_.clear();
      ++rounds_;
      return true;  // re-broadcast phase-2 message
    }
    complete_ = true;
    return false;
  }

  [[nodiscard]] bool complete() const override { return complete_; }
  [[nodiscard]] int rounds_used() const override { return rounds_; }

 private:
  Resilience res_;
  Ts ts_;
  Value val_;
  int phase_{1};
  int rounds_{1};
  bool complete_{false};
  std::map<int, bool> acked_;
};

class StrawmanRead final : public LbReadSession {
 public:
  StrawmanRead(const Resilience& res, std::uint64_t seq, bool aggressive)
      : res_(res), seq_(seq), aggressive_(aggressive) {}

  [[nodiscard]] wire::Message request() const override {
    return wire::PollMsg{seq_, 1};
  }

  void on_reply(int object_index, const wire::Message& reply) override {
    if (decided_) return;
    const auto* ack = std::get_if<wire::PollAckMsg>(&reply);
    if (ack == nullptr || ack->seq != seq_) return;
    if (replied_.count(object_index) != 0) return;
    replied_.insert({object_index, true});
    reports_.push_back(*ack);
    if (static_cast<int>(replied_.size()) >= res_.quorum()) decide();
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] TsVal result() const override {
    RR_ASSERT(decided_);
    return result_;
  }

 private:
  void decide() {
    decided_ = true;
    // Count support for every reported w pair; also track the highest pair
    // seen anywhere (pw or w).
    std::vector<std::pair<TsVal, int>> support;
    TsVal highest = TsVal::bottom();
    for (const auto& r : reports_) {
      auto it = std::find_if(support.begin(), support.end(),
                             [&](const auto& s) { return s.first == r.w; });
      if (it == support.end()) {
        support.emplace_back(r.w, 1);
      } else {
        ++it->second;
      }
      if (r.w.ts > highest.ts) highest = r.w;
      if (r.pw.ts > highest.ts) highest = r.pw;
    }
    // Horn 1: the best b+1-supported pair (cannot have been forged).
    TsVal vouched = TsVal::bottom();
    for (const auto& [pair, n] : support) {
      if (n >= res_.b + 1 && pair.ts > vouched.ts) vouched = pair;
    }
    // aggressive: trust the highest report outright when nothing reaches
    // the b+1 bar (returns forgeries in run5); conservative: stick to the
    // vouched pair (misses genuine writes in run4).
    result_ = (aggressive_ && highest.ts > vouched.ts) ? highest : vouched;
  }

  Resilience res_;
  std::uint64_t seq_;
  bool aggressive_;
  bool decided_{false};
  TsVal result_{TsVal::bottom()};
  std::map<int, bool> replied_;
  std::vector<wire::PollAckMsg> reports_;
};

class Strawman final : public FastReadProtocol {
 public:
  Strawman(const Resilience& res, bool aggressive)
      : res_(res), aggressive_(aggressive) {}

  [[nodiscard]] const char* name() const override {
    return aggressive_ ? "strawman-aggressive" : "strawman-conservative";
  }

  [[nodiscard]] std::unique_ptr<LbObject> make_object(int) override {
    return std::make_unique<StrawmanObject>();
  }

  [[nodiscard]] std::unique_ptr<LbWriteSession> make_write(Value v) override {
    return std::make_unique<StrawmanWrite>(res_, ++write_ts_, std::move(v));
  }

  [[nodiscard]] std::unique_ptr<LbReadSession> make_read() override {
    return std::make_unique<StrawmanRead>(res_, ++read_seq_, aggressive_);
  }

 private:
  Resilience res_;
  bool aggressive_;
  Ts write_ts_{0};
  std::uint64_t read_seq_{0};
};

}  // namespace

std::unique_ptr<FastReadProtocol> make_strawman(const Resilience& res,
                                                bool aggressive) {
  return std::make_unique<Strawman>(res, aggressive);
}

}  // namespace rr::lowerbound
