// Abstractions for "fast READ" storage implementations, used by the
// Figure 1 / Proposition 1 orchestrator (lowerbound/figure_one.*).
//
// The lower bound quantifies over *any* implementation in which every READ
// completes in one communication round-trip over S <= 2t+2b objects, for any
// number of writer rounds. To execute the proof's runs against an
// implementation, the orchestrator needs three things, captured by the
// interfaces below:
//
//   LbObject        a deterministic, cloneable base-object automaton
//                   (cloning realizes the proof's state forging: a malicious
//                   object "forges its state to sigma" = the orchestrator
//                   restores a snapshot),
//   LbWriteSession  a round-driven writer for one WRITE operation,
//   LbReadSession   a single-round reader that must decide once replies
//                   from S - t objects have been processed.
//
// Everything is synchronous and deterministic: the orchestrator delivers
// messages by direct calls in a fixed order, so byte-level
// indistinguishability of runs can be asserted exactly.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "wire/messages.hpp"

namespace rr::lowerbound {

class LbObject {
 public:
  virtual ~LbObject() = default;

  /// Processes one client message, returning the replies (usually one).
  /// Must be deterministic in (state, message).
  virtual std::vector<wire::Message> handle(const wire::Message& m) = 0;

  /// Deep copy including all mutable state.
  [[nodiscard]] virtual std::unique_ptr<LbObject> clone() const = 0;
};

class LbWriteSession {
 public:
  virtual ~LbWriteSession() = default;

  /// The broadcast message of the current round (the writer sends to all
  /// objects; the orchestrator chooses which actually receive it).
  [[nodiscard]] virtual wire::Message current_message() const = 0;

  /// Delivers object i's ack. Returns true if this ack advanced the writer
  /// to a new round (re-broadcast current_message()) -- false otherwise.
  virtual bool on_ack(int object_index, const wire::Message& ack) = 0;

  [[nodiscard]] virtual bool complete() const = 0;
  [[nodiscard]] virtual int rounds_used() const = 0;
};

class LbReadSession {
 public:
  virtual ~LbReadSession() = default;

  /// The single read request (identical to every object: fast READ).
  [[nodiscard]] virtual wire::Message request() const = 0;

  virtual void on_reply(int object_index, const wire::Message& reply) = 0;

  /// Must be true once replies from S - t distinct objects were processed
  /// (that is what makes the READ fast); the orchestrator asserts this.
  [[nodiscard]] virtual bool decided() const = 0;
  [[nodiscard]] virtual TsVal result() const = 0;
};

/// Factory bundle for one implementation candidate.
class FastReadProtocol {
 public:
  virtual ~FastReadProtocol() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<LbObject> make_object(int index) = 0;
  [[nodiscard]] virtual std::unique_ptr<LbWriteSession> make_write(
      Value v) = 0;
  [[nodiscard]] virtual std::unique_ptr<LbReadSession> make_read() = 0;
};

/// The strawman implementation attacked in benches/tests: S = 2t+2b objects
/// holding <pw, w> pairs, a two-phase writer (quorum S-t per phase), and a
/// one-round reader. `aggressive` selects which horn of the proof's dilemma
/// the reader picks when evidence is thin:
///   aggressive = true   return the highest reported pair even with <= b
///                       reports (violates safety in run5: returns a value
///                       that was never written),
///   aggressive = false  require b+1 matching reports, else return the
///                       default (violates safety in run4: misses a write
///                       that precedes the read).
/// Proposition 1 says every fast-read rule must fail one way or the other.
[[nodiscard]] std::unique_ptr<FastReadProtocol> make_strawman(
    const Resilience& res, bool aggressive);

}  // namespace rr::lowerbound
