// Executable reproduction of the Proposition 1 lower bound (paper Figure 1).
//
// Given any fast-read implementation candidate over S = 2t+2b base objects,
// the orchestrator constructs the proof's partial runs:
//
//   run1   reader's request reaches only block B1 (b objects); B1's state
//          becomes sigma1; everything else is in transit.
//   run3   extends run1: a WRITE(v1) completes, skipping block T1 (t
//          objects); the reader then hears B1 (pre-write reply), B2
//          (post-write state sigma2) and T1 (initial state sigma0) -- that
//          is S - t replies, so a fast read must decide: call it vR.
//   run4   WRITE first. B1 is malicious: it pre-forges sigma1 (so the
//          writer sees exactly run3) and answers the later read from a
//          forged sigma0. The reader's view is byte-identical to run3, yet
//          the read now *succeeds* the write: safety demands vR = v1.
//   run5   no WRITE at all. B2 is malicious and pre-forges sigma2. The
//          reader's view is again byte-identical: safety demands vR =
//          bottom.
//
// Since vR is one fixed value, safety fails in run4 or in run5. The
// orchestrator executes all three reader-visible runs, asserts byte-level
// indistinguishability (on encoded replies), and reports which run
// violates safety.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "lowerbound/fast_read.hpp"

namespace rr::lowerbound {

struct FigureOneReport {
  int t{};
  int b{};
  int num_objects{};  ///< 2t + 2b
  std::string protocol;

  bool reader_decided{false};     ///< the read was indeed fast in all runs
  bool views_identical{false};    ///< byte-identical replies in runs 3/4/5
  Value written_value{};          ///< v1
  TsVal returned3{};              ///< vR in run3 (== run4 == run5)
  TsVal returned4{};
  TsVal returned5{};
  bool run4_violation{false};     ///< vR != v1 although wr1 precedes rd1
  bool run5_violation{false};     ///< vR != bottom although nothing written
  int write_rounds{0};            ///< rounds the writer used (bound holds
                                  ///< for any number)

  /// The lower bound manifests: at least one run violates safety.
  [[nodiscard]] bool safety_violated() const {
    return run4_violation || run5_violation;
  }
  [[nodiscard]] std::string summary() const;
};

/// Runs the Figure 1 construction against a fresh protocol instance built by
/// `factory` for each run (runs must be independent). `res` must satisfy
/// S = 2t+2b (the bound's hypothesis).
using ProtocolFactory = std::function<std::unique_ptr<FastReadProtocol>()>;

[[nodiscard]] FigureOneReport run_figure_one(const ProtocolFactory& factory,
                                             const Resilience& res,
                                             const Value& v1);

}  // namespace rr::lowerbound
