// A real-network runtime for net::Process automata: one OS thread and one
// epoll loop per process, a full-duplex loopback-TCP connection per process
// pair, messages framed as length-prefixed wire::encode() bytes
// (wire::FrameDecoder reassembles partial reads).
//
// The entire fault surface of the Backend contract is implemented as a
// userspace proxy sitting between the sockets and the automata:
//
//   crash          the node stops stepping forever and blackholes: its
//                  proxy keeps draining adjacent sockets and DROPS every
//                  frame (counted), so in-transit accounting stays exact --
//                  a real dead machine's kernel would RST and make the
//                  in-flight count unknowable.
//   hold/release   frames still cross the socket, but the receiving proxy
//                  buffers them per channel instead of delivering
//                  ("messages remain in transit"); release re-injects the
//                  backlog FIFO. Crash discards adjacent backlogs.
//   link faults    seeded loss/duplication/reorder sampled sender-side, in
//                  deterministic per-sender order, from the same forked RNG
//                  stream construction as the DES and the cluster; a
//                  reordered frame's write is deferred by reorder_delay.
//   gray           per-frame delivery delay on the gray node (slow but
//                  correct), mirroring the cluster's per-step injection.
//
// The transport itself degrades gracefully instead of trusting the peer:
// non-blocking connect/accept with bounded exponential backoff + jitter
// (netio/backoff.hpp), per-frame read timeouts, and corrupt frames counted
// and dropped (a poisoned stream closes the connection and reconnects) --
// never fatal. Liveness failures surface through run_quiescent() returning
// false, which the harness maps to Backend::timed_out().
//
// Quiescence uses the cluster's scheme: an atomic pending-work counter
// (+1 per accepted send copy or posted closure, -1 after delivery, drop, or
// hold-buffering) and a condvar. Frames buffered on held channels are NOT
// work. One caveat is inherent to real sockets: bytes already handed to a
// kernel that loses the connection cannot be tracked, so the test-only
// sever() hook must be called while quiescent.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/faults.hpp"
#include "net/process.hpp"
#include "net/stats.hpp"
#include "netio/backoff.hpp"
#include "netio/socket.hpp"
#include "wire/frame.hpp"

namespace rr::netio {

struct MeshOptions {
  std::uint64_t seed{1};
  /// Artificial per-delivery jitter (microseconds), as in the cluster.
  std::uint32_t max_jitter_us{0};
  bool account_bytes{true};
  /// Frame payload cap handed to every FrameDecoder.
  std::uint32_t max_frame_bytes{wire::kMaxFramePayload};
  /// A frame stuck mid-read (or a handshake stuck mid-hello) longer than
  /// this is a truncating peer: counted, connection dropped, reconnect
  /// machinery takes over.
  std::uint64_t frame_timeout_ms{5'000};
  BackoffPolicy backoff{};
};

/// Transport robustness counters (exact after the mesh has quiesced).
struct TransportStats {
  std::uint64_t connects{0};           ///< completed hello handshakes
  std::uint64_t connect_attempts{0};   ///< connect() initiations
  std::uint64_t corrupt_frames{0};     ///< bad magic/oversized/bad payload
  std::uint64_t partial_timeouts{0};   ///< frame stuck mid-read past deadline
  std::uint64_t handshake_failures{0};
};

class Mesh {
 public:
  explicit Mesh(const MeshOptions& opts);
  ~Mesh();
  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  /// Registration (before start() only); ids are dense in call order.
  ProcessId add(std::unique_ptr<net::Process> p);
  void set_link_faults(const net::LinkFaults& lf);
  void set_gray(ProcessId pid, std::uint64_t step_delay_ns);

  /// Binds every node's listener, runs on_start in id order (sends buffer
  /// until the mesh connects), then spins up the node threads; the socket
  /// mesh is established asynchronously by the reconnect machinery.
  void start();
  void stop();

  void post(Time at, ProcessId pid, net::PostFn fn);
  bool run_quiescent(std::chrono::milliseconds timeout);
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_acquire);
  }

  void crash(ProcessId pid);
  [[nodiscard]] bool crashed(ProcessId pid) const;
  void hold(ProcessId from, ProcessId to);
  void hold_all(ProcessId pid);
  void release(ProcessId from, ProcessId to);
  void release_all(ProcessId pid);
  [[nodiscard]] bool held(ProcessId from, ProcessId to) const;

  [[nodiscard]] Time now() const;
  [[nodiscard]] net::NetStats stats() const;
  [[nodiscard]] TransportStats transport() const;
  [[nodiscard]] net::Process& process(ProcessId pid);
  [[nodiscard]] int num_processes() const {
    return static_cast<int>(nodes_.size());
  }

  /// Test hook: asynchronously closes the a<->b connection from a's side;
  /// b sees EOF and the initiating end re-establishes it with backoff.
  /// Call only while quiescent -- bytes already in the kernel when a socket
  /// closes are lost, and the pending-work counter cannot know about them.
  void sever(ProcessId a, ProcessId b);

 private:
  struct Inject {
    ProcessId from;
    wire::Message msg;
  };

  /// One end of a connection to a peer, owned by the node's thread.
  struct Peer {
    Fd fd;
    bool connecting{false};  ///< non-blocking connect awaiting EPOLLOUT
    bool ready{false};       ///< hello done, frames flowing
    bool want_write{false};  ///< EPOLLOUT currently registered
    wire::FrameDecoder dec{};
    Time partial_since{0};  ///< first observation of a mid-frame stall
    /// Outgoing bytes, kept frame-aligned so a reconnect can rewind to the
    /// first incompletely-written frame (the peer resets its decoder on
    /// disconnect, so a resent prefix never splices into a stale partial).
    std::string out;
    std::size_t out_head{0};         ///< handed to the kernel
    std::size_t out_frame_start{0};  ///< first frame not fully written
    std::deque<std::uint32_t> out_sizes;  ///< frames from out_frame_start on
    std::string hello_out;                ///< unsent hello bytes
    std::uint32_t attempts{0};            ///< consecutive failed connects
    Time next_attempt{0};
  };

  struct TimedItem {
    Time at{0};
    std::uint64_t seq{0};
    bool is_write{false};
    net::PostFn fn;     ///< !is_write: a step of this node
    ProcessId to{-1};   ///< is_write: peer to write to
    std::string bytes;  ///< is_write: a complete frame (reorder deferral)
  };

  struct PendingConn {
    Fd fd;
    Time since{0};
    std::string hello;
  };

  struct Node {
    ProcessId pid{-1};
    std::unique_ptr<net::Process> proc;
    Rng rng;
    Rng link_rng;
    /// Transport-only stream (backoff jitter): kept apart from `rng` so
    /// reconnect timing never perturbs the automaton's deterministic draws.
    Rng net_rng;
    std::atomic<bool> crashed{false};
    std::atomic<std::uint64_t> gray_ns{0};
    /// Written only by the thread stepping this node (sender counters at
    /// route(), receiver counters at delivery), read after quiescence.
    net::NetStats local_stats;

    Fd listener;
    std::uint16_t port{0};
    Fd epoll;
    Fd wake;
    std::vector<Peer> peers;                    ///< indexed by peer pid
    std::unordered_map<int, ProcessId> fd_peer;  ///< owned peer/connect fds
    std::unordered_map<int, PendingConn> pending;  ///< accepted, pre-hello

    std::mutex inj_mu;
    std::vector<net::PostFn> inj_fns;
    std::vector<Inject> inj_msgs;
    std::vector<ProcessId> sever_reqs;

    std::mutex timer_mu;
    std::vector<TimedItem> heap;
    std::uint64_t seq{0};

    // Owner-thread transport counters.
    std::uint64_t connects{0};
    std::uint64_t connect_attempts{0};
    std::uint64_t partial_timeouts{0};
    std::uint64_t handshake_failures{0};

    std::thread thread;
  };

  class MeshContext;
  friend class MeshContext;

  static std::uint64_t chan_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  Node& node(ProcessId pid) { return *nodes_[static_cast<std::size_t>(pid)]; }
  const Node& node(ProcessId pid) const {
    return *nodes_[static_cast<std::size_t>(pid)];
  }

  // Send path (runs on the thread currently stepping `from`).
  void route(ProcessId from, ProcessId to, wire::Message msg);
  void send_frame(Node& n, ProcessId to, std::string frame);
  void append_frame(Node& n, ProcessId to, std::string_view frame);

  // Node event loop.
  void node_main(Node& n);
  void wake(Node& n);
  Time next_deadline(Node& n);
  void handle_event(Node& n, int fd, std::uint32_t events);
  void accept_ready(Node& n);
  void handshake_readable(Node& n, int fd);
  void peer_event(Node& n, ProcessId peer, std::uint32_t events);
  void read_peer(Node& n, ProcessId peer);
  void flush_peer(Node& n, ProcessId peer);
  void update_write_interest(Node& n, ProcessId peer);
  void on_connected(Node& n, ProcessId peer);
  void drop_conn(Node& n, ProcessId peer, bool reconnect_now);
  void attempt_connect(Node& n, ProcessId peer);
  void service_reconnects(Node& n);
  void service_timeouts(Node& n);
  void drain_inject(Node& n);
  void fire_timers(Node& n);

  // Receive path (runs on the destination node's thread).
  void receive_frame(Node& n, ProcessId from, wire::Message&& msg);
  void deliver_msg_step(Node& n, ProcessId from, const wire::Message& msg);
  void deliver_fn_step(Node& n, net::PostFn fn);
  void fault_sleep(Node& n);

  void add_pending(std::int64_t n);
  void finish_work(std::int64_t n);

  void epoll_add(Node& n, int fd, std::uint32_t events);
  void epoll_mod(Node& n, int fd, std::uint32_t events);
  void epoll_del(Node& n, int fd);

  MeshOptions opts_;
  Rng seeder_;
  Time frame_timeout_ns_{0};
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::chrono::steady_clock::time_point epoch_;

  // Quiescence accounting (the cluster's scheme).
  std::atomic<std::int64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  std::atomic<std::uint64_t> delivered_{0};

  // Held channels: status and backlog split, as in the cluster, so crash
  // can discard a backlog while the channel itself stays held.
  mutable std::mutex chan_mu_;
  std::unordered_set<std::uint64_t> held_chans_;
  std::unordered_map<std::uint64_t, std::vector<Inject>> held_buffers_;
  std::atomic<std::size_t> held_count_{0};
  std::atomic<std::uint64_t> crash_dropped_{0};

  net::LinkFaults link_faults_;
  bool link_enabled_{false};
};

}  // namespace rr::netio
