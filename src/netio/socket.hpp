// Thin RAII + loopback-TCP helpers under the net backend's epoll loops.
//
// Everything is non-blocking: accept/connect/read/write never park a node
// thread -- readiness is epoll's job, robustness (backoff, timeouts,
// reconnects) is netio::Mesh's. Linux-only, like the epoll loop above it.
#pragma once

#include <cstdint>
#include <utility>

namespace rr::netio {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_{-1};
};

[[nodiscard]] bool set_nonblocking(int fd);
void set_nodelay(int fd);

/// Binds 127.0.0.1 on an ephemeral port and listens (non-blocking).
/// Writes the chosen port to `port_out`; returns an invalid Fd on failure.
[[nodiscard]] Fd listen_loopback(std::uint16_t& port_out);

/// Starts a non-blocking connect to 127.0.0.1:port. On return, either the
/// socket is connected, or `in_progress` is true and completion must be
/// observed via EPOLLOUT + SO_ERROR, or the Fd is invalid (immediate
/// failure -- caller schedules a backoff retry).
[[nodiscard]] Fd connect_loopback(std::uint16_t port, bool& in_progress);

/// SO_ERROR after an EPOLLOUT on an in-progress connect; 0 means connected.
[[nodiscard]] int pending_connect_error(int fd);

}  // namespace rr::netio
