// Bounded exponential backoff with jitter for reconnect attempts.
//
// Pure function of (policy, attempt, rng draw) so tests can pin the whole
// schedule: attempt 0 connects immediately, attempt k >= 1 waits
// min(cap, base * 2^(k-1)) stretched by a uniform factor in
// [1 - jitter, 1 + jitter]. Jitter keeps a mesh of initiators that all lost
// the same peer from reconnecting in lockstep.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rr::netio {

struct BackoffPolicy {
  Time base_ns{1'000'000};    ///< first retry delay (1 ms)
  Time cap_ns{100'000'000};   ///< ceiling on the nominal delay (100 ms)
  double jitter{0.25};        ///< uniform stretch, +/- this fraction
};

/// Nominal (jitter-free) delay before attempt `attempt`.
[[nodiscard]] inline Time backoff_nominal_ns(const BackoffPolicy& p,
                                             std::uint32_t attempt) {
  if (attempt == 0) return 0;
  Time d = p.base_ns;
  for (std::uint32_t i = 1; i < attempt && d < p.cap_ns; ++i) d *= 2;
  return d < p.cap_ns ? d : p.cap_ns;
}

/// Jittered delay before attempt `attempt` (one rng draw per call).
[[nodiscard]] inline Time backoff_delay_ns(const BackoffPolicy& p,
                                           std::uint32_t attempt, Rng& rng) {
  const Time nominal = backoff_nominal_ns(p, attempt);
  if (nominal == 0 || p.jitter <= 0) return nominal;
  const double stretch = 1.0 + p.jitter * (2.0 * rng.uniform01() - 1.0);
  return static_cast<Time>(static_cast<double>(nominal) * stretch);
}

}  // namespace rr::netio
