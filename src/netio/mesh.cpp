#include "netio/mesh.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::netio {

namespace {

/// First bytes on every fresh connection: the initiator identifies itself
/// ("HELO" + pid, both u32 little-endian); the acceptor's identity is
/// implied by the listener the initiator dialed.
constexpr std::uint32_t kHelloMagic = 0x4f4c4548u;
constexpr std::size_t kHelloBytes = 8;
constexpr Time kNoDeadline = ~Time{0};

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

class Mesh::MeshContext final : public net::Context {
 public:
  MeshContext(Mesh& m, ProcessId self) : m_(m), self_(self) {}
  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] Time now() const override { return m_.now(); }
  void send(ProcessId to, wire::Message msg) override {
    m_.route(self_, to, std::move(msg));
  }
  [[nodiscard]] Rng& rng() override { return m_.node(self_).rng; }

 private:
  Mesh& m_;
  ProcessId self_;
};

Mesh::Mesh(const MeshOptions& opts)
    : opts_(opts),
      seeder_(opts.seed),
      frame_timeout_ns_(opts.frame_timeout_ms * 1'000'000ull),
      epoch_(std::chrono::steady_clock::now()) {}

Mesh::~Mesh() { stop(); }

ProcessId Mesh::add(std::unique_ptr<net::Process> p) {
  RR_ASSERT(!started_);
  RR_ASSERT(p != nullptr);
  auto n = std::make_unique<Node>();
  n->pid = static_cast<ProcessId>(nodes_.size());
  n->proc = std::move(p);
  n->rng = seeder_.fork();
  n->net_rng = Rng(mix64(opts_.seed ^ 0x6e65'7472'7269'6f00ULL) +
                   static_cast<std::uint64_t>(n->pid));
  nodes_.push_back(std::move(n));
  return nodes_.back()->pid;
}

void Mesh::set_link_faults(const net::LinkFaults& lf) {
  RR_ASSERT(!started_);
  link_faults_ = lf;
  link_enabled_ = lf.any();
  // Same forked-stream construction as the DES and the cluster, so a
  // seeded rule samples the same way on every backend.
  Rng seeder(mix64(lf.seed ^ 0x11fa'0175'0001ULL));
  for (auto& n : nodes_) n->link_rng = seeder.fork();
}

void Mesh::set_gray(ProcessId pid, std::uint64_t step_delay_ns) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  node(pid).gray_ns.store(step_delay_ns, std::memory_order_relaxed);
}

Time Mesh::now() const {
  return static_cast<Time>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - epoch_)
                               .count());
}

net::Process& Mesh::process(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  return *node(pid).proc;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void Mesh::start() {
  RR_ASSERT(!started_);
  started_ = true;
  for (auto& np : nodes_) {
    Node& n = *np;
    n.epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    RR_ASSERT_MSG(n.epoll.valid(), "net backend: epoll_create1 failed");
    n.wake = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    RR_ASSERT_MSG(n.wake.valid(), "net backend: eventfd failed");
    n.listener = listen_loopback(n.port);
    RR_ASSERT_MSG(n.listener.valid(),
                  "net backend: cannot bind a loopback listener");
    epoll_add(n, n.wake.get(), EPOLLIN);
    epoll_add(n, n.listener.get(), EPOLLIN);
    n.peers.resize(nodes_.size());
  }
  // on_start in id order, single-threaded, before any connection exists:
  // sends land in the frame-aligned out buffers and flush once the
  // reconnect machinery (attempt 0 = immediate) brings the mesh up.
  for (auto& np : nodes_) {
    Node& n = *np;
    if (n.crashed.load(std::memory_order_relaxed)) continue;
    MeshContext ctx(*this, n.pid);
    n.proc->on_start(ctx);
  }
  running_.store(true, std::memory_order_release);
  for (auto& np : nodes_) {
    Node* n = np.get();
    n->thread = std::thread([this, n] { node_main(*n); });
  }
}

void Mesh::stop() {
  if (stopping_.exchange(true)) return;
  running_.store(false, std::memory_order_release);
  for (auto& np : nodes_) {
    if (np->thread.joinable()) wake(*np);
  }
  for (auto& np : nodes_) {
    if (np->thread.joinable()) np->thread.join();
  }
}

// ---------------------------------------------------------------------------
// Quiescence accounting
// ---------------------------------------------------------------------------

void Mesh::add_pending(std::int64_t n) {
  pending_.fetch_add(n, std::memory_order_acq_rel);
}

void Mesh::finish_work(std::int64_t n) {
  if (n == 0) return;
  if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

bool Mesh::run_quiescent(std::chrono::milliseconds timeout) {
  std::unique_lock lock(quiesce_mu_);
  return quiesce_cv_.wait_for(lock, timeout, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void Mesh::post(Time at, ProcessId pid, net::PostFn fn) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  add_pending(1);
  Node& n = node(pid);
  {
    std::lock_guard lock(n.timer_mu);
    n.heap.push_back(TimedItem{at, n.seq++, false, std::move(fn), -1, {}});
    std::push_heap(n.heap.begin(), n.heap.end(), [](const TimedItem& a,
                                                    const TimedItem& b) {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    });
  }
  wake(n);
}

// ---------------------------------------------------------------------------
// Fault surface (the userspace proxy's control plane)
// ---------------------------------------------------------------------------

void Mesh::crash(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  node(pid).crashed.store(true, std::memory_order_release);
  if (held_count_.load(std::memory_order_acquire) == 0) return;
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(chan_mu_);
    // Channels stay held (status); only adjacent backlogs are discarded,
    // so release() cannot resurrect a crashed process's traffic.
    for (auto it = held_buffers_.begin(); it != held_buffers_.end();) {
      const auto from = static_cast<ProcessId>(it->first >> 32);
      const auto to = static_cast<ProcessId>(it->first & 0xffffffffu);
      if (from != pid && to != pid) {
        ++it;
        continue;
      }
      dropped += it->second.size();
      it = held_buffers_.erase(it);
    }
  }
  if (dropped > 0) {
    crash_dropped_.fetch_add(dropped, std::memory_order_acq_rel);
  }
}

bool Mesh::crashed(ProcessId pid) const {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  return node(pid).crashed.load(std::memory_order_acquire);
}

void Mesh::hold(ProcessId from, ProcessId to) {
  RR_ASSERT(from >= 0 && from < static_cast<ProcessId>(nodes_.size()));
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(nodes_.size()));
  std::lock_guard lock(chan_mu_);
  held_chans_.insert(chan_key(from, to));
  held_count_.store(held_chans_.size(), std::memory_order_release);
}

void Mesh::hold_all(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  std::lock_guard lock(chan_mu_);
  for (ProcessId q = 0; q < static_cast<ProcessId>(nodes_.size()); ++q) {
    if (q == pid) continue;  // the self-channel pid -> pid is never used
    held_chans_.insert(chan_key(pid, q));
    held_chans_.insert(chan_key(q, pid));
  }
  held_count_.store(held_chans_.size(), std::memory_order_release);
}

bool Mesh::held(ProcessId from, ProcessId to) const {
  std::lock_guard lock(chan_mu_);
  return held_chans_.count(chan_key(from, to)) != 0;
}

void Mesh::release(ProcessId from, ProcessId to) {
  std::vector<Inject> buffered;
  {
    std::lock_guard lock(chan_mu_);
    const auto key = chan_key(from, to);
    if (held_chans_.erase(key) == 0) return;
    held_count_.store(held_chans_.size(), std::memory_order_release);
    const auto it = held_buffers_.find(key);
    if (it != held_buffers_.end()) {
      buffered = std::move(it->second);
      held_buffers_.erase(it);
    }
  }
  if (buffered.empty()) return;
  // FIFO re-injection into the destination's proxy, outside the channel
  // lock. A concurrent send on the just-released channel may overtake the
  // backlog -- legal under the asynchronous model (fresh delays on
  // release, as under the DES).
  Node& dest = node(to);
  {
    std::lock_guard lock(dest.inj_mu);
    for (auto& env : buffered) {
      add_pending(1);
      dest.inj_msgs.push_back(std::move(env));
    }
  }
  wake(dest);
}

void Mesh::release_all(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(nodes_.size()));
  std::vector<std::pair<ProcessId, std::vector<Inject>>> released;
  {
    std::lock_guard lock(chan_mu_);
    for (ProcessId q = 0; q < static_cast<ProcessId>(nodes_.size()); ++q) {
      for (const auto key : {chan_key(pid, q), chan_key(q, pid)}) {
        if (held_chans_.erase(key) == 0) continue;
        const auto it = held_buffers_.find(key);
        if (it == held_buffers_.end()) continue;
        released.emplace_back(static_cast<ProcessId>(key & 0xffffffffu),
                              std::move(it->second));
        held_buffers_.erase(it);
      }
    }
    held_count_.store(held_chans_.size(), std::memory_order_release);
  }
  for (auto& [to, backlog] : released) {
    Node& dest = node(to);
    {
      std::lock_guard lock(dest.inj_mu);
      for (auto& env : backlog) {
        add_pending(1);
        dest.inj_msgs.push_back(std::move(env));
      }
    }
    wake(dest);
  }
}

void Mesh::sever(ProcessId a, ProcessId b) {
  RR_ASSERT(a >= 0 && a < static_cast<ProcessId>(nodes_.size()));
  RR_ASSERT(b >= 0 && b < static_cast<ProcessId>(nodes_.size()));
  RR_ASSERT(a != b);
  Node& n = node(a);
  {
    std::lock_guard lock(n.inj_mu);
    n.sever_reqs.push_back(b);
  }
  wake(n);
}

// ---------------------------------------------------------------------------
// Send path (runs on the thread currently stepping `from`)
// ---------------------------------------------------------------------------

void Mesh::route(ProcessId from, ProcessId to, wire::Message msg) {
  RR_ASSERT(from >= 0 && from < static_cast<ProcessId>(nodes_.size()));
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(nodes_.size()));
  Node& sender = node(from);
  auto& st = sender.local_stats;
  // The frame payload doubles as the byte accounting: encode() length ==
  // encoded_size() (pinned by the codec tests), so net byte counts stay
  // comparable with the DES and the cluster.
  const std::string payload = wire::encode(msg);
  st.messages_sent++;
  st.messages_by_type[msg.index()]++;
  if (opts_.account_bytes) {
    st.bytes_sent += payload.size();
    st.bytes_by_type[msg.index()] += payload.size();
  }
  if (const auto* ha = std::get_if<wire::HistReadAckMsg>(&msg)) {
    st.hist_slots_shipped += ha->history.size();
    st.hist_resyncs += ha->resync;
  }
  if (crashed(from) || crashed(to)) {
    st.messages_dropped++;
    return;
  }
  // Link faults, sender-side, in the DES's order: loss, then duplicate,
  // then per-copy reorder below. Only the thread stepping `from` touches
  // its link_rng.
  int copies = 1;
  const Time t = now();
  if (link_enabled_) {
    auto& lrng = sender.link_rng;
    const auto& loss = link_faults_.loss;
    if (loss.active(t) && loss.covers(from, to) && lrng.chance(loss.p)) {
      st.messages_lost++;
      return;
    }
    const auto& dup = link_faults_.duplicate;
    if (dup.active(t) && dup.covers(from, to) && lrng.chance(dup.p)) {
      st.messages_duplicated++;
      copies = 2;
    }
  }
  if (to == from) {
    // Self-sends (never used by the protocols) skip the socket: inject as
    // already-accounted deliveries.
    {
      std::lock_guard lock(sender.inj_mu);
      for (int c = 0; c < copies; ++c) {
        add_pending(1);
        sender.inj_msgs.push_back(Inject{from, msg});
      }
    }
    wake(sender);
    return;
  }
  const std::string frame = wire::wrap_frame(payload);
  bool deferred = false;
  for (int c = 0; c < copies; ++c) {
    bool reorder_this = false;
    if (link_enabled_) {
      const auto& re = link_faults_.reorder;
      if (re.active(t) && re.covers(from, to) &&
          sender.link_rng.chance(re.p)) {
        st.messages_reordered++;
        reorder_this = true;
      }
    }
    add_pending(1);
    if (reorder_this) {
      // Defer the WRITE on the sender's own timer: the frame enters the
      // socket reorder_delay later, so fresher traffic on the channel
      // overtakes it. It was counted pending above, so quiescence waits.
      std::lock_guard lock(sender.timer_mu);
      sender.heap.push_back(TimedItem{t + link_faults_.reorder_delay,
                                      sender.seq++, true, {}, to, frame});
      std::push_heap(sender.heap.begin(), sender.heap.end(),
                     [](const TimedItem& a, const TimedItem& b) {
                       return a.at > b.at || (a.at == b.at && a.seq > b.seq);
                     });
      deferred = true;
    } else {
      send_frame(sender, to, frame);
    }
  }
  if (deferred) wake(sender);
}

void Mesh::send_frame(Node& n, ProcessId to, std::string frame) {
  append_frame(n, to, frame);
  Peer& p = n.peers[static_cast<std::size_t>(to)];
  if (p.ready && p.fd.valid()) flush_peer(n, to);
}

void Mesh::append_frame(Node& n, ProcessId to, std::string_view frame) {
  Peer& p = n.peers[static_cast<std::size_t>(to)];
  p.out.append(frame.data(), frame.size());
  p.out_sizes.push_back(static_cast<std::uint32_t>(frame.size()));
}

// ---------------------------------------------------------------------------
// Receive path (runs on the destination node's thread)
// ---------------------------------------------------------------------------

void Mesh::receive_frame(Node& n, ProcessId from, wire::Message&& msg) {
  if (held_count_.load(std::memory_order_acquire) != 0) {
    std::unique_lock lock(chan_mu_);
    const auto key = chan_key(from, n.pid);
    if (held_chans_.count(key) != 0) {
      held_buffers_[key].push_back(Inject{from, std::move(msg)});
      lock.unlock();
      // "Messages remain in transit": a held buffer is NOT pending work.
      finish_work(1);
      return;
    }
  }
  deliver_msg_step(n, from, msg);
}

void Mesh::fault_sleep(Node& n) {
  // Gray (slow-but-alive): every frame/step on the gray node lands late
  // but correct -- the per-frame delay the ISSUE asks of set_gray.
  const auto gray = n.gray_ns.load(std::memory_order_relaxed);
  if (gray > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(gray));
  if (opts_.max_jitter_us > 0) {
    const auto us = n.rng.uniform(0, opts_.max_jitter_us);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

void Mesh::deliver_msg_step(Node& n, ProcessId from, const wire::Message& msg) {
  fault_sleep(n);
  // Crash is a blackhole at the proxy: the node keeps draining its sockets
  // so in-transit accounting stays exact, and drops everything here.
  if (n.crashed.load(std::memory_order_acquire) || crashed(from)) {
    n.local_stats.messages_dropped++;
    finish_work(1);
    return;
  }
  n.local_stats.messages_delivered++;
  delivered_.fetch_add(1, std::memory_order_relaxed);
  MeshContext ctx(*this, n.pid);
  n.proc->on_message(ctx, from, msg);
  finish_work(1);
}

void Mesh::deliver_fn_step(Node& n, net::PostFn fn) {
  fault_sleep(n);
  if (n.crashed.load(std::memory_order_acquire)) {
    finish_work(1);  // crashed processes take no steps; the closure is dropped
    return;
  }
  MeshContext ctx(*this, n.pid);
  fn(ctx);
  finish_work(1);
}

// ---------------------------------------------------------------------------
// Node event loop
// ---------------------------------------------------------------------------

void Mesh::wake(Node& n) {
  if (!n.wake.valid()) return;  // pre-start: the first loop pass drains
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r =
      ::write(n.wake.get(), &one, sizeof(one));
}

Time Mesh::next_deadline(Node& n) {
  {
    std::lock_guard lock(n.inj_mu);
    if (!n.inj_fns.empty() || !n.inj_msgs.empty() || !n.sever_reqs.empty()) {
      return 0;  // injected work: don't sleep
    }
  }
  Time d = kNoDeadline;
  {
    std::lock_guard lock(n.timer_mu);
    if (!n.heap.empty()) d = std::min(d, n.heap.front().at);
  }
  for (ProcessId q = 0; q < static_cast<ProcessId>(n.peers.size()); ++q) {
    const Peer& p = n.peers[static_cast<std::size_t>(q)];
    if (q < n.pid && !p.fd.valid() && !p.connecting) {
      d = std::min(d, p.next_attempt);
    }
    if (p.ready && p.partial_since != 0) {
      d = std::min(d, p.partial_since + frame_timeout_ns_);
    }
  }
  for (const auto& [fd, pc] : n.pending) {
    (void)fd;
    d = std::min(d, pc.since + frame_timeout_ns_);
  }
  return d;
}

void Mesh::node_main(Node& n) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const Time deadline = next_deadline(n);
    int timeout_ms = 100;
    if (deadline != kNoDeadline) {
      const Time t = now();
      timeout_ms = deadline <= t
                       ? 0
                       : static_cast<int>(std::min<Time>(
                             100, (deadline - t + 999'999) / 1'000'000));
    }
    epoll_event evs[64];
    const int k = ::epoll_wait(n.epoll.get(), evs, 64, timeout_ms);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (k < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself failed: nothing sane left to do on this node
    }
    for (int i = 0; i < k; ++i) {
      handle_event(n, evs[i].data.fd, evs[i].events);
    }
    drain_inject(n);
    fire_timers(n);
    service_reconnects(n);
    service_timeouts(n);
  }
}

void Mesh::handle_event(Node& n, int fd, std::uint32_t events) {
  if (fd == n.wake.get()) {
    std::uint64_t v = 0;
    [[maybe_unused]] const ssize_t r = ::read(fd, &v, sizeof(v));
    return;
  }
  if (fd == n.listener.get()) {
    accept_ready(n);
    return;
  }
  if (const auto it = n.fd_peer.find(fd); it != n.fd_peer.end()) {
    peer_event(n, it->second, events);
    return;
  }
  if (n.pending.count(fd) != 0) {
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      n.handshake_failures++;
      epoll_del(n, fd);
      n.pending.erase(fd);
      return;
    }
    handshake_readable(n, fd);
    return;
  }
  // Stale event for an fd closed earlier in this batch: ignore.
}

void Mesh::accept_ready(Node& n) {
  for (;;) {
    const int cfd =
        ::accept4(n.listener.get(), nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: epoll will re-arm
    }
    set_nodelay(cfd);
    epoll_add(n, cfd, EPOLLIN);
    n.pending.emplace(cfd, PendingConn{Fd(cfd), now(), {}});
  }
}

void Mesh::handshake_readable(Node& n, int fd) {
  const auto it = n.pending.find(fd);
  if (it == n.pending.end()) return;
  PendingConn& pc = it->second;
  char buf[kHelloBytes];
  while (pc.hello.size() < kHelloBytes) {
    const ssize_t r = ::read(fd, buf, kHelloBytes - pc.hello.size());
    if (r > 0) {
      pc.hello.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (r < 0 && errno == EINTR) continue;
    // EOF or a hard error before the hello completed.
    n.handshake_failures++;
    epoll_del(n, fd);
    n.pending.erase(it);
    return;
  }
  const std::uint32_t magic = get_u32(pc.hello.data());
  const std::uint32_t pid32 = get_u32(pc.hello.data() + 4);
  Fd owned = std::move(pc.fd);
  n.pending.erase(it);
  if (magic != kHelloMagic ||
      pid32 >= static_cast<std::uint32_t>(nodes_.size()) ||
      static_cast<ProcessId>(pid32) == n.pid) {
    // A peer that can't even say hello correctly is hostile or broken:
    // count and close, never trust.
    n.handshake_failures++;
    epoll_del(n, fd);
    return;
  }
  const auto peer = static_cast<ProcessId>(pid32);
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  if (p.fd.valid()) drop_conn(n, peer, false);  // newest connection wins
  const int raw = owned.get();
  p.fd = std::move(owned);
  n.fd_peer[raw] = peer;
  p.connecting = false;
  p.ready = true;
  p.attempts = 0;
  p.partial_since = 0;
  p.dec.reset();
  p.out_head = p.out_frame_start;  // resend the partially-written frame
  n.connects++;
  p.want_write = p.out_head < p.out.size();
  epoll_mod(n, raw, EPOLLIN | (p.want_write ? EPOLLOUT : 0u));
  if (p.want_write) flush_peer(n, peer);
}

void Mesh::peer_event(Node& n, ProcessId peer, std::uint32_t events) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  if (!p.fd.valid()) return;
  if (p.connecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
      const int err = pending_connect_error(p.fd.get());
      if (err == 0) {
        on_connected(n, peer);
      } else {
        n.fd_peer.erase(p.fd.get());
        epoll_del(n, p.fd.get());
        p.fd.reset();
        p.connecting = false;
        p.attempts++;
        p.next_attempt =
            now() + backoff_delay_ns(opts_.backoff, p.attempts, n.net_rng);
      }
    }
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    drop_conn(n, peer, true);
    return;
  }
  if ((events & EPOLLIN) != 0) read_peer(n, peer);
  if (!p.fd.valid()) return;  // the read dropped the connection
  if ((events & EPOLLOUT) != 0) flush_peer(n, peer);
}

void Mesh::on_connected(Node& n, ProcessId peer) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  p.connecting = false;
  p.ready = true;
  p.attempts = 0;
  p.partial_since = 0;
  p.dec.reset();
  p.out_head = p.out_frame_start;  // resend the partially-written frame
  n.connects++;
  std::string hello;
  put_u32(hello, kHelloMagic);
  put_u32(hello, static_cast<std::uint32_t>(n.pid));
  p.hello_out = std::move(hello);
  p.want_write = true;
  epoll_mod(n, p.fd.get(), EPOLLIN | EPOLLOUT);
  flush_peer(n, peer);
}

void Mesh::read_peer(Node& n, ProcessId peer) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  char buf[65536];
  const auto sink = [this, &n, peer](wire::Message&& m) {
    receive_frame(n, peer, std::move(m));
  };
  for (;;) {
    const ssize_t r = ::read(p.fd.get(), buf, sizeof(buf));
    if (r > 0) {
      if (!p.dec.feed(buf, static_cast<std::size_t>(r), sink)) {
        // Poisoned stream (bad magic / oversized length): framing is lost,
        // the decoder counted it; drop the connection and let the
        // initiator end re-establish it with a fresh decoder.
        drop_conn(n, peer, true);
        return;
      }
      if (p.dec.mid_frame()) {
        if (p.partial_since == 0) p.partial_since = now();
      } else {
        p.partial_since = 0;
      }
      continue;
    }
    if (r == 0) {
      drop_conn(n, peer, true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    drop_conn(n, peer, true);
    return;
  }
}

void Mesh::flush_peer(Node& n, ProcessId peer) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  if (!p.fd.valid() || p.connecting || !p.ready) return;
  while (!p.hello_out.empty()) {
    const ssize_t w =
        ::write(p.fd.get(), p.hello_out.data(), p.hello_out.size());
    if (w > 0) {
      p.hello_out.erase(0, static_cast<std::size_t>(w));
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_write_interest(n, peer);
      return;
    }
    if (w < 0 && errno == EINTR) continue;
    drop_conn(n, peer, true);
    return;
  }
  while (p.out_head < p.out.size()) {
    const ssize_t w = ::write(p.fd.get(), p.out.data() + p.out_head,
                              p.out.size() - p.out_head);
    if (w > 0) {
      p.out_head += static_cast<std::size_t>(w);
      // Advance the frame-aligned resend point past fully-written frames.
      while (!p.out_sizes.empty() &&
             p.out_frame_start + p.out_sizes.front() <= p.out_head) {
        p.out_frame_start += p.out_sizes.front();
        p.out_sizes.pop_front();
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    drop_conn(n, peer, true);
    return;
  }
  // Compact the fully-flushed prefix once it dominates the buffer.
  if (p.out_frame_start > (1u << 16) &&
      p.out_frame_start * 2 >= p.out.size()) {
    p.out.erase(0, p.out_frame_start);
    p.out_head -= p.out_frame_start;
    p.out_frame_start = 0;
  }
  update_write_interest(n, peer);
}

void Mesh::update_write_interest(Node& n, ProcessId peer) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  if (!p.fd.valid() || p.connecting) return;
  const bool want = !p.hello_out.empty() || p.out_head < p.out.size();
  if (want == p.want_write) return;
  p.want_write = want;
  epoll_mod(n, p.fd.get(), EPOLLIN | (want ? EPOLLOUT : 0u));
}

void Mesh::drop_conn(Node& n, ProcessId peer, bool reconnect_now) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  if (p.fd.valid()) {
    n.fd_peer.erase(p.fd.get());
    epoll_del(n, p.fd.get());
    p.fd.reset();
  }
  p.connecting = false;
  p.ready = false;
  p.want_write = false;
  p.dec.reset();  // counters survive; buffered partial bytes do not
  p.partial_since = 0;
  p.hello_out.clear();
  // Rewind to the first frame not fully handed to the kernel: the peer
  // resets its decoder on disconnect, so the retransmitted frame arrives
  // whole, never spliced into a stale partial.
  p.out_head = p.out_frame_start;
  if (n.pid > peer && !stopping_.load(std::memory_order_relaxed)) {
    p.attempts = 0;
    p.next_attempt = reconnect_now ? now() : now() + opts_.backoff.base_ns;
  }
}

void Mesh::attempt_connect(Node& n, ProcessId peer) {
  Peer& p = n.peers[static_cast<std::size_t>(peer)];
  n.connect_attempts++;
  bool in_progress = false;
  Fd fd = connect_loopback(node(peer).port, in_progress);
  if (!fd.valid()) {
    p.attempts++;
    p.next_attempt =
        now() + backoff_delay_ns(opts_.backoff, p.attempts, n.net_rng);
    return;
  }
  const int raw = fd.get();
  p.fd = std::move(fd);
  n.fd_peer[raw] = peer;
  if (in_progress) {
    p.connecting = true;
    epoll_add(n, raw, EPOLLOUT);
  } else {
    epoll_add(n, raw, EPOLLIN);
    on_connected(n, peer);
  }
}

void Mesh::service_reconnects(Node& n) {
  const Time t = now();
  for (ProcessId q = 0; q < n.pid; ++q) {  // the higher pid initiates
    Peer& p = n.peers[static_cast<std::size_t>(q)];
    if (p.fd.valid() || p.connecting) continue;
    if (t < p.next_attempt) continue;
    attempt_connect(n, q);
  }
}

void Mesh::service_timeouts(Node& n) {
  const Time t = now();
  for (ProcessId q = 0; q < static_cast<ProcessId>(n.peers.size()); ++q) {
    Peer& p = n.peers[static_cast<std::size_t>(q)];
    if (p.ready && p.partial_since != 0 &&
        t - p.partial_since > frame_timeout_ns_) {
      // A peer silent mid-frame past the deadline is a truncating peer.
      n.partial_timeouts++;
      drop_conn(n, q, true);
    }
  }
  for (auto it = n.pending.begin(); it != n.pending.end();) {
    if (t - it->second.since > frame_timeout_ns_) {
      n.handshake_failures++;
      epoll_del(n, it->first);
      it = n.pending.erase(it);
    } else {
      ++it;
    }
  }
}

void Mesh::drain_inject(Node& n) {
  std::vector<net::PostFn> fns;
  std::vector<Inject> msgs;
  std::vector<ProcessId> severs;
  {
    std::lock_guard lock(n.inj_mu);
    fns.swap(n.inj_fns);
    msgs.swap(n.inj_msgs);
    severs.swap(n.sever_reqs);
  }
  for (const ProcessId peer : severs) drop_conn(n, peer, true);
  for (auto& fn : fns) deliver_fn_step(n, std::move(fn));
  for (auto& m : msgs) deliver_msg_step(n, m.from, m.msg);
}

void Mesh::fire_timers(Node& n) {
  for (;;) {
    TimedItem item;
    {
      std::lock_guard lock(n.timer_mu);
      if (n.heap.empty() || n.heap.front().at > now()) return;
      std::pop_heap(n.heap.begin(), n.heap.end(),
                    [](const TimedItem& a, const TimedItem& b) {
                      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
                    });
      item = std::move(n.heap.back());
      n.heap.pop_back();
    }
    if (item.is_write) {
      // A reorder-deferred frame: enters the socket now (still pending
      // until the receiving proxy delivers or drops it).
      send_frame(n, item.to, std::move(item.bytes));
    } else {
      deliver_fn_step(n, std::move(item.fn));
    }
  }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

net::NetStats Mesh::stats() const {
  net::NetStats total;
  for (const auto& np : nodes_) {
    const auto& s = np->local_stats;
    total.messages_sent += s.messages_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped += s.messages_dropped;
    total.bytes_sent += s.bytes_sent;
    total.messages_lost += s.messages_lost;
    total.messages_duplicated += s.messages_duplicated;
    total.messages_reordered += s.messages_reordered;
    total.hist_slots_shipped += s.hist_slots_shipped;
    total.hist_resyncs += s.hist_resyncs;
    for (std::size_t i = 0; i < net::NetStats::kNumTypes; ++i) {
      total.messages_by_type[i] += s.messages_by_type[i];
      total.bytes_by_type[i] += s.bytes_by_type[i];
    }
  }
  total.messages_dropped += crash_dropped_.load(std::memory_order_acquire);
  return total;
}

TransportStats Mesh::transport() const {
  TransportStats t;
  for (const auto& np : nodes_) {
    t.connects += np->connects;
    t.connect_attempts += np->connect_attempts;
    t.partial_timeouts += np->partial_timeouts;
    t.handshake_failures += np->handshake_failures;
    for (const auto& p : np->peers) {
      const auto& fs = p.dec.stats();
      t.corrupt_frames += fs.bad_magic + fs.oversized + fs.bad_payload;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// epoll plumbing
// ---------------------------------------------------------------------------

void Mesh::epoll_add(Node& n, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(n.epoll.get(), EPOLL_CTL_ADD, fd, &ev);
}

void Mesh::epoll_mod(Node& n, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(n.epoll.get(), EPOLL_CTL_MOD, fd, &ev);
}

void Mesh::epoll_del(Node& n, int fd) {
  epoll_event ev{};  // non-null for pre-2.6.9 kernel compatibility
  ::epoll_ctl(n.epoll.get(), EPOLL_CTL_DEL, fd, &ev);
}

}  // namespace rr::netio
