#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rr::netio {

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Fd listen_loopback(std::uint16_t& port_out) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return {};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return {};
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) return {};
  port_out = ntohs(addr.sin_port);
  return fd;
}

Fd connect_loopback(std::uint16_t port, bool& in_progress) {
  in_progress = false;
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  set_nodelay(fd.get());
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    return fd;
  }
  if (errno == EINPROGRESS) {
    in_progress = true;
    return fd;
  }
  return {};
}

int pending_connect_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno != 0 ? errno : EIO;
  }
  return err;
}

}  // namespace rr::netio
