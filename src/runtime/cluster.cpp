#include "runtime/cluster.hpp"

#include "common/assert.hpp"

namespace rr::runtime {

class ClusterContext final : public net::Context {
 public:
  ClusterContext(Cluster& cluster, ProcessId self)
      : cluster_(cluster), self_(self) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] Time now() const override { return cluster_.now(); }
  void send(ProcessId to, wire::Message msg) override {
    cluster_.route(self_, to, std::move(msg));
  }
  [[nodiscard]] Rng& rng() override {
    return cluster_.slots_[static_cast<std::size_t>(self_)]->rng;
  }

 private:
  Cluster& cluster_;
  ProcessId self_;
};

Cluster::Cluster(ClusterOptions opts)
    : opts_(opts), seeder_(opts.seed), epoch_(std::chrono::steady_clock::now()) {}

Cluster::~Cluster() { stop(); }

ProcessId Cluster::add(std::unique_ptr<net::Process> p, bool active) {
  RR_ASSERT(!started_);
  RR_ASSERT(p != nullptr);
  auto slot = std::make_unique<Slot>();
  slot->proc = std::move(p);
  slot->active = active;
  slot->rng = seeder_.fork();
  slots_.push_back(std::move(slot));
  return static_cast<ProcessId>(slots_.size() - 1);
}

void Cluster::start() {
  RR_ASSERT(!started_);
  started_ = true;
  for (ProcessId pid = 0; pid < static_cast<ProcessId>(slots_.size());
       ++pid) {
    ClusterContext ctx(*this, pid);
    slots_[static_cast<std::size_t>(pid)]->proc->on_start(ctx);
  }
  for (ProcessId pid = 0; pid < static_cast<ProcessId>(slots_.size());
       ++pid) {
    if (slots_[static_cast<std::size_t>(pid)]->active) {
      threads_.emplace_back([this, pid] { thread_main(pid); });
    }
  }
}

void Cluster::stop() {
  if (stopping_.exchange(true)) return;
  for (auto& slot : slots_) {
    std::lock_guard lock(slot->mu);
    slot->cv.notify_all();
  }
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
}

void Cluster::with_context(ProcessId pid,
                           const std::function<void(net::Context&)>& fn) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  ClusterContext ctx(*this, pid);
  fn(ctx);
}

bool Cluster::drive(ProcessId pid, const std::function<bool()>& done,
                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    Envelope env{kNoProcess, {}};
    if (pop_one(pid, std::chrono::milliseconds(1), &env)) {
      dispatch(pid, std::move(env));
    }
  }
  return true;
}

net::Process& Cluster::process(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  return *slots_[static_cast<std::size_t>(pid)]->proc;
}

Time Cluster::now() const {
  return static_cast<Time>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - epoch_)
                               .count());
}

void Cluster::route(ProcessId from, ProcessId to, wire::Message msg) {
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(slots_.size()));
  auto& slot = *slots_[static_cast<std::size_t>(to)];
  {
    std::lock_guard lock(slot.mu);
    slot.inbox.push_back(Envelope{from, std::move(msg)});
  }
  slot.cv.notify_one();
}

bool Cluster::pop_one(ProcessId pid, std::chrono::milliseconds wait,
                      Envelope* out) {
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  std::unique_lock lock(slot.mu);
  if (!slot.cv.wait_for(lock, wait, [&] {
        return !slot.inbox.empty() || stopping_.load();
      })) {
    return false;
  }
  if (slot.inbox.empty()) return false;
  *out = std::move(slot.inbox.front());
  slot.inbox.pop_front();
  return true;
}

void Cluster::dispatch(ProcessId pid, Envelope env) {
  if (opts_.max_jitter_us > 0) {
    auto& slot = *slots_[static_cast<std::size_t>(pid)];
    const auto us = slot.rng.uniform(0, opts_.max_jitter_us);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  ClusterContext ctx(*this, pid);
  slots_[static_cast<std::size_t>(pid)]->proc->on_message(ctx, env.from,
                                                          env.msg);
}

void Cluster::thread_main(ProcessId pid) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Envelope env{kNoProcess, {}};
    if (pop_one(pid, std::chrono::milliseconds(50), &env)) {
      dispatch(pid, std::move(env));
    }
  }
}

}  // namespace rr::runtime
