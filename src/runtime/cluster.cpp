#include "runtime/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::runtime {

class ClusterContext final : public net::Context {
 public:
  ClusterContext(Cluster& cluster, ProcessId self)
      : cluster_(cluster), self_(self) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] Time now() const override { return cluster_.now(); }
  void send(ProcessId to, wire::Message msg) override {
    cluster_.route(self_, to, std::move(msg));
  }
  [[nodiscard]] Rng& rng() override {
    return cluster_.slots_[static_cast<std::size_t>(self_)]->rng;
  }

 private:
  Cluster& cluster_;
  ProcessId self_;
};

Cluster::Cluster(ClusterOptions opts)
    : opts_(opts), seeder_(opts.seed), epoch_(std::chrono::steady_clock::now()) {}

Cluster::~Cluster() { stop(); }

ProcessId Cluster::add(std::unique_ptr<net::Process> p, bool active) {
  RR_ASSERT(!started_);
  RR_ASSERT(p != nullptr);
  auto slot = std::make_unique<Slot>();
  slot->proc = std::move(p);
  slot->active = active;
  slot->rng = seeder_.fork();
  slots_.push_back(std::move(slot));
  return static_cast<ProcessId>(slots_.size() - 1);
}

void Cluster::start() {
  RR_ASSERT(!started_);
  started_ = true;
  for (ProcessId pid = 0; pid < static_cast<ProcessId>(slots_.size());
       ++pid) {
    auto& slot = *slots_[static_cast<std::size_t>(pid)];
    if (slot.crashed.load(std::memory_order_relaxed)) continue;
    ClusterContext ctx(*this, pid);
    slot.proc->on_start(ctx);
  }
  for (ProcessId pid = 0; pid < static_cast<ProcessId>(slots_.size());
       ++pid) {
    if (slots_[static_cast<std::size_t>(pid)]->active) {
      threads_.emplace_back([this, pid] { thread_main(pid); });
    }
  }
  timer_thread_ = std::thread([this] { timer_main(); });
}

void Cluster::stop() {
  if (stopping_.exchange(true)) return;
  for (auto& slot : slots_) {
    std::lock_guard lock(slot->mu);
    slot->cv.notify_all();
  }
  {
    std::lock_guard lock(timer_mu_);
    timer_cv_.notify_all();
  }
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
  if (timer_thread_.joinable()) timer_thread_.join();
}

void Cluster::with_context(ProcessId pid,
                           const std::function<void(net::Context&)>& fn) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  ClusterContext ctx(*this, pid);
  fn(ctx);
}

bool Cluster::drive(ProcessId pid, const std::function<bool()>& done,
                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    Envelope env;
    if (pop_one(pid, std::chrono::milliseconds(1), &env)) {
      dispatch(pid, std::move(env));
    }
  }
  return true;
}

net::Process& Cluster::process(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  return *slots_[static_cast<std::size_t>(pid)]->proc;
}

Time Cluster::now() const {
  return static_cast<Time>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - epoch_)
                               .count());
}

net::NetStats Cluster::stats() const {
  net::NetStats total;
  for (const auto& slot : slots_) {
    const auto& s = slot->local_stats;
    total.messages_sent += s.messages_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped += s.messages_dropped;
    total.bytes_sent += s.bytes_sent;
    for (std::size_t i = 0; i < net::NetStats::kNumTypes; ++i) {
      total.messages_by_type[i] += s.messages_by_type[i];
      total.bytes_by_type[i] += s.bytes_by_type[i];
    }
  }
  total.messages_dropped += crash_dropped_.load(std::memory_order_acquire);
  return total;
}

// ---------------------------------------------------------------------------
// Timed closures + quiescence
// ---------------------------------------------------------------------------

void Cluster::post(Time at, ProcessId pid, net::PostFn fn) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(timer_mu_);
    timer_heap_.push_back(TimedItem{at, timer_seq_++, pid, std::move(fn)});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(), &timed_later);
  }
  timer_cv_.notify_one();
}

void Cluster::timer_main() {
  std::unique_lock lock(timer_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const Time due = timer_heap_.front().at;
    if (due > now()) {
      timer_cv_.wait_until(lock,
                           epoch_ + std::chrono::nanoseconds(due));
      continue;  // re-evaluate: an earlier item or stop may have arrived
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), &timed_later);
    TimedItem item = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    lock.unlock();
    Envelope env;
    env.fn = std::move(item.fn);
    enqueue(item.pid, std::move(env), /*already_counted=*/true);
    lock.lock();
  }
}

void Cluster::enqueue(ProcessId pid, Envelope env, bool already_counted) {
  if (!already_counted) pending_.fetch_add(1, std::memory_order_acq_rel);
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  {
    std::lock_guard lock(slot.mu);
    slot.inbox.push_back(std::move(env));
  }
  slot.cv.notify_one();
}

void Cluster::finish_work_item() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

bool Cluster::run_quiescent(std::chrono::milliseconds timeout) {
  std::unique_lock lock(quiesce_mu_);
  return quiesce_cv_.wait_for(lock, timeout, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

// ---------------------------------------------------------------------------
// Crashes and held channels
// ---------------------------------------------------------------------------

void Cluster::crash(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  slots_[static_cast<std::size_t>(pid)]->crashed.store(
      true, std::memory_order_release);
  if (held_count_.load(std::memory_order_acquire) == 0) return;
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(chan_mu_);
    for (auto it = held_buffers_.begin(); it != held_buffers_.end();) {
      const auto from = static_cast<ProcessId>(it->first >> 32);
      const auto to = static_cast<ProcessId>(it->first & 0xffffffffu);
      if (from != pid && to != pid) {
        ++it;
        continue;
      }
      dropped += it->second.size();
      it->second.clear();  // channel stays held; only the buffer drains
      ++it;
    }
  }
  if (dropped > 0) {
    crash_dropped_.fetch_add(dropped, std::memory_order_acq_rel);
  }
}

bool Cluster::crashed(ProcessId pid) const {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  return slots_[static_cast<std::size_t>(pid)]->crashed.load(
      std::memory_order_acquire);
}

void Cluster::hold(ProcessId from, ProcessId to) {
  RR_ASSERT(from >= 0 && from < static_cast<ProcessId>(slots_.size()));
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(slots_.size()));
  std::lock_guard lock(chan_mu_);
  const auto [it, inserted] = held_buffers_.try_emplace(chan_key(from, to));
  (void)it;
  if (inserted) held_count_.fetch_add(1, std::memory_order_acq_rel);
}

void Cluster::hold_all(ProcessId pid) {
  for (ProcessId q = 0; q < static_cast<ProcessId>(slots_.size()); ++q) {
    if (q == pid) continue;  // the self-channel pid -> pid is never used
    hold(pid, q);
    hold(q, pid);
  }
}

bool Cluster::held(ProcessId from, ProcessId to) const {
  std::lock_guard lock(chan_mu_);
  return held_buffers_.count(chan_key(from, to)) != 0;
}

void Cluster::release(ProcessId from, ProcessId to) {
  std::vector<Envelope> buffered;
  {
    std::lock_guard lock(chan_mu_);
    const auto it = held_buffers_.find(chan_key(from, to));
    if (it == held_buffers_.end()) return;
    buffered = std::move(it->second);
    held_buffers_.erase(it);
    held_count_.fetch_sub(1, std::memory_order_acq_rel);
  }
  // FIFO re-injection outside the channel lock: a concurrent send on the
  // just-released channel may overtake the backlog, which is legal under
  // the asynchronous model (fresh delays on release, as in the DES).
  for (auto& env : buffered) {
    enqueue(to, std::move(env), /*already_counted=*/false);
  }
}

void Cluster::release_all(ProcessId pid) {
  for (ProcessId q = 0; q < static_cast<ProcessId>(slots_.size()); ++q) {
    release(pid, q);
    release(q, pid);
  }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void Cluster::route(ProcessId from, ProcessId to, wire::Message msg) {
  RR_ASSERT(from >= 0 && from < static_cast<ProcessId>(slots_.size()));
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(slots_.size()));
  // Sender-side accounting: only the thread currently stepping `from`
  // calls route() for it, so its slot counters need no lock.
  auto& sent = slots_[static_cast<std::size_t>(from)]->local_stats;
  sent.messages_sent++;
  sent.messages_by_type[msg.index()]++;
  if (opts_.account_bytes) {
    const std::size_t n = wire::encoded_size(msg);
    sent.bytes_sent += n;
    sent.bytes_by_type[msg.index()] += n;
  }
  if (crashed(from) || crashed(to)) {
    sent.messages_dropped++;
    return;
  }
  if (held_count_.load(std::memory_order_acquire) != 0) {
    std::lock_guard lock(chan_mu_);
    const auto it = held_buffers_.find(chan_key(from, to));
    if (it != held_buffers_.end()) {
      Envelope env;
      env.from = from;
      env.msg = std::move(msg);
      it->second.push_back(std::move(env));
      return;
    }
  }
  Envelope env;
  env.from = from;
  env.msg = std::move(msg);
  enqueue(to, std::move(env), /*already_counted=*/false);
}

bool Cluster::pop_one(ProcessId pid, std::chrono::milliseconds wait,
                      Envelope* out) {
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  std::unique_lock lock(slot.mu);
  if (!slot.cv.wait_for(lock, wait, [&] {
        return !slot.inbox.empty() || stopping_.load();
      })) {
    return false;
  }
  if (slot.inbox.empty()) return false;
  *out = std::move(slot.inbox.front());
  slot.inbox.pop_front();
  return true;
}

void Cluster::dispatch(ProcessId pid, Envelope env) {
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  if (opts_.max_jitter_us > 0) {
    const auto us = slot.rng.uniform(0, opts_.max_jitter_us);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  if (slot.crashed.load(std::memory_order_acquire)) {
    // Crashed processes take no steps; their queued messages are lost and
    // posted closures are skipped (as under the DES).
    if (!env.fn) slot.local_stats.messages_dropped++;
    finish_work_item();
    return;
  }
  ClusterContext ctx(*this, pid);
  if (env.fn) {
    env.fn(ctx);
  } else if (crashed(env.from)) {
    // Mirror the DES: a crashed sender's in-flight messages are lost too
    // (legal in a partial run; keeps crash semantics identical across
    // backends).
    slot.local_stats.messages_dropped++;
    finish_work_item();
    return;
  } else {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    slot.local_stats.messages_delivered++;
    if (opts_.reserialize) {
      auto round_tripped = wire::decode(wire::encode(env.msg));
      RR_ASSERT_MSG(round_tripped.has_value(), "codec must round-trip");
      slot.proc->on_message(ctx, env.from, *round_tripped);
    } else {
      slot.proc->on_message(ctx, env.from, env.msg);
    }
  }
  finish_work_item();
}

void Cluster::thread_main(ProcessId pid) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Envelope env;
    if (pop_one(pid, std::chrono::milliseconds(50), &env)) {
      dispatch(pid, std::move(env));
    }
  }
}

}  // namespace rr::runtime
