#include "runtime/cluster.hpp"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::runtime {

namespace {

/// One iteration of the pre-park spin: a CPU pause most of the time, a
/// scheduler yield every 8th iteration so a producer sharing the core can
/// make progress (on a single hardware thread a pure pause loop would just
/// burn the consumer's quantum).
inline void spin_pause(std::uint32_t i) {
  if ((i & 0x7) == 0x7) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Minimum pre-park spin budget even when the adaptive credit has decayed
/// to zero: without a floor the credit could never grow again (a zero-spin
/// consumer cannot observe work arriving mid-spin). Kept tiny -- with
/// direct delivery most handoffs never touch the mailbox, so long spins
/// only steal CPU from the thread running the work.
constexpr std::uint32_t kSpinFloor = 8;

}  // namespace

class ClusterContext final : public net::Context {
 public:
  ClusterContext(Cluster& cluster, ProcessId self)
      : cluster_(cluster), self_(self) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] Time now() const override { return cluster_.now(); }
  void send(ProcessId to, wire::Message msg) override {
    cluster_.route(self_, to, std::move(msg));
  }
  [[nodiscard]] Rng& rng() override {
    return cluster_.slots_[static_cast<std::size_t>(self_)]->rng;
  }

 private:
  Cluster& cluster_;
  ProcessId self_;
};

Cluster::Cluster(ClusterOptions opts)
    : opts_(opts),
      seeder_(opts.seed),
      direct_delivery_(opts.batched_drain && opts.max_jitter_us == 0),
      epoch_(std::chrono::steady_clock::now()) {}

Cluster::~Cluster() { stop(); }

ProcessId Cluster::add(std::unique_ptr<net::Process> p, bool active) {
  RR_ASSERT(!started_);
  RR_ASSERT(p != nullptr);
  auto slot = std::make_unique<Slot>();
  slot->proc = std::move(p);
  slot->active = active;
  slot->rng = seeder_.fork();
  slots_.push_back(std::move(slot));
  return static_cast<ProcessId>(slots_.size() - 1);
}

void Cluster::set_link_faults(const net::LinkFaults& lf) {
  RR_ASSERT(!started_);
  link_faults_ = lf;
  link_enabled_ = lf.any();
  Rng seeder(mix64(lf.seed ^ 0x11fa'0175'0001ULL));
  for (auto& slot : slots_) slot->link_rng = seeder.fork();
}

void Cluster::set_gray(ProcessId pid, std::uint64_t step_delay_ns) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  slots_[static_cast<std::size_t>(pid)]->gray_ns.store(
      step_delay_ns, std::memory_order_relaxed);
}

void Cluster::start() {
  RR_ASSERT(!started_);
  started_ = true;
  for (ProcessId pid = 0; pid < static_cast<ProcessId>(slots_.size());
       ++pid) {
    auto& slot = *slots_[static_cast<std::size_t>(pid)];
    if (slot.crashed.load(std::memory_order_relaxed)) continue;
    ClusterContext ctx(*this, pid);
    slot.proc->on_start(ctx);
  }
  for (ProcessId pid = 0; pid < static_cast<ProcessId>(slots_.size());
       ++pid) {
    if (slots_[static_cast<std::size_t>(pid)]->active) {
      threads_.emplace_back([this, pid] { thread_main(pid); });
    }
  }
  timer_thread_ = std::thread([this] { timer_main(); });
  running_.store(true, std::memory_order_release);
}

void Cluster::stop() {
  if (stopping_.exchange(true)) return;
  // Disarm direct delivery first: a send after stop() must behave like the
  // queued path always has (the message sits undelivered forever), not run
  // the destination's step inline on the caller's thread.
  running_.store(false, std::memory_order_release);
  // Consumers wait with no timeout, so every sleeper must be notified;
  // spinners observe stopping_ directly.
  for (auto& slot : slots_) {
    std::lock_guard lock(slot->mu);
    slot->cv.notify_all();
  }
  {
    std::lock_guard lock(timer_mu_);
    timer_cv_.notify_all();
  }
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
  if (timer_thread_.joinable()) timer_thread_.join();
}

void Cluster::acquire_token(Slot& slot) {
  // Much shorter spin than the mailbox wait: a held token usually means a
  // whole step is running (not a few-instruction critical section), and on
  // a saturated core every extra yield here starves the very thread that
  // must finish that step.
  constexpr std::uint32_t kTokenSpin = 32;
  for (std::uint32_t i = 0;
       slot.stepping.exchange(true, std::memory_order_acquire); ++i) {
    if (i < kTokenSpin) {
      spin_pause(i);
    } else {
      // A long-held token means a slow step is running inline on another
      // thread (e.g. a history-carrying delivery); futex-wait instead of
      // yield-cycling the core out from under it.
      slot.stepping.wait(true, std::memory_order_relaxed);
    }
  }
}

void Cluster::release_token(Slot& slot) {
  slot.stepping.store(false, std::memory_order_release);
  slot.stepping.notify_one();
}

/// Releases a stepping token on scope exit, so an exception thrown by a
/// user callback or an automaton step cannot leak the token and wedge the
/// slot (every later acquire_token would futex-wait forever).
class Cluster::TokenGuard {
 public:
  TokenGuard(Cluster& c, Slot& slot) : c_(c), slot_(slot) {}
  ~TokenGuard() { c_.release_token(slot_); }
  TokenGuard(const TokenGuard&) = delete;
  TokenGuard& operator=(const TokenGuard&) = delete;

 private:
  Cluster& c_;
  Slot& slot_;
};

void Cluster::with_context(ProcessId pid,
                           const std::function<void(net::Context&)>& fn) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  ClusterContext ctx(*this, pid);
  acquire_token(slot);
  TokenGuard guard(*this, slot);
  fn(ctx);
}

bool Cluster::drive(ProcessId pid, const std::function<bool()>& done,
                    std::chrono::milliseconds timeout) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  ClusterContext ctx(*this, pid);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    // Resume the drain buffers from a previous partial drive; refill by
    // swapping both lanes only once they are exhausted.
    if (slot.cold_pos >= slot.cold_drain.size() &&
        slot.drain_pos >= slot.drain.size()) {
      slot.cold_drain.clear();
      slot.cold_pos = 0;
      slot.drain.clear();
      slot.drain_pos = 0;
      std::unique_lock lock(slot.mu);
      if (!slot.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
            return slot.queued_unlocked() != 0 ||
                   stopping_.load(std::memory_order_relaxed);
          })) {
        continue;  // timed out; re-check done() and the deadline
      }
      if (slot.queued_unlocked() == 0) continue;  // stopping
      swap_lanes(slot);
    }
    // done() is re-checked between items, so a partially consumed batch
    // legitimately outlives this call (mid-swap state). The token is
    // uncontended here (passive slots are never direct-delivery targets)
    // but keeps the step-exclusivity invariant uniform.
    {
      acquire_token(slot);
      TokenGuard guard(*this, slot);
      if (slot.cold_pos < slot.cold_drain.size()) {
        deliver_fn(ctx, slot, std::move(slot.cold_drain[slot.cold_pos++]));
      } else {
        if (deliver_msg(ctx, slot,
                        std::move(slot.drain[slot.drain_pos++]))) {
          delivered_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    finish_work_items(1);
  }
  return true;
}

net::Process& Cluster::process(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  return *slots_[static_cast<std::size_t>(pid)]->proc;
}

Time Cluster::now() const {
  return static_cast<Time>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - epoch_)
                               .count());
}

net::NetStats Cluster::stats() const {
  net::NetStats total;
  for (const auto& slot : slots_) {
    const auto& s = slot->local_stats;
    total.messages_sent += s.messages_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped += s.messages_dropped;
    total.bytes_sent += s.bytes_sent;
    total.messages_lost += s.messages_lost;
    total.messages_duplicated += s.messages_duplicated;
    total.messages_reordered += s.messages_reordered;
    total.hist_slots_shipped += s.hist_slots_shipped;
    total.hist_resyncs += s.hist_resyncs;
    for (std::size_t i = 0; i < net::NetStats::kNumTypes; ++i) {
      total.messages_by_type[i] += s.messages_by_type[i];
      total.bytes_by_type[i] += s.bytes_by_type[i];
    }
  }
  total.messages_dropped += crash_dropped_.load(std::memory_order_acquire);
  return total;
}

// ---------------------------------------------------------------------------
// Timed closures + quiescence
// ---------------------------------------------------------------------------

void Cluster::post(Time at, ProcessId pid, net::PostFn fn) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  pending_.fetch_add(1, std::memory_order_acq_rel);
  // Already-due closures skip the timer thread entirely: they go straight
  // into the target's cold lane, saving two context switches (post -> timer
  // wake -> enqueue) on the op-chaining hot path. This WEAKENS the old
  // ordering: a bypassing closure can overtake an earlier-scheduled,
  // already-due closure still sitting in the heap, which the single timer
  // thread (strict (at, seq) pops) could never produce. Legal under the
  // asynchronous model -- closure steps have no cross-process ordering
  // guarantee -- but do not rely on timed posts running in `at` order.
  if (at <= now()) {
    enqueue_fn(pid, std::move(fn), /*already_counted=*/true);
    return;
  }
  {
    std::lock_guard lock(timer_mu_);
    timer_heap_.push_back(TimedItem{at, timer_seq_++, pid, std::move(fn)});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(), &timed_later);
  }
  timer_cv_.notify_one();
}

void Cluster::timer_main() {
  std::unique_lock lock(timer_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const Time due = timer_heap_.front().at;
    if (due > now()) {
      timer_cv_.wait_until(lock,
                           epoch_ + std::chrono::nanoseconds(due));
      continue;  // re-evaluate: an earlier item or stop may have arrived
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), &timed_later);
    TimedItem item = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    lock.unlock();
    enqueue_fn(item.pid, std::move(item.fn), /*already_counted=*/true);
    lock.lock();
  }
}

template <class Item>
void Cluster::enqueue_item(ProcessId pid, Item item, bool already_counted) {
  constexpr bool kIsMsg = std::is_same_v<Item, MsgEnvelope>;
  if (!already_counted) pending_.fetch_add(1, std::memory_order_acq_rel);
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  // Direct delivery: an idle active destination's step runs right here on
  // the sending thread -- no enqueue, no wakeup. The queued_hint gate is
  // what keeps per-channel FIFO: the hint stays non-zero from the first
  // enqueue until the consumer has dispatched its *entire* swapped batch
  // (it is re-synced under the lock only after run_batch), so a direct
  // delivery can never overtake an earlier message that is still queued
  // or mid-swap. Overtaking traffic on *other* channels is legal under
  // the asynchronous model (per-message delays are arbitrary in the DES).
  if (direct_delivery_ && slot.active &&
      slot.queued_hint.load(std::memory_order_acquire) == 0 &&
      running_.load(std::memory_order_acquire) &&
      !slot.stepping.exchange(true, std::memory_order_acquire)) {
    {
      ClusterContext ctx(*this, pid);
      TokenGuard guard(*this, slot);
      if constexpr (kIsMsg) {
        if (deliver_msg(ctx, slot, std::move(item))) {
          delivered_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        deliver_fn(ctx, slot, std::move(item));
      }
    }
    finish_work_items(1);
    return;
  }
  bool was_empty;
  {
    std::lock_guard lock(slot.mu);
    was_empty = slot.queued_unlocked() == 0;
    if constexpr (kIsMsg) {
      slot.inbox.push_back(std::move(item));
    } else {
      slot.cold_inbox.push_back(std::move(item));
    }
    slot.queued_hint.store(static_cast<std::uint32_t>(slot.queued_unlocked()),
                           std::memory_order_release);
  }
  // Only the empty -> non-empty transition can have a parked (or about to
  // park) consumer: the consumer drains the entire inbox per swap and
  // re-checks emptiness under the lock before waiting.
  if (was_empty) slot.cv.notify_one();
}

void Cluster::enqueue_msg(ProcessId pid, MsgEnvelope env,
                          bool already_counted) {
  enqueue_item(pid, std::move(env), already_counted);
}

void Cluster::enqueue_fn(ProcessId pid, net::PostFn fn, bool already_counted) {
  enqueue_item(pid, std::move(fn), already_counted);
}

void Cluster::finish_work_items(std::int64_t n) {
  if (n == 0) return;
  if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

bool Cluster::run_quiescent(std::chrono::milliseconds timeout) {
  std::unique_lock lock(quiesce_mu_);
  return quiesce_cv_.wait_for(lock, timeout, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

// ---------------------------------------------------------------------------
// Crashes and held channels
// ---------------------------------------------------------------------------

void Cluster::crash(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  slots_[static_cast<std::size_t>(pid)]->crashed.store(
      true, std::memory_order_release);
  if (held_count_.load(std::memory_order_acquire) == 0) return;
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(chan_mu_);
    // The channels stay held (that is status, kept in held_chans_); only
    // their backlog is discarded, and the buffer storage is freed outright.
    for (auto it = held_buffers_.begin(); it != held_buffers_.end();) {
      const auto from = static_cast<ProcessId>(it->first >> 32);
      const auto to = static_cast<ProcessId>(it->first & 0xffffffffu);
      if (from != pid && to != pid) {
        ++it;
        continue;
      }
      dropped += it->second.size();
      it = held_buffers_.erase(it);
    }
  }
  if (dropped > 0) {
    crash_dropped_.fetch_add(dropped, std::memory_order_acq_rel);
  }
}

bool Cluster::crashed(ProcessId pid) const {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  return slots_[static_cast<std::size_t>(pid)]->crashed.load(
      std::memory_order_acquire);
}

void Cluster::hold(ProcessId from, ProcessId to) {
  RR_ASSERT(from >= 0 && from < static_cast<ProcessId>(slots_.size()));
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(slots_.size()));
  std::lock_guard lock(chan_mu_);
  held_chans_.insert(chan_key(from, to));
  held_count_.store(held_chans_.size(), std::memory_order_release);
}

void Cluster::hold_all(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  std::lock_guard lock(chan_mu_);
  for (ProcessId q = 0; q < static_cast<ProcessId>(slots_.size()); ++q) {
    if (q == pid) continue;  // the self-channel pid -> pid is never used
    held_chans_.insert(chan_key(pid, q));
    held_chans_.insert(chan_key(q, pid));
  }
  held_count_.store(held_chans_.size(), std::memory_order_release);
}

bool Cluster::held(ProcessId from, ProcessId to) const {
  std::lock_guard lock(chan_mu_);
  return held_chans_.count(chan_key(from, to)) != 0;
}

void Cluster::release(ProcessId from, ProcessId to) {
  std::vector<MsgEnvelope> buffered;
  {
    std::lock_guard lock(chan_mu_);
    const auto key = chan_key(from, to);
    if (held_chans_.erase(key) == 0) return;
    held_count_.store(held_chans_.size(), std::memory_order_release);
    const auto it = held_buffers_.find(key);
    if (it != held_buffers_.end()) {
      buffered = std::move(it->second);
      held_buffers_.erase(it);
    }
  }
  // FIFO re-injection outside the channel lock: a concurrent send on the
  // just-released channel may overtake the backlog, which is legal under
  // the asynchronous model (fresh delays on release, as in the DES).
  for (auto& env : buffered) {
    enqueue_msg(to, std::move(env), /*already_counted=*/false);
  }
}

void Cluster::release_all(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(slots_.size()));
  // (to, backlog) pairs collected under ONE lock acquisition, re-injected
  // outside the lock (enqueue_msg takes slot locks; never nest them under
  // chan_mu_).
  std::vector<std::pair<ProcessId, std::vector<MsgEnvelope>>> released;
  {
    std::lock_guard lock(chan_mu_);
    for (ProcessId q = 0; q < static_cast<ProcessId>(slots_.size()); ++q) {
      for (const auto key : {chan_key(pid, q), chan_key(q, pid)}) {
        if (held_chans_.erase(key) == 0) continue;
        const auto it = held_buffers_.find(key);
        if (it == held_buffers_.end()) continue;
        released.emplace_back(static_cast<ProcessId>(key & 0xffffffffu),
                              std::move(it->second));
        held_buffers_.erase(it);
      }
    }
    held_count_.store(held_chans_.size(), std::memory_order_release);
  }
  for (auto& [to, backlog] : released) {
    for (auto& env : backlog) {
      enqueue_msg(to, std::move(env), /*already_counted=*/false);
    }
  }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void Cluster::route(ProcessId from, ProcessId to, wire::Message msg) {
  RR_ASSERT(from >= 0 && from < static_cast<ProcessId>(slots_.size()));
  RR_ASSERT(to >= 0 && to < static_cast<ProcessId>(slots_.size()));
  // Sender-side accounting: only the thread currently stepping `from`
  // calls route() for it, so its slot counters need no lock.
  auto& sent = slots_[static_cast<std::size_t>(from)]->local_stats;
  sent.messages_sent++;
  sent.messages_by_type[msg.index()]++;
  if (opts_.account_bytes) {
    const std::size_t n = wire::encoded_size(msg);
    sent.bytes_sent += n;
    sent.bytes_by_type[msg.index()] += n;
  }
  if (const auto* ha = std::get_if<wire::HistReadAckMsg>(&msg)) {
    sent.hist_slots_shipped += ha->history.size();
    sent.hist_resyncs += ha->resync;
  }
  if (crashed(from) || crashed(to)) {
    sent.messages_dropped++;
    return;
  }
  // Link faults, sender-side (same order as the DES: loss, then duplicate,
  // then per-copy reorder in send_copy). The per-slot link_rng is safe
  // without a lock because only the thread stepping `from` routes for it.
  int copies = 1;
  if (link_enabled_) {
    auto& lrng = slots_[static_cast<std::size_t>(from)]->link_rng;
    const Time t = now();
    const auto& loss = link_faults_.loss;
    if (loss.active(t) && loss.covers(from, to) && lrng.chance(loss.p)) {
      sent.messages_lost++;
      return;
    }
    const auto& dup = link_faults_.duplicate;
    if (dup.active(t) && dup.covers(from, to) && lrng.chance(dup.p)) {
      sent.messages_duplicated++;
      copies = 2;
    }
  }
  if (held_count_.load(std::memory_order_acquire) != 0) {
    std::lock_guard lock(chan_mu_);
    const auto key = chan_key(from, to);
    if (held_chans_.count(key) != 0) {
      auto& buf = held_buffers_[key];
      for (int c = 1; c < copies; ++c) buf.push_back(MsgEnvelope{from, msg});
      buf.push_back(MsgEnvelope{from, std::move(msg)});
      return;
    }
  }
  for (int c = 1; c < copies; ++c) send_copy(from, to, msg);
  send_copy(from, to, std::move(msg));
}

void Cluster::send_copy(ProcessId from, ProcessId to, wire::Message msg) {
  if (link_enabled_) {
    const auto& re = link_faults_.reorder;
    const Time t = now();
    if (re.active(t) && re.covers(from, to) &&
        slots_[static_cast<std::size_t>(from)]->link_rng.chance(re.p)) {
      slots_[static_cast<std::size_t>(from)]->local_stats.messages_reordered++;
      // Defer the copy through the timer: it re-enters the destination
      // mailbox reorder_delay later, so fresher traffic on the same channel
      // overtakes it. post() counts the deferred copy as pending work, so
      // quiescence still waits for it.
      post(t + link_faults_.reorder_delay, to,
           net::PostFn(
               [this, from, m = std::move(msg)](net::Context& ctx) mutable {
                 auto& slot = *slots_[static_cast<std::size_t>(ctx.self())];
                 if (deliver_msg(ctx, slot, MsgEnvelope{from, std::move(m)})) {
                   delivered_.fetch_add(1, std::memory_order_relaxed);
                 }
               }));
      return;
    }
  }
  enqueue_msg(to, MsgEnvelope{from, std::move(msg)},
              /*already_counted=*/false);
}

bool Cluster::deliver_msg(net::Context& ctx, Slot& slot, MsgEnvelope env) {
  // Gray (slow-but-alive): the process takes this step late but correctly.
  const auto gray = slot.gray_ns.load(std::memory_order_relaxed);
  if (gray > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(gray));
  if (opts_.max_jitter_us > 0) {
    const auto us = slot.rng.uniform(0, opts_.max_jitter_us);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  // Crash checks per envelope: a crash can land mid-batch, and everything
  // still undelivered at that point must be dropped (as under the DES).
  if (slot.crashed.load(std::memory_order_acquire)) {
    slot.local_stats.messages_dropped++;
    return false;
  }
  if (crashed(env.from)) {
    // Mirror the DES: a crashed sender's in-flight messages are lost too
    // (legal in a partial run; keeps crash semantics identical across
    // backends).
    slot.local_stats.messages_dropped++;
    return false;
  }
  slot.local_stats.messages_delivered++;
  if (opts_.reserialize) {
    auto round_tripped = wire::decode(wire::encode(env.msg));
    RR_ASSERT_MSG(round_tripped.has_value(), "codec must round-trip");
    slot.proc->on_message(ctx, env.from, *round_tripped);
  } else {
    slot.proc->on_message(ctx, env.from, env.msg);
  }
  return true;
}

void Cluster::deliver_fn(net::Context& ctx, Slot& slot, net::PostFn fn) {
  const auto gray = slot.gray_ns.load(std::memory_order_relaxed);
  if (gray > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(gray));
  if (opts_.max_jitter_us > 0) {
    const auto us = slot.rng.uniform(0, opts_.max_jitter_us);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  // Crashed processes take no steps; posted closures are skipped (as under
  // the DES).
  if (slot.crashed.load(std::memory_order_acquire)) return;
  fn(ctx);
}

void Cluster::swap_lanes(Slot& slot) {
  // Only the unbatched per-message consumer advances the heads, and it
  // never swaps; swap-drain consumers always see whole lanes.
  RR_ASSERT(slot.inbox_head == 0 && slot.cold_head == 0);
  slot.inbox.swap(slot.drain);
  slot.cold_inbox.swap(slot.cold_drain);
  // queued_hint deliberately stays non-zero: it means "queued OR batch in
  // flight", and is re-synced under the lock only after the whole batch
  // has been dispatched. That is what stops a direct delivery from
  // overtaking the just-swapped batch (per-channel FIFO). Passive slots
  // drained by drive() never re-sync -- harmless, they are never direct
  // targets and have no consumer thread spinning on the hint.
}

void Cluster::run_batch(ProcessId pid, Slot& slot) {
  ClusterContext ctx(*this, pid);
  const auto n = static_cast<std::int64_t>(slot.cold_drain.size() +
                                           slot.drain.size());
  std::uint64_t delivered = 0;
  {
    // One token acquisition serializes the whole batch against direct
    // deliveries landing on this automaton from sender threads.
    acquire_token(slot);
    TokenGuard guard(*this, slot);
    // Cold lane first: timer-driven closures (operation invocations, chaos
    // steps) run before this batch's messages. Cross-lane order is free
    // under the asynchronous model -- message delays are arbitrary -- and
    // each lane keeps its own FIFO.
    for (auto& fn : slot.cold_drain) {
      deliver_fn(ctx, slot, std::move(fn));
    }
    slot.cold_drain.clear();
    for (auto& env : slot.drain) {
      if (deliver_msg(ctx, slot, std::move(env))) ++delivered;
    }
    slot.drain.clear();
  }
  if (delivered > 0) {
    delivered_.fetch_add(delivered, std::memory_order_relaxed);
  }
  finish_work_items(n);
  // The batch is fully dispatched: re-sync the hint to the live queue
  // state, re-enabling direct delivery (see enqueue_item / swap_lanes).
  std::lock_guard lock(slot.mu);
  slot.queued_hint.store(static_cast<std::uint32_t>(slot.queued_unlocked()),
                         std::memory_order_release);
}

void Cluster::thread_main(ProcessId pid) {
  if (!opts_.batched_drain) {
    thread_main_unbatched(pid);
    return;
  }
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Adaptive bounded spin on the lock-free hint before parking: a batch
    // that arrives within the credit is picked up without a condvar round
    // trip. The credit grows only when the spin itself caught the work
    // (work already queued at the first check needed no waiting at all)
    // and halves on every futile park, so it decays to zero on
    // oversubscribed machines where spinning steals the producer's core.
    bool spin_hit = false;
    if (slot.queued_hint.load(std::memory_order_acquire) == 0) {
      const std::uint32_t budget =
          std::min(std::max(slot.spin_credit, kSpinFloor),
                   opts_.max_spin_iters);
      for (std::uint32_t i = 0; i < budget; ++i) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        spin_pause(i);
        if (slot.queued_hint.load(std::memory_order_acquire) != 0) {
          spin_hit = true;
          break;
        }
      }
    }
    {
      std::unique_lock lock(slot.mu);
      if (slot.queued_unlocked() == 0) {
        slot.spin_credit /= 2;
        slot.cv.wait(lock, [&] {
          return slot.queued_unlocked() != 0 ||
                 stopping_.load(std::memory_order_relaxed);
        });
        if (slot.queued_unlocked() == 0) return;  // stopping, nothing queued
      } else if (spin_hit) {
        slot.spin_credit =
            std::min(slot.spin_credit * 2 + 8, opts_.max_spin_iters);
      }
      swap_lanes(slot);
    }
    run_batch(pid, slot);
  }
}

void Cluster::thread_main_unbatched(ProcessId pid) {
  // Reference path: one lock acquisition, one condvar round trip and one
  // pending_ update per envelope. Kept as the denominator of the bench's
  // batching-speedup ratio and for the delivery-semantics parity tests.
  auto& slot = *slots_[static_cast<std::size_t>(pid)];
  ClusterContext ctx(*this, pid);
  while (!stopping_.load(std::memory_order_relaxed)) {
    MsgEnvelope env;
    net::PostFn fn;
    bool is_fn = false;
    {
      std::unique_lock lock(slot.mu);
      slot.cv.wait(lock, [&] {
        return slot.queued_unlocked() != 0 ||
               stopping_.load(std::memory_order_relaxed);
      });
      if (slot.queued_unlocked() == 0) return;  // stopping, nothing queued
      if (slot.cold_head < slot.cold_inbox.size()) {
        fn = std::move(slot.cold_inbox[slot.cold_head++]);
        is_fn = true;
      } else {
        env = std::move(slot.inbox[slot.inbox_head++]);
      }
      if (slot.cold_head == slot.cold_inbox.size() &&
          slot.inbox_head == slot.inbox.size()) {
        slot.cold_inbox.clear();
        slot.cold_head = 0;
        slot.inbox.clear();
        slot.inbox_head = 0;
      } else {
        // Compact consumed prefixes even when the queue never fully
        // drains (a deque freed per pop; a vector behind an advancing
        // head would otherwise grow without bound under sustained load).
        // Amortized O(1): each erase halves at most, after >=256 pops.
        if (slot.inbox_head > 256 &&
            slot.inbox_head * 2 >= slot.inbox.size()) {
          slot.inbox.erase(
              slot.inbox.begin(),
              slot.inbox.begin() + static_cast<std::ptrdiff_t>(
                                       slot.inbox_head));
          slot.inbox_head = 0;
        }
        if (slot.cold_head > 256 &&
            slot.cold_head * 2 >= slot.cold_inbox.size()) {
          slot.cold_inbox.erase(
              slot.cold_inbox.begin(),
              slot.cold_inbox.begin() + static_cast<std::ptrdiff_t>(
                                            slot.cold_head));
          slot.cold_head = 0;
        }
      }
      slot.queued_hint.store(
          static_cast<std::uint32_t>(slot.queued_unlocked()),
          std::memory_order_release);
    }
    if (is_fn) {
      deliver_fn(ctx, slot, std::move(fn));
    } else if (deliver_msg(ctx, slot, std::move(env))) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
    }
    finish_work_items(1);
  }
}

}  // namespace rr::runtime
