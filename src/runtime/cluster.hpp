// Threaded in-process runtime: the same protocol automata that run under the
// discrete-event simulator, deployed on real threads with mailbox queues.
//
// Processes come in two kinds:
//   active   -- each gets its own thread draining its mailbox (base objects,
//               servers, and harness-driven clients),
//   passive  -- owned by a caller thread, which drives the automaton via
//               drive() / with_context() (this realizes blocking operations
//               without the automaton ever blocking).
//
// Every automaton is only ever touched by its owning thread, so the
// protocol code needs no synchronization -- exactly as under the DES.
//
// The message path is engineered around amortization: pay one
// synchronization per *batch* of deliveries, not per message (see
// docs/ARCHITECTURE.md, "Threaded backend hot path"):
//   - Swap-drain mailboxes. Each mailbox is a double-buffered pair of
//     vectors. The consumer takes the slot lock once, swaps the entire
//     inbox into its private drain buffer, and dispatches the whole run
//     lock-free; cleared buffers keep their capacity, so steady-state
//     delivery performs no heap allocation.
//   - Lean envelopes. The hot lane moves only {from, msg}; posted closures
//     (net::PostFn, 128-byte inline buffer) travel in a separate cold lane
//     swapped under the same single lock acquisition, so protocol traffic
//     never drags closure storage through the queue.
//   - Batched accounting. The pending-work counter behind run_quiescent()
//     and the delivered counter are updated once per batch.
//   - Cheap wakeups. Producers notify the consumer condvar only on an
//     empty -> non-empty transition; consumers spin a small adaptive
//     bounded budget on a lock-free hint before parking, and there is no
//     idle timeout poll (stop() notifies every sleeper).
//
// Beyond raw transport the cluster supports the same experiment surface as
// sim::World, so the harness can drive either backend through one
// interface:
//   - post(at, pid, fn): timed closure steps (a timer thread moves due
//     closures into the target's cold lane),
//   - crash(pid) and held channels (hold/release buffers messages exactly
//     like the proofs' "messages remain in transit" tactic),
//   - run_quiescent(): blocks until no queued, buffered-timer, or in-flight
//     work remains (held-channel buffers do not count, mirroring World::run),
//   - NetStats accounting identical to the simulator's (same counting
//     visitor for bytes), plus optional codec round-tripping per delivery.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/faults.hpp"
#include "net/process.hpp"
#include "net/stats.hpp"

namespace rr::runtime {

struct ClusterOptions {
  std::uint64_t seed{1};
  /// Maximum artificial delivery jitter (microseconds, sampled uniformly;
  /// 0 disables). Applied by the receiving thread, so senders never block.
  std::uint32_t max_jitter_us{0};
  /// Account encoded bytes for every message (same counting visitor as the
  /// simulator, so cross-backend byte counts are comparable).
  bool account_bytes{true};
  /// Round-trip every message through the binary codec before delivery.
  bool reserialize{false};
  /// Swap-drain batching (default). When false, every mailbox lock
  /// acquisition pops a single envelope -- the per-message reference path
  /// the batching-speedup bench ratio and the delivery-semantics parity
  /// tests compare against. Semantics are identical either way.
  bool batched_drain{true};
  /// Upper bound on the adaptive pre-park spin (iterations of a lock-free
  /// hint check; 0 parks immediately). The credit grows when work arrives
  /// while spinning and halves on every futile park, so oversubscribed
  /// (e.g. single-core) runs decay toward parking directly.
  std::uint32_t max_spin_iters{256};
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers a process. Active processes get a thread at start().
  ProcessId add(std::unique_ptr<net::Process> p, bool active);

  void start();
  void stop();

  /// Runs `fn` as a step of passive process `pid` on the calling thread
  /// (e.g. to invoke an operation on a client automaton).
  void with_context(ProcessId pid, const std::function<void(net::Context&)>& fn);

  /// Drains `pid`'s mailbox on the calling thread until `done()` returns
  /// true. Returns false on timeout. Calls for the same passive pid must be
  /// externally serialized (they resume the slot's private drain buffer).
  bool drive(ProcessId pid, const std::function<bool()>& done,
             std::chrono::milliseconds timeout);

  /// Schedules `fn` to run as a step of process `pid` at time `at`
  /// (nanoseconds on the cluster clock; values in the past run immediately).
  /// Thread-safe; may be called before start(). Closures that fit
  /// net::PostFn's inline buffer are stored without heap allocation.
  void post(Time at, ProcessId pid, net::PostFn fn);

  /// Blocks until no work remains: empty mailboxes, no pending timers, no
  /// step in flight. Messages buffered on held channels do not count.
  /// Returns false on timeout.
  bool run_quiescent(std::chrono::milliseconds timeout);

  /// Crash: the process takes no further steps; queued and future messages
  /// to or from it are dropped, as are messages buffered on held channels
  /// adjacent to it (their buffer storage is freed; the channels stay held).
  void crash(ProcessId pid);
  [[nodiscard]] bool crashed(ProcessId pid) const;

  /// Holds a channel: messages sent from -> to are buffered, not delivered.
  void hold(ProcessId from, ProcessId to);
  /// Holds every channel adjacent to `pid` except the unused self-channel.
  /// One lock acquisition for all 2(n-1) channels.
  void hold_all(ProcessId pid);
  /// Releases a channel; buffered messages are enqueued in FIFO order.
  void release(ProcessId from, ProcessId to);
  /// Releases every channel adjacent to `pid` under one lock acquisition;
  /// each channel's backlog is re-injected in FIFO order.
  void release_all(ProcessId pid);
  [[nodiscard]] bool held(ProcessId from, ProcessId to) const;

  /// Installs probabilistic link faults (loss / duplication / reorder),
  /// mirroring sim::World::set_link_faults. Must be called after the last
  /// add() and before start(): each slot gets its own fault-sampling RNG
  /// (route() for `from` only ever runs on the thread stepping `from`, so
  /// the per-sender stream needs no lock). Reordered messages are deferred
  /// through the timer by `lf.reorder_delay` wall-nanoseconds.
  void set_link_faults(const net::LinkFaults& lf);

  /// Marks `pid` gray (slow-but-alive): every step it takes -- message
  /// deliveries and posted closures alike -- is preceded by a
  /// `step_delay_ns` sleep on its stepping thread. 0 clears. The threaded
  /// twin of the DES's delay multiplier: the process answers everything,
  /// just late. Thread-safe; takes effect on the next step.
  void set_gray(ProcessId pid, std::uint64_t step_delay_ns);

  [[nodiscard]] net::Process& process(ProcessId pid);
  [[nodiscard]] int num_processes() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] Time now() const;
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Aggregated traffic statistics. Counters live per slot and are written
  /// lock-free by their owning threads; call this only after the cluster
  /// has quiesced (run_quiescent) or stopped for exact numbers.
  [[nodiscard]] net::NetStats stats() const;

 private:
  friend class ClusterContext;

  /// Hot-lane envelope: what protocol traffic actually moves through the
  /// mailbox. Posted closures travel in the cold lane (a plain
  /// net::PostFn vector), so the hot lane never carries closure storage.
  struct MsgEnvelope {
    ProcessId from{kNoProcess};
    wire::Message msg{};
  };

  struct Slot {
    std::unique_ptr<net::Process> proc;
    bool active{false};
    Rng rng{0};
    /// Link-fault sampling stream; touched only by the thread stepping
    /// this process (route() is sender-side), see set_link_faults.
    Rng link_rng{0};
    std::atomic<bool> crashed{false};
    /// Gray (slow-but-alive) injected per-step delay; 0 = healthy.
    std::atomic<std::uint64_t> gray_ns{0};
    /// Step-exclusivity token: held by whichever thread is currently
    /// running a step of this automaton -- its mailbox thread during a
    /// batch, or a sender delivering directly into an idle destination.
    /// acquire/release ordering hands the automaton state between them.
    std::atomic<bool> stepping{false};

    // --- producer side: guarded by mu ---------------------------------
    std::mutex mu;
    std::condition_variable cv;
    std::vector<MsgEnvelope> inbox;      ///< hot lane: {from, msg}
    std::vector<net::PostFn> cold_inbox; ///< cold lane: posted closures
    /// Consumed prefixes of the inbox lanes; advanced only by the
    /// per-message (unbatched) consumer, always 0 under swap-drain.
    std::size_t inbox_head{0};
    std::size_t cold_head{0};
    /// Lock-free "work queued" hint the consumer spins on before parking.
    std::atomic<std::uint32_t> queued_hint{0};

    // --- consumer side: touched only by the owning thread -------------
    /// Double buffers: swap-drain exchanges them with the inbox lanes
    /// under one lock acquisition; clearing keeps capacity, so the
    /// steady state allocates nothing.
    std::vector<MsgEnvelope> drain;
    std::vector<net::PostFn> cold_drain;
    /// Resume positions for incremental consumers (drive()).
    std::size_t drain_pos{0};
    std::size_t cold_pos{0};
    /// Adaptive spin budget (grows on spin hits, halves on futile parks).
    std::uint32_t spin_credit{0};

    /// Per-slot traffic counters, lock-free by ownership: both sender- and
    /// delivery-side fields are written only by the thread currently
    /// holding this slot's stepping token (its mailbox thread during a
    /// batch, a sender during a direct delivery, a driver inside drive()),
    /// so the token's acquire/release ordering serializes them. stats()
    /// aggregates after quiescence.
    net::NetStats local_stats;

    /// Items queued and not yet handed to the consumer (mu held).
    [[nodiscard]] std::size_t queued_unlocked() const {
      return (inbox.size() - inbox_head) + (cold_inbox.size() - cold_head);
    }
  };

  struct TimedItem {
    Time at{};
    std::uint64_t seq{};
    ProcessId pid{kNoProcess};
    net::PostFn fn{};
  };

  /// Heap order for timer_heap_ (min-heap on (at, seq)); the single source
  /// of truth for both push_heap in post() and pop_heap in timer_main().
  [[nodiscard]] static bool timed_later(const TimedItem& a,
                                        const TimedItem& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  [[nodiscard]] static std::uint64_t chan_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  void route(ProcessId from, ProcessId to, wire::Message msg);
  /// One physical copy leaving `from`: applies the reorder rule (deferring
  /// the copy through the timer) or enqueues it normally.
  void send_copy(ProcessId from, ProcessId to, wire::Message msg);
  /// Appends to `pid`'s hot/cold lane -- unless the destination is an idle
  /// active process, in which case the work is delivered directly on the
  /// calling thread (see direct_delivery_). `already_counted` says whether
  /// this work item was already added to pending_ (timer items are counted
  /// at post() time so quiescence never observes a gap between timer pop
  /// and enqueue). Notifies the consumer only on empty -> non-empty.
  void enqueue_msg(ProcessId pid, MsgEnvelope env, bool already_counted);
  void enqueue_fn(ProcessId pid, net::PostFn fn, bool already_counted);
  void finish_work_items(std::int64_t n);
  /// Spins (with yields) until `slot`'s stepping token is acquired,
  /// futex-waiting if the holder runs a long step.
  void acquire_token(Slot& slot);
  void release_token(Slot& slot);
  class TokenGuard;  ///< RAII release (exception-safe), defined in the .cpp
  /// Appends one item to the matching lane of `pid`'s mailbox -- or runs
  /// it right here when the destination is idle (direct delivery). The
  /// single definition of the producer-side protocol for both lanes.
  template <class Item>
  void enqueue_item(ProcessId pid, Item item, bool already_counted);

  /// Delivers one hot-lane envelope as a step of `pid` (crash checks,
  /// jitter, optional codec round-trip). Returns true when the message was
  /// actually delivered (vs. dropped). Does not touch pending_/delivered_.
  bool deliver_msg(net::Context& ctx, Slot& slot, MsgEnvelope env);
  /// Runs one cold-lane closure as a step of `pid` (skipped if crashed).
  void deliver_fn(net::Context& ctx, Slot& slot, net::PostFn fn);
  /// Swaps both inbox lanes into the drain buffers (mu held by caller).
  void swap_lanes(Slot& slot);
  /// Dispatches everything currently in the drain buffers, then updates
  /// delivered_ and pending_ once.
  void run_batch(ProcessId pid, Slot& slot);

  void thread_main(ProcessId pid);
  void thread_main_unbatched(ProcessId pid);
  void timer_main();

  ClusterOptions opts_;
  Rng seeder_;
  /// The cheapest wakeup is none: when a message's (or due closure's)
  /// destination is an active process whose stepping token is free, the
  /// sending thread runs the destination's step directly instead of
  /// enqueueing and waking its mailbox thread -- zero condvar round trips
  /// along an idle request-response chain, while busy destinations keep
  /// genuine concurrency. Off when jitter is on (jitter must sleep on the
  /// receiving thread) and in the per-message reference mode. Passive
  /// slots are never targets: their steps must stay on the driving thread
  /// (drive()'s done() condition reads results without synchronization).
  bool direct_delivery_{true};
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::thread timer_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> delivered_{0};
  bool started_{false};
  /// True once start() has finished every on_start: direct delivery must
  /// not run a process's step before its on_start (queued deliveries only
  /// begin when the mailbox threads spin up, which is also after).
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;

  // Timed closures, ordered by (at, seq).
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<TimedItem> timer_heap_;
  std::uint64_t timer_seq_{0};

  // Outstanding work: queued envelopes + pending timers + steps in flight.
  std::atomic<std::int64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  // Held channels (cold path: guarded by one mutex; the atomic count keeps
  // the no-holds fast path lock-free). Held *status* lives in held_chans_;
  // held_buffers_ only carries channels with a backlog, so crash() can free
  // a discarded buffer outright while the channel stays held.
  mutable std::mutex chan_mu_;
  std::atomic<std::size_t> held_count_{0};
  std::unordered_set<std::uint64_t> held_chans_;
  std::unordered_map<std::uint64_t, std::vector<MsgEnvelope>> held_buffers_;

  /// Held-buffer messages discarded by crash(); kept apart from the
  /// per-slot counters because crash() may run on any thread.
  std::atomic<std::uint64_t> crash_dropped_{0};

  // Gray-failure library state (see set_link_faults / set_gray). Both off
  // by default; the transport fast path pays one branch.
  net::LinkFaults link_faults_{};
  bool link_enabled_{false};
};

}  // namespace rr::runtime
