// Threaded in-process runtime: the same protocol automata that run under the
// discrete-event simulator, deployed on real threads with mailbox queues.
//
// Processes come in two kinds:
//   active   -- base objects / servers: each gets its own thread draining
//               its mailbox,
//   passive  -- clients: owned by a caller thread, which drives the
//               automaton via drive() / with_context() (this realizes
//               blocking operations without the automaton ever blocking).
//
// Every automaton is only ever touched by its owning thread, so the
// protocol code needs no synchronization -- exactly as under the DES.
// Message transport is a mutex+condvar MPSC queue per process; an optional
// jitter makes thread interleavings more adversarial in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/process.hpp"

namespace rr::runtime {

struct ClusterOptions {
  std::uint64_t seed{1};
  /// Maximum artificial delivery jitter (microseconds, sampled uniformly;
  /// 0 disables). Applied by the receiving thread, so senders never block.
  std::uint32_t max_jitter_us{0};
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers a process. Active processes get a thread at start().
  ProcessId add(std::unique_ptr<net::Process> p, bool active);

  void start();
  void stop();

  /// Runs `fn` as a step of passive process `pid` on the calling thread
  /// (e.g. to invoke an operation on a client automaton).
  void with_context(ProcessId pid, const std::function<void(net::Context&)>& fn);

  /// Drains `pid`'s mailbox on the calling thread until `done()` returns
  /// true. Returns false on timeout.
  bool drive(ProcessId pid, const std::function<bool()>& done,
             std::chrono::milliseconds timeout);

  [[nodiscard]] net::Process& process(ProcessId pid);
  [[nodiscard]] Time now() const;
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  friend class ClusterContext;

  struct Envelope {
    ProcessId from;
    wire::Message msg;
  };

  struct Slot {
    std::unique_ptr<net::Process> proc;
    bool active{false};
    Rng rng{0};
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> inbox;
  };

  void route(ProcessId from, ProcessId to, wire::Message msg);
  void thread_main(ProcessId pid);
  bool pop_one(ProcessId pid, std::chrono::milliseconds wait, Envelope* out);
  void dispatch(ProcessId pid, Envelope env);

  ClusterOptions opts_;
  Rng seeder_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> delivered_{0};
  bool started_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rr::runtime
