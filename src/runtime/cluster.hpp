// Threaded in-process runtime: the same protocol automata that run under the
// discrete-event simulator, deployed on real threads with mailbox queues.
//
// Processes come in two kinds:
//   active   -- each gets its own thread draining its mailbox (base objects,
//               servers, and harness-driven clients),
//   passive  -- owned by a caller thread, which drives the automaton via
//               drive() / with_context() (this realizes blocking operations
//               without the automaton ever blocking).
//
// Every automaton is only ever touched by its owning thread, so the
// protocol code needs no synchronization -- exactly as under the DES.
// Message transport is a mutex+condvar MPSC queue per process; an optional
// jitter makes thread interleavings more adversarial in tests.
//
// Beyond raw transport the cluster supports the same experiment surface as
// sim::World, so the harness can drive either backend through one
// interface:
//   - post(at, pid, fn): timed closure steps (a timer thread moves due
//     closures into the target's mailbox),
//   - crash(pid) and held channels (hold/release buffers messages exactly
//     like the proofs' "messages remain in transit" tactic),
//   - run_quiescent(): blocks until no queued, buffered-timer, or in-flight
//     work remains (held-channel buffers do not count, mirroring World::run),
//   - NetStats accounting identical to the simulator's (same counting
//     visitor for bytes), plus optional codec round-tripping per delivery.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/process.hpp"
#include "net/stats.hpp"

namespace rr::runtime {

struct ClusterOptions {
  std::uint64_t seed{1};
  /// Maximum artificial delivery jitter (microseconds, sampled uniformly;
  /// 0 disables). Applied by the receiving thread, so senders never block.
  std::uint32_t max_jitter_us{0};
  /// Account encoded bytes for every message (same counting visitor as the
  /// simulator, so cross-backend byte counts are comparable).
  bool account_bytes{true};
  /// Round-trip every message through the binary codec before delivery.
  bool reserialize{false};
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers a process. Active processes get a thread at start().
  ProcessId add(std::unique_ptr<net::Process> p, bool active);

  void start();
  void stop();

  /// Runs `fn` as a step of passive process `pid` on the calling thread
  /// (e.g. to invoke an operation on a client automaton).
  void with_context(ProcessId pid, const std::function<void(net::Context&)>& fn);

  /// Drains `pid`'s mailbox on the calling thread until `done()` returns
  /// true. Returns false on timeout.
  bool drive(ProcessId pid, const std::function<bool()>& done,
             std::chrono::milliseconds timeout);

  /// Schedules `fn` to run as a step of process `pid` at time `at`
  /// (nanoseconds on the cluster clock; values in the past run immediately).
  /// Thread-safe; may be called before start(). Closures that fit
  /// net::PostFn's inline buffer are stored without heap allocation.
  void post(Time at, ProcessId pid, net::PostFn fn);

  /// Blocks until no work remains: empty mailboxes, no pending timers, no
  /// step in flight. Messages buffered on held channels do not count.
  /// Returns false on timeout.
  bool run_quiescent(std::chrono::milliseconds timeout);

  /// Crash: the process takes no further steps; queued and future messages
  /// to or from it are dropped, as are messages buffered on held channels
  /// adjacent to it.
  void crash(ProcessId pid);
  [[nodiscard]] bool crashed(ProcessId pid) const;

  /// Holds a channel: messages sent from -> to are buffered, not delivered.
  void hold(ProcessId from, ProcessId to);
  /// Holds every channel adjacent to `pid` except the unused self-channel.
  void hold_all(ProcessId pid);
  /// Releases a channel; buffered messages are enqueued in FIFO order.
  void release(ProcessId from, ProcessId to);
  void release_all(ProcessId pid);
  [[nodiscard]] bool held(ProcessId from, ProcessId to) const;

  [[nodiscard]] net::Process& process(ProcessId pid);
  [[nodiscard]] int num_processes() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] Time now() const;
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Aggregated traffic statistics. Counters live per slot and are written
  /// lock-free by their owning threads; call this only after the cluster
  /// has quiesced (run_quiescent) or stopped for exact numbers.
  [[nodiscard]] net::NetStats stats() const;

 private:
  friend class ClusterContext;

  struct Envelope {
    ProcessId from{kNoProcess};
    wire::Message msg{};
    net::PostFn fn{};  ///< non-null: closure step
  };

  struct Slot {
    std::unique_ptr<net::Process> proc;
    bool active{false};
    Rng rng{0};
    std::atomic<bool> crashed{false};
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Envelope> inbox;
    /// Per-slot traffic counters, lock-free by ownership: sender-side
    /// fields are written only by the (unique) thread currently stepping
    /// this process, delivery-side fields only by its mailbox thread.
    /// stats() aggregates after quiescence.
    net::NetStats local_stats;
  };

  struct TimedItem {
    Time at{};
    std::uint64_t seq{};
    ProcessId pid{kNoProcess};
    net::PostFn fn{};
  };

  /// Heap order for timer_heap_ (min-heap on (at, seq)); the single source
  /// of truth for both push_heap in post() and pop_heap in timer_main().
  [[nodiscard]] static bool timed_later(const TimedItem& a,
                                        const TimedItem& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  [[nodiscard]] static std::uint64_t chan_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  void route(ProcessId from, ProcessId to, wire::Message msg);
  /// Appends to `pid`'s mailbox. `counted` says whether this work item was
  /// already added to pending_ (timer items are counted at post() time so
  /// quiescence never observes a gap between timer pop and enqueue).
  void enqueue(ProcessId pid, Envelope env, bool counted);
  void finish_work_item();
  void thread_main(ProcessId pid);
  void timer_main();
  bool pop_one(ProcessId pid, std::chrono::milliseconds wait, Envelope* out);
  void dispatch(ProcessId pid, Envelope env);

  ClusterOptions opts_;
  Rng seeder_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::thread timer_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> delivered_{0};
  bool started_{false};
  std::chrono::steady_clock::time_point epoch_;

  // Timed closures, ordered by (at, seq).
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<TimedItem> timer_heap_;
  std::uint64_t timer_seq_{0};

  // Outstanding work: queued envelopes + pending timers + steps in flight.
  std::atomic<std::int64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  // Held channels (cold path: guarded by one mutex; the atomic count keeps
  // the no-holds fast path lock-free).
  mutable std::mutex chan_mu_;
  std::atomic<std::size_t> held_count_{0};
  std::unordered_map<std::uint64_t, std::vector<Envelope>> held_buffers_;

  /// Held-buffer messages discarded by crash(); kept apart from the
  /// per-slot counters because crash() may run on any thread.
  std::atomic<std::uint64_t> crash_dropped_{0};
};

}  // namespace rr::runtime
