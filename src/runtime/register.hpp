// RobustRegister: the library's top-level, thread-friendly entry point.
//
// Deploys a Guerraoui-Vukolic storage (safe or regular) over an in-process
// threaded cluster and exposes blocking WRITE/READ operations:
//
//   rr::runtime::RobustRegister::Options opts;
//   opts.res = rr::Resilience::optimal(/*t=*/2, /*b=*/1, /*readers=*/4);
//   rr::runtime::RobustRegister reg(opts);
//   reg.write("hello");                  // single writer, 2 rounds
//   auto r = reg.read(/*reader=*/0);     // wait-free, 2 rounds
//
// Concurrency contract (matching the paper's client model, Section 2.2):
// at most one in-flight WRITE (call write() from one thread), and at most
// one in-flight READ per reader index; distinct reader indices may read
// concurrently from distinct threads. Byzantine base objects can be
// injected to see the protocol shrug them off.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/types.hpp"
#include "core/client_types.hpp"
#include "runtime/cluster.hpp"

namespace rr::core {
class Writer;
class SafeReader;
class RegularReader;
}  // namespace rr::core

namespace rr::runtime {

class RobustRegister {
 public:
  struct Options {
    Resilience res{Resilience::optimal(1, 1, 1)};
    bool regular{false};    ///< regular semantics (history objects)
    bool optimized{false};  ///< Section 5.1 suffix optimization
    std::uint64_t seed{1};
    std::uint32_t max_jitter_us{0};
    /// Byzantine base objects: index -> strategy.
    std::map<int, adversary::StrategyKind> byzantine{};
    /// Operation timeout (a wait-free operation only stalls if more than t
    /// base objects are unreachable, i.e. on contract violation).
    std::chrono::milliseconds timeout{std::chrono::seconds(10)};
  };

  explicit RobustRegister(Options opts);
  ~RobustRegister();

  RobustRegister(const RobustRegister&) = delete;
  RobustRegister& operator=(const RobustRegister&) = delete;

  /// Blocking WRITE. Returns nullopt on timeout.
  std::optional<core::WriteResult> write(Value v);

  /// Blocking READ by reader `reader`. Returns nullopt on timeout.
  std::optional<core::ReadResult> read(int reader = 0);

  [[nodiscard]] const Resilience& resilience() const { return opts_.res; }
  [[nodiscard]] Cluster& cluster() { return *cluster_; }

 private:
  Options opts_;
  Topology topo_;
  std::unique_ptr<Cluster> cluster_;
  core::Writer* writer_{nullptr};
  std::vector<core::SafeReader*> safe_readers_;
  std::vector<core::RegularReader*> regular_readers_;
  std::mutex write_mu_;
  std::vector<std::unique_ptr<std::mutex>> read_mus_;
};

}  // namespace rr::runtime
