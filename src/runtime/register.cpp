#include "runtime/register.hpp"

#include "common/assert.hpp"
#include "core/regular_reader.hpp"
#include "core/safe_reader.hpp"
#include "core/writer.hpp"
#include "objects/regular_object.hpp"
#include "objects/safe_object.hpp"

namespace rr::runtime {

RobustRegister::RobustRegister(Options opts)
    : opts_(std::move(opts)),
      topo_(opts_.res.num_readers, opts_.res.num_objects) {
  RR_ASSERT(opts_.res.valid());
  RR_ASSERT_MSG(opts_.res.feasible(),
                "deployment below the optimal-resilience bound S >= 2t+b+1");
  RR_ASSERT_MSG(
      static_cast<int>(opts_.byzantine.size()) <= opts_.res.b,
      "more Byzantine objects than the resilience budget b allows");

  ClusterOptions copts;
  copts.seed = opts_.seed;
  copts.max_jitter_us = opts_.max_jitter_us;
  cluster_ = std::make_unique<Cluster>(copts);

  // Registration order matches Topology: writer, readers, objects.
  auto writer = std::make_unique<core::Writer>(opts_.res, topo_);
  writer_ = writer.get();
  const ProcessId wpid = cluster_->add(std::move(writer), /*active=*/false);
  RR_ASSERT(wpid == topo_.writer());

  for (int j = 0; j < opts_.res.num_readers; ++j) {
    read_mus_.push_back(std::make_unique<std::mutex>());
    if (opts_.regular) {
      auto r = std::make_unique<core::RegularReader>(opts_.res, topo_, j,
                                                     opts_.optimized);
      regular_readers_.push_back(r.get());
      cluster_->add(std::move(r), /*active=*/false);
    } else {
      auto r = std::make_unique<core::SafeReader>(opts_.res, topo_, j);
      safe_readers_.push_back(r.get());
      cluster_->add(std::move(r), /*active=*/false);
    }
  }

  const auto flavor =
      opts_.regular ? adversary::Flavor::Regular : adversary::Flavor::Safe;
  for (int i = 0; i < opts_.res.num_objects; ++i) {
    std::unique_ptr<net::Process> obj;
    const auto byz = opts_.byzantine.find(i);
    if (byz != opts_.byzantine.end()) {
      obj = adversary::make_byzantine(byz->second, flavor, topo_, opts_.res,
                                      i);
    } else if (opts_.regular) {
      obj = std::make_unique<objects::RegularObject>(topo_, i);
    } else {
      obj = std::make_unique<objects::SafeObject>(topo_, i);
    }
    cluster_->add(std::move(obj), /*active=*/true);
  }
  cluster_->start();
}

RobustRegister::~RobustRegister() { cluster_->stop(); }

std::optional<core::WriteResult> RobustRegister::write(Value v) {
  std::lock_guard lock(write_mu_);
  std::optional<core::WriteResult> result;
  cluster_->with_context(topo_.writer(), [&](net::Context& ctx) {
    writer_->write(ctx, std::move(v),
                   [&](const core::WriteResult& r) { result = r; });
  });
  if (!cluster_->drive(topo_.writer(), [&] { return result.has_value(); },
                       opts_.timeout)) {
    return std::nullopt;
  }
  return result;
}

std::optional<core::ReadResult> RobustRegister::read(int reader) {
  RR_ASSERT(reader >= 0 && reader < opts_.res.num_readers);
  std::lock_guard lock(*read_mus_[static_cast<std::size_t>(reader)]);
  std::optional<core::ReadResult> result;
  const ProcessId pid = topo_.reader(reader);
  cluster_->with_context(pid, [&](net::Context& ctx) {
    if (!safe_readers_.empty()) {
      safe_readers_[static_cast<std::size_t>(reader)]->read(
          ctx, [&](const core::ReadResult& r) { result = r; });
    } else {
      regular_readers_[static_cast<std::size_t>(reader)]->read(
          ctx, [&](const core::ReadResult& r) { result = r; });
    }
  });
  if (!cluster_->drive(pid, [&] { return result.has_value(); },
                       opts_.timeout)) {
    return std::nullopt;
  }
  return result;
}

}  // namespace rr::runtime
