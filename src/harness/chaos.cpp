#include "harness/chaos.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rr::harness {
namespace {

struct ChaosState {
  Rng rng;
  Time deadline;          ///< absolute backend time to stop injecting
  std::vector<int> held;  ///< currently held object indices

  ChaosState(std::uint64_t seed, Time deadline_at)
      : rng(seed), deadline(deadline_at) {}
};

void schedule_wave(Deployment& d, const ChaosOptions& opts,
                   const std::shared_ptr<ChaosState>& st, Time at);

void release_wave(Deployment& d, const ChaosOptions& opts,
                  const std::shared_ptr<ChaosState>& st, Time at) {
  // Releases run as steps of the shard-0 writer purely for scheduling; they
  // touch only the backend's channel state.
  d.backend().post(at, d.writer_pid(), [&d, opts, st](net::Context& ctx) {
    for (const int i : st->held) {
      d.backend().release_all(d.object_pid(i));
    }
    st->held.clear();
    schedule_wave(d, opts, st, ctx.now() + opts.gap);
  });
}

void schedule_wave(Deployment& d, const ChaosOptions& opts,
                   const std::shared_ptr<ChaosState>& st, Time at) {
  if (at > st->deadline) return;
  d.backend().post(at, d.writer_pid(), [&d, opts, st](net::Context& ctx) {
    // Pick a fresh random subset of objects to isolate.
    const int S = d.res().num_objects;
    const int count =
        1 + static_cast<int>(st->rng.index(
                static_cast<std::size_t>(std::max(1, opts.max_held))));
    while (static_cast<int>(st->held.size()) < count) {
      const int candidate = static_cast<int>(st->rng.index(
          static_cast<std::size_t>(S)));
      if (std::find(st->held.begin(), st->held.end(), candidate) ==
          st->held.end()) {
        st->held.push_back(candidate);
      }
    }
    for (const int i : st->held) {
      d.backend().hold_all(d.object_pid(i));
    }
    release_wave(d, opts, st, ctx.now() + opts.hold_duration);
  });
}

}  // namespace

void inject_chaos(Deployment& d, const ChaosOptions& opts) {
  RR_ASSERT_MSG(opts.max_held + d.options().faults.total_faulty() <=
                    d.res().t,
                "held + faulty objects must stay within the budget t");
  const Time base = d.now();
  auto st = std::make_shared<ChaosState>(opts.seed, base + opts.horizon);
  schedule_wave(d, opts, st, base + opts.start);
}

void inject_flap(Deployment& d, const FlapOptions& opts) {
  if (opts.objects.empty() || opts.period == 0) return;
  const Time base = d.now();
  const Time end = base + opts.start + opts.horizon;
  const auto held_span = static_cast<Time>(
      static_cast<double>(opts.period) *
      std::clamp(opts.duty, 0.05, 0.95));
  // The whole edge schedule is derived here, before anything runs: replays
  // and shrunk scenarios see identical times regardless of execution order.
  Rng jitter_rng(opts.seed);
  const auto jit = [&]() -> Time {
    return opts.jitter == 0 ? 0 : jitter_rng.uniform(0, opts.jitter);
  };
  // Sequenced so a stale edge that the threaded backend runs late (see
  // EdgeSequencer) cannot re-hold channels after the terminal release.
  auto order = std::make_shared<EdgeSequencer>();
  int next_edge = 0;
  const auto post_edge = [&](Time at, bool hold) {
    d.backend().post(at, d.writer_pid(),
                     [&d, objs = opts.objects, hold, order,
                      edge = next_edge++](net::Context&) {
      if (!order->seal(edge)) return;
      for (const int i : objs) {
        if (hold) {
          d.backend().hold_all(d.object_pid(i));
        } else {
          d.backend().release_all(d.object_pid(i));
        }
      }
    });
  };
  for (Time cycle = base + opts.start; cycle < end; cycle += opts.period) {
    const Time hold_at = cycle + jit();
    Time release_at = hold_at + held_span + jit();
    if (release_at > end) release_at = end;
    if (hold_at >= end) break;
    post_edge(hold_at, /*hold=*/true);
    post_edge(release_at, /*hold=*/false);
  }
  // Belt and braces: whatever the jitter did, everything is reconnected at
  // the horizon (holds must be eventually released for the run to be legal).
  post_edge(end, /*hold=*/false);
}

}  // namespace rr::harness
