#include "harness/chaos.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rr::harness {
namespace {

struct ChaosState {
  Rng rng;
  std::vector<int> held;  ///< currently held object indices

  explicit ChaosState(std::uint64_t seed) : rng(seed) {}
};

void schedule_wave(Deployment& d, const ChaosOptions& opts,
                   const std::shared_ptr<ChaosState>& st, Time at);

void release_wave(Deployment& d, const ChaosOptions& opts,
                  const std::shared_ptr<ChaosState>& st, Time at) {
  // Releases run as steps of the writer process purely for scheduling; they
  // touch only the world's channel state.
  d.world().post(at, d.writer_pid(), [&d, opts, st](net::Context& ctx) {
    for (const int i : st->held) {
      d.world().release_all(d.object_pid(i));
    }
    st->held.clear();
    schedule_wave(d, opts, st, ctx.now() + opts.gap);
  });
}

void schedule_wave(Deployment& d, const ChaosOptions& opts,
                   const std::shared_ptr<ChaosState>& st, Time at) {
  if (at > opts.horizon) return;
  d.world().post(at, d.writer_pid(), [&d, opts, st](net::Context& ctx) {
    // Pick a fresh random subset of objects to isolate.
    const int S = d.res().num_objects;
    const int count =
        1 + static_cast<int>(st->rng.index(
                static_cast<std::size_t>(std::max(1, opts.max_held))));
    while (static_cast<int>(st->held.size()) < count) {
      const int candidate = static_cast<int>(st->rng.index(
          static_cast<std::size_t>(S)));
      if (std::find(st->held.begin(), st->held.end(), candidate) ==
          st->held.end()) {
        st->held.push_back(candidate);
      }
    }
    for (const int i : st->held) {
      d.world().hold_all(d.object_pid(i));
    }
    release_wave(d, opts, st, ctx.now() + opts.hold_duration);
  });
}

}  // namespace

void inject_chaos(Deployment& d, const ChaosOptions& opts) {
  RR_ASSERT_MSG(opts.max_held + d.options().faults.total_faulty() <=
                    d.res().t,
                "held + faulty objects must stay within the budget t");
  auto st = std::make_shared<ChaosState>(opts.seed);
  schedule_wave(d, opts, st, opts.start);
}

}  // namespace rr::harness
