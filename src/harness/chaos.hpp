// Chaos injection: adversarial schedule fuzzing for deployments.
//
// The model's adversary controls message delays. Beyond the delay models,
// the ChaosPlan periodically *holds* all channels of a rotating subset of
// at most `max_held` base objects (they look crashed for a while) and
// releases them later -- realizing the proofs' "messages remain in transit"
// tactic at random. Holds are always eventually released, so the runs stay
// legal (reliable channels, finite delays) and wait-freedom must survive.
//
// Chaos drives the deployment's Backend, so the same plan runs under the
// DES (virtual time) and the threaded cluster (wall-clock nanoseconds --
// pick durations accordingly; the defaults work for both).
//
// Combined with Byzantine objects this approximates the strongest adversary
// the model admits: lying objects plus scheduler-controlled asynchrony.
#pragma once

#include <atomic>
#include <vector>

#include "harness/deployment.hpp"

namespace rr::harness {

/// Orders up-front-posted fault edges on the threaded backend. Timed posts
/// are not guaranteed to run in `at` order there (Cluster::post's
/// already-due bypass can overtake an earlier edge still sitting in the
/// timer heap), and fault edges encode absolute state -- held vs released,
/// gray vs healthy -- so a stale edge applied after a newer one sticks
/// forever: a hold overtaken by its own release strands every buffered
/// message outside the quiescence count and the run reports stuck ops.
/// Give each edge of one fault an index in schedule order and have its
/// closure apply only if seal(index) says no newer edge has run yet; a
/// skipped stale edge degenerates the window, which is a legal schedule.
/// The DES executes timed posts in order, so every seal succeeds there and
/// behavior is bit-identical.
class EdgeSequencer {
 public:
  /// True if no edge newer than `index` has applied yet; marks `index`
  /// applied. Edges run serialized (steps of one pid), the atomic only
  /// spans the cross-thread handoff between steps.
  bool seal(int index) {
    int prev = newest_.load(std::memory_order_relaxed);
    while (prev < index) {
      if (newest_.compare_exchange_weak(prev, index,
                                        std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<int> newest_{-1};
};

struct ChaosOptions {
  /// Objects whose channels may be held simultaneously. Defaults to the
  /// full crash budget t minus already-planned crashed objects (the caller
  /// must keep total unreachable objects <= t or reads may legally stall
  /// until release).
  int max_held{1};
  /// Times below are relative to the backend clock at injection time.
  Time start{0};
  Time horizon{2'000'000};     ///< stop injecting after this much time
  Time hold_duration{30'000};  ///< how long a subset stays held
  Time gap{20'000};            ///< pause between hold waves
  std::uint64_t seed{1};
};

/// Schedules hold/release waves on `d.backend()`. Call before d.run().
void inject_chaos(Deployment& d, const ChaosOptions& opts);

/// Flapping channels: a fixed set of objects is periodically isolated
/// (hold_all) and reconnected (release_all), with seeded jitter on every
/// edge. Unlike inject_chaos -- which picks random rotating subsets as it
/// goes -- the whole flap schedule is computed up front from the seed, so a
/// scenario file replays the exact same edge times and the shrinker can
/// drop a flap event wholesale.
struct FlapOptions {
  std::vector<int> objects;  ///< object indices flapped together
  /// Times relative to the backend clock at injection time.
  Time start{0};
  Time horizon{300'000};  ///< last edge lands before start + horizon
  Time period{20'000};    ///< one hold + release cycle
  double duty{0.5};       ///< fraction of each period spent held
  Time jitter{0};         ///< max forward shift per edge, seeded
  std::uint64_t seed{1};
};

/// Schedules the flap edges on `d.backend()`. Call before d.run(). Every
/// hold is eventually released (a trailing release closes the final cycle),
/// so runs stay within the model's "messages remain in transit, finitely"
/// rule as long as the flapped set stays within the budget t. Callers
/// wanting a deliberate liveness violation may exceed the budget; this
/// function does not assert.
void inject_flap(Deployment& d, const FlapOptions& opts);

}  // namespace rr::harness
