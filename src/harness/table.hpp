// Fixed-width table printing for benchmark harnesses: the bench binaries
// print rows in the shape of the paper's claims tables (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace rr::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    os << rule << "\n";
    for (const auto& row : rows_) print_row(os, row, widths);
    os.flush();
  }

 private:
  template <typename T>
  static std::string to_cell(T&& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(v));
    } else if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(v));
      return buf;
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << cell << std::string(widths[c] - cell.size() + 1, ' ');
      if (c + 1 < widths.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rr::harness
