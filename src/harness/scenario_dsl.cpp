#include "harness/scenario_dsl.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/protocol.hpp"

namespace rr::harness {
namespace {

constexpr adversary::StrategyKind kAllStrategies[] = {
    adversary::StrategyKind::Silent,      adversary::StrategyKind::Amnesiac,
    adversary::StrategyKind::Forger,      adversary::StrategyKind::Accuser,
    adversary::StrategyKind::Equivocator, adversary::StrategyKind::Stagger,
    adversary::StrategyKind::Collude,     adversary::StrategyKind::Random,
    adversary::StrategyKind::StaleReplay,
};

// -------------------------------------------------------------------------
// Low-level token parsing. Every helper returns false (without touching the
// output) on malformed input; the caller owns the error message.
// -------------------------------------------------------------------------

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = x;
  return true;
}

bool parse_int(const std::string& v, int* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(x);
  return true;
}

/// Times: integer with an optional ns/us/ms/s suffix; bare means ns (the
/// backend clock unit).
bool parse_time(const std::string& v, Time* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(v.c_str(), &end, 10);
  if (end == nullptr || end == v.c_str()) return false;
  const std::string suffix(end);
  std::uint64_t scale = 1;
  if (suffix == "" || suffix == "ns") scale = 1;
  else if (suffix == "us") scale = 1'000;
  else if (suffix == "ms") scale = 1'000'000;
  else if (suffix == "s") scale = 1'000'000'000;
  else return false;
  *out = x * scale;
  return true;
}

/// Signed time offsets (clock skew): optional leading '-', same suffixes.
bool parse_offset(const std::string& v, std::int64_t* out) {
  std::string body = v;
  bool neg = false;
  if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
    neg = body[0] == '-';
    body.erase(0, 1);
  }
  Time t = 0;
  if (!parse_time(body, &t)) return false;
  const auto mag = static_cast<std::int64_t>(t);
  *out = neg ? -mag : mag;
  return true;
}

/// Wall-clock deadlines: integer milliseconds, optional ms/s suffix.
bool parse_wall_ms(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::uint64_t x = std::strtoull(v.c_str(), &end, 10);
  if (end == nullptr || end == v.c_str()) return false;
  const std::string suffix(end);
  if (suffix == "" || suffix == "ms") *out = x;
  else if (suffix == "s") *out = x * 1'000;
  else return false;
  return true;
}

/// Rates and factors: a double, with an optional trailing 'x' ("8x").
bool parse_rate(const std::string& v, double* out) {
  if (v.empty()) return false;
  std::string body = v;
  if (body.back() == 'x') body.pop_back();
  if (body.empty()) return false;
  char* end = nullptr;
  const double x = std::strtod(body.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = x;
  return true;
}

/// Comma-separated object indices; the word "all" means the empty list
/// (= every channel, for link-fault scopes).
bool parse_objs(const std::string& v, std::vector<int>* out) {
  out->clear();
  if (v == "all") return true;
  std::size_t start = 0;
  while (start <= v.size()) {
    const auto comma = v.find(',', start);
    int x = 0;
    if (!parse_int(v.substr(start, comma - start), &x)) return false;
    out->push_back(x);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

/// The key=value pairs of a directive line (tokens after the first `skip`).
struct KvArgs {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::string bad;  ///< first token that was not key=value; empty when none

  explicit KvArgs(const std::vector<std::string>& tokens, std::size_t skip) {
    for (std::size_t i = skip; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        if (bad.empty()) bad = tokens[i];
        continue;
      }
      pairs.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
    }
  }

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : pairs) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// First key not in `allowed`; empty when all keys are known.
  [[nodiscard]] std::string unknown_key(
      std::initializer_list<const char*> allowed) const {
    for (const auto& [k, v] : pairs) {
      bool known = false;
      for (const char* a : allowed) known = known || k == a;
      if (!known) return k;
    }
    return "";
  }
};

std::string fmt_double(double x) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  // Trim to the shortest representation that still round-trips exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, x);
    if (std::strtod(probe, nullptr) == x) return probe;
  }
  return buf;
}

const char* semantics_name(Semantics s) {
  switch (s) {
    case Semantics::Safe: return "safe";
    case Semantics::Regular: return "regular";
    case Semantics::Atomic: return "atomic";
  }
  return "?";
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_' && c != '.') {
      return false;
    }
  }
  return true;
}

/// Resolves the shared at=/dur=/from=/to= window keys (from/to are
/// synonyms: from == at, to == at + dur). Returns an error string or "".
std::string parse_window(const KvArgs& kv, Time* at, Time* dur) {
  const auto* at_v = kv.find("at");
  const auto* from_v = kv.find("from");
  const auto* dur_v = kv.find("dur");
  const auto* to_v = kv.find("to");
  if (at_v != nullptr && from_v != nullptr) return "both at= and from= given";
  if (dur_v != nullptr && to_v != nullptr) return "both dur= and to= given";
  const auto* start = at_v != nullptr ? at_v : from_v;
  if (start != nullptr && !parse_time(*start, at)) {
    return "bad time '" + *start + "'";
  }
  if (dur_v != nullptr && !parse_time(*dur_v, dur)) {
    return "bad time '" + *dur_v + "'";
  }
  if (to_v != nullptr) {
    Time end = 0;
    if (!parse_time(*to_v, &end)) return "bad time '" + *to_v + "'";
    if (end < *at) return "to= before the window start";
    *dur = end - *at;
  }
  return "";
}

}  // namespace

ScenarioParseResult parse_scenario(std::string_view text) {
  ScenarioParseResult result;
  Scenario& s = result.scenario;
  bool saw_scenario = false;
  // Source line of each fault event, so the deferred semantic validation
  // (deferred because `budget` may legally come after `fault` lines) can
  // still name the offending line instead of the end of the file.
  std::vector<int> event_lines;

  const auto fail = [&result](int line, const std::string& msg) {
    result.ok = false;
    result.error = "line " + std::to_string(line) + ": " + msg;
    return result;
  };

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string line(text.substr(pos, nl - pos));
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "scenario") {
      if (saw_scenario) return fail(line_no, "duplicate scenario line");
      if (tokens.size() < 3) {
        return fail(line_no, "want: scenario <protocol> <backend> [seed=N] "
                             "[name=NAME]");
      }
      const auto protocol = protocol_from_name(tokens[1]);
      if (!protocol) return fail(line_no, "unknown protocol '" + tokens[1] +
                                              "'");
      const auto backend = backend_from_name(tokens[2]);
      if (!backend) return fail(line_no, "unknown backend '" + tokens[2] +
                                             "' (" + backend_names() + ")");
      s.protocol = *protocol;
      s.backend = *backend;
      const KvArgs kv(tokens, 3);
      if (!kv.bad.empty()) return fail(line_no, "stray token '" + kv.bad +
                                                    "'");
      if (const auto k = kv.unknown_key({"seed", "name"}); !k.empty()) {
        return fail(line_no, "unknown key '" + k + "'");
      }
      if (const auto* v = kv.find("seed")) {
        if (!parse_u64(*v, &s.seed)) return fail(line_no, "bad seed");
      }
      if (const auto* v = kv.find("name")) {
        if (!valid_name(*v)) {
          return fail(line_no, "bad name (want [A-Za-z0-9._-]+)");
        }
        s.name = *v;
      }
      saw_scenario = true;
      continue;
    }
    if (!saw_scenario) {
      return fail(line_no, "the scenario line must come first");
    }

    if (directive == "template") {
      if (tokens.size() != 2) return fail(line_no, "want: template <name>");
      const auto t = fault_template_from_name(tokens[1]);
      if (!t) return fail(line_no, "unknown template '" + tokens[1] + "'");
      s.tmpl = *t;
    } else if (directive == "budget") {
      const KvArgs kv(tokens, 1);
      if (const auto k = kv.unknown_key({"t", "b", "readers"}); !k.empty()) {
        return fail(line_no, "unknown key '" + k + "'");
      }
      if (const auto* v = kv.find("t")) {
        if (!parse_int(*v, &s.t) || s.t < 0) return fail(line_no, "bad t");
      }
      if (const auto* v = kv.find("b")) {
        if (!parse_int(*v, &s.b) || s.b < 0) return fail(line_no, "bad b");
      }
      if (const auto* v = kv.find("readers")) {
        if (!parse_int(*v, &s.readers) || s.readers < 1) {
          return fail(line_no, "bad readers");
        }
      }
    } else if (directive == "workload") {
      const KvArgs kv(tokens, 1);
      if (const auto k = kv.unknown_key({"writes", "reads", "write_gap",
                                         "read_gap", "shards", "arrival",
                                         "clients", "think", "horizon",
                                         "write_frac", "window"});
          !k.empty()) {
        return fail(line_no, "unknown key '" + k + "'");
      }
      if (const auto* v = kv.find("writes")) {
        if (!parse_int(*v, &s.writes) || s.writes < 0) {
          return fail(line_no, "bad writes");
        }
      }
      if (const auto* v = kv.find("reads")) {
        if (!parse_int(*v, &s.reads_per_reader) || s.reads_per_reader < 0) {
          return fail(line_no, "bad reads");
        }
      }
      if (const auto* v = kv.find("write_gap")) {
        if (!parse_time(*v, &s.write_gap)) {
          return fail(line_no, "bad write_gap");
        }
      }
      if (const auto* v = kv.find("read_gap")) {
        if (!parse_time(*v, &s.read_gap)) return fail(line_no, "bad read_gap");
      }
      if (const auto* v = kv.find("shards")) {
        if (!parse_int(*v, &s.shards) || s.shards < 1) {
          return fail(line_no, "bad shards");
        }
      }
      // Open-loop keys (docs/WORKLOADS.md). `arrival=` selects the process;
      // the population/horizon keys are only legal once it is open, so an
      // emitted scenario (which drops them at their defaults) re-parses to
      // the same Scenario value.
      if (const auto* v = kv.find("arrival")) {
        const auto a = arrival_from_name(*v);
        if (!a) {
          return fail(line_no, "unknown arrival '" + *v +
                                   "' (closed|poisson|bursty|diurnal)");
        }
        s.arrival = *a;
      }
      if (const auto* v = kv.find("clients")) {
        if (!parse_u64(*v, &s.clients) || s.clients == 0) {
          return fail(line_no, "bad clients (want >= 1)");
        }
      }
      if (const auto* v = kv.find("think")) {
        if (!parse_time(*v, &s.think) || s.think == 0) {
          return fail(line_no, "bad think (want a time >= 1)");
        }
      }
      if (const auto* v = kv.find("horizon")) {
        if (!parse_time(*v, &s.horizon) || s.horizon == 0) {
          return fail(line_no, "bad horizon (want a time >= 1)");
        }
      }
      if (const auto* v = kv.find("write_frac")) {
        if (!parse_rate(*v, &s.write_fraction) || s.write_fraction < 0 ||
            s.write_fraction > 1) {
          return fail(line_no, "bad write_frac (want a fraction in [0, 1])");
        }
      }
      if (s.arrival == ArrivalKind::Closed) {
        for (const char* key : {"clients", "think", "horizon", "write_frac"}) {
          if (kv.find(key) != nullptr) {
            return fail(line_no, std::string(key) +
                                     "= needs an open arrival process "
                                     "(arrival=poisson|bursty|diurnal)");
          }
        }
      }
      if (const auto* v = kv.find("window")) {
        std::uint64_t window = 0;
        if (!parse_u64(*v, &window)) {
          return fail(line_no, "bad window (want 0 = batch, or >= 1)");
        }
        s.checker_window = static_cast<std::size_t>(window);
      }
    } else if (directive == "check") {
      if (tokens.size() != 2) {
        return fail(line_no, "want: check safe|regular|atomic");
      }
      if (tokens[1] == "safe") s.check_override = Semantics::Safe;
      else if (tokens[1] == "regular") s.check_override = Semantics::Regular;
      else if (tokens[1] == "atomic") s.check_override = Semantics::Atomic;
      else return fail(line_no, "unknown semantics '" + tokens[1] + "'");
    } else if (directive == "expect") {
      if (tokens.size() != 2 || (tokens[1] != "ok" && tokens[1] != "fail")) {
        return fail(line_no, "want: expect ok|fail");
      }
      s.expect_ok = tokens[1] == "ok";
    } else if (directive == "deadline") {
      if (tokens.size() != 2 || !parse_wall_ms(tokens[1], &s.max_wall_ms)) {
        return fail(line_no, "want: deadline <milliseconds>[ms|s]");
      }
    } else if (directive == "runseed") {
      if (tokens.size() != 2 || !parse_u64(tokens[1], &s.run_seed)) {
        return fail(line_no, "want: runseed <u64>");
      }
    } else if (directive == "history") {
      const KvArgs kv(tokens, 1);
      if (!kv.bad.empty()) return fail(line_no, "stray token '" + kv.bad +
                                                    "'");
      if (const auto k = kv.unknown_key({"limit", "gc"}); !k.empty()) {
        return fail(line_no, "unknown key '" + k + "'");
      }
      if (const auto* v = kv.find("limit")) {
        std::uint64_t limit = 0;
        if (!parse_u64(*v, &limit) || limit == 1) {
          return fail(line_no, "bad limit (want 0 = unlimited, or >= 2)");
        }
        s.history_limit = static_cast<std::size_t>(limit);
      }
      if (const auto* v = kv.find("gc")) {
        if (*v == "on") s.history_gc = true;
        else if (*v == "off") s.history_gc = false;
        else return fail(line_no, "bad gc (want on|off)");
      }
    } else if (directive == "fault") {
      if (tokens.size() < 2) return fail(line_no, "want: fault <kind> ...");
      const std::string& kind = tokens[1];
      const KvArgs kv(tokens, 2);
      if (!kv.bad.empty()) {
        return fail(line_no, "stray token '" + kv.bad + "'");
      }
      FaultEvent ev;
      const auto need_obj = [&]() -> std::string {
        const auto* v = kv.find("obj");
        if (v == nullptr) return "missing obj=";
        if (!parse_int(*v, &ev.object) || ev.object < 0) return "bad obj";
        return "";
      };
      /// gray/skew accept either obj=N or role=writer|reader [idx=J]: the
      /// client processes read clocks too, so the per-process fault kinds
      /// can address them (role=reader defaults to reader 0).
      const auto need_target = [&]() -> std::string {
        const auto* obj = kv.find("obj");
        const auto* role = kv.find("role");
        if (obj != nullptr && role != nullptr) {
          return "both obj= and role= given";
        }
        if (role == nullptr) {
          if (kv.find("idx") != nullptr) return "idx= needs role=reader";
          return need_obj();
        }
        if (*role == "writer") {
          ev.role = Role::Writer;
          if (kv.find("idx") != nullptr) return "role=writer takes no idx=";
        } else if (*role == "reader") {
          ev.role = Role::Reader;
          if (const auto* idx = kv.find("idx")) {
            if (!parse_int(*idx, &ev.object) || ev.object < 0) {
              return "bad idx";
            }
          }
        } else {
          return "unknown role '" + *role + "' (want writer|reader)";
        }
        return "";
      };
      const auto need_objs = [&]() -> std::string {
        const auto* v = kv.find("objs");
        if (v == nullptr) return "missing objs=";
        if (!parse_objs(*v, &ev.held)) return "bad objs";
        return "";
      };
      const auto scope_objs = [&]() -> std::string {
        if (const auto* v = kv.find("objs")) {
          std::vector<int> objs;
          if (!parse_objs(*v, &objs) && *v != "all") return "bad objs";
          ev.held = std::move(objs);
        }
        return "";
      };
      std::string err;
      if (kind == "crash") {
        if (const auto k = kv.unknown_key({"obj", "at", "from"}); !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = FaultEvent::Kind::Crash;
        if (err = need_obj(); !err.empty()) return fail(line_no, err);
        Time dur = 0;
        if (err = parse_window(kv, &ev.at, &dur); !err.empty()) {
          return fail(line_no, err);
        }
      } else if (kind == "byz") {
        if (const auto k = kv.unknown_key({"obj", "strategy"}); !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = FaultEvent::Kind::Byzantine;
        if (err = need_obj(); !err.empty()) return fail(line_no, err);
        if (const auto* v = kv.find("strategy")) {
          bool found = false;
          for (const auto st : kAllStrategies) {
            if (*v == adversary::to_string(st)) {
              ev.strategy = st;
              found = true;
            }
          }
          if (!found) {
            return fail(line_no, "unknown strategy '" + *v + "'");
          }
        }
      } else if (kind == "hold" || kind == "partition") {
        if (const auto k = kv.unknown_key(
                {"objs", "dir", "at", "from", "dur", "to"});
            !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = FaultEvent::Kind::Hold;
        if (kind == "partition") {
          const auto* v = kv.find("dir");
          if (v == nullptr || (*v != "in" && *v != "out")) {
            return fail(line_no, "partition needs dir=in|out");
          }
          ev.kind = *v == "in" ? FaultEvent::Kind::PartitionIn
                               : FaultEvent::Kind::PartitionOut;
        } else if (kv.find("dir") != nullptr) {
          return fail(line_no, "unknown key 'dir'");
        }
        if (err = need_objs(); !err.empty()) return fail(line_no, err);
        if (err = parse_window(kv, &ev.at, &ev.duration); !err.empty()) {
          return fail(line_no, err);
        }
        if (ev.duration == 0) {
          return fail(line_no, "a hold window needs dur= or to= (holds must "
                               "be released)");
        }
      } else if (kind == "flap") {
        if (const auto k = kv.unknown_key({"objs", "at", "from", "dur", "to",
                                           "period", "duty", "jitter"});
            !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = FaultEvent::Kind::Flap;
        if (err = need_objs(); !err.empty()) return fail(line_no, err);
        if (err = parse_window(kv, &ev.at, &ev.duration); !err.empty()) {
          return fail(line_no, err);
        }
        if (ev.duration == 0) ev.duration = 300'000;
        ev.period = 20'000;
        if (const auto* v = kv.find("period")) {
          if (!parse_time(*v, &ev.period) || ev.period == 0) {
            return fail(line_no, "bad period");
          }
        }
        ev.rate = 0.5;
        if (const auto* v = kv.find("duty")) {
          if (!parse_rate(*v, &ev.rate) || ev.rate <= 0 || ev.rate >= 1) {
            return fail(line_no, "bad duty (want a fraction in (0, 1))");
          }
        }
        if (const auto* v = kv.find("jitter")) {
          if (!parse_time(*v, &ev.jitter)) return fail(line_no, "bad jitter");
        }
      } else if (kind == "gray") {
        if (const auto k = kv.unknown_key({"obj", "role", "idx", "slow", "at",
                                           "from", "dur", "to"});
            !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = FaultEvent::Kind::Gray;
        if (err = need_target(); !err.empty()) return fail(line_no, err);
        const auto* v = kv.find("slow");
        if (v == nullptr || !parse_rate(*v, &ev.rate) || ev.rate <= 1.0) {
          return fail(line_no, "gray needs slow=FACTORx with factor > 1");
        }
        if (err = parse_window(kv, &ev.at, &ev.duration); !err.empty()) {
          return fail(line_no, err);
        }
      } else if (kind == "skew") {
        if (const auto k = kv.unknown_key({"obj", "role", "idx", "offset"});
            !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = FaultEvent::Kind::Skew;
        if (err = need_target(); !err.empty()) return fail(line_no, err);
        const auto* v = kv.find("offset");
        if (v == nullptr || !parse_offset(*v, &ev.skew)) {
          return fail(line_no, "skew needs offset=[-]TIME");
        }
      } else if (kind == "loss" || kind == "dup" || kind == "reorder") {
        if (const auto k = kv.unknown_key(
                {"p", "objs", "at", "from", "dur", "to", "delay"});
            !k.empty()) {
          return fail(line_no, "unknown key '" + k + "'");
        }
        ev.kind = kind == "loss"    ? FaultEvent::Kind::Loss
                  : kind == "dup"   ? FaultEvent::Kind::Duplicate
                                    : FaultEvent::Kind::Reorder;
        const auto* v = kv.find("p");
        if (v == nullptr || !parse_rate(*v, &ev.rate) || ev.rate <= 0 ||
            ev.rate > 1) {
          return fail(line_no, kind + " needs p=PROB in (0, 1]");
        }
        if (err = scope_objs(); !err.empty()) return fail(line_no, err);
        if (err = parse_window(kv, &ev.at, &ev.duration); !err.empty()) {
          return fail(line_no, err);
        }
        if (kind == "reorder") {
          ev.period = 20'000;
          if (const auto* d = kv.find("delay")) {
            if (!parse_time(*d, &ev.period) || ev.period == 0) {
              return fail(line_no, "bad delay");
            }
          }
        } else if (kv.find("delay") != nullptr) {
          return fail(line_no, "unknown key 'delay'");
        }
      } else {
        return fail(line_no, "unknown fault kind '" + kind + "'");
      }
      s.events.push_back(std::move(ev));
      event_lines.push_back(line_no);
    } else {
      return fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  if (!saw_scenario) return fail(line_no, "missing scenario line");

  // Semantic validation against the effective resilience recipe, so a bad
  // file is a parse error that names the offending `fault` line instead of
  // a late assertion failure deep inside the sweep's deployment build.
  const Resilience res =
      protocol_traits(s.protocol).resilience_for(s.t, s.b, s.readers);
  int byz_count = 0;
  int link_rules[3] = {0, 0, 0};
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const auto& ev = s.events[i];
    const int ev_line = event_lines[i];
    const auto check_obj = [&](int o) {
      return o >= 0 && o < res.num_objects;
    };
    const auto obj_range_error = [&](int o) {
      return fail(ev_line, "object " + std::to_string(o) +
                               " out of range (this deployment has " +
                               std::to_string(res.num_objects) + " objects)");
    };
    switch (ev.kind) {
      case FaultEvent::Kind::Byzantine:
        ++byz_count;
        if (byz_count > res.b) {
          return fail(ev_line, std::to_string(byz_count) +
                                   " byzantine faults exceed the budget b = " +
                                   std::to_string(res.b));
        }
        [[fallthrough]];
      case FaultEvent::Kind::Crash:
        if (!check_obj(ev.object)) return obj_range_error(ev.object);
        break;
      case FaultEvent::Kind::Gray:
      case FaultEvent::Kind::Skew:
        // The per-process kinds may address a client role instead of an
        // object; reader indices live in their own 0..R-1 range.
        if (ev.role == Role::Reader && ev.object >= res.num_readers) {
          return fail(ev_line, "reader index " + std::to_string(ev.object) +
                                   " out of range (this deployment has " +
                                   std::to_string(res.num_readers) +
                                   " readers)");
        }
        if (ev.role == Role::Object && !check_obj(ev.object)) {
          return obj_range_error(ev.object);
        }
        break;
      case FaultEvent::Kind::Hold:
      case FaultEvent::Kind::PartitionIn:
      case FaultEvent::Kind::PartitionOut:
      case FaultEvent::Kind::Flap:
      case FaultEvent::Kind::Loss:
      case FaultEvent::Kind::Duplicate:
      case FaultEvent::Kind::Reorder:
        for (const int o : ev.held) {
          if (!check_obj(o)) return obj_range_error(o);
        }
        if (ev.kind == FaultEvent::Kind::Loss ||
            ev.kind == FaultEvent::Kind::Duplicate ||
            ev.kind == FaultEvent::Kind::Reorder) {
          const int slot = ev.kind == FaultEvent::Kind::Loss        ? 0
                           : ev.kind == FaultEvent::Kind::Duplicate ? 1
                                                                    : 2;
          if (++link_rules[slot] > 1) {
            return fail(ev_line, std::string("at most one ") +
                                     (slot == 0   ? "loss"
                                      : slot == 1 ? "dup"
                                                  : "reorder") +
                                     " fault per scenario");
          }
        }
        break;
    }
  }
  result.ok = true;
  return result;
}

namespace {

/// Gray/Skew target as it appears in the DSL: `obj=N` for base objects,
/// `role=writer` / `role=reader idx=J` for client processes.
std::string emit_target(const FaultEvent& ev) {
  switch (ev.role) {
    case Role::Writer:
      return "role=writer";
    case Role::Reader:
      return "role=reader idx=" + std::to_string(ev.object);
    case Role::Object:
      break;
  }
  return "obj=" + std::to_string(ev.object);
}

}  // namespace

std::string emit_scenario(const Scenario& s) {
  std::string out;
  const auto line = [&out](const std::string& l) {
    out += l;
    out += '\n';
  };
  const auto t = [](Time x) {
    return std::to_string(static_cast<unsigned long long>(x));
  };
  const auto objs = [](const std::vector<int>& v) {
    if (v.empty()) return std::string("all");
    std::string o;
    for (const int x : v) {
      if (!o.empty()) o += ",";
      o += std::to_string(x);
    }
    return o;
  };

  std::string head = std::string("scenario ") +
                     protocol_traits(s.protocol).cli_name + " " +
                     to_string(s.backend) + " seed=" + std::to_string(s.seed);
  if (!s.name.empty()) head += " name=" + s.name;
  line(head);
  line(std::string("template ") + to_string(s.tmpl));
  line("budget t=" + std::to_string(s.t) + " b=" + std::to_string(s.b) +
       " readers=" + std::to_string(s.readers));
  line("workload writes=" + std::to_string(s.writes) +
       " reads=" + std::to_string(s.reads_per_reader) +
       " write_gap=" + t(s.write_gap) + " read_gap=" + t(s.read_gap) +
       " shards=" + std::to_string(s.shards));
  // Open-loop / windowed-checker keys: emitted only when off-default, so
  // pre-existing scenario files stay byte-identical.
  if (s.arrival != ArrivalKind::Closed || s.checker_window != 0) {
    std::string l = "workload";
    if (s.arrival != ArrivalKind::Closed) {
      l += std::string(" arrival=") + to_string(s.arrival);
      l += " clients=" + std::to_string(s.clients);
      l += " think=" + t(s.think);
      l += " horizon=" + t(s.horizon);
      l += " write_frac=" + fmt_double(s.write_fraction);
    }
    if (s.checker_window != 0) {
      l += " window=" + std::to_string(s.checker_window);
    }
    line(l);
  }
  if (s.check_override) {
    line(std::string("check ") + semantics_name(*s.check_override));
  }
  if (!s.expect_ok) line("expect fail");
  if (s.max_wall_ms != 0) line("deadline " + std::to_string(s.max_wall_ms));
  if (s.run_seed != 0) line("runseed " + std::to_string(s.run_seed));
  // Emitted only when off-default, so pre-existing scenario files (and
  // their emitted forms) stay byte-identical.
  if (s.history_limit != 0 || !s.history_gc) {
    std::string l = "history";
    if (s.history_limit != 0) l += " limit=" + std::to_string(s.history_limit);
    if (!s.history_gc) l += " gc=off";
    line(l);
  }

  for (const auto& ev : s.events) {
    switch (ev.kind) {
      case FaultEvent::Kind::Crash:
        line("fault crash obj=" + std::to_string(ev.object) +
             " at=" + t(ev.at));
        break;
      case FaultEvent::Kind::Byzantine:
        line("fault byz obj=" + std::to_string(ev.object) +
             " strategy=" + adversary::to_string(ev.strategy));
        break;
      case FaultEvent::Kind::Hold:
        line("fault hold objs=" + objs(ev.held) + " at=" + t(ev.at) +
             " dur=" + t(ev.duration));
        break;
      case FaultEvent::Kind::PartitionIn:
      case FaultEvent::Kind::PartitionOut:
        line("fault partition objs=" + objs(ev.held) + " dir=" +
             (ev.kind == FaultEvent::Kind::PartitionIn ? "in" : "out") +
             " at=" + t(ev.at) + " dur=" + t(ev.duration));
        break;
      case FaultEvent::Kind::Flap:
        line("fault flap objs=" + objs(ev.held) + " at=" + t(ev.at) +
             " dur=" + t(ev.duration) + " period=" + t(ev.period) +
             " duty=" + fmt_double(ev.rate) + " jitter=" + t(ev.jitter));
        break;
      case FaultEvent::Kind::Gray: {
        std::string l = "fault gray " + emit_target(ev) +
                        " slow=" + fmt_double(ev.rate) + " at=" + t(ev.at);
        if (ev.duration != 0) l += " dur=" + t(ev.duration);
        line(l);
        break;
      }
      case FaultEvent::Kind::Skew:
        line("fault skew " + emit_target(ev) +
             " offset=" + std::to_string(static_cast<long long>(ev.skew)));
        break;
      case FaultEvent::Kind::Loss:
      case FaultEvent::Kind::Duplicate:
      case FaultEvent::Kind::Reorder: {
        std::string l = "fault ";
        l += ev.kind == FaultEvent::Kind::Loss        ? "loss"
             : ev.kind == FaultEvent::Kind::Duplicate ? "dup"
                                                      : "reorder";
        l += " p=" + fmt_double(ev.rate);
        if (ev.kind == FaultEvent::Kind::Reorder) {
          l += " delay=" + t(ev.period);
        }
        if (!ev.held.empty()) l += " objs=" + objs(ev.held);
        if (ev.at != 0) l += " at=" + t(ev.at);
        if (ev.duration != 0) l += " dur=" + t(ev.duration);
        line(l);
        break;
      }
    }
  }
  return out;
}

ScenarioParseResult load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ScenarioParseResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = parse_scenario(buf.str());
  if (result.ok && result.scenario.name.empty()) {
    // An unnamed file-backed scenario takes its filename stem as the cell
    // name, so every library cell has a stable "scn:<name>" key.
    result.scenario.name = std::filesystem::path(path).stem().string();
  }
  return result;
}

bool save_scenario_file(const Scenario& s, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << emit_scenario(s);
  return static_cast<bool>(out.flush());
}

ScenarioLibrary load_scenario_dir(const std::string& dir) {
  ScenarioLibrary lib;
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".scn") paths.push_back(entry.path());
  }
  if (ec) {
    lib.errors.push_back(dir + ": " + ec.message());
    return lib;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    auto result = load_scenario_file(path.string());
    if (result.ok) {
      lib.scenarios.push_back(std::move(result.scenario));
    } else {
      lib.errors.push_back(path.string() + ": " + result.error);
    }
  }
  return lib;
}

}  // namespace rr::harness
