// Deterministic multi-seed scenario sweep engine.
//
// A SweepPlan is a grid of {protocol x backend x fault-plan template x RNG
// seed}. The engine materializes one deterministic Scenario per cell -- a
// seeded chaos schedule of crashes, held-channel waves, Byzantine impostors
// (forged values), plus a seeded workload mix and shard count -- runs the
// cells concurrently on a thread pool (one private Deployment, hence one
// private sim::World, per cell: the DES is single-threaded-deterministic,
// so N worlds saturate N cores), and aggregates per-cell verdicts into a
// SweepReport (history-checker pass/fail, liveness, NetStats, latency p95,
// and on the DES a golden schedule fingerprint).
//
// Every cell is addressed by a canonical key, "protocol:backend:template:
// seed" (e.g. "safe:des:chaos:42"); materialization depends only on the key
// and the plan's budget/workload knobs, never on worker count or execution
// order, so any cell -- in particular any *failing* cell -- is replayable
// with one CLI flag (sweep_cli --replay KEY). DES cells replay bit-
// identically (same fingerprint); threads cells replay the same schedule
// under genuine wall-clock nondeterminism.
//
// When a cell fails, the engine re-runs it under a ddmin fault-plan
// shrinker (Zeller's delta debugging over the event list: try chunks, then
// chunk complements, refine granularity until 1-minimal). The result is a
// minimal failing schedule (removing any single remaining event makes the
// failure disappear) small enough to read, plus the seed to replay it.
//
// Beyond the grid, a plan carries a *library* of explicit Scenarios --
// typically parsed from scenario files (src/harness/scenario_dsl.hpp,
// docs/SCENARIO_DSL.md) -- that run as first-class cells after the grid.
// Library cells are keyed "scn:<name>" and carry an expected verdict
// (`expect_ok`), so a committed shrinker-emitted failure file counts as
// *passing* when it still fails the same way.
//
// The "overload" template deliberately exceeds the crash budget (t+1 timed
// crashes plus droppable hold-wave noise), so quorums become permanently
// unreachable and reads stall: a guaranteed liveness failure that exercises
// the failure-detection + shrinking + replay pipeline end-to-end. It is
// excluded from default_fault_templates() -- CI sweeps must be all green.
// On the threads backend the engine gives such cells a bounded wall-clock
// deadline (BackendConfig::max_wall_time_ms) so they degrade to a liveness
// verdict instead of aborting the process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/byzantine.hpp"
#include "harness/backend.hpp"
#include "harness/protocol.hpp"
#include "harness/workload.hpp"
#include "net/stats.hpp"

namespace rr::harness {

/// Fault-plan templates: the shapes of adversarial schedule a cell's seed
/// is expanded into (Section 2's fault model: up to t faulty objects, up to
/// b of them arbitrary, plus scheduler-controlled asynchrony).
enum class FaultTemplate {
  None,      ///< fault-free (pure workload + random delays)
  Crash,     ///< <= t timed crashes
  Byz,       ///< <= b Byzantine impostors, random strategies
  Mixed,     ///< Byzantine + crashes, within the (t, b) budget
  Chaos,     ///< held-channel waves ("messages remain in transit")
  ByzChaos,  ///< Byzantine + held-channel waves
  Overload,  ///< t+1 crashes: deliberate liveness violation (DES only)
};

[[nodiscard]] const char* to_string(FaultTemplate t);
[[nodiscard]] std::optional<FaultTemplate> fault_template_from_name(
    std::string_view name);
/// The templates a default sweep grid runs (everything except Overload).
[[nodiscard]] const std::vector<FaultTemplate>& default_fault_templates();

/// One discrete, independently droppable fault of a materialized schedule.
/// The shrinker works at this granularity. The gray-failure kinds (from
/// PartitionIn down) are never drawn by the grid templates -- they enter
/// scenarios through the DSL (docs/SCENARIO_DSL.md) -- so legacy cell
/// schedules stay bit-identical.
struct FaultEvent {
  enum class Kind {
    Byzantine,  ///< impostor object from construction time
    Crash,      ///< object crashes at `at`
    Hold,       ///< channels of `held` objects held during [at, at+duration)
    PartitionIn,   ///< only channels *into* `held` objects are held
    PartitionOut,  ///< only channels *out of* `held` objects are held
    Flap,       ///< `held` objects flap: period `period`, duty `rate`,
                ///< seeded edge jitter `jitter`, during [at, at+duration)
    Gray,       ///< object slow-but-alive by factor `rate` during the window
    Skew,       ///< object's local clock shifted by `skew` (DES only)
    Loss,       ///< seeded message loss, probability `rate` (scope `held`)
    Duplicate,  ///< seeded message duplication, probability `rate`
    Reorder,    ///< seeded reordering: +`period` delay with probability
                ///< `rate`
  };

  Kind kind{Kind::Crash};
  /// Gray/Skew may target a client role instead of a base object -- clients
  /// are the processes that read clocks, so they are the other half of the
  /// model's "no process may rely on local timing" clause. Role::Writer hits
  /// every shard's writer; Role::Reader hits reader `object` of every shard.
  /// All other kinds require the default Role::Object.
  Role role{Role::Object};
  int object{0};  ///< Byzantine/Crash/Gray/Skew: object index, or (for
                  ///< role=reader faults) the reader index
  adversary::StrategyKind strategy{adversary::StrategyKind::Silent};
  Time at{0};        ///< Crash: crash time; windowed kinds: window start
  Time duration{0};  ///< window length (0 = open-ended where legal)
  /// Hold/Partition*/Flap: object indices isolated together.
  /// Loss/Duplicate/Reorder: scope -- only channels adjacent to one of
  /// these objects are faulty (empty = every channel).
  std::vector<int> held;
  double rate{0};      ///< Loss/Duplicate/Reorder p; Gray factor; Flap duty
  Time period{0};      ///< Flap cycle length; Reorder extra delay
  Time jitter{0};      ///< Flap: max seeded forward shift per edge
  std::int64_t skew{0};  ///< Skew: signed clock offset

  [[nodiscard]] std::string describe() const;
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A fully materialized sweep cell: everything needed to run it, and
/// nothing that depends on where or when it runs.
struct Scenario {
  Protocol protocol{Protocol::Safe};
  BackendKind backend{BackendKind::Sim};
  FaultTemplate tmpl{FaultTemplate::None};
  std::uint64_t seed{1};

  int t{2};
  int b{1};
  int readers{2};
  int shards{1};
  int writes{6};
  int reads_per_reader{4};
  Time write_gap{5'000};
  Time read_gap{3'000};

  /// Check against these semantics instead of the protocol's promise. A
  /// *stronger* override (e.g. Atomic on a safe protocol) is the other
  /// supported way to deliberately inject checker violations.
  std::optional<Semantics> check_override{};

  std::vector<FaultEvent> events;

  /// Library scenarios (parsed from .scn files) carry a name; their cell
  /// key becomes "scn:<name>" instead of the grid coordinates.
  std::string name;
  /// The verdict this scenario is expected to produce. Committed shrinker
  /// fixtures set false: the cell *passes* when the failure reproduces.
  bool expect_ok{true};
  /// Threads cells: bounded run deadline in wall-clock ms (0 = none). With
  /// a deadline, non-quiescence becomes a liveness verdict, not an abort.
  std::uint64_t max_wall_ms{0};
  /// The deployment RNG seed. 0 = derive from the cell coordinates (the
  /// legacy rule); materialize() pins the derived value so an emitted
  /// scenario file replays bit-identically to its grid twin.
  std::uint64_t run_seed{0};
  /// Regular-object history retention (Regular / RegularOptimized only):
  /// hard cap on retained slots (0 = unlimited) and the ack-driven
  /// watermark GC toggle. See DeploymentOptions::history_limit/history_gc.
  std::size_t history_limit{0};
  bool history_gc{true};
  /// Open-loop workload (docs/WORKLOADS.md): any arrival other than Closed
  /// replaces the chained mixed workload with the open-loop engine -- the
  /// fields below size its population and horizon. Closed (the default)
  /// keeps the legacy writes/reads_per_reader/gap workload, so every
  /// committed scenario and grid cell is untouched.
  ArrivalKind arrival{ArrivalKind::Closed};
  std::uint64_t clients{256};
  Time think{50'000};        ///< mean per-client think time (clock units)
  Time horizon{100'000};     ///< arrival-generation window length
  double write_fraction{0.1};
  /// Windowed streaming checker (0 = classic batch checker). Nonzero turns
  /// on online verify-and-retire with O(window) checker memory; verdicts
  /// and fingerprints match batch mode bit-for-bit.
  std::size_t checker_window{0};

  /// Canonical cell address: "protocol:backend:template:seed", or
  /// "scn:<name>" when named.
  [[nodiscard]] std::string key() const;
  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Per-cell outcome. A cell is OK iff the history checker passes AND every
/// invoked operation completed (wait-freedom within the budget).
struct CellVerdict {
  std::string key;
  Protocol protocol{Protocol::Safe};
  BackendKind backend{BackendKind::Sim};
  FaultTemplate tmpl{FaultTemplate::None};
  std::uint64_t seed{1};

  bool ok{false};
  /// The scenario's expected verdict; a cell counts as failed when
  /// ok != expect_ok (grid cells always expect true).
  bool expect_ok{true};
  int violations{0};
  std::string first_violation;  ///< empty when the checker passed
  int ops_complete{0};
  int ops_stuck{0};
  std::uint64_t events{0};  ///< DES events / threads messages delivered
  net::NetStats net{};
  Time write_p95{0};  ///< backend clock units (virtual ns on the DES)
  Time read_p95{0};
  /// DES cells: hash of (schedule fingerprint, per-shard histories,
  /// NetStats). Bit-identical across runs and worker counts for the same
  /// key + plan knobs. 0 on the threads backend (nondeterministic).
  std::uint64_t fingerprint{0};
  /// Checker residency: peak resident (unretired) ops of the largest shard
  /// and total ops retired online. Batch cells: peak is the largest shard
  /// history, retired is 0. Not folded into the fingerprint (observability,
  /// not semantics).
  std::uint64_t hist_peak_live{0};
  std::uint64_t hist_retired{0};
  double wall_ms{0};
};

/// The sweep grid plus the budget/workload knobs every cell inherits.
struct SweepPlan {
  std::vector<Protocol> protocols;
  std::vector<BackendKind> backends{BackendKind::Sim,
                                    BackendKind::Threads};
  std::vector<FaultTemplate> templates{default_fault_templates()};
  /// Seed axis: cells use seeds base_seed .. base_seed + seeds - 1.
  int seeds{16};
  std::uint64_t base_seed{1};

  int t{2};
  int b{1};
  int readers{2};
  /// Workload scale: per-cell values are drawn from the cell seed in
  /// [ceil(x/2), x] so the mix varies across cells.
  int writes{6};
  int reads_per_reader{4};
  std::optional<Semantics> check_override{};
  /// Failing DES cells shrunk per run (threads failures are reported
  /// unshrunk: their schedules do not replay deterministically).
  int max_shrinks{4};
  /// Explicit scenarios (e.g. a scenarios/ directory parsed through the
  /// DSL) run as cells after the grid, honoring each one's own budget,
  /// workload, events and expected verdict.
  std::vector<Scenario> library;

  [[nodiscard]] std::size_t num_cells() const {
    return protocols.size() * backends.size() * templates.size() *
               static_cast<std::size_t>(seeds) +
           library.size();
  }
  /// Grid cells only (num_cells() minus the library).
  [[nodiscard]] std::size_t num_grid_cells() const {
    return protocols.size() * backends.size() * templates.size() *
           static_cast<std::size_t>(seeds);
  }

  /// The CI quick grid: 3 protocols x both backends x the 6 default
  /// templates x 28 seeds = 1008 cells, small per-cell workloads.
  [[nodiscard]] static SweepPlan quick();
};

/// Outcome of ddmin-shrinking one failing cell.
struct ShrinkResult {
  std::string key;          ///< the failing cell's address
  std::uint64_t seed{0};
  int original_events{0};   ///< fault events before shrinking
  int reruns{0};            ///< scenario re-executions the shrinker spent
  Scenario minimal;         ///< minimal failing schedule (same cell, fewer events)
  std::string first_violation;  ///< of the minimal schedule's run
};

struct SweepReport {
  std::vector<CellVerdict> cells;  ///< grid order (protocol-major)
  std::vector<ShrinkResult> shrinks;
  int failed{0};
  int workers{0};
  double wall_ms{0};

  [[nodiscard]] bool all_ok() const { return failed == 0; }
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepPlan plan);

  [[nodiscard]] const SweepPlan& plan() const { return plan_; }

  /// Materializes cell `index`: grid cells first (seed-major within
  /// template within backend within protocol), then the plan's library
  /// scenarios verbatim.
  [[nodiscard]] Scenario materialize(std::size_t index) const;
  /// Materializes the cell at explicit grid coordinates.
  [[nodiscard]] Scenario materialize(Protocol p, BackendKind backend,
                                     FaultTemplate tmpl,
                                     std::uint64_t seed) const;
  /// Parses a canonical cell key and materializes it (plan knobs apply;
  /// the key's coordinates need not lie on the plan's grid axes). A
  /// "scn:<name>" key resolves against the plan's library.
  [[nodiscard]] std::optional<Scenario> materialize_key(
      std::string_view key) const;

  /// Runs one scenario to completion in the calling thread.
  [[nodiscard]] static CellVerdict run_cell(const Scenario& s);

  /// ddmin fault-plan shrinker. Requires run_cell(s) to fail; returns a
  /// 1-minimal failing schedule (dropping any single remaining event makes
  /// the failure disappear).
  [[nodiscard]] static ShrinkResult shrink(const Scenario& s);

  /// Runs the whole grid on `workers` threads (0 = hardware concurrency),
  /// then shrinks up to plan.max_shrinks failing DES cells. DES cell
  /// verdicts are bit-identical across runs and worker counts; threads
  /// cells are genuine wall-clock runs whose timing-derived fields
  /// (events, NetStats, p95, wall_ms) vary between executions.
  [[nodiscard]] SweepReport run(int workers = 0) const;

  /// Writes BENCH_scenario_sweep-style JSON. Returns false on I/O error.
  static bool write_json(const SweepReport& report, const SweepPlan& plan,
                         const std::string& path);

 private:
  SweepPlan plan_;
};

}  // namespace rr::harness
