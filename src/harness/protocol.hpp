// Protocol-traits registry: the single place that knows how to build each
// protocol family.
//
// One table entry per protocol supplies everything the harness needs --
// display/CLI names, the semantics the checker should verify, the Byzantine
// impostor flavor, the recommended resilience for a fault budget, and
// factories for the writer / reader / base-object automata. Deployment,
// the benches and the CLIs iterate or index this table instead of switching
// on the enum, so adding a protocol means adding one entry here (plus its
// automata) and nothing else.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/byzantine.hpp"
#include "common/types.hpp"
#include "core/client_api.hpp"

namespace rr::harness {

enum class Protocol {
  Safe,              ///< Guerraoui-Vukolic safe storage (Figures 2-4)
  Regular,           ///< Guerraoui-Vukolic regular storage (Figures 5-6)
  RegularOptimized,  ///< + Section 5.1 cached history suffixes
  Abd,               ///< crash-only atomic baseline
  Polling,           ///< readers-don't-write safe baseline (b+1-round regime)
  FastWrite,         ///< 1-round writes, needs S >= 2t+2b+1
  Auth,              ///< authenticated regular baseline (1-round ops)
};

/// Semantics each protocol promises (what the checker should verify).
enum class Semantics { Safe, Regular, Atomic };

/// Per-object build configuration passed to the object factories.
struct ObjectConfig {
  /// Regular-object history hard cap: retain at most this many slots
  /// (0 = unlimited, the paper's presentation).
  std::size_t history_limit{0};
  /// Regular-object watermark GC: collect the prefix every reader has
  /// acked (see RegularObject's retention-policy contract).
  bool history_gc{true};
};

/// Everything the harness knows about one protocol family. A registry
/// entry is a contract: given automata built by the three factories below
/// and a deployment at (or above) the resilience `resilience_for`
/// recommends, every run whose fault plan stays within the (t, b) budget
/// must produce histories satisfying `semantics` -- that is exactly what
/// the cross-backend sweep (tests/test_cross_backend.cpp) checks, on both
/// backends, for every entry.
struct ProtocolTraits {
  Protocol id{Protocol::Safe};
  const char* name{""};      ///< canonical display name ("gv06-safe")
  const char* cli_name{""};  ///< short name accepted by CLIs ("safe")
  /// What the checker verifies against recorded histories (the protocol's
  /// promise; see checker/history.hpp for the formal conditions).
  Semantics semantics{Semantics::Safe};
  /// Which wire protocol a Byzantine impostor must speak to attack this
  /// family (adversary::make_byzantine picks the matching strategy set).
  adversary::Flavor flavor{adversary::Flavor::Safe};

  /// Recommended deployment for fault budgets (t, b): ABD is crash-only
  /// (b forced to 0, S = 2t+1), fastwrite needs S = 2t+2b+1, everything
  /// else runs at the optimal S = 2t+b+1.
  Resilience (*resilience_for)(int t, int b, int num_readers){nullptr};

  // Automaton factories. Each returned automaton must be runtime-agnostic
  // (a pure net::Process; see net/process.hpp) and wired against the
  // *logical* single-register Topology -- sharded deployments wrap them in
  // translating adapters, so factories must not assume physical pids.
  std::unique_ptr<core::WriterClient> (*make_writer)(const Resilience&,
                                                     const Topology&){nullptr};
  std::unique_ptr<core::ReaderClient> (*make_reader)(const Resilience&,
                                                     const Topology&,
                                                     int reader_index){nullptr};
  std::unique_ptr<net::Process> (*make_object)(const Topology&,
                                               int object_index,
                                               const ObjectConfig&){nullptr};
};

/// Traits of one protocol (O(1) table lookup).
[[nodiscard]] const ProtocolTraits& protocol_traits(Protocol p);

/// All registered protocols, in enum order (for CLIs, benches and sweeps).
[[nodiscard]] const std::vector<ProtocolTraits>& protocol_registry();

/// Parses a protocol by canonical or CLI name; nullopt if unknown.
[[nodiscard]] std::optional<Protocol> protocol_from_name(std::string_view name);

[[nodiscard]] const char* to_string(Protocol p);
[[nodiscard]] Semantics promised_semantics(Protocol p);

/// The writer's key for the authenticated baseline (shared with readers,
/// unknown to base objects).
[[nodiscard]] std::string auth_key();

}  // namespace rr::harness
