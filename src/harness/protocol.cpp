#include "harness/protocol.hpp"

#include "baselines/abd.hpp"
#include "baselines/authenticated.hpp"
#include "baselines/fastwrite.hpp"
#include "baselines/polling.hpp"
#include "common/assert.hpp"
#include "core/regular_reader.hpp"
#include "core/safe_reader.hpp"
#include "core/writer.hpp"
#include "objects/regular_object.hpp"
#include "objects/safe_object.hpp"

namespace rr::harness {

std::string auth_key() { return "rr-writer-signing-key-0001"; }

namespace {

Resilience optimal_res(int t, int b, int r) {
  return Resilience::optimal(t, b, r);
}
Resilience abd_res(int t, int /*b*/, int r) {
  return Resilience{2 * t + 1, t, 0, r};
}
Resilience fastwrite_res(int t, int b, int r) {
  return Resilience{2 * t + 2 * b + 1, t, b, r};
}

std::unique_ptr<core::WriterClient> gv_writer(const Resilience& res,
                                              const Topology& topo) {
  return std::make_unique<core::Writer>(res, topo);
}

template <bool Optimized>
std::unique_ptr<core::ReaderClient> regular_reader(const Resilience& res,
                                                   const Topology& topo,
                                                   int j) {
  return std::make_unique<core::RegularReader>(res, topo, j, Optimized);
}

std::unique_ptr<net::Process> regular_object(const Topology& topo, int i,
                                             const ObjectConfig& cfg) {
  return std::make_unique<objects::RegularObject>(topo, i, cfg.history_limit,
                                                  cfg.history_gc);
}

const std::vector<ProtocolTraits>& table() {
  static const std::vector<ProtocolTraits> kTable = {
      ProtocolTraits{
          Protocol::Safe, "gv06-safe", "safe", Semantics::Safe,
          adversary::Flavor::Safe, &optimal_res, &gv_writer,
          [](const Resilience& res, const Topology& topo, int j)
              -> std::unique_ptr<core::ReaderClient> {
            return std::make_unique<core::SafeReader>(res, topo, j);
          },
          [](const Topology& topo, int i, const ObjectConfig&)
              -> std::unique_ptr<net::Process> {
            return std::make_unique<objects::SafeObject>(topo, i);
          }},
      ProtocolTraits{Protocol::Regular, "gv06-regular", "regular",
                     Semantics::Regular, adversary::Flavor::Regular,
                     &optimal_res, &gv_writer, &regular_reader<false>,
                     &regular_object},
      ProtocolTraits{Protocol::RegularOptimized, "gv06-regular-opt",
                     "regular-opt", Semantics::Regular,
                     adversary::Flavor::Regular, &optimal_res, &gv_writer,
                     &regular_reader<true>, &regular_object},
      ProtocolTraits{
          Protocol::Abd, "abd", "abd", Semantics::Atomic,
          adversary::Flavor::Abd, &abd_res,
          [](const Resilience& res, const Topology& topo)
              -> std::unique_ptr<core::WriterClient> {
            return std::make_unique<baselines::AbdWriter>(res, topo);
          },
          [](const Resilience& res, const Topology& topo, int j)
              -> std::unique_ptr<core::ReaderClient> {
            return std::make_unique<baselines::AbdReader>(res, topo, j);
          },
          [](const Topology& topo, int i, const ObjectConfig&)
              -> std::unique_ptr<net::Process> {
            return std::make_unique<baselines::AbdObject>(topo, i);
          }},
      ProtocolTraits{
          Protocol::Polling, "polling", "polling", Semantics::Safe,
          adversary::Flavor::Poll, &optimal_res,
          [](const Resilience& res, const Topology& topo)
              -> std::unique_ptr<core::WriterClient> {
            return std::make_unique<baselines::PollingWriter>(res, topo);
          },
          [](const Resilience& res, const Topology& topo, int j)
              -> std::unique_ptr<core::ReaderClient> {
            return std::make_unique<baselines::PollingReader>(res, topo, j);
          },
          [](const Topology& topo, int i, const ObjectConfig&)
              -> std::unique_ptr<net::Process> {
            return std::make_unique<baselines::PollObject>(topo, i);
          }},
      ProtocolTraits{
          Protocol::FastWrite, "fastwrite", "fastwrite", Semantics::Safe,
          adversary::Flavor::Poll, &fastwrite_res,
          [](const Resilience& res, const Topology& topo)
              -> std::unique_ptr<core::WriterClient> {
            return std::make_unique<baselines::FastWriter>(res, topo);
          },
          [](const Resilience& res, const Topology& topo, int j)
              -> std::unique_ptr<core::ReaderClient> {
            return std::make_unique<baselines::PollingReader>(res, topo, j);
          },
          [](const Topology& topo, int i, const ObjectConfig&)
              -> std::unique_ptr<net::Process> {
            return std::make_unique<baselines::PollObject>(topo, i);
          }},
      ProtocolTraits{
          Protocol::Auth, "authenticated", "auth", Semantics::Regular,
          adversary::Flavor::Auth, &optimal_res,
          [](const Resilience& res, const Topology& topo)
              -> std::unique_ptr<core::WriterClient> {
            return std::make_unique<baselines::AuthWriter>(res, topo,
                                                           auth_key());
          },
          [](const Resilience& res, const Topology& topo, int j)
              -> std::unique_ptr<core::ReaderClient> {
            return std::make_unique<baselines::AuthReader>(res, topo, j,
                                                           auth_key());
          },
          [](const Topology& topo, int i, const ObjectConfig&)
              -> std::unique_ptr<net::Process> {
            return std::make_unique<baselines::AuthObject>(topo, i);
          }},
  };
  return kTable;
}

}  // namespace

const std::vector<ProtocolTraits>& protocol_registry() { return table(); }

const ProtocolTraits& protocol_traits(Protocol p) {
  const auto& t = table();
  const auto idx = static_cast<std::size_t>(p);
  RR_ASSERT_MSG(idx < t.size(), "protocol not registered");
  RR_ASSERT(t[idx].id == p);
  return t[idx];
}

std::optional<Protocol> protocol_from_name(std::string_view name) {
  for (const auto& entry : table()) {
    if (name == entry.name || name == entry.cli_name) return entry.id;
  }
  return std::nullopt;
}

const char* to_string(Protocol p) { return protocol_traits(p).name; }

Semantics promised_semantics(Protocol p) {
  return protocol_traits(p).semantics;
}

}  // namespace rr::harness
