#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "harness/chaos.hpp"
#include "harness/deployment.hpp"
#include "harness/workload.hpp"
#include "sim/world.hpp"

namespace rr::harness {
namespace {

constexpr FaultTemplate kDefaultTemplates[] = {
    FaultTemplate::None, FaultTemplate::Crash,  FaultTemplate::Byz,
    FaultTemplate::Mixed, FaultTemplate::Chaos, FaultTemplate::ByzChaos,
};

constexpr adversary::StrategyKind kStrategies[] = {
    adversary::StrategyKind::Silent,      adversary::StrategyKind::Amnesiac,
    adversary::StrategyKind::Forger,      adversary::StrategyKind::Accuser,
    adversary::StrategyKind::Equivocator, adversary::StrategyKind::Stagger,
    adversary::StrategyKind::Collude,     adversary::StrategyKind::Random,
};

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ v);
}

/// The cell's master seed: a pure function of the cell key coordinates, so
/// replay-by-key reproduces the exact schedule regardless of plan grid
/// enumeration or worker count.
std::uint64_t cell_seed(Protocol p, BackendKind bk, FaultTemplate tm,
                        std::uint64_t seed) {
  return mix64(seed ^ (static_cast<std::uint64_t>(p) << 48) ^
               (static_cast<std::uint64_t>(bk) << 40) ^
               (static_cast<std::uint64_t>(tm) << 32));
}

/// Draws a workload size in [ceil(x/2), x].
int half_to_full(Rng& rng, int x) {
  if (x <= 1) return x;
  const int lo = (x + 1) / 2;
  return lo + static_cast<int>(rng.index(static_cast<std::size_t>(x - lo + 1)));
}

/// Picks a fresh object index not yet in `used` (S is small; rejection
/// sampling terminates fast and stays deterministic).
int pick_object(Rng& rng, std::vector<int>& used, int S) {
  RR_ASSERT(static_cast<int>(used.size()) < S);
  for (;;) {
    const int candidate = static_cast<int>(rng.index(
        static_cast<std::size_t>(S)));
    bool taken = false;
    for (const int u : used) taken = taken || (u == candidate);
    if (!taken) {
      used.push_back(candidate);
      return candidate;
    }
  }
}

void add_byzantine(Scenario& s, Rng& rng, std::vector<int>& used, int count,
                   int S) {
  for (int i = 0; i < count; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Byzantine;
    ev.object = pick_object(rng, used, S);
    ev.strategy = kStrategies[rng.index(std::size(kStrategies))];
    s.events.push_back(std::move(ev));
  }
}

void add_crashes(Scenario& s, Rng& rng, std::vector<int>& used, int count,
                 int S) {
  for (int i = 0; i < count; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Crash;
    ev.object = pick_object(rng, used, S);
    ev.at = 20'000 + rng.uniform(0, 280'000);
    s.events.push_back(std::move(ev));
  }
}

/// Sequential (non-overlapping) hold/release waves, each isolating a fresh
/// random subset of at most `max_held` objects -- the proofs' "messages
/// remain in transit" tactic. Every wave releases, so runs stay legal.
void add_hold_waves(Scenario& s, Rng& rng, int waves, int max_held, int S) {
  Time cursor = 10'000 + rng.uniform(0, 20'000);
  for (int w = 0; w < waves; ++w) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Hold;
    ev.at = cursor;
    ev.duration = 15'000 + rng.uniform(0, 45'000);
    const int count =
        1 + static_cast<int>(rng.index(static_cast<std::size_t>(max_held)));
    std::vector<int> wave_used;
    for (int i = 0; i < count; ++i) {
      ev.held.push_back(pick_object(rng, wave_used, S));
    }
    cursor = ev.at + ev.duration + 10'000 + rng.uniform(0, 30'000);
    s.events.push_back(std::move(ev));
  }
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(FaultTemplate t) {
  switch (t) {
    case FaultTemplate::None: return "none";
    case FaultTemplate::Crash: return "crash";
    case FaultTemplate::Byz: return "byz";
    case FaultTemplate::Mixed: return "mixed";
    case FaultTemplate::Chaos: return "chaos";
    case FaultTemplate::ByzChaos: return "byzchaos";
    case FaultTemplate::Overload: return "overload";
  }
  return "?";
}

std::optional<FaultTemplate> fault_template_from_name(std::string_view name) {
  for (const auto t :
       {FaultTemplate::None, FaultTemplate::Crash, FaultTemplate::Byz,
        FaultTemplate::Mixed, FaultTemplate::Chaos, FaultTemplate::ByzChaos,
        FaultTemplate::Overload}) {
    if (name == to_string(t)) return t;
  }
  return std::nullopt;
}

const std::vector<FaultTemplate>& default_fault_templates() {
  static const std::vector<FaultTemplate> templates(
      std::begin(kDefaultTemplates), std::end(kDefaultTemplates));
  return templates;
}

std::string FaultEvent::describe() const {
  char buf[160];
  const auto ull = [](Time t) { return static_cast<unsigned long long>(t); };
  std::string objs;
  for (const int o : held) {
    if (!objs.empty()) objs += ",";
    objs += std::to_string(o);
  }
  // Role-addressed gray/skew name the client, not an object index.
  std::string target = "object " + std::to_string(object);
  if (role == Role::Writer) target = "writer";
  if (role == Role::Reader) target = "reader " + std::to_string(object);
  switch (kind) {
    case Kind::Byzantine:
      std::snprintf(buf, sizeof(buf), "byzantine object %d (%s)", object,
                    adversary::to_string(strategy));
      return buf;
    case Kind::Crash:
      std::snprintf(buf, sizeof(buf), "crash object %d at t=%llu", object,
                    ull(at));
      return buf;
    case Kind::Hold:
      std::snprintf(buf, sizeof(buf), "hold objects {%s} during [%llu, %llu)",
                    objs.c_str(), ull(at), ull(at + duration));
      return buf;
    case Kind::PartitionIn:
      std::snprintf(buf, sizeof(buf),
                    "partition inbound channels of {%s} during [%llu, %llu)",
                    objs.c_str(), ull(at), ull(at + duration));
      return buf;
    case Kind::PartitionOut:
      std::snprintf(buf, sizeof(buf),
                    "partition outbound channels of {%s} during [%llu, %llu)",
                    objs.c_str(), ull(at), ull(at + duration));
      return buf;
    case Kind::Flap:
      std::snprintf(buf, sizeof(buf),
                    "flap objects {%s} period=%llu duty=%.2f jitter=%llu "
                    "during [%llu, %llu)",
                    objs.c_str(), ull(period), rate, ull(jitter), ull(at),
                    ull(at + duration));
      return buf;
    case Kind::Gray:
      std::snprintf(buf, sizeof(buf),
                    "gray %s (%.2fx slower) during [%llu, %llu)",
                    target.c_str(), rate, ull(at), ull(at + duration));
      return buf;
    case Kind::Skew:
      std::snprintf(buf, sizeof(buf), "clock skew %s offset=%lld",
                    target.c_str(), static_cast<long long>(skew));
      return buf;
    case Kind::Loss:
      std::snprintf(buf, sizeof(buf),
                    "lose messages p=%.3f scope={%s} from t=%llu", rate,
                    objs.empty() ? "all" : objs.c_str(), ull(at));
      return buf;
    case Kind::Duplicate:
      std::snprintf(buf, sizeof(buf),
                    "duplicate messages p=%.3f scope={%s} from t=%llu", rate,
                    objs.empty() ? "all" : objs.c_str(), ull(at));
      return buf;
    case Kind::Reorder:
      std::snprintf(buf, sizeof(buf),
                    "reorder messages p=%.3f (+%llu) scope={%s} from t=%llu",
                    rate, ull(period), objs.empty() ? "all" : objs.c_str(),
                    ull(at));
      return buf;
  }
  return "?";
}

std::string Scenario::key() const {
  if (!name.empty()) return "scn:" + name;
  return std::string(protocol_traits(protocol).cli_name) + ":" +
         harness::to_string(backend) + ":" + harness::to_string(tmpl) + ":" +
         std::to_string(seed);
}

SweepPlan SweepPlan::quick() {
  SweepPlan plan;
  plan.protocols = {Protocol::Safe, Protocol::Regular, Protocol::Abd};
  plan.backends = {BackendKind::Sim, BackendKind::Threads};
  plan.templates = default_fault_templates();
  plan.seeds = 28;  // 3 x 2 x 6 x 28 = 1008 cells
  plan.writes = 5;
  plan.reads_per_reader = 3;
  return plan;
}

SweepEngine::SweepEngine(SweepPlan plan) : plan_(std::move(plan)) {
  // A plan may be library-only (no grid axes at all), but never empty.
  if (plan_.num_grid_cells() > 0 || plan_.library.empty()) {
    RR_ASSERT(!plan_.protocols.empty());
    RR_ASSERT(!plan_.backends.empty());
    RR_ASSERT(!plan_.templates.empty());
    RR_ASSERT(plan_.seeds >= 1);
  }
}

Scenario SweepEngine::materialize(std::size_t index) const {
  RR_ASSERT(index < plan_.num_cells());
  const std::size_t grid = plan_.num_grid_cells();
  if (index >= grid) return plan_.library[index - grid];
  const std::size_t seeds = static_cast<std::size_t>(plan_.seeds);
  const std::size_t si = index % seeds;
  const std::size_t ti = (index / seeds) % plan_.templates.size();
  const std::size_t bi =
      (index / (seeds * plan_.templates.size())) % plan_.backends.size();
  const std::size_t pi =
      index / (seeds * plan_.templates.size() * plan_.backends.size());
  return materialize(plan_.protocols[pi], plan_.backends[bi],
                     plan_.templates[ti], plan_.base_seed + si);
}

Scenario SweepEngine::materialize(Protocol p, BackendKind backend,
                                  FaultTemplate tmpl,
                                  std::uint64_t seed) const {
  Scenario s;
  s.protocol = p;
  s.backend = backend;
  s.tmpl = tmpl;
  s.seed = seed;
  s.t = plan_.t;
  s.b = plan_.b;
  s.readers = plan_.readers;
  s.check_override = plan_.check_override;
  // Pin the deployment seed the legacy rule derives from the coordinates,
  // so an emitted scenario file replays bit-identically to its grid twin.
  s.run_seed = fold(cell_seed(p, backend, tmpl, seed), 0x5eedull);
  // Overload stalls quorums forever; on every real-time substrate (threads,
  // sockets) a bounded deadline turns that into a liveness verdict instead
  // of a process abort.
  if (tmpl == FaultTemplate::Overload && backend != BackendKind::Sim) {
    s.max_wall_ms = 10'000;
  }

  Rng rng(cell_seed(p, backend, tmpl, seed));
  const auto& traits = protocol_traits(p);
  // The protocol's own resilience recipe decides the effective budget: ABD
  // forces b = 0, fastwrite buys extra objects. Fault generation must stay
  // within what the deployment will actually tolerate.
  const Resilience res = traits.resilience_for(s.t, s.b, s.readers);
  const int S = res.num_objects;
  const int t = res.t;
  const int b = res.b;

  s.writes = half_to_full(rng, plan_.writes);
  s.reads_per_reader = half_to_full(rng, plan_.reads_per_reader);
  s.write_gap = 2'000 + rng.uniform(0, 8'000);
  s.read_gap = 1'500 + rng.uniform(0, 6'000);
  s.shards = rng.chance(0.25) ? 2 : 1;

  std::vector<int> used;  // objects already faulty (distinct across kinds)
  switch (tmpl) {
    case FaultTemplate::None:
      break;
    case FaultTemplate::Crash:
      add_crashes(s, rng, used, 1 + static_cast<int>(rng.index(
                                      static_cast<std::size_t>(t))),
                  S);
      break;
    case FaultTemplate::Byz:
      // Crash-only protocols (b = 0) degrade to the crash template so the
      // grid stays total.
      if (b > 0) {
        add_byzantine(s, rng, used,
                      1 + static_cast<int>(rng.index(
                              static_cast<std::size_t>(b))),
                      S);
      } else {
        add_crashes(s, rng, used, 1 + static_cast<int>(rng.index(
                                        static_cast<std::size_t>(t))),
                    S);
      }
      break;
    case FaultTemplate::Mixed: {
      const int byz = b > 0 ? 1 + static_cast<int>(rng.index(
                                      static_cast<std::size_t>(b)))
                            : 0;
      add_byzantine(s, rng, used, byz, S);
      if (t - byz > 0) {
        add_crashes(s, rng, used,
                    static_cast<int>(rng.index(
                        static_cast<std::size_t>(t - byz + 1))),
                    S);
      }
      break;
    }
    case FaultTemplate::Chaos:
      add_hold_waves(s, rng,
                     2 + static_cast<int>(rng.index(std::size_t{3})), t, S);
      break;
    case FaultTemplate::ByzChaos: {
      // Leave at least one unit of the crash budget t for held objects so
      // quorums stay reachable between waves.
      const int byz_cap = b < t ? b : t - 1;
      const int byz = byz_cap > 0 ? 1 + static_cast<int>(rng.index(
                                            static_cast<std::size_t>(byz_cap)))
                                  : 0;
      add_byzantine(s, rng, used, byz, S);
      add_hold_waves(s, rng,
                     2 + static_cast<int>(rng.index(std::size_t{3})),
                     t - byz > 0 ? t - byz : 1, S);
      break;
    }
    case FaultTemplate::Overload:
      // t+1 crashes exceed the budget: quorums of S-t become permanently
      // unreachable and operations stall -- the engine's deliberate
      // liveness violation. The hold waves are pure noise the shrinker
      // must strip away. All t+1 crashes land within the first few
      // operations' lifetime (long before the workload can drain), so the
      // stall is guaranteed, not schedule-dependent.
      add_crashes(s, rng, used, t + 1, S);
      for (auto& ev : s.events) {
        if (ev.kind == FaultEvent::Kind::Crash) {
          ev.at = 5'000 + ev.at % 25'000;
        }
      }
      add_hold_waves(s, rng, 2, 1, S);
      break;
  }
  return s;
}

std::optional<Scenario> SweepEngine::materialize_key(
    std::string_view key) const {
  if (key.rfind("scn:", 0) == 0) {
    const auto name = key.substr(4);
    for (const auto& sc : plan_.library) {
      if (sc.name == name) return sc;
    }
    return std::nullopt;
  }
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const auto colon = key.find(':', start);
    parts.emplace_back(key.substr(start, colon - start));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  if (parts.size() != 4) return std::nullopt;
  const auto protocol = protocol_from_name(parts[0]);
  const auto backend = backend_from_name(parts[1]);
  const auto tmpl = fault_template_from_name(parts[2]);
  if (!protocol || !backend || !tmpl || parts[3].empty()) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(parts[3].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return materialize(*protocol, *backend, *tmpl, seed);
}

CellVerdict SweepEngine::run_cell(const Scenario& s) {
  const auto& traits = protocol_traits(s.protocol);
  DeploymentOptions opts;
  opts.protocol = s.protocol;
  opts.backend = s.backend;
  opts.res = traits.resilience_for(s.t, s.b, s.readers);
  opts.shards = s.shards;
  // run_seed == 0 falls back to the legacy coordinate-derived rule, which
  // materialize() also pins explicitly -- either path yields the same seed
  // for a grid cell, so fingerprints are stable across both spellings.
  opts.seed = s.run_seed != 0
                  ? s.run_seed
                  : fold(cell_seed(s.protocol, s.backend, s.tmpl, s.seed),
                         0x5eedull);
  opts.trace_fingerprint = s.backend == BackendKind::Sim;
  opts.thread_max_wall_ms = s.max_wall_ms;
  opts.history_limit = s.history_limit;
  opts.history_gc = s.history_gc;
  opts.checker_window = s.checker_window;
  opts.checker_semantics = s.check_override;
  opts.link_faults.seed = fold(opts.seed, 0x11f5ULL);
  for (const auto& ev : s.events) {
    switch (ev.kind) {
      case FaultEvent::Kind::Byzantine:
        opts.faults.byzantine[ev.object] = ev.strategy;
        break;
      case FaultEvent::Kind::Skew:
        // Client-role skew resolves against the layout, which does not
        // exist yet; it is installed right after construction below.
        if (ev.role == Role::Object) opts.clock_skew[ev.object] = ev.skew;
        break;
      case FaultEvent::Kind::Loss:
      case FaultEvent::Kind::Duplicate:
      case FaultEvent::Kind::Reorder: {
        net::LinkFaultRule rule;
        rule.p = ev.rate;
        rule.from = ev.at;
        rule.until = ev.duration > 0 ? ev.at + ev.duration : 0;
        rule.pids.reserve(ev.held.size());
        // Object indices here; Deployment::build() rewrites them to pids.
        for (const int o : ev.held) {
          rule.pids.push_back(static_cast<ProcessId>(o));
        }
        if (ev.kind == FaultEvent::Kind::Loss) {
          opts.link_faults.loss = std::move(rule);
        } else if (ev.kind == FaultEvent::Kind::Duplicate) {
          opts.link_faults.duplicate = std::move(rule);
        } else {
          opts.link_faults.reorder = std::move(rule);
          if (ev.period > 0) opts.link_faults.reorder_delay = ev.period;
        }
        break;
      }
      default:
        break;  // scheduled after construction below
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  Deployment d(opts);
  Backend& backend = d.backend();
  // Resolves a gray/skew target to physical pids: one object, or the role's
  // client on every shard (the writer, or reader `object` of each shard).
  const auto target_pids = [&d, &s](const FaultEvent& ev) {
    std::vector<ProcessId> pids;
    switch (ev.role) {
      case Role::Object:
        pids.push_back(d.object_pid(ev.object));
        break;
      case Role::Writer:
        for (int sh = 0; sh < s.shards; ++sh) pids.push_back(d.writer_pid(sh));
        break;
      case Role::Reader:
        for (int sh = 0; sh < s.shards; ++sh) {
          pids.push_back(d.reader_pid(sh, ev.object));
        }
        break;
    }
    return pids;
  };
  for (const auto& ev : s.events) {
    switch (ev.kind) {
      case FaultEvent::Kind::Skew:
        // Object skew was applied at construction; client-role skew is a
        // property of the pid, installed before any event runs.
        if (ev.role != Role::Object) {
          for (const ProcessId pid : target_pids(ev)) {
            backend.set_clock_skew(pid, ev.skew);
          }
        }
        break;
      case FaultEvent::Kind::Byzantine:
      case FaultEvent::Kind::Loss:
      case FaultEvent::Kind::Duplicate:
      case FaultEvent::Kind::Reorder:
        break;  // applied at construction
      case FaultEvent::Kind::Crash: {
        const ProcessId pid = d.object_pid(ev.object);
        backend.post(ev.at, d.writer_pid(),
                     [&backend, pid](net::Context&) { backend.crash(pid); });
        break;
      }
      case FaultEvent::Kind::Hold: {
        // Hold and release are scheduled up front as two timed steps of the
        // shard-0 writer (purely for scheduling; they only touch channel
        // state), exactly like harness::inject_chaos waves.
        std::vector<ProcessId> pids;
        pids.reserve(ev.held.size());
        for (const int o : ev.held) pids.push_back(d.object_pid(o));
        // Sequenced (EdgeSequencer): on the threaded backend the release
        // can run before the hold; a hold applied after its own release
        // would strand channels forever.
        auto order = std::make_shared<EdgeSequencer>();
        backend.post(ev.at, d.writer_pid(),
                     [&backend, pids, order](net::Context&) {
                       if (!order->seal(0)) return;
                       for (const ProcessId p : pids) backend.hold_all(p);
                     });
        backend.post(ev.at + ev.duration, d.writer_pid(),
                     [&backend, pids = std::move(pids),
                      order](net::Context&) {
                       order->seal(1);
                       for (const ProcessId p : pids) backend.release_all(p);
                     });
        break;
      }
      case FaultEvent::Kind::PartitionIn:
      case FaultEvent::Kind::PartitionOut: {
        // Asymmetric partition: hold only one direction of every channel
        // adjacent to the named objects, then release at window end.
        std::vector<ProcessId> pids;
        pids.reserve(ev.held.size());
        for (const int o : ev.held) pids.push_back(d.object_pid(o));
        const bool inbound = ev.kind == FaultEvent::Kind::PartitionIn;
        const int n = backend.num_processes();
        const auto each = [pids, inbound, n](auto&& f) {
          for (const ProcessId p : pids) {
            for (ProcessId q = 0; q < n; ++q) {
              if (q == p) continue;
              if (inbound) {
                f(q, p);
              } else {
                f(p, q);
              }
            }
          }
        };
        auto order = std::make_shared<EdgeSequencer>();
        backend.post(ev.at, d.writer_pid(),
                     [&backend, each, order](net::Context&) {
                       if (!order->seal(0)) return;
                       each([&backend](ProcessId a, ProcessId b) {
                         backend.hold(a, b);
                       });
                     });
        backend.post(ev.at + ev.duration, d.writer_pid(),
                     [&backend, each, order](net::Context&) {
                       order->seal(1);
                       each([&backend](ProcessId a, ProcessId b) {
                         backend.release(a, b);
                       });
                     });
        break;
      }
      case FaultEvent::Kind::Flap: {
        FlapOptions fo;
        fo.objects = ev.held;
        fo.start = ev.at;
        fo.horizon = ev.duration > 0 ? ev.duration : 300'000;
        fo.period = ev.period > 0 ? ev.period : 20'000;
        fo.duty = ev.rate > 0 ? ev.rate : 0.5;
        fo.jitter = ev.jitter;
        // Seeded from the deployment seed plus the event's own shape, so
        // two flap events in one scenario draw distinct jitter streams.
        fo.seed = fold(fold(opts.seed, ev.at), ev.period);
        inject_flap(d, fo);
        break;
      }
      case FaultEvent::Kind::Gray: {
        const std::vector<ProcessId> pids = target_pids(ev);
        const double factor = ev.rate;
        // Sequenced like Hold: a gray-on edge applied after its own
        // gray-off would slow the target for the rest of the run.
        auto order = std::make_shared<EdgeSequencer>();
        backend.post(ev.at, d.writer_pid(),
                     [&backend, pids, factor, order](net::Context&) {
                       if (!order->seal(0)) return;
                       for (const ProcessId p : pids) {
                         backend.set_gray(p, factor);
                       }
                     });
        if (ev.duration > 0) {
          backend.post(ev.at + ev.duration, d.writer_pid(),
                       [&backend, pids, order](net::Context&) {
                         order->seal(1);
                         for (const ProcessId p : pids) {
                           backend.set_gray(p, 1.0);
                         }
                       });
        }
        break;
      }
    }
  }

  std::unique_ptr<OpenLoopEngine> engine;
  if (s.arrival != ArrivalKind::Closed) {
    OpenLoopOptions ol;
    ol.arrival = s.arrival;
    ol.clients = s.clients;
    ol.mean_think = s.think;
    ol.horizon = s.horizon;
    ol.write_fraction = s.write_fraction;
    ol.seed = fold(opts.seed, 0x09e7ULL);
    engine = std::make_unique<OpenLoopEngine>(d, ol);
    engine->launch();
  } else {
    MixedWorkloadOptions w;
    w.writes = s.writes;
    w.reads_per_reader = s.reads_per_reader;
    w.write_gap = s.write_gap;
    w.read_gap = s.read_gap;
    mixed_workload(d, w);
  }
  const std::uint64_t events = d.run();
  const auto t1 = std::chrono::steady_clock::now();

  CellVerdict v;
  v.key = s.key();
  v.protocol = s.protocol;
  v.backend = s.backend;
  v.tmpl = s.tmpl;
  v.seed = s.seed;
  v.expect_ok = s.expect_ok;
  v.events = events;
  v.net = d.stats();
  v.write_p95 = d.write_latency().p95();
  v.read_p95 = d.read_latency().p95();
  v.wall_ms =
      std::chrono::duration<double>(t1 - t0).count() * 1e3;

  const checker::CheckReport report =
      s.check_override ? d.check(*s.check_override) : d.check();
  v.violations = static_cast<int>(report.violations.size());
  if (!report.violations.empty()) v.first_violation = report.violations[0];

  if (std::getenv("RR_DEBUG_OPS")) {
    for (int shard = 0; shard < d.shards(); ++shard) {
      for (const auto& op : d.log(shard).snapshot()) {
        std::fprintf(stderr, "[op] %s client=%d ts=%llu [%llu, %llu] %s\n",
                     op.kind == checker::OpRecord::Kind::Write ? "W" : "R",
                     op.client, (unsigned long long)op.ts,
                     (unsigned long long)op.invoked_at,
                     (unsigned long long)op.responded_at,
                     op.complete ? "complete" : "STUCK");
      }
    }
  }
  // Per-shard composition: each shard's HistoryLog folds its own ops (the
  // retired prefix online, the residual on demand), so windowed and batch
  // cells compute identical values without ever materializing a retired op.
  std::uint64_t history_fp = checker::kHistoryFpSeed;
  for (int shard = 0; shard < d.shards(); ++shard) {
    const auto& log = d.log(shard);
    v.ops_complete += static_cast<int>(log.completed_total());
    v.ops_stuck +=
        static_cast<int>(log.recorded_total() - log.completed_total());
    history_fp = fold(history_fp, log.history_fingerprint());
    const auto wstats = d.checker_stats(shard);
    v.hist_peak_live = std::max(v.hist_peak_live, wstats.peak_live);
    v.hist_retired += wstats.retired;
  }
  v.ok = report.ok() && v.ops_stuck == 0 && !backend.timed_out();
  if (v.first_violation.empty() && !v.ok) {
    if (backend.timed_out()) {
      v.first_violation = "liveness: run exceeded the " +
                          std::to_string(s.max_wall_ms) +
                          " ms deadline with " + std::to_string(v.ops_stuck) +
                          " operation(s) incomplete";
    } else if (v.ops_stuck > 0) {
      v.first_violation = "liveness: " + std::to_string(v.ops_stuck) +
                          " operation(s) never completed";
    }
  }

  if (s.backend == BackendKind::Sim) {
    const sim::World* world = d.backend().world();
    RR_ASSERT(world != nullptr);
    std::uint64_t fp = fold(world->schedule_fingerprint(), history_fp);
    fp = fold(fp, v.net.messages_sent);
    fp = fold(fp, v.net.messages_delivered);
    fp = fold(fp, v.net.messages_dropped);
    fp = fold(fp, v.net.bytes_sent);
    // History-shipping counters exist only on the regular protocols; fold
    // them only when nonzero so every other protocol's golden fingerprints
    // are untouched by their introduction.
    if (v.net.hist_slots_shipped != 0) fp = fold(fp, v.net.hist_slots_shipped);
    if (v.net.hist_resyncs != 0) fp = fold(fp, v.net.hist_resyncs);
    v.fingerprint = fp;
  }
  return v;
}

ShrinkResult SweepEngine::shrink(const Scenario& s) {
  ShrinkResult result;
  result.key = s.key();
  result.seed = s.seed;
  result.original_events = static_cast<int>(s.events.size());

  auto rerun_fails = [&result](const Scenario& sc, std::string* violation) {
    ++result.reruns;
    CellVerdict v = run_cell(sc);
    if (violation != nullptr) *violation = std::move(v.first_violation);
    return !v.ok;
  };

  const auto with_events = [&s](std::vector<FaultEvent> evs) {
    Scenario c = s;
    c.events = std::move(evs);
    return c;
  };

  std::string violation;
  const bool failing = rerun_fails(s, &violation);
  RR_ASSERT_MSG(failing, "shrink() requires a failing scenario");

  // The failure may not depend on the fault plan at all (e.g. a semantics
  // override stricter than the protocol's promise): probe the empty
  // schedule first. This is also ddmin's base case.
  if (!s.events.empty()) {
    std::string empty_violation;
    if (rerun_fails(with_events({}), &empty_violation)) {
      result.minimal = with_events({});
      result.first_violation = std::move(empty_violation);
      return result;
    }
  }

  // ddmin (Zeller & Hildebrandt): split the event list into n chunks; keep
  // any chunk (then any chunk complement) that still fails; refine the
  // granularity when neither helps. Terminates 1-minimal: at chunk size 1
  // the complement probes are exactly the drop-one tests, so when none of
  // them fails, removing any single remaining event makes the run pass.
  // Worst case O(events^2) reruns like the old greedy loop, but typically
  // O(events log events) -- large droppable noise goes in chunks, not one
  // event per rerun.
  std::vector<FaultEvent> events = s.events;
  std::size_t n = 2;
  while (events.size() >= 2) {
    const std::size_t chunk = (events.size() + n - 1) / n;
    bool reduced = false;
    std::string cand_violation;
    // Try each chunk alone.
    for (std::size_t i = 0; i * chunk < events.size() && !reduced; ++i) {
      const std::size_t lo = i * chunk;
      const std::size_t hi = std::min(lo + chunk, events.size());
      if (hi - lo == events.size()) continue;
      std::vector<FaultEvent> subset(
          events.begin() + static_cast<std::ptrdiff_t>(lo),
          events.begin() + static_cast<std::ptrdiff_t>(hi));
      if (rerun_fails(with_events(subset), &cand_violation)) {
        events = std::move(subset);
        violation = std::move(cand_violation);
        n = 2;
        reduced = true;
      }
    }
    // Try each chunk's complement (redundant with the subsets at n == 2).
    if (!reduced && n > 2) {
      for (std::size_t i = 0; i * chunk < events.size() && !reduced; ++i) {
        const std::size_t lo = i * chunk;
        const std::size_t hi = std::min(lo + chunk, events.size());
        std::vector<FaultEvent> complement;
        complement.reserve(events.size() - (hi - lo));
        complement.insert(complement.end(), events.begin(),
                          events.begin() + static_cast<std::ptrdiff_t>(lo));
        complement.insert(complement.end(),
                          events.begin() + static_cast<std::ptrdiff_t>(hi),
                          events.end());
        if (complement.empty() || complement.size() == events.size()) {
          continue;
        }
        if (rerun_fails(with_events(complement), &cand_violation)) {
          events = std::move(complement);
          violation = std::move(cand_violation);
          n = std::max<std::size_t>(n - 1, 2);
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // granularity 1 and nothing helps: 1-minimal
      n = std::min(n * 2, events.size());
    }
  }
  result.minimal = with_events(std::move(events));
  result.first_violation = std::move(violation);
  return result;
}

SweepReport SweepEngine::run(int workers) const {
  const std::size_t n = plan_.num_cells();
  SweepReport report;
  report.cells.resize(n);

  int w = workers > 0
              ? workers
              : static_cast<int>(std::thread::hardware_concurrency());
  if (w < 1) w = 1;
  if (static_cast<std::size_t>(w) > n) w = static_cast<int>(n);
  report.workers = w;

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  // Cells are claimed by atomic index and written back by index, sharing no
  // mutable state: a DES cell's verdict is a pure function of its key, so
  // those rows are bit-identical for every worker count (pinned by
  // tests/test_sweep.cpp). Threads cells are wall-clock runs and vary
  // between executions regardless of worker count.
  auto drain = [this, n, &next, &report] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      report.cells[i] = run_cell(materialize(i));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(w) - 1);
  for (int i = 1; i < w; ++i) pool.emplace_back(drain);
  drain();
  for (auto& th : pool) th.join();

  for (std::size_t i = 0; i < n; ++i) {
    if (report.cells[i].ok != report.cells[i].expect_ok) ++report.failed;
  }
  // Shrink the first few unexpectedly-failing DES cells (serially:
  // shrinking re-runs the cell many times, and failures should be rare).
  // Expected failures (library fixtures) are regression anchors, already
  // minimal; shrinking them again would be wasted work.
  int shrunk = 0;
  for (std::size_t i = 0; i < n && shrunk < plan_.max_shrinks; ++i) {
    if (report.cells[i].ok || !report.cells[i].expect_ok ||
        report.cells[i].backend != BackendKind::Sim) {
      continue;
    }
    report.shrinks.push_back(shrink(materialize(i)));
    ++shrunk;
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_ms =
      std::chrono::duration<double>(t1 - t0).count() * 1e3;
  return report;
}

bool SweepEngine::write_json(const SweepReport& report, const SweepPlan& plan,
                             const std::string& path) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"bench\": \"scenario_sweep\",\n");
  std::fprintf(out, "  \"plan\": {\n    \"protocols\": [");
  for (std::size_t i = 0; i < plan.protocols.size(); ++i) {
    std::fprintf(out, "%s\"%s\"", i > 0 ? ", " : "",
                 protocol_traits(plan.protocols[i]).cli_name);
  }
  std::fprintf(out, "],\n    \"backends\": [");
  for (std::size_t i = 0; i < plan.backends.size(); ++i) {
    std::fprintf(out, "%s\"%s\"", i > 0 ? ", " : "",
                 harness::to_string(plan.backends[i]));
  }
  std::fprintf(out, "],\n    \"templates\": [");
  for (std::size_t i = 0; i < plan.templates.size(); ++i) {
    std::fprintf(out, "%s\"%s\"", i > 0 ? ", " : "",
                 harness::to_string(plan.templates[i]));
  }
  std::fprintf(out,
               "],\n    \"seeds\": %d,\n    \"base_seed\": %llu,\n"
               "    \"t\": %d,\n    \"b\": %d,\n    \"readers\": %d,\n"
               "    \"writes\": %d,\n    \"reads_per_reader\": %d\n  },\n",
               plan.seeds, static_cast<unsigned long long>(plan.base_seed),
               plan.t, plan.b, plan.readers, plan.writes,
               plan.reads_per_reader);
  std::fprintf(out,
               "  \"cells_total\": %zu,\n  \"cells_failed\": %d,\n"
               "  \"workers\": %d,\n  \"wall_ms\": %.1f,\n",
               report.cells.size(), report.failed, report.workers,
               report.wall_ms);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const auto& c = report.cells[i];
    std::fprintf(
        out,
        "    {\"key\": \"%s\", \"ok\": %s, \"expect_ok\": %s, "
        "\"violations\": %d, "
        "\"ops\": %d, \"stuck\": %d, \"events\": %llu, \"msgs\": %llu, "
        "\"bytes\": %llu, \"write_p95\": %llu, \"read_p95\": %llu, "
        "\"hist_peak\": %llu, \"hist_retired\": %llu, "
        "\"fingerprint\": \"%016llx\", \"wall_ms\": %.3f}%s\n",
        c.key.c_str(), c.ok ? "true" : "false",
        c.expect_ok ? "true" : "false", c.violations, c.ops_complete,
        c.ops_stuck, static_cast<unsigned long long>(c.events),
        static_cast<unsigned long long>(c.net.messages_sent),
        static_cast<unsigned long long>(c.net.bytes_sent),
        static_cast<unsigned long long>(c.write_p95),
        static_cast<unsigned long long>(c.read_p95),
        static_cast<unsigned long long>(c.hist_peak_live),
        static_cast<unsigned long long>(c.hist_retired),
        static_cast<unsigned long long>(c.fingerprint), c.wall_ms,
        i + 1 < report.cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"failures\": [\n");
  std::size_t emitted = 0;
  const std::size_t failures = static_cast<std::size_t>(report.failed);
  for (const auto& c : report.cells) {
    if (c.ok == c.expect_ok) continue;
    const ShrinkResult* shrink = nullptr;
    for (const auto& sr : report.shrinks) {
      if (sr.key == c.key) shrink = &sr;
    }
    std::fprintf(out,
                 "    {\"key\": \"%s\", \"violation\": \"%s\"",
                 c.key.c_str(), json_escape(c.first_violation).c_str());
    if (shrink != nullptr) {
      std::fprintf(out,
                   ", \"shrink\": {\"original_events\": %d, "
                   "\"minimal_events\": %zu, \"reruns\": %d, "
                   "\"schedule\": [",
                   shrink->original_events, shrink->minimal.events.size(),
                   shrink->reruns);
      for (std::size_t i = 0; i < shrink->minimal.events.size(); ++i) {
        std::fprintf(out, "%s\"%s\"", i > 0 ? ", " : "",
                     json_escape(shrink->minimal.events[i].describe()).c_str());
      }
      std::fprintf(out, "], \"replay\": \"--replay %s\"}",
                   shrink->key.c_str());
    }
    ++emitted;
    std::fprintf(out, "}%s\n", emitted < failures ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace rr::harness
