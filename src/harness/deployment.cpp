#include "harness/deployment.hpp"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "baselines/authenticated.hpp"
#include "baselines/polling.hpp"
#include "common/assert.hpp"
#include "core/regular_reader.hpp"
#include "core/safe_reader.hpp"
#include "core/writer.hpp"
#include "sim/world.hpp"

namespace rr::harness {

FaultPlan FaultPlan::crash_only(int count) {
  FaultPlan plan;
  for (int i = 0; i < count; ++i) plan.crashed.push_back(i);
  return plan;
}

FaultPlan FaultPlan::mixed(int byz, adversary::StrategyKind kind, int crash) {
  FaultPlan plan;
  for (int i = 0; i < byz; ++i) plan.byzantine[i] = kind;
  for (int i = byz; i < byz + crash; ++i) plan.crashed.push_back(i);
  return plan;
}

Deployment::Deployment(DeploymentOptions opts)
    : opts_(std::move(opts)),
      layout_{opts_.shards, opts_.res.num_readers, opts_.res.num_objects},
      topo_(opts_.res.num_readers, opts_.res.num_objects) {
  RR_ASSERT(opts_.res.valid());
  RR_ASSERT(opts_.shards >= 1);
  RR_ASSERT_MSG(opts_.faults.total_faulty() <= opts_.res.t,
                "fault plan exceeds the resilience budget t");
  RR_ASSERT_MSG(static_cast<int>(opts_.faults.byzantine.size()) <= opts_.res.b,
                "fault plan exceeds the Byzantine budget b");
  build();
}

Deployment::~Deployment() = default;

sim::World& Deployment::world() {
  auto* w = backend_->world();
  RR_ASSERT_MSG(w != nullptr, "world() requires the DES backend");
  return *w;
}

checker::HistoryLog& Deployment::log(int shard) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  return *logs_[static_cast<std::size_t>(shard)];
}

void Deployment::build() {
  BackendConfig bcfg;
  bcfg.seed = opts_.seed;
  bcfg.reserialize = opts_.reserialize;
  bcfg.delay = opts_.delay;
  bcfg.delay_lo = opts_.delay_lo;
  bcfg.delay_hi = opts_.delay_hi;
  bcfg.trace_fingerprint = opts_.trace_fingerprint;
  bcfg.max_jitter_us = opts_.thread_jitter_us;
  bcfg.threads_batched_drain = opts_.thread_batched_drain;
  bcfg.max_wall_time_ms = opts_.thread_max_wall_ms;
  backend_ = make_backend(opts_.backend, bcfg);

  const ProtocolTraits& traits = protocol_traits(opts_.protocol);
  const Resilience& res = opts_.res;
  const int K = opts_.shards;
  const bool sharded = K > 1;

  // Registration order matches ShardLayout: all writers, all readers, then
  // the base objects (with K = 1 this is the classic Topology order).
  for (int s = 0; s < K; ++s) {
    auto w = traits.make_writer(res, topo_);
    std::unique_ptr<core::WriterClient> proc =
        sharded ? std::make_unique<ShardWriter>(layout_, s, std::move(w))
                : std::move(w);
    writers_.push_back(proc.get());
    const ProcessId pid = backend_->add_process(std::move(proc));
    RR_ASSERT(pid == layout_.writer(s));
  }
  readers_.resize(static_cast<std::size_t>(K));
  for (int s = 0; s < K; ++s) {
    for (int j = 0; j < res.num_readers; ++j) {
      auto r = traits.make_reader(res, topo_, j);
      std::unique_ptr<core::ReaderClient> proc =
          sharded
              ? std::make_unique<ShardReader>(layout_, s, j, std::move(r))
              : std::move(r);
      readers_[static_cast<std::size_t>(s)].push_back(proc.get());
      const ProcessId pid = backend_->add_process(std::move(proc));
      RR_ASSERT(pid == layout_.reader(s, j));
    }
  }

  // Base objects: honest, Byzantine impostor, or honest-then-crashed. In a
  // sharded deployment every object hosts one instance per register; a
  // Byzantine object is Byzantine in every register it serves.
  const ObjectConfig ocfg{opts_.history_limit, opts_.history_gc};
  for (int i = 0; i < res.num_objects; ++i) {
    const auto byz = opts_.faults.byzantine.find(i);
    const auto make_instance =
        [&](RegisterId) -> std::unique_ptr<net::Process> {
      if (byz != opts_.faults.byzantine.end()) {
        return adversary::make_byzantine(byz->second, traits.flavor, topo_,
                                         res, i);
      }
      return traits.make_object(topo_, i, ocfg);
    };
    std::unique_ptr<net::Process> obj =
        sharded ? std::make_unique<ShardedObjectHost>(layout_, i,
                                                      make_instance)
                : make_instance(0);
    const ProcessId pid = backend_->add_process(std::move(obj));
    RR_ASSERT(pid == layout_.object(i));
  }
  for (const int i : opts_.faults.crashed) {
    backend_->crash(layout_.object(i));
  }

  logs_.reserve(static_cast<std::size_t>(K));
  for (int s = 0; s < K; ++s) {
    logs_.push_back(std::make_unique<checker::HistoryLog>());
    if (opts_.checker_window > 0) {
      // The verified property is fixed now (retired ops are gone by check
      // time): the explicit override if given, else the protocol's promise.
      logs_.back()->enable_window(
          opts_.checker_window,
          to_property(opts_.checker_semantics.value_or(
              promised_semantics(opts_.protocol))));
    }
  }

  // Gray-failure library: install link faults (rewriting object-index
  // scopes to physical pids) and clock skew before the backend starts.
  if (opts_.link_faults.any()) {
    net::LinkFaults lf = opts_.link_faults;
    for (auto* rule : {&lf.loss, &lf.duplicate, &lf.reorder}) {
      for (auto& pid : rule->pids) pid = layout_.object(static_cast<int>(pid));
    }
    backend_->set_link_faults(lf);
  }
  for (const auto& [obj, offset] : opts_.clock_skew) {
    backend_->set_clock_skew(layout_.object(obj), offset);
  }

  backend_->start();
}

void Deployment::do_write(net::Context& ctx, int shard, Value v,
                          core::WriteCallback cb) {
  // Every write funnels through here, so this is the single point where the
  // deployment's latency histogram sees each invoke -> response interval.
  writers_[static_cast<std::size_t>(shard)]->write(
      ctx, std::move(v),
      [this, cb = std::move(cb)](const core::WriteResult& r) {
        write_latency_.record(r.latency());
        if (cb) cb(r);
      });
}

void Deployment::do_read(net::Context& ctx, int shard, int reader,
                         core::ReadCallback cb) {
  readers_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(reader)]
      ->read(ctx, [this, cb = std::move(cb)](const core::ReadResult& r) {
        read_latency_.record(r.latency());
        if (cb) cb(r);
      });
}

void Deployment::invoke_write(Time at, Value v, core::WriteCallback cb) {
  invoke_write(at, 0, std::move(v), std::move(cb));
}

void Deployment::invoke_write(Time at, int shard, Value v,
                              core::WriteCallback cb) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  backend_->post(at, layout_.writer(shard),
                 [this, shard, v = std::move(v),
                  cb = std::move(cb)](net::Context& ctx) {
                   do_write(ctx, shard, v, cb);
                 });
}

void Deployment::invoke_read(Time at, int reader, core::ReadCallback cb) {
  invoke_read(at, 0, reader, std::move(cb));
}

void Deployment::invoke_read(Time at, int shard, int reader,
                             core::ReadCallback cb) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  RR_ASSERT(reader >= 0 && reader < opts_.res.num_readers);
  backend_->post(at, layout_.reader(shard, reader),
                 [this, shard, reader, cb = std::move(cb)](net::Context& ctx) {
                   do_read(ctx, shard, reader, cb);
                 });
}

void Deployment::logged_write(Time at, Value v, core::WriteCallback cb) {
  logged_write(at, 0, std::move(v), std::move(cb));
}

void Deployment::logged_write(Time at, int shard, Value v,
                              core::WriteCallback cb) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  backend_->post(at, layout_.writer(shard), [this, shard, v = std::move(v),
                                             cb = std::move(cb)](
                                                net::Context& ctx) {
    // The log handle is created at actual invocation (inside the writer's
    // step) so invoked_at is exact; the intended value is recorded up front
    // in case the write never completes. Times come from the backend's
    // global clock, not ctx.now(): the checker is an omniscient observer of
    // real-time precedence, so a client whose *local* clock is skewed (the
    // DSL's `fault skew role=...`) must not be able to shift its logged
    // interval. Unskewed, the two clocks agree to the tick.
    auto& log = *logs_[static_cast<std::size_t>(shard)];
    const auto handle = log.record_invocation(checker::OpRecord::Kind::Write,
                                              -1, backend_->now(), v);
    do_write(ctx, shard, v,
             [this, shard, handle, v, cb](const core::WriteResult& r) {
               logs_[static_cast<std::size_t>(shard)]->record_write_response(
                   handle, backend_->now(), r.ts, v);
               if (cb) cb(r);
             });
  });
}

void Deployment::logged_read(Time at, int reader, core::ReadCallback cb) {
  logged_read(at, 0, reader, std::move(cb));
}

void Deployment::logged_read(Time at, int shard, int reader,
                             core::ReadCallback cb) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  RR_ASSERT(reader >= 0 && reader < opts_.res.num_readers);
  backend_->post(at, layout_.reader(shard, reader),
                 [this, shard, reader, cb = std::move(cb)](net::Context& ctx) {
    // Same omniscient-clock rule as logged_write: checker times must not
    // pass through a (possibly skewed) client clock.
    auto& log = *logs_[static_cast<std::size_t>(shard)];
    const auto handle = log.record_invocation(checker::OpRecord::Kind::Read,
                                              reader, backend_->now());
    do_read(ctx, shard, reader,
            [this, shard, handle, cb](const core::ReadResult& r) {
              logs_[static_cast<std::size_t>(shard)]->record_read_response(
                  handle, backend_->now(), r.tsval);
              if (cb) cb(r);
            });
  });
}

checker::CheckReport Deployment::check() const {
  return check(promised_semantics(opts_.protocol));
}

checker::CheckReport Deployment::check(Semantics s) const {
  checker::CheckReport combined;
  for (int shard = 0; shard < opts_.shards; ++shard) {
    auto report = check_shard(shard, s);
    for (auto& v : report.violations) {
      combined.violations.push_back(
          opts_.shards > 1
              ? "shard " + std::to_string(shard) + ": " + std::move(v)
              : std::move(v));
    }
    combined.reads_checked += report.reads_checked;
    combined.writes_checked += report.writes_checked;
  }
  return combined;
}

checker::CheckReport Deployment::check_shard(int shard) const {
  return check_shard(shard, promised_semantics(opts_.protocol));
}

checker::Property to_property(Semantics s) {
  switch (s) {
    case Semantics::Safe: return checker::Property::Safe;
    case Semantics::Regular: return checker::Property::Regular;
    case Semantics::Atomic: return checker::Property::Atomic;
  }
  return checker::Property::Regular;  // unreachable
}

checker::WindowStats Deployment::checker_stats(int shard) const {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  return logs_[static_cast<std::size_t>(shard)]->window_stats();
}

checker::WindowStats Deployment::checker_stats() const {
  checker::WindowStats agg;
  for (int shard = 0; shard < opts_.shards; ++shard) {
    const auto w = checker_stats(shard);
    agg.window = std::max(agg.window, w.window);
    agg.retired += w.retired;
    agg.peak_live = std::max(agg.peak_live, w.peak_live);
    agg.live += w.live;
  }
  return agg;
}

checker::CheckReport Deployment::check_shard(int shard, Semantics s) const {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  auto& log = *logs_[static_cast<std::size_t>(shard)];
  if (log.windowed()) {
    // Retired ops can only have been verified against the property fixed at
    // construction; checking anything else would silently skip the prefix.
    RR_ASSERT_MSG(log.window_property() == to_property(s),
                  "windowed checker was configured for a different semantics");
    return log.final_check();
  }
  const auto ops = log.snapshot();
  auto report = checker::check_well_formed(ops);
  checker::CheckReport semantic;
  switch (s) {
    case Semantics::Safe: semantic = checker::check_safety(ops); break;
    case Semantics::Regular: semantic = checker::check_regularity(ops); break;
    case Semantics::Atomic: semantic = checker::check_atomicity(ops); break;
  }
  for (auto& v : semantic.violations) report.violations.push_back(std::move(v));
  report.reads_checked = semantic.reads_checked;
  report.writes_checked = semantic.writes_checked;
  return report;
}

core::WriterClient& Deployment::writer_client(int shard) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  return *writers_[static_cast<std::size_t>(shard)];
}

core::ReaderClient& Deployment::reader_client(int shard, int j) {
  RR_ASSERT(shard >= 0 && shard < opts_.shards);
  RR_ASSERT(j >= 0 && j < opts_.res.num_readers);
  return *readers_[static_cast<std::size_t>(shard)][static_cast<std::size_t>(j)];
}

namespace {

/// Unwraps a shard adapter if present, then casts to the concrete type.
template <class Concrete, class Client>
Concrete& typed_client(Client* client) {
  if (auto* direct = dynamic_cast<Concrete*>(client)) return *direct;
  Concrete* inner = nullptr;
  if constexpr (std::is_base_of_v<core::WriterClient, Concrete>) {
    if (auto* wrap = dynamic_cast<ShardWriter*>(client)) {
      inner = dynamic_cast<Concrete*>(&wrap->inner());
    }
  } else {
    if (auto* wrap = dynamic_cast<ShardReader*>(client)) {
      inner = dynamic_cast<Concrete*>(&wrap->inner());
    }
  }
  RR_ASSERT_MSG(inner != nullptr,
                "typed client accessor does not match the protocol");
  return *inner;
}

}  // namespace

core::Writer& Deployment::core_writer() {
  return typed_client<core::Writer>(writers_[0]);
}

core::SafeReader& Deployment::safe_reader(int j) {
  RR_ASSERT(j >= 0 && j < opts_.res.num_readers);
  return typed_client<core::SafeReader>(
      readers_[0][static_cast<std::size_t>(j)]);
}

core::RegularReader& Deployment::regular_reader(int j) {
  RR_ASSERT(j >= 0 && j < opts_.res.num_readers);
  return typed_client<core::RegularReader>(
      readers_[0][static_cast<std::size_t>(j)]);
}

baselines::PollingReader& Deployment::polling_reader(int j) {
  RR_ASSERT(j >= 0 && j < opts_.res.num_readers);
  return typed_client<baselines::PollingReader>(
      readers_[0][static_cast<std::size_t>(j)]);
}

baselines::AuthReader& Deployment::auth_reader(int j) {
  RR_ASSERT(j >= 0 && j < opts_.res.num_readers);
  return typed_client<baselines::AuthReader>(
      readers_[0][static_cast<std::size_t>(j)]);
}

net::Process& Deployment::object_process(int i) {
  return backend_->process(layout_.object(i));
}

}  // namespace rr::harness
