#include "harness/deployment.hpp"

#include <utility>

#include "baselines/abd.hpp"
#include "baselines/authenticated.hpp"
#include "baselines/fastwrite.hpp"
#include "baselines/polling.hpp"
#include "common/assert.hpp"
#include "core/regular_reader.hpp"
#include "core/safe_reader.hpp"
#include "core/writer.hpp"
#include "objects/regular_object.hpp"
#include "objects/safe_object.hpp"

namespace rr::harness {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::Safe: return "gv06-safe";
    case Protocol::Regular: return "gv06-regular";
    case Protocol::RegularOptimized: return "gv06-regular-opt";
    case Protocol::Abd: return "abd";
    case Protocol::Polling: return "polling";
    case Protocol::FastWrite: return "fastwrite";
    case Protocol::Auth: return "authenticated";
  }
  return "?";
}

Semantics promised_semantics(Protocol p) {
  switch (p) {
    case Protocol::Safe:
    case Protocol::Polling:
    case Protocol::FastWrite:
      return Semantics::Safe;
    case Protocol::Regular:
    case Protocol::RegularOptimized:
    case Protocol::Auth:
      return Semantics::Regular;
    case Protocol::Abd:
      return Semantics::Atomic;
  }
  return Semantics::Safe;
}

FaultPlan FaultPlan::crash_only(int count) {
  FaultPlan plan;
  for (int i = 0; i < count; ++i) plan.crashed.push_back(i);
  return plan;
}

FaultPlan FaultPlan::mixed(int byz, adversary::StrategyKind kind, int crash) {
  FaultPlan plan;
  for (int i = 0; i < byz; ++i) plan.byzantine[i] = kind;
  for (int i = byz; i < byz + crash; ++i) plan.crashed.push_back(i);
  return plan;
}

std::string auth_key() { return "rr-writer-signing-key-0001"; }

struct Deployment::Clients {
  // Exactly one writer pointer and one reader family is non-null, matching
  // the protocol. Raw pointers: the processes are owned by the World.
  core::Writer* core_writer{nullptr};
  std::vector<core::SafeReader*> safe_readers;
  std::vector<core::RegularReader*> regular_readers;
  baselines::AbdWriter* abd_writer{nullptr};
  std::vector<baselines::AbdReader*> abd_readers;
  baselines::PollingWriter* polling_writer{nullptr};
  baselines::FastWriter* fast_writer{nullptr};
  std::vector<baselines::PollingReader*> polling_readers;
  baselines::AuthWriter* auth_writer{nullptr};
  std::vector<baselines::AuthReader*> auth_readers;
};

Deployment::Deployment(DeploymentOptions opts)
    : opts_(std::move(opts)),
      topo_(opts_.res.num_readers, opts_.res.num_objects),
      clients_(std::make_unique<Clients>()) {
  RR_ASSERT(opts_.res.valid());
  RR_ASSERT_MSG(opts_.faults.total_faulty() <= opts_.res.t,
                "fault plan exceeds the resilience budget t");
  RR_ASSERT_MSG(static_cast<int>(opts_.faults.byzantine.size()) <= opts_.res.b,
                "fault plan exceeds the Byzantine budget b");
  build();
}

Deployment::~Deployment() = default;

namespace {

adversary::Flavor flavor_for(Protocol p) {
  switch (p) {
    case Protocol::Safe: return adversary::Flavor::Safe;
    case Protocol::Regular:
    case Protocol::RegularOptimized:
      return adversary::Flavor::Regular;
    case Protocol::Abd: return adversary::Flavor::Abd;
    case Protocol::Polling:
    case Protocol::FastWrite:
      return adversary::Flavor::Poll;
    case Protocol::Auth: return adversary::Flavor::Auth;
  }
  return adversary::Flavor::Safe;
}

}  // namespace

void Deployment::build() {
  sim::WorldOptions wopts;
  wopts.seed = opts_.seed;
  wopts.reserialize = opts_.reserialize;
  world_ = std::make_unique<sim::World>(wopts);

  switch (opts_.delay) {
    case DelayKind::Fixed:
      world_->set_delay_model(std::make_unique<sim::FixedDelay>(opts_.delay_lo));
      break;
    case DelayKind::Uniform:
      world_->set_delay_model(
          std::make_unique<sim::UniformDelay>(opts_.delay_lo, opts_.delay_hi));
      break;
    case DelayKind::HeavyTail:
      world_->set_delay_model(std::make_unique<sim::HeavyTailDelay>(
          opts_.delay_lo, opts_.delay_hi, 0.05));
      break;
  }

  const Resilience& res = opts_.res;
  auto& c = *clients_;

  // Registration order matches Topology: writer, readers, objects.
  switch (opts_.protocol) {
    case Protocol::Safe: {
      auto w = std::make_unique<core::Writer>(res, topo_);
      c.core_writer = w.get();
      world_->add_process(std::move(w));
      for (int j = 0; j < res.num_readers; ++j) {
        auto r = std::make_unique<core::SafeReader>(res, topo_, j);
        c.safe_readers.push_back(r.get());
        world_->add_process(std::move(r));
      }
      break;
    }
    case Protocol::Regular:
    case Protocol::RegularOptimized: {
      auto w = std::make_unique<core::Writer>(res, topo_);
      c.core_writer = w.get();
      world_->add_process(std::move(w));
      const bool optimized = opts_.protocol == Protocol::RegularOptimized;
      for (int j = 0; j < res.num_readers; ++j) {
        auto r = std::make_unique<core::RegularReader>(res, topo_, j,
                                                       optimized);
        c.regular_readers.push_back(r.get());
        world_->add_process(std::move(r));
      }
      break;
    }
    case Protocol::Abd: {
      auto w = std::make_unique<baselines::AbdWriter>(res, topo_);
      c.abd_writer = w.get();
      world_->add_process(std::move(w));
      for (int j = 0; j < res.num_readers; ++j) {
        auto r = std::make_unique<baselines::AbdReader>(res, topo_, j);
        c.abd_readers.push_back(r.get());
        world_->add_process(std::move(r));
      }
      break;
    }
    case Protocol::Polling:
    case Protocol::FastWrite: {
      if (opts_.protocol == Protocol::Polling) {
        auto w = std::make_unique<baselines::PollingWriter>(res, topo_);
        c.polling_writer = w.get();
        world_->add_process(std::move(w));
      } else {
        auto w = std::make_unique<baselines::FastWriter>(res, topo_);
        c.fast_writer = w.get();
        world_->add_process(std::move(w));
      }
      for (int j = 0; j < res.num_readers; ++j) {
        auto r = std::make_unique<baselines::PollingReader>(res, topo_, j);
        c.polling_readers.push_back(r.get());
        world_->add_process(std::move(r));
      }
      break;
    }
    case Protocol::Auth: {
      auto w = std::make_unique<baselines::AuthWriter>(res, topo_, auth_key());
      c.auth_writer = w.get();
      world_->add_process(std::move(w));
      for (int j = 0; j < res.num_readers; ++j) {
        auto r =
            std::make_unique<baselines::AuthReader>(res, topo_, j, auth_key());
        c.auth_readers.push_back(r.get());
        world_->add_process(std::move(r));
      }
      break;
    }
  }

  // Base objects: honest, Byzantine impostor, or honest-then-crashed.
  const auto flavor = flavor_for(opts_.protocol);
  for (int i = 0; i < res.num_objects; ++i) {
    std::unique_ptr<net::Process> obj;
    const auto byz = opts_.faults.byzantine.find(i);
    if (byz != opts_.faults.byzantine.end()) {
      obj = adversary::make_byzantine(byz->second, flavor, topo_, res, i);
    } else {
      switch (flavor) {
        case adversary::Flavor::Safe:
          obj = std::make_unique<objects::SafeObject>(topo_, i);
          break;
        case adversary::Flavor::Regular:
          obj = std::make_unique<objects::RegularObject>(topo_, i,
                                                         opts_.history_limit);
          break;
        case adversary::Flavor::Poll:
          obj = std::make_unique<baselines::PollObject>(topo_, i);
          break;
        case adversary::Flavor::Auth:
          obj = std::make_unique<baselines::AuthObject>(topo_, i);
          break;
        case adversary::Flavor::Abd:
          obj = std::make_unique<baselines::AbdObject>(topo_, i);
          break;
      }
    }
    const ProcessId pid = world_->add_process(std::move(obj));
    RR_ASSERT(pid == topo_.object(i));
  }
  for (const int i : opts_.faults.crashed) {
    world_->crash(topo_.object(i));
  }
  world_->start();
}

void Deployment::do_write(net::Context& ctx, Value v, core::WriteCallback cb) {
  auto& cl = *clients_;
  if (cl.core_writer != nullptr) {
    cl.core_writer->write(ctx, std::move(v), std::move(cb));
  } else if (cl.abd_writer != nullptr) {
    cl.abd_writer->write(ctx, std::move(v), std::move(cb));
  } else if (cl.polling_writer != nullptr) {
    cl.polling_writer->write(ctx, std::move(v), std::move(cb));
  } else if (cl.fast_writer != nullptr) {
    cl.fast_writer->write(ctx, std::move(v), std::move(cb));
  } else if (cl.auth_writer != nullptr) {
    cl.auth_writer->write(ctx, std::move(v), std::move(cb));
  }
}

void Deployment::do_read(net::Context& ctx, int reader, core::ReadCallback cb) {
  auto& cl = *clients_;
  const auto j = static_cast<std::size_t>(reader);
  if (!cl.safe_readers.empty()) {
    cl.safe_readers[j]->read(ctx, std::move(cb));
  } else if (!cl.regular_readers.empty()) {
    cl.regular_readers[j]->read(ctx, std::move(cb));
  } else if (!cl.abd_readers.empty()) {
    cl.abd_readers[j]->read(ctx, std::move(cb));
  } else if (!cl.polling_readers.empty()) {
    cl.polling_readers[j]->read(ctx, std::move(cb));
  } else if (!cl.auth_readers.empty()) {
    cl.auth_readers[j]->read(ctx, std::move(cb));
  }
}

void Deployment::invoke_write(Time at, Value v, core::WriteCallback cb) {
  world_->post(at, writer_pid(),
               [this, v = std::move(v), cb = std::move(cb)](net::Context& ctx) {
                 do_write(ctx, v, cb);
               });
}

void Deployment::invoke_read(Time at, int reader, core::ReadCallback cb) {
  RR_ASSERT(reader >= 0 && reader < opts_.res.num_readers);
  world_->post(at, reader_pid(reader),
               [this, reader, cb = std::move(cb)](net::Context& ctx) {
                 do_read(ctx, reader, cb);
               });
}

void Deployment::logged_write(Time at, Value v, core::WriteCallback cb) {
  world_->post(at, writer_pid(), [this, v = std::move(v),
                                  cb = std::move(cb)](net::Context& ctx) {
    // The log handle is created at actual invocation (inside the writer's
    // step) so invoked_at is exact; the intended value is recorded up front
    // in case the write never completes.
    const auto handle = log_.record_invocation(checker::OpRecord::Kind::Write,
                                               -1, ctx.now(), v);
    do_write(ctx, v, [this, handle, v, cb](const core::WriteResult& r) {
      log_.record_write_response(handle, r.completed_at, r.ts, v);
      if (cb) cb(r);
    });
  });
}

void Deployment::logged_read(Time at, int reader, core::ReadCallback cb) {
  RR_ASSERT(reader >= 0 && reader < opts_.res.num_readers);
  world_->post(at, reader_pid(reader), [this, reader,
                                        cb = std::move(cb)](net::Context& ctx) {
    const auto handle = log_.record_invocation(checker::OpRecord::Kind::Read,
                                               reader, ctx.now());
    do_read(ctx, reader, [this, handle, cb](const core::ReadResult& r) {
      log_.record_read_response(handle, r.completed_at, r.tsval);
      if (cb) cb(r);
    });
  });
}

checker::CheckReport Deployment::check() const {
  return check(promised_semantics(opts_.protocol));
}

checker::CheckReport Deployment::check(Semantics s) const {
  const auto ops = log_.snapshot();
  auto report = checker::check_well_formed(ops);
  checker::CheckReport semantic;
  switch (s) {
    case Semantics::Safe: semantic = checker::check_safety(ops); break;
    case Semantics::Regular: semantic = checker::check_regularity(ops); break;
    case Semantics::Atomic: semantic = checker::check_atomicity(ops); break;
  }
  for (auto& v : semantic.violations) report.violations.push_back(std::move(v));
  report.reads_checked = semantic.reads_checked;
  report.writes_checked = semantic.writes_checked;
  return report;
}

core::Writer& Deployment::core_writer() {
  RR_ASSERT(clients_->core_writer != nullptr);
  return *clients_->core_writer;
}

core::SafeReader& Deployment::safe_reader(int j) {
  RR_ASSERT(j >= 0 && j < static_cast<int>(clients_->safe_readers.size()));
  return *clients_->safe_readers[static_cast<std::size_t>(j)];
}

core::RegularReader& Deployment::regular_reader(int j) {
  RR_ASSERT(j >= 0 && j < static_cast<int>(clients_->regular_readers.size()));
  return *clients_->regular_readers[static_cast<std::size_t>(j)];
}

baselines::PollingReader& Deployment::polling_reader(int j) {
  RR_ASSERT(j >= 0 && j < static_cast<int>(clients_->polling_readers.size()));
  return *clients_->polling_readers[static_cast<std::size_t>(j)];
}

baselines::AuthReader& Deployment::auth_reader(int j) {
  RR_ASSERT(j >= 0 && j < static_cast<int>(clients_->auth_readers.size()));
  return *clients_->auth_readers[static_cast<std::size_t>(j)];
}

net::Process& Deployment::object_process(int i) {
  return world_->process(topo_.object(i));
}

}  // namespace rr::harness
