#include "harness/fuzz.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/rng.hpp"

namespace rr::harness {
namespace {

constexpr adversary::StrategyKind kStrategies[] = {
    adversary::StrategyKind::Silent,      adversary::StrategyKind::Amnesiac,
    adversary::StrategyKind::Forger,      adversary::StrategyKind::Accuser,
    adversary::StrategyKind::Equivocator, adversary::StrategyKind::Stagger,
    adversary::StrategyKind::Collude,     adversary::StrategyKind::Random,
    adversary::StrategyKind::StaleReplay,
};

/// The (t, b) budget pool a batch samples. (1, 0) exercises the crash-only
/// corner; (2, 2) pushes fastwrite to S = 2t+2b+1 = 9 objects.
constexpr std::pair<int, int> kBudgets[] = {{1, 0}, {1, 1}, {2, 1}, {2, 2}};

/// `k` distinct object indices out of [0, n), seeded (partial
/// Fisher-Yates over the identity permutation).
std::vector<int> distinct_objects(Rng& rng, int n, int k) {
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    const auto j = i + static_cast<int>(rng.index(
                           static_cast<std::size_t>(n - i)));
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

/// Extra (non-budget) fault shapes the generator draws from. Loss is
/// deliberately absent: it violates the reliable-channel assumption and
/// stalls operations, so it has no place in an expect-ok cell.
enum class Extra {
  Hold,
  PartitionIn,
  PartitionOut,
  Flap,
  Gray,
  GrayClient,
  Skew,
  SkewClient,
  Reorder,
  Dup,
};

}  // namespace

ScenarioFuzzer::ScenarioFuzzer(FuzzOptions opts) : opts_(std::move(opts)) {}

Scenario ScenarioFuzzer::generate(std::uint64_t index) const {
  // One private stream per (batch seed, index): scenarios are independent
  // of each other and of how many were generated before them.
  Rng rng(mix64(opts_.seed) ^ mix64(index + 0x5ceda7105cULL));

  Scenario s;
  s.name = "fuzz-" + std::to_string(opts_.seed) + "-" + std::to_string(index);
  s.tmpl = FaultTemplate::None;
  s.seed = index + 1;

  const bool overload = rng.chance(opts_.overload_rate);

  static const std::vector<Protocol> kAllProtocols = [] {
    std::vector<Protocol> v;
    for (const auto& t : protocol_registry()) v.push_back(t.id);
    return v;
  }();
  const auto& protocols =
      opts_.protocols.empty() ? kAllProtocols : opts_.protocols;
  s.protocol = protocols[rng.index(protocols.size())];

  static const std::vector<BackendKind> kBothBackends{BackendKind::Sim,
                                                     BackendKind::Threads};
  const auto& backends =
      opts_.backends.empty() ? kBothBackends : opts_.backends;
  // Overload cells stay on the DES so the stall verdict (and its shrink)
  // is deterministic.
  s.backend = overload ? BackendKind::Sim : backends[rng.index(backends.size())];

  const auto [t, b] = kBudgets[rng.index(std::size(kBudgets))];
  s.t = t;
  s.b = b;
  s.readers = static_cast<int>(rng.uniform(1, 3));
  s.shards = rng.chance(0.2) ? 2 : 1;
  const Resilience res =
      protocol_traits(s.protocol).resilience_for(s.t, s.b, s.readers);

  // Workload mix. writes >= 3 and write_gap >= 5000 guarantee an operation
  // is invoked after the last overload crash (pinned below 9000), so an
  // overload cell can never complete its workload before the quorum dies.
  s.writes = static_cast<int>(rng.uniform(3, 8));
  s.reads_per_reader = static_cast<int>(rng.uniform(2, 6));
  s.write_gap = rng.uniform(5'000, 9'000);
  s.read_gap = rng.uniform(2'000, 5'000);
  s.check_override = opts_.check_override;
  s.expect_ok = !overload;
  // Pin the deployment seed so the emitted .scn replays bit-identically
  // standalone (run_seed = 0 would re-derive from grid coordinates).
  s.run_seed = rng() | 1;
  // Threads cells carry a generous deadline: a generator or runtime bug
  // then degrades to a liveness verdict instead of hanging the lane.
  if (s.backend != BackendKind::Sim) s.max_wall_ms = 20'000;

  // Open-loop arrival draw (~30% of non-overload cells): shape, population
  // and think time together are the client-churn knob -- diurnal ramps the
  // arrival rate across the horizon, bursty turns the population on and off
  // in duty cycles. Overload cells stay closed-loop: the stall argument
  // above leans on the chained workload's gap structure. The windowed
  // checker toggles independently (~50%), including over closed loops, so
  // the fuzz lane continuously cross-checks streaming against batch
  // verdicts.
  if (!overload && rng.chance(0.3)) {
    constexpr ArrivalKind kOpen[] = {ArrivalKind::Poisson,
                                     ArrivalKind::Bursty,
                                     ArrivalKind::Diurnal};
    s.arrival = kOpen[rng.index(std::size(kOpen))];
    s.clients = rng.uniform(64, 512);
    s.think = rng.uniform(20'000, 80'000);
    s.horizon = rng.uniform(60'000, 200'000);
    s.write_fraction = 0.05 * static_cast<double>(rng.uniform(2, 8));
  }
  if (!overload && rng.chance(0.5)) {
    s.checker_window =
        static_cast<std::size_t>(1) << rng.uniform(4, 7);  // 16..128
  }

  if (overload) {
    // t+1 timed crashes: every protocol waits on S - t live objects, so
    // one crash past the budget makes quorums permanently unreachable.
    const int n = res.t + 1;
    const auto objs = distinct_objects(rng, res.num_objects, n);
    for (const int o : objs) {
      FaultEvent ev;
      ev.kind = FaultEvent::Kind::Crash;
      ev.object = o;
      ev.at = rng.uniform(3'000, 9'000);
      s.events.push_back(std::move(ev));
    }
    return s;
  }

  // Budgeted faulty set: byz_n <= b and byz_n + crash_n <= t, on distinct
  // objects, so the schedule respects the model by construction.
  const int byz_n =
      res.b > 0 ? static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(
                                                      res.b)))
                : 0;
  const int crash_n = static_cast<int>(
      rng.uniform(0, static_cast<std::uint64_t>(res.t - byz_n)));
  const auto faulty = distinct_objects(rng, res.num_objects, byz_n + crash_n);
  for (int i = 0; i < byz_n; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Byzantine;
    ev.object = faulty[static_cast<std::size_t>(i)];
    ev.strategy = kStrategies[rng.index(std::size(kStrategies))];
    s.events.push_back(std::move(ev));
  }
  for (int i = 0; i < crash_n; ++i) {
    FaultEvent ev;
    ev.kind = FaultEvent::Kind::Crash;
    ev.object = faulty[static_cast<std::size_t>(byz_n + i)];
    ev.at = rng.uniform(2'000, 20'000);
    s.events.push_back(std::move(ev));
  }

  // Asynchrony extras: bounded windows only (holds and flaps release, gray
  // recovers or merely slows), so liveness is preserved by construction.
  const auto held_subset = [&rng, &res]() {
    const int sz = 1 + static_cast<int>(rng.index(
                           std::min(res.num_objects, 2)));
    return distinct_objects(rng, res.num_objects, sz);
  };
  const auto window = [&rng](FaultEvent* ev, Time start_max, Time dur_lo,
                             Time dur_hi) {
    ev->at = rng.uniform(0, start_max);
    ev->duration = rng.uniform(dur_lo, dur_hi);
  };
  const auto client_target = [&rng, &res](FaultEvent* ev) {
    if (rng.chance(0.5)) {
      ev->role = Role::Writer;
      ev->object = 0;
    } else {
      ev->role = Role::Reader;
      ev->object = static_cast<int>(rng.index(
          static_cast<std::size_t>(res.num_readers)));
    }
  };

  const int extras = static_cast<int>(rng.uniform(0, 3));
  bool reorder_used = false;
  bool dup_used = false;
  for (int i = 0; i < extras; ++i) {
    std::vector<Extra> pool{Extra::Hold, Extra::PartitionIn,
                            Extra::PartitionOut, Extra::Flap, Extra::Gray,
                            Extra::GrayClient};
    if (s.backend == BackendKind::Sim) {
      pool.push_back(Extra::Skew);
      pool.push_back(Extra::SkewClient);
    }
    if (!reorder_used) pool.push_back(Extra::Reorder);
    if (!dup_used) pool.push_back(Extra::Dup);

    FaultEvent ev;
    switch (pool[rng.index(pool.size())]) {
      case Extra::Hold:
        ev.kind = FaultEvent::Kind::Hold;
        ev.held = held_subset();
        window(&ev, 20'000, 2'000, 12'000);
        break;
      case Extra::PartitionIn:
      case Extra::PartitionOut:
        // Drawn as two pool entries so both directions carry equal weight;
        // re-decide the direction here to keep the switch simple.
        ev.kind = rng.chance(0.5) ? FaultEvent::Kind::PartitionIn
                                  : FaultEvent::Kind::PartitionOut;
        ev.held = held_subset();
        window(&ev, 20'000, 2'000, 12'000);
        break;
      case Extra::Flap:
        ev.kind = FaultEvent::Kind::Flap;
        ev.held = held_subset();
        window(&ev, 15'000, 4'000, 16'000);
        ev.period = rng.uniform(1'000, 4'000);
        ev.rate = static_cast<double>(rng.uniform(3, 7)) / 10.0;
        ev.jitter = rng.uniform(0, 300);
        break;
      case Extra::Gray:
      case Extra::GrayClient: {
        ev.kind = FaultEvent::Kind::Gray;
        // Re-draw the target shape: object 60%, client 40%.
        if (rng.chance(0.6)) {
          ev.object = static_cast<int>(rng.index(
              static_cast<std::size_t>(res.num_objects)));
        } else {
          client_target(&ev);
        }
        ev.rate = static_cast<double>(rng.uniform(2, 6));
        ev.at = rng.uniform(0, 15'000);
        // Open-ended gray is legal (slow is still alive) but only worth
        // the wall-clock risk on the DES.
        ev.duration = s.backend == BackendKind::Sim && rng.chance(0.25)
                          ? 0
                          : rng.uniform(3'000, 15'000);
        break;
      }
      case Extra::Skew:
      case Extra::SkewClient:
        ev.kind = FaultEvent::Kind::Skew;
        if (rng.chance(0.5)) {
          ev.object = static_cast<int>(rng.index(
              static_cast<std::size_t>(res.num_objects)));
        } else {
          client_target(&ev);
        }
        ev.skew = static_cast<std::int64_t>(rng.uniform(0, 10'000)) - 5'000;
        break;
      case Extra::Reorder:
        ev.kind = FaultEvent::Kind::Reorder;
        ev.rate = static_cast<double>(rng.uniform(5, 25)) / 100.0;
        ev.period = rng.uniform(500, 2'500);
        if (rng.chance(0.5)) ev.held = held_subset();
        reorder_used = true;
        break;
      case Extra::Dup:
        ev.kind = FaultEvent::Kind::Duplicate;
        ev.rate = static_cast<double>(rng.uniform(5, 20)) / 100.0;
        dup_used = true;
        break;
    }
    s.events.push_back(std::move(ev));
  }
  return s;
}

std::vector<Scenario> ScenarioFuzzer::batch() const {
  std::vector<Scenario> out;
  out.reserve(static_cast<std::size_t>(opts_.count));
  for (int i = 0; i < opts_.count; ++i) {
    out.push_back(generate(static_cast<std::uint64_t>(i)));
  }
  return out;
}

FuzzResult run_fuzz(const FuzzOptions& opts, int workers) {
  const ScenarioFuzzer fuzzer(opts);
  FuzzResult out;
  out.scenarios = fuzzer.batch();

  // Library-only sweep plan: empty grid axes, the batch as the library.
  SweepPlan plan;
  plan.protocols.clear();
  plan.templates.clear();
  plan.max_shrinks = opts.max_shrinks;
  plan.library = out.scenarios;
  const SweepEngine engine(std::move(plan));
  out.report = engine.run(workers);

  for (const auto& v : out.report.cells) {
    if (!v.expect_ok) ++out.overload_cells;
    if (v.ok != v.expect_ok) out.unexpected.push_back(v.key);
  }

  if (!opts.fixture_dir.empty() && !out.unexpected.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.fixture_dir, ec);
    std::map<std::string, const ShrinkResult*> shrunk;
    for (const auto& sh : out.report.shrinks) shrunk[sh.key] = &sh;
    for (const auto& key : out.unexpected) {
      const Scenario* src = nullptr;
      for (const auto& s : out.scenarios) {
        if (s.key() == key) {
          src = &s;
          break;
        }
      }
      // An expected-fail cell that unexpectedly *passed* has no failure to
      // pin; only genuine new failures become fixtures.
      if (src == nullptr || !src->expect_ok) continue;
      Scenario fix = *src;
      fix.expect_ok = false;
      const auto dir = std::filesystem::path(opts.fixture_dir);
      const auto path = (dir / (fix.name + ".scn")).string();
      if (save_scenario_file(fix, path)) out.fixtures.push_back(path);
      if (const auto it = shrunk.find(key); it != shrunk.end()) {
        Scenario min = it->second->minimal;
        min.name += "-min";
        min.expect_ok = false;
        const auto min_path = (dir / (fix.name + ".min.scn")).string();
        if (save_scenario_file(min, min_path)) {
          out.fixtures.push_back(min_path);
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Coverage accounting
// ---------------------------------------------------------------------------

std::string primitive_name(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::Byzantine:
      return "byz";
    case FaultEvent::Kind::Crash:
      return "crash";
    case FaultEvent::Kind::Hold:
      return "hold";
    case FaultEvent::Kind::PartitionIn:
      return "partition-in";
    case FaultEvent::Kind::PartitionOut:
      return "partition-out";
    case FaultEvent::Kind::Flap:
      return "flap";
    case FaultEvent::Kind::Gray:
      return ev.role == Role::Object ? "gray" : "gray-client";
    case FaultEvent::Kind::Skew:
      return ev.role == Role::Object ? "skew" : "skew-client";
    case FaultEvent::Kind::Loss:
      return "loss";
    case FaultEvent::Kind::Duplicate:
      return "dup";
    case FaultEvent::Kind::Reorder:
      return "reorder";
  }
  return "?";
}

const std::vector<std::string>& all_primitives() {
  static const std::vector<std::string> kAll{
      "crash", "byz",         "hold",        "partition-in", "partition-out",
      "flap",  "gray",        "gray-client", "skew",         "skew-client",
      "reorder", "dup", "loss",
  };
  return kAll;
}

const std::vector<std::string>& model_legal_primitives() {
  // all_primitives() minus the reliable-channel violations (dup, loss).
  static const std::vector<std::string> kLegal{
      "crash", "byz",         "hold", "partition-in", "partition-out",
      "flap",  "gray",        "gray-client", "skew", "skew-client",
      "reorder",
  };
  return kLegal;
}

void CoverageMatrix::add(const Scenario& s) {
  ++scenarios_seen;
  budgets.insert({s.t, s.b});
  const std::string proto = protocol_traits(s.protocol).cli_name;
  for (const auto& ev : s.events) ++counts[primitive_name(ev)][proto];
}

void CoverageMatrix::add_all(const std::vector<Scenario>& scenarios) {
  for (const auto& s : scenarios) add(s);
}

std::vector<std::string> CoverageMatrix::missing() const {
  std::vector<std::string> out;
  for (const auto& traits : protocol_registry()) {
    // A protocol whose recipe clamps b to 0 (ABD is crash-only) can never
    // legally host a Byzantine object, so the gate skips that cell.
    const bool byz_legal = traits.resilience_for(2, 1, 2).b > 0;
    for (const auto& prim : model_legal_primitives()) {
      if (prim == "byz" && !byz_legal) continue;
      const auto pit = counts.find(prim);
      const bool seen = pit != counts.end() &&
                        pit->second.find(traits.cli_name) != pit->second.end();
      if (!seen) out.push_back(prim + " x " + traits.cli_name);
    }
  }
  return out;
}

std::string CoverageMatrix::table() const {
  std::ostringstream out;
  const auto& registry = protocol_registry();

  std::size_t prim_w = 0;
  for (const auto& p : all_primitives()) prim_w = std::max(prim_w, p.size());

  out << std::string(prim_w, ' ');
  for (const auto& t : registry) out << "  " << t.cli_name;
  out << '\n';
  const auto legal = model_legal_primitives();
  for (const auto& prim : all_primitives()) {
    out << prim << std::string(prim_w - prim.size(), ' ');
    for (const auto& t : registry) {
      const std::size_t col_w = std::string(t.cli_name).size();
      std::string cell = "0";
      const auto pit = counts.find(prim);
      if (pit != counts.end()) {
        const auto cit = pit->second.find(t.cli_name);
        if (cit != pit->second.end()) cell = std::to_string(cit->second);
      }
      const bool is_legal =
          std::find(legal.begin(), legal.end(), prim) != legal.end();
      if (cell == "0") cell = is_legal ? "-" : ".";
      out << "  " << std::string(col_w - std::min(col_w, cell.size()), ' ')
          << cell;
    }
    out << '\n';
  }

  out << '\n' << "scenarios: " << scenarios_seen << "; budgets:";
  for (const auto& [t, b] : budgets) {
    out << " (t=" << t << ",b=" << b << ")";
  }
  out << '\n';
  const auto gaps = missing();
  if (gaps.empty()) {
    out << "coverage: complete (every model-legal primitive x protocol)\n";
  } else {
    out << "coverage: " << gaps.size() << " missing cell(s):\n";
    for (const auto& g : gaps) out << "  " << g << '\n';
  }
  out << "('-' = model-legal, unexercised; '.' = outside the channel "
         "model)\n";
  return out.str();
}

}  // namespace rr::harness
