#include "harness/shard.hpp"

#include <utility>

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::harness {
namespace {

/// The Context a shard-local automaton steps under: logical self/peers,
/// ShardMsg wrapping on send. Time and randomness pass through to the
/// backend untouched.
class ShardContext final : public net::Context {
 public:
  ShardContext(net::Context& outer, const ShardLayout& layout, int shard,
               ProcessId logical_self)
      : outer_(outer),
        layout_(layout),
        shard_(shard),
        logical_self_(logical_self) {}

  [[nodiscard]] ProcessId self() const override { return logical_self_; }
  [[nodiscard]] Time now() const override { return outer_.now(); }
  [[nodiscard]] Rng& rng() override { return outer_.rng(); }

  void send(ProcessId to, wire::Message msg) override {
    outer_.send(layout_.to_physical(shard_, to),
                wire::ShardMsg{static_cast<RegisterId>(shard_),
                               wire::encode(msg)});
  }

 private:
  net::Context& outer_;
  const ShardLayout& layout_;
  int shard_;
  ProcessId logical_self_;
};

/// Extracts the ShardMsg envelope (the only thing sharded deployments put
/// on the wire).
const wire::ShardMsg& envelope_of(const wire::Message& msg) {
  const auto* env = std::get_if<wire::ShardMsg>(&msg);
  RR_ASSERT_MSG(env != nullptr,
                "sharded deployments carry only ShardMsg on the wire");
  return *env;
}

/// Decodes an envelope's payload and delivers it to `inner` as a step of
/// logical process `logical_self` in `shard`'s emulation.
void deliver_unwrapped(net::Process& inner, const ShardLayout& layout,
                       int shard, ProcessId logical_self, net::Context& outer,
                       ProcessId from, const wire::ShardMsg& env) {
  RR_ASSERT_MSG(static_cast<int>(env.reg) == shard,
                "shard envelope routed to the wrong register instance");
  const auto inner_msg = wire::decode(env.payload);
  RR_ASSERT_MSG(inner_msg.has_value(), "shard payload must decode");
  ShardContext ctx(outer, layout, shard, logical_self);
  inner.on_message(ctx, layout.to_logical(from), *inner_msg);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardWriter
// ---------------------------------------------------------------------------

ShardWriter::ShardWriter(const ShardLayout& layout, int shard,
                         std::unique_ptr<core::WriterClient> inner)
    : layout_(layout), shard_(shard), inner_(std::move(inner)) {}

void ShardWriter::on_start(net::Context& ctx) {
  ShardContext sctx(ctx, layout_, shard_, /*logical_self=*/0);
  inner_->on_start(sctx);
}

void ShardWriter::on_message(net::Context& ctx, ProcessId from,
                             const wire::Message& msg) {
  deliver_unwrapped(*inner_, layout_, shard_, /*logical_self=*/0, ctx, from,
                    envelope_of(msg));
}

void ShardWriter::write(net::Context& ctx, Value v, core::WriteCallback cb) {
  ShardContext sctx(ctx, layout_, shard_, /*logical_self=*/0);
  inner_->write(sctx, std::move(v), std::move(cb));
}

// ---------------------------------------------------------------------------
// ShardReader
// ---------------------------------------------------------------------------

ShardReader::ShardReader(const ShardLayout& layout, int shard,
                         int reader_index,
                         std::unique_ptr<core::ReaderClient> inner)
    : layout_(layout),
      shard_(shard),
      reader_index_(reader_index),
      inner_(std::move(inner)) {}

void ShardReader::on_start(net::Context& ctx) {
  ShardContext sctx(ctx, layout_, shard_, 1 + reader_index_);
  inner_->on_start(sctx);
}

void ShardReader::on_message(net::Context& ctx, ProcessId from,
                             const wire::Message& msg) {
  deliver_unwrapped(*inner_, layout_, shard_, 1 + reader_index_, ctx, from,
                    envelope_of(msg));
}

void ShardReader::read(net::Context& ctx, core::ReadCallback cb) {
  ShardContext sctx(ctx, layout_, shard_, 1 + reader_index_);
  inner_->read(sctx, std::move(cb));
}

// ---------------------------------------------------------------------------
// ShardedObjectHost
// ---------------------------------------------------------------------------

ShardedObjectHost::ShardedObjectHost(const ShardLayout& layout,
                                     int object_index,
                                     const InstanceFactory& make_instance)
    : layout_(layout), index_(object_index) {
  instances_.reserve(static_cast<std::size_t>(layout_.shards));
  for (int s = 0; s < layout_.shards; ++s) {
    instances_.push_back(make_instance(static_cast<RegisterId>(s)));
    RR_ASSERT(instances_.back() != nullptr);
  }
}

void ShardedObjectHost::on_start(net::Context& ctx) {
  const ProcessId logical_self = 1 + layout_.readers + index_;
  for (int s = 0; s < layout_.shards; ++s) {
    ShardContext sctx(ctx, layout_, s, logical_self);
    instances_[static_cast<std::size_t>(s)]->on_start(sctx);
  }
}

void ShardedObjectHost::on_message(net::Context& ctx, ProcessId from,
                                   const wire::Message& msg) {
  const wire::ShardMsg& env = envelope_of(msg);
  RR_ASSERT_MSG(static_cast<int>(env.reg) < layout_.shards,
                "shard tag out of range");
  // Clients are correct processes in the model (only base objects may be
  // Byzantine), so the envelope tag must match the sender's shard.
  RR_ASSERT(layout_.shard_of(from) == static_cast<int>(env.reg));
  deliver_unwrapped(*instances_[env.reg], layout_, static_cast<int>(env.reg),
                    1 + layout_.readers + index_, ctx, from, env);
}

net::Process& ShardedObjectHost::instance(RegisterId s) {
  RR_ASSERT(static_cast<int>(s) < layout_.shards);
  return *instances_[s];
}

}  // namespace rr::harness
