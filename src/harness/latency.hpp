// Per-operation latency histogram: fixed buckets, log scale, zero
// allocation, thread-safe recording.
//
// The paper's central question is "how fast can a read be?"; the harness
// answers it empirically by recording every WRITE/READ's invoke -> response
// latency in backend clock units (virtual ns on the DES, wall-clock ns on
// threads) and reporting p50/p95/p99/max. The recorder must work on both
// substrates, which fixes the design:
//   - recording happens inside completion callbacks on the operation hot
//     path, so record() is wait-free and allocation-free: a fixed
//     std::array of relaxed atomic counters, no resizing ever;
//   - on the threads backend callbacks fire concurrently on each client's
//     own thread, so counters are atomics and record() is safe from any
//     thread (quantile readers expect a quiesced run for exact numbers);
//   - on the DES, virtual-time latencies are deterministic, so every
//     derived percentile is bit-identical across runs -- pinned by
//     tests/test_latency.cpp.
//
// Bucketing is logarithmic with 16 linear sub-buckets per octave (values
// 0..15 are exact): the relative quantization error of a reported
// percentile is at most 1/16, uniformly across the full u64 range, with a
// ~7.7 KiB footprint.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace rr::harness {

class LatencyRecorder {
 public:
  /// Linear sub-buckets per octave (and the exact-bucket range [0, kSub)).
  static constexpr std::uint64_t kSub = 16;
  static constexpr int kSubBits = 4;
  /// Bucket count covering the full u64 range: 16 exact buckets plus 60
  /// octaves of 16 sub-buckets.
  static constexpr std::size_t kBuckets =
      kSub + (64 - kSubBits) * kSub;

  LatencyRecorder() = default;

  /// Value -> bucket index. Exact below kSub; above, the octave is the bit
  /// width of v and the sub-bucket is the next kSubBits bits after the
  /// leading one.
  [[nodiscard]] static constexpr std::size_t bucket_index(Time v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int shift = std::bit_width(v) - 1 - kSubBits;
    const auto sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
    return (static_cast<std::size_t>(shift) + 1) * kSub + sub;
  }

  /// Smallest value mapping to `idx` (the reported representative, which
  /// makes quantiles a deterministic lower bound of the true value).
  [[nodiscard]] static constexpr Time bucket_floor(std::size_t idx) {
    if (idx < kSub) return static_cast<Time>(idx);
    const int shift = static_cast<int>(idx / kSub) - 1;
    const Time sub = idx % kSub;
    return (kSub + sub) << shift;
  }

  /// Records one latency. Wait-free, allocation-free, safe from any thread.
  void record(Time latency) noexcept {
    counts_[bucket_index(latency)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(latency, std::memory_order_relaxed);
    atomic_min(min_, latency);
    atomic_max(max_, latency);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Exact extremes (not quantized).
  [[nodiscard]] Time min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Time max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const auto n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// The latency at quantile q in [0, 1]: the floor of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped to the exact [min,
  /// max] so quantile(0) == min() and quantile(1) == max(). Deterministic
  /// given the recorded multiset; meant for after the run has quiesced.
  [[nodiscard]] Time quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    const double scaled = q * static_cast<double>(n);
    auto rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled) ++rank;  // ceil
    rank = std::clamp<std::uint64_t>(rank, 1, n);
    if (rank == n) return max();  // the top rank is tracked exactly
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return std::clamp(bucket_floor(i), min(), max());
    }
    return max();
  }

  [[nodiscard]] Time p50() const { return quantile(0.50); }
  [[nodiscard]] Time p95() const { return quantile(0.95); }
  [[nodiscard]] Time p99() const { return quantile(0.99); }

  /// Raw bucket count (for tests and custom reports).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t idx) const {
    return counts_[idx].load(std::memory_order_relaxed);
  }

  /// Folds another recorder's samples into this one (e.g. merging shards).
  void merge(const LatencyRecorder& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const auto c = other.counts_[i].load(std::memory_order_relaxed);
      if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    if (other.count() != 0) {
      atomic_min(min_, other.min());
      atomic_max(max_, other.max());
    }
  }

  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~Time{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  // Snapshot semantics for copies: meant for after quiescence, like every
  // other reader.
  LatencyRecorder(const LatencyRecorder& other) { copy_from(other); }
  LatencyRecorder& operator=(const LatencyRecorder& other) {
    if (this != &other) copy_from(other);
    return *this;
  }

 private:
  static void atomic_min(std::atomic<Time>& slot, Time v) noexcept {
    Time cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<Time>& slot, Time v) noexcept {
    Time cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void copy_from(const LatencyRecorder& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<Time> min_{~Time{0}};
  std::atomic<Time> max_{0};
};

}  // namespace rr::harness
