// Latency / round-count accumulators and percentile helpers.
//
// Two tiers: OpStats keeps every sample (exact percentiles, round counts;
// allocates) for small experiment runs, while LatencyRecorder
// (harness/latency.hpp, re-exported here) is the fixed-footprint log-scale
// histogram the Deployment feeds on the operation hot path and the
// latency-profile bench reports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "harness/latency.hpp"

namespace rr::harness {

/// Accumulates per-operation metrics. add() is thread-safe (on the threads
/// backend completion callbacks fire on each client's own thread); the
/// read accessors are meant for after the run has quiesced.
class OpStats {
 public:
  OpStats() = default;
  OpStats(const OpStats& other) {
    std::lock_guard lock(other.mu_);
    latencies_ = other.latencies_;
    rounds_ = other.rounds_;
  }
  OpStats& operator=(const OpStats& other) {
    if (this == &other) return *this;
    std::scoped_lock lock(mu_, other.mu_);
    latencies_ = other.latencies_;
    rounds_ = other.rounds_;
    return *this;
  }

  void add(Time latency, int rounds) {
    std::lock_guard lock(mu_);
    latencies_.push_back(latency);
    rounds_.push_back(rounds);
  }

  [[nodiscard]] std::size_t count() const { return latencies_.size(); }

  [[nodiscard]] Time latency_min() const { return pick_latency(0.0); }
  [[nodiscard]] Time latency_p50() const { return pick_latency(0.50); }
  [[nodiscard]] Time latency_p95() const { return pick_latency(0.95); }
  [[nodiscard]] Time latency_p99() const { return pick_latency(0.99); }
  [[nodiscard]] Time latency_max() const { return pick_latency(1.0); }
  [[nodiscard]] double latency_mean() const {
    if (latencies_.empty()) return 0.0;
    double sum = 0;
    for (const auto l : latencies_) sum += static_cast<double>(l);
    return sum / static_cast<double>(latencies_.size());
  }

  [[nodiscard]] int rounds_max() const {
    return rounds_.empty() ? 0 : *std::max_element(rounds_.begin(),
                                                   rounds_.end());
  }
  [[nodiscard]] int rounds_min() const {
    return rounds_.empty() ? 0 : *std::min_element(rounds_.begin(),
                                                   rounds_.end());
  }
  [[nodiscard]] double rounds_mean() const {
    if (rounds_.empty()) return 0.0;
    double sum = 0;
    for (const auto r : rounds_) sum += r;
    return sum / static_cast<double>(rounds_.size());
  }

  [[nodiscard]] const std::vector<Time>& latencies() const {
    return latencies_;
  }
  [[nodiscard]] const std::vector<int>& rounds() const { return rounds_; }

 private:
  [[nodiscard]] Time pick_latency(double q) const {
    if (latencies_.empty()) return 0;
    std::vector<Time> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  mutable std::mutex mu_;
  std::vector<Time> latencies_;
  std::vector<int> rounds_;
};

}  // namespace rr::harness
