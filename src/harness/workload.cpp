#include "harness/workload.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace rr::harness {
namespace {

/// Shared chaining state for a stream of operations by one client.
struct StreamState {
  int shard{0};
  int remaining{0};
  Ts next_value{1};
  Time gap{0};
  OpStats* stats{nullptr};
  std::function<void()> on_done;
};

void schedule_next_write(Deployment& d, const std::shared_ptr<StreamState>& st,
                         Time at);

void on_write_complete(Deployment& d, const std::shared_ptr<StreamState>& st,
                       const core::WriteResult& r) {
  if (st->stats != nullptr) st->stats->add(r.latency(), r.rounds);
  if (--st->remaining > 0) {
    schedule_next_write(d, st, r.completed_at + st->gap);
  } else if (st->on_done) {
    st->on_done();
  }
}

void schedule_next_write(Deployment& d, const std::shared_ptr<StreamState>& st,
                         Time at) {
  const Value v = value_for(st->next_value++);
  d.logged_write(at, st->shard, v, [&d, st](const core::WriteResult& r) {
    on_write_complete(d, st, r);
  });
}

void schedule_next_read(Deployment& d, int reader,
                        const std::shared_ptr<StreamState>& st, Time at);

void on_read_complete(Deployment& d, int reader,
                      const std::shared_ptr<StreamState>& st,
                      const core::ReadResult& r) {
  if (st->stats != nullptr) st->stats->add(r.latency(), r.rounds);
  if (--st->remaining > 0) {
    schedule_next_read(d, reader, st, r.completed_at + st->gap);
  } else if (st->on_done) {
    st->on_done();
  }
}

void schedule_next_read(Deployment& d, int reader,
                        const std::shared_ptr<StreamState>& st, Time at) {
  d.logged_read(at, st->shard, reader,
                [&d, reader, st](const core::ReadResult& r) {
                  on_read_complete(d, reader, st, r);
                });
}

}  // namespace

void write_stream(Deployment& d, int shard, Time start, Time gap, int count,
                  OpStats* stats, std::function<void()> on_done) {
  if (count <= 0) {
    if (on_done) on_done();
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->shard = shard;
  st->remaining = count;
  st->gap = gap;
  st->stats = stats;
  st->on_done = std::move(on_done);
  schedule_next_write(d, st, start);
}

void write_stream(Deployment& d, Time start, Time gap, int count,
                  OpStats* stats, std::function<void()> on_done) {
  write_stream(d, 0, start, gap, count, stats, std::move(on_done));
}

void read_stream(Deployment& d, int shard, int reader, Time start, Time gap,
                 int count, OpStats* stats, std::function<void()> on_done) {
  if (count <= 0) {
    if (on_done) on_done();
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->shard = shard;
  st->remaining = count;
  st->gap = gap;
  st->stats = stats;
  st->on_done = std::move(on_done);
  schedule_next_read(d, reader, st, start);
}

void read_stream(Deployment& d, int reader, Time start, Time gap, int count,
                 OpStats* stats, std::function<void()> on_done) {
  read_stream(d, 0, reader, start, gap, count, stats, std::move(on_done));
}

void mixed_workload(Deployment& d, const MixedWorkloadOptions& opts,
                    MixedWorkloadStats* stats) {
  for (int s = 0; s < d.shards(); ++s) {
    write_stream(d, s, opts.start, opts.write_gap, opts.writes,
                 stats != nullptr ? &stats->writes : nullptr);
    for (int j = 0; j < d.res().num_readers; ++j) {
      read_stream(d, s, j, opts.start + 500, opts.read_gap,
                  opts.reads_per_reader,
                  stats != nullptr ? &stats->reads : nullptr);
    }
  }
}

void sequential_then_reads(Deployment& d, int writes, int reads_per_reader,
                           MixedWorkloadStats* stats) {
  auto* write_stats = stats != nullptr ? &stats->writes : nullptr;
  auto* read_stats = stats != nullptr ? &stats->reads : nullptr;
  // Per shard, the write stream finishes before any of the shard's reads
  // begin: the done-callback schedules the read streams, so every read is
  // non-concurrent with every write of its own register and the checker's
  // strictest branch (exact value pinning) applies.
  for (int s = 0; s < d.shards(); ++s) {
    write_stream(d, s, 0, 1'000, writes, write_stats,
                 [&d, s, reads_per_reader, read_stats]() {
                   const Time start = d.now() + 10'000;
                   for (int j = 0; j < d.res().num_readers; ++j) {
                     read_stream(d, s, j, start, 2'000, reads_per_reader,
                                 read_stats);
                   }
                 });
  }
}

// ---------------------------------------------------------------------------
// Open-loop load engine.

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::Closed: return "closed";
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Bursty: return "bursty";
    case ArrivalKind::Diurnal: return "diurnal";
  }
  return "unknown";
}

std::optional<ArrivalKind> arrival_from_name(std::string_view name) {
  for (const auto k : {ArrivalKind::Closed, ArrivalKind::Poisson,
                       ArrivalKind::Bursty, ArrivalKind::Diurnal}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

ArrivalSampler::ArrivalSampler(const OpenLoopOptions& opts,
                               std::uint64_t seed)
    : kind_(opts.arrival),
      start_(opts.start),
      horizon_(std::max<Time>(1, opts.horizon)),
      burst_period_(opts.burst_period != 0
                        ? opts.burst_period
                        : std::max<Time>(1, opts.horizon / 8)),
      burst_duty_(std::clamp(opts.burst_duty, 0.01, 1.0)),
      burst_boost_(std::max(1.0, opts.burst_boost)),
      rng_(seed) {
  const double base = static_cast<double>(std::max<std::uint64_t>(
                          1, opts.clients)) /
                      static_cast<double>(std::max<Time>(1, opts.mean_think));
  double peak_mult = 1.0;
  if (kind_ == ArrivalKind::Bursty) peak_mult = burst_boost_;
  if (kind_ == ArrivalKind::Diurnal) peak_mult = 2.0;
  peak_rate_ = base * peak_mult;
}

double ArrivalSampler::accept_probability(Time t) const {
  const Time since = t >= start_ ? t - start_ : 0;
  switch (kind_) {
    case ArrivalKind::Closed:
    case ArrivalKind::Poisson:
      return 1.0;
    case ArrivalKind::Bursty: {
      const Time phase = since % burst_period_;
      const bool in_burst =
          static_cast<double>(phase) <
          burst_duty_ * static_cast<double>(burst_period_);
      return in_burst ? 1.0 : 1.0 / burst_boost_;
    }
    case ArrivalKind::Diurnal: {
      // Triangle ramp: rate 0.2x at the horizon's ends, 2x at its middle
      // (peak-normalized below); past the horizon the tail stays at 0.2x.
      const double frac = std::min(
          1.0, static_cast<double>(since) / static_cast<double>(horizon_));
      const double tri = 1.0 - std::abs(2.0 * frac - 1.0);
      return (0.2 + 1.8 * tri) / 2.0;
    }
  }
  return 1.0;
}

Time ArrivalSampler::next(Time now) {
  // Thinning (Lewis & Shedler): exponential candidates at the peak rate,
  // accepted with probability rate(t) / peak. Every shape's floor is
  // bounded away from zero, so this terminates.
  Time delta = 0;
  for (;;) {
    const double u = 1.0 - rng_.uniform01();  // (0, 1]: log() stays finite
    const double dt = -std::log(u) / peak_rate_;
    delta += std::max<Time>(1, static_cast<Time>(dt));
    if (rng_.chance(accept_probability(now + delta))) return delta;
  }
}

namespace {

OpenLoopOptions sanitize(OpenLoopOptions o) {
  o.clients = std::max<std::uint64_t>(1, o.clients);
  o.horizon = std::max<Time>(1, o.horizon);
  o.mean_think = std::max<Time>(1, o.mean_think);
  o.write_fraction = std::clamp(o.write_fraction, 0.0, 1.0);
  o.queue_cap = std::max<std::size_t>(1, o.queue_cap);
  return o;
}

}  // namespace

OpenLoopEngine::OpenLoopEngine(Deployment& d, OpenLoopOptions opts)
    : d_(d),
      opts_(sanitize(std::move(opts))),
      sampler_(opts_, mix64(opts_.seed ^ 0xa77ULL)),
      rng_(mix64(opts_.seed ^ 0x10adULL)) {
  RR_ASSERT_MSG(opts_.arrival != ArrivalKind::Closed,
                "OpenLoopEngine requires an open arrival process");
  RR_ASSERT_MSG(opts_.clients <= 0xffffffffULL,
                "client ids are 32-bit in the station rings");
  const std::size_t stations = station_count();
  rings_.reserve(stations);
  for (std::size_t i = 0; i < stations; ++i) {
    rings_.emplace_back(opts_.queue_cap);
  }
  busy_.assign(stations, 0);
  next_write_k_.assign(static_cast<std::size_t>(d_.shards()), 0);
  client_seen_.assign(static_cast<std::size_t>((opts_.clients + 63) / 64), 0);
}

std::size_t OpenLoopEngine::station_count() const {
  return static_cast<std::size_t>(d_.shards()) *
         static_cast<std::size_t>(1 + d_.res().num_readers);
}

void OpenLoopEngine::launch() {
  RR_ASSERT_MSG(!launched_, "launch() may be called once");
  launched_ = true;
  schedule_next(opts_.start);
}

void OpenLoopEngine::schedule_next(Time t) {
  const Time nt = t + sampler_.next(t);
  if (nt >= opts_.start + opts_.horizon) return;
  // The arrival chain is one self-rescheduling step hosted on shard 0's
  // writer pid: a single driver regardless of population, so the engine's
  // footprint is O(stations) even at millions of clients.
  d_.backend().post(nt, d_.writer_pid(0), [this, nt](net::Context&) {
    on_arrival(nt);
    schedule_next(nt);
  });
}

void OpenLoopEngine::on_arrival(Time t) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.arrivals;
  const auto client =
      static_cast<std::uint32_t>(rng_.uniform(0, opts_.clients - 1));
  const std::size_t word = client >> 6;
  const std::uint64_t bit = 1ULL << (client & 63);
  if ((client_seen_[word] & bit) == 0) {
    client_seen_[word] |= bit;
    ++stats_.distinct_clients;
  }
  const bool is_write = rng_.chance(opts_.write_fraction);
  const auto shards = static_cast<std::uint32_t>(d_.shards());
  const auto readers = static_cast<std::uint32_t>(d_.res().num_readers);
  const std::uint32_t shard = client % shards;
  const std::uint32_t j =
      is_write ? 0 : 1 + (client / shards) % readers;
  const std::size_t station = shard * (1 + readers) + j;
  if (busy_[station] == 0) {
    issue(station, t, client, t);
  } else if (rings_[station].push(t, client)) {
    stats_.max_queue_depth =
        std::max<std::uint64_t>(stats_.max_queue_depth,
                                rings_[station].size());
  } else {
    ++stats_.shed;
  }
}

void OpenLoopEngine::issue(std::size_t station, Time arrival,
                           std::uint32_t client, Time at) {
  (void)client;  // the station, not the client id, determines the op
  busy_[station] = 1;
  const auto readers = static_cast<std::size_t>(d_.res().num_readers);
  const int shard = static_cast<int>(station / (1 + readers));
  const std::size_t j = station % (1 + readers);
  if (j == 0) {
    ++stats_.writes_issued;
    const Ts k = ++next_write_k_[static_cast<std::size_t>(shard)];
    d_.logged_write(at, shard, value_for(k),
                    [this, station, arrival](const core::WriteResult&) {
                      on_complete(station, arrival);
                    });
  } else {
    ++stats_.reads_issued;
    d_.logged_read(at, shard, static_cast<int>(j - 1),
                   [this, station, arrival](const core::ReadResult&) {
                     on_complete(station, arrival);
                   });
  }
}

void OpenLoopEngine::on_complete(std::size_t station, Time arrival) {
  const Time now = d_.now();
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.completed;
  stats_.sojourn.record(now > arrival ? now - arrival : 0);
  busy_[station] = 0;
  if (!rings_[station].empty()) {
    Time queued_arrival = 0;
    std::uint32_t client = 0;
    rings_[station].pop(queued_arrival, client);
    issue(station, queued_arrival, client, now);
  }
}

}  // namespace rr::harness
