#include "harness/workload.hpp"

#include <utility>

namespace rr::harness {
namespace {

/// Shared chaining state for a stream of operations by one client.
struct StreamState {
  int shard{0};
  int remaining{0};
  Ts next_value{1};
  Time gap{0};
  OpStats* stats{nullptr};
  std::function<void()> on_done;
};

void schedule_next_write(Deployment& d, const std::shared_ptr<StreamState>& st,
                         Time at);

void on_write_complete(Deployment& d, const std::shared_ptr<StreamState>& st,
                       const core::WriteResult& r) {
  if (st->stats != nullptr) st->stats->add(r.latency(), r.rounds);
  if (--st->remaining > 0) {
    schedule_next_write(d, st, r.completed_at + st->gap);
  } else if (st->on_done) {
    st->on_done();
  }
}

void schedule_next_write(Deployment& d, const std::shared_ptr<StreamState>& st,
                         Time at) {
  const Value v = value_for(st->next_value++);
  d.logged_write(at, st->shard, v, [&d, st](const core::WriteResult& r) {
    on_write_complete(d, st, r);
  });
}

void schedule_next_read(Deployment& d, int reader,
                        const std::shared_ptr<StreamState>& st, Time at);

void on_read_complete(Deployment& d, int reader,
                      const std::shared_ptr<StreamState>& st,
                      const core::ReadResult& r) {
  if (st->stats != nullptr) st->stats->add(r.latency(), r.rounds);
  if (--st->remaining > 0) {
    schedule_next_read(d, reader, st, r.completed_at + st->gap);
  } else if (st->on_done) {
    st->on_done();
  }
}

void schedule_next_read(Deployment& d, int reader,
                        const std::shared_ptr<StreamState>& st, Time at) {
  d.logged_read(at, st->shard, reader,
                [&d, reader, st](const core::ReadResult& r) {
                  on_read_complete(d, reader, st, r);
                });
}

}  // namespace

void write_stream(Deployment& d, int shard, Time start, Time gap, int count,
                  OpStats* stats, std::function<void()> on_done) {
  if (count <= 0) {
    if (on_done) on_done();
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->shard = shard;
  st->remaining = count;
  st->gap = gap;
  st->stats = stats;
  st->on_done = std::move(on_done);
  schedule_next_write(d, st, start);
}

void write_stream(Deployment& d, Time start, Time gap, int count,
                  OpStats* stats, std::function<void()> on_done) {
  write_stream(d, 0, start, gap, count, stats, std::move(on_done));
}

void read_stream(Deployment& d, int shard, int reader, Time start, Time gap,
                 int count, OpStats* stats, std::function<void()> on_done) {
  if (count <= 0) {
    if (on_done) on_done();
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->shard = shard;
  st->remaining = count;
  st->gap = gap;
  st->stats = stats;
  st->on_done = std::move(on_done);
  schedule_next_read(d, reader, st, start);
}

void read_stream(Deployment& d, int reader, Time start, Time gap, int count,
                 OpStats* stats, std::function<void()> on_done) {
  read_stream(d, 0, reader, start, gap, count, stats, std::move(on_done));
}

void mixed_workload(Deployment& d, const MixedWorkloadOptions& opts,
                    MixedWorkloadStats* stats) {
  for (int s = 0; s < d.shards(); ++s) {
    write_stream(d, s, opts.start, opts.write_gap, opts.writes,
                 stats != nullptr ? &stats->writes : nullptr);
    for (int j = 0; j < d.res().num_readers; ++j) {
      read_stream(d, s, j, opts.start + 500, opts.read_gap,
                  opts.reads_per_reader,
                  stats != nullptr ? &stats->reads : nullptr);
    }
  }
}

void sequential_then_reads(Deployment& d, int writes, int reads_per_reader,
                           MixedWorkloadStats* stats) {
  auto* write_stats = stats != nullptr ? &stats->writes : nullptr;
  auto* read_stats = stats != nullptr ? &stats->reads : nullptr;
  // Per shard, the write stream finishes before any of the shard's reads
  // begin: the done-callback schedules the read streams, so every read is
  // non-concurrent with every write of its own register and the checker's
  // strictest branch (exact value pinning) applies.
  for (int s = 0; s < d.shards(); ++s) {
    write_stream(d, s, 0, 1'000, writes, write_stats,
                 [&d, s, reads_per_reader, read_stats]() {
                   const Time start = d.now() + 10'000;
                   for (int j = 0; j < d.res().num_readers; ++j) {
                     read_stream(d, s, j, start, 2'000, reads_per_reader,
                                 read_stats);
                   }
                 });
  }
}

}  // namespace rr::harness
