// Multi-register sharding: K independent SWMR emulations over one set of
// base objects.
//
// A sharded deployment runs K registers ("shards"), each with its own
// writer and R readers, all served by the same S base-object processes.
// Each base-object process hosts K independent register instances (the
// paper's automaton, unmodified); every wire message travels wrapped in a
// wire::ShardMsg tagging the register it belongs to, and the object host
// demultiplexes on that tag.
//
// The protocol automata are reused without change: each shard's automata
// are built against the *logical* single-register topology (writer 0,
// readers 1..R, objects R+1..R+S) and run behind a translating Context that
// maps logical process ids to the physical sharded layout and wraps /
// unwraps the ShardMsg envelope. Safety per shard therefore follows
// directly from the single-register protocol's safety -- shards share
// nothing but the transport.
//
// Physical process id layout for K shards, R readers/shard, S objects:
//   writers   0 .. K-1          (shard s's writer is pid s)
//   readers   K .. K+K*R-1      (shard s's reader j is pid K + s*R + j)
//   objects   K(1+R) .. +S-1    (object i is pid K(1+R) + i)
// With K = 1 this degenerates to the classic Topology layout, which is why
// the unsharded Deployment can skip the adapters entirely.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "net/process.hpp"

namespace rr::harness {

/// Physical <-> logical process-id arithmetic for a sharded deployment.
struct ShardLayout {
  int shards{1};   ///< K registers
  int readers{1};  ///< R readers per shard
  int objects{1};  ///< S base objects (shared by all shards)

  [[nodiscard]] ProcessId writer(int s) const { return s; }
  [[nodiscard]] ProcessId reader(int s, int j) const {
    return shards + s * readers + j;
  }
  [[nodiscard]] ProcessId object(int i) const {
    return shards * (1 + readers) + i;
  }
  [[nodiscard]] int num_processes() const {
    return shards * (1 + readers) + objects;
  }

  /// The single-register topology every automaton is built against.
  [[nodiscard]] Topology logical() const { return {readers, objects}; }

  /// Maps a logical pid (of shard `s`'s emulation) to the physical pid.
  [[nodiscard]] ProcessId to_physical(int s, ProcessId logical) const {
    if (logical == 0) return writer(s);
    if (logical <= readers) return reader(s, logical - 1);
    return object(logical - 1 - readers);
  }

  /// Maps a physical pid back to its logical pid (object pids map to the
  /// same logical object pid for every shard).
  [[nodiscard]] ProcessId to_logical(ProcessId physical) const {
    if (physical < shards) return 0;
    if (physical < shards * (1 + readers)) {
      return 1 + (physical - shards) % readers;
    }
    return 1 + readers + (physical - shards * (1 + readers));
  }

  /// Shard owning a client pid; -1 for (shared) object pids.
  [[nodiscard]] int shard_of(ProcessId physical) const {
    if (physical < shards) return physical;
    if (physical < shards * (1 + readers)) {
      return (physical - shards) / readers;
    }
    return -1;
  }
};

/// Writer adapter: runs an unmodified writer automaton as shard `shard` of
/// a sharded deployment (translating pids, wrapping/unwrapping ShardMsg).
class ShardWriter final : public core::WriterClient {
 public:
  ShardWriter(const ShardLayout& layout, int shard,
              std::unique_ptr<core::WriterClient> inner);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;
  void write(net::Context& ctx, Value v, core::WriteCallback cb) override;

  [[nodiscard]] core::WriterClient& inner() { return *inner_; }

 private:
  ShardLayout layout_;
  int shard_;
  std::unique_ptr<core::WriterClient> inner_;
};

/// Reader adapter, same translation for a reader automaton.
class ShardReader final : public core::ReaderClient {
 public:
  ShardReader(const ShardLayout& layout, int shard, int reader_index,
              std::unique_ptr<core::ReaderClient> inner);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;
  void read(net::Context& ctx, core::ReadCallback cb) override;

  [[nodiscard]] core::ReaderClient& inner() { return *inner_; }

 private:
  ShardLayout layout_;
  int shard_;
  int reader_index_;
  std::unique_ptr<core::ReaderClient> inner_;
};

/// Base-object host: K independent register instances behind one process.
/// Messages arrive as ShardMsg and are dispatched to instance `reg`; each
/// instance replies through the translating context of its own shard.
class ShardedObjectHost final : public net::Process {
 public:
  /// Builds instance `s` of this object (honest automaton or Byzantine
  /// impostor; the factory sees the logical topology).
  using InstanceFactory =
      std::function<std::unique_ptr<net::Process>(RegisterId s)>;

  ShardedObjectHost(const ShardLayout& layout, int object_index,
                    const InstanceFactory& make_instance);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  /// Direct access to one register instance (tests / diagnostics).
  [[nodiscard]] net::Process& instance(RegisterId s);

 private:
  ShardLayout layout_;
  int index_;
  std::vector<std::unique_ptr<net::Process>> instances_;
};

}  // namespace rr::harness
