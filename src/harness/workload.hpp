// Workload generators over a Deployment.
//
// All workloads are chained through operation callbacks (one operation at a
// time per client, matching Section 2.2) and record into the deployment's
// per-shard HistoryLogs, so any run -- on either backend, at any shard
// count -- can be checked post-hoc. Streams target one shard; the mixed
// workloads fan out over every shard of the deployment.
//
// Two loops live here. The *closed* loop (write_stream / read_stream /
// mixed_workload) issues the next op a fixed gap after the previous one
// completed: offered load adapts to service time, so it can never expose
// queueing collapse. The *open* loop (OpenLoopEngine) decouples arrivals
// from completions: simulated clients arrive by a seeded stochastic process
// (Poisson / bursty / diurnal), each op is stamped with its arrival time,
// and ops queue per client station when the station is busy -- so the
// recorded sojourn (arrival -> completion) includes queueing delay and the
// engine can model millions of clients with O(stations) state: all
// per-client bookkeeping is SoA (a seen-bitmap and fixed-capacity rings),
// never a per-client heap node or closure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/client_types.hpp"
#include "harness/deployment.hpp"
#include "harness/latency.hpp"
#include "harness/stats.hpp"

namespace rr::harness {

/// Value written by the k-th write (k >= 1) in generated workloads.
[[nodiscard]] inline Value value_for(Ts k) {
  return "v" + std::to_string(k);
}

/// Schedules `count` writes on shard 0 starting at `start`; each subsequent
/// write is invoked `gap` after the previous completed. Latencies/rounds
/// are accumulated into `stats` when non-null.
void write_stream(Deployment& d, Time start, Time gap, int count,
                  OpStats* stats = nullptr,
                  std::function<void()> on_done = nullptr);
/// Same, on a specific shard.
void write_stream(Deployment& d, int shard, Time start, Time gap, int count,
                  OpStats* stats = nullptr,
                  std::function<void()> on_done = nullptr);

/// Schedules `count` reads by reader `j` (shard 0) in the same chained
/// fashion.
void read_stream(Deployment& d, int reader, Time start, Time gap, int count,
                 OpStats* stats = nullptr,
                 std::function<void()> on_done = nullptr);
/// Same, on a specific shard.
void read_stream(Deployment& d, int shard, int reader, Time start, Time gap,
                 int count, OpStats* stats = nullptr,
                 std::function<void()> on_done = nullptr);

/// A mixed workload: per shard, one write stream plus one read stream per
/// reader, all concurrent. Returns after scheduling; call d.run() to
/// execute.
struct MixedWorkloadOptions {
  int writes{20};
  int reads_per_reader{20};
  Time start{0};
  Time write_gap{5'000};
  Time read_gap{3'000};
};

struct MixedWorkloadStats {
  OpStats writes;
  OpStats reads;
};

void mixed_workload(Deployment& d, const MixedWorkloadOptions& opts,
                    MixedWorkloadStats* stats = nullptr);

/// Read-only after a quiesced prefix of writes, per shard: a shard's writes
/// run first (serially), then all of its reads start. Useful for "read not
/// concurrent with write" experiments where safety must pin the exact
/// returned value.
void sequential_then_reads(Deployment& d, int writes, int reads_per_reader,
                           MixedWorkloadStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Open-loop load engine.

/// Arrival process shaping the open-loop offered load. Closed is the
/// sentinel "use the classic closed loop instead" (the scenario default).
enum class ArrivalKind {
  Closed,   ///< no open loop: chained streams with fixed think gaps
  Poisson,  ///< memoryless arrivals at rate clients / mean_think
  Bursty,   ///< on/off duty cycle: rate x boost inside bursts
  Diurnal,  ///< triangle ramp over the horizon (slow ends, busy middle)
};

[[nodiscard]] const char* to_string(ArrivalKind k);
[[nodiscard]] std::optional<ArrivalKind> arrival_from_name(
    std::string_view name);

struct OpenLoopOptions {
  ArrivalKind arrival{ArrivalKind::Poisson};
  /// Simulated client population. Clients hold no individual state beyond
  /// one bit; population only scales the arrival rate and the id space.
  std::uint64_t clients{1000};
  Time start{0};
  /// Arrivals are generated in [start, start + horizon); queued ops drain
  /// to completion afterwards.
  Time horizon{1'000'000};
  /// Mean think time per client (backend clock units): the base arrival
  /// rate is clients / mean_think.
  Time mean_think{1'000'000};
  double write_fraction{0.1};
  /// Bursty: cycle length (0 derives horizon / 8), in-burst duty fraction,
  /// and the rate multiplier inside a burst.
  Time burst_period{0};
  double burst_duty{0.25};
  double burst_boost{4.0};
  std::uint64_t seed{1};
  /// Per-station pending-op ring capacity; arrivals beyond it are shed
  /// (counted, never silently dropped).
  std::size_t queue_cap{1024};
};

/// Counters are exact after the run quiesces (relaxed during it).
struct OpenLoopStats {
  std::uint64_t arrivals{0};
  std::uint64_t writes_issued{0};
  std::uint64_t reads_issued{0};
  std::uint64_t completed{0};
  std::uint64_t shed{0};
  std::uint64_t max_queue_depth{0};
  std::uint64_t distinct_clients{0};
  /// Arrival -> completion (queueing included), the open-loop latency.
  LatencyRecorder sojourn;
};

/// Thinned-Poisson arrival-time sampler: candidate arrivals are exponential
/// at the shape's peak rate and accepted with probability rate(t) / peak, so
/// one code path serves all shapes. next() is allocation-free.
class ArrivalSampler {
 public:
  ArrivalSampler(const OpenLoopOptions& opts, std::uint64_t seed);

  /// Inter-arrival delta (>= 1 tick) from absolute time `now`.
  [[nodiscard]] Time next(Time now);

  /// Instantaneous acceptance probability at absolute time `t` (the shape,
  /// normalized to peak 1). Exposed for the shape-sanity tests.
  [[nodiscard]] double accept_probability(Time t) const;

 private:
  ArrivalKind kind_;
  Time start_;
  Time horizon_;
  Time burst_period_;
  double burst_duty_;
  double burst_boost_;
  double peak_rate_;  ///< candidate rate (arrivals per tick)
  Rng rng_;
};

/// Fixed-capacity FIFO of pending (arrival-time, client) pairs for one
/// client station, SoA so a million queued arrivals are two flat arrays.
/// push/pop never allocate after construction.
class StationRing {
 public:
  explicit StationRing(std::size_t capacity)
      : arrivals_(capacity), clients_(capacity) {}

  [[nodiscard]] bool push(Time arrival, std::uint32_t client) {
    if (size_ == arrivals_.size()) return false;
    const std::size_t slot = (head_ + size_) % arrivals_.size();
    arrivals_[slot] = arrival;
    clients_[slot] = client;
    ++size_;
    return true;
  }

  void pop(Time& arrival, std::uint32_t& client) {
    arrival = arrivals_[head_];
    client = clients_[head_];
    head_ = (head_ + 1) % arrivals_.size();
    --size_;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return arrivals_.size(); }

 private:
  std::vector<Time> arrivals_;
  std::vector<std::uint32_t> clients_;
  std::size_t head_{0};
  std::size_t size_{0};
};

/// Open-loop driver over a Deployment. launch() schedules the seeded
/// arrival chain; run the backend to quiescence, then read stats(). Client
/// c maps to shard c % shards; writes funnel through the shard's writer
/// station and reads through reader station (c / shards) % R, so each
/// station executes its queue one op at a time (histories stay well-formed)
/// while arrivals keep coming -- the gap between the two is the queue.
class OpenLoopEngine {
 public:
  OpenLoopEngine(Deployment& d, OpenLoopOptions opts);

  /// Schedules the arrival chain (call once, before Deployment::run()).
  void launch();

  /// Exact after the run quiesced.
  [[nodiscard]] const OpenLoopStats& stats() const { return stats_; }

 private:
  [[nodiscard]] std::size_t station_count() const;
  void schedule_next(Time t);
  void on_arrival(Time t);
  /// Issues the op for `client` on `station` at absolute time `at`
  /// (requires the station idle; marks it busy). Called under mu_.
  void issue(std::size_t station, Time arrival, std::uint32_t client,
             Time at);
  void on_complete(std::size_t station, Time arrival);

  Deployment& d_;
  OpenLoopOptions opts_;
  ArrivalSampler sampler_;
  Rng rng_;
  OpenLoopStats stats_;
  /// Serializes arrival/completion bookkeeping on the threads backend
  /// (uncontended on the DES).
  std::mutex mu_;
  std::vector<StationRing> rings_;  ///< [shard * (R+1) + j]
  std::vector<std::uint8_t> busy_;
  std::vector<Ts> next_write_k_;  ///< per shard
  std::vector<std::uint64_t> client_seen_;  ///< bitmap, one bit per client
  bool launched_{false};
};

}  // namespace rr::harness
