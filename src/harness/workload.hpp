// Workload generators over a Deployment.
//
// All workloads are chained through operation callbacks (one operation at a
// time per client, matching Section 2.2) and record into the deployment's
// per-shard HistoryLogs, so any run -- on either backend, at any shard
// count -- can be checked post-hoc. Streams target one shard; the mixed
// workloads fan out over every shard of the deployment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/client_types.hpp"
#include "harness/deployment.hpp"
#include "harness/stats.hpp"

namespace rr::harness {

/// Value written by the k-th write (k >= 1) in generated workloads.
[[nodiscard]] inline Value value_for(Ts k) {
  return "v" + std::to_string(k);
}

/// Schedules `count` writes on shard 0 starting at `start`; each subsequent
/// write is invoked `gap` after the previous completed. Latencies/rounds
/// are accumulated into `stats` when non-null.
void write_stream(Deployment& d, Time start, Time gap, int count,
                  OpStats* stats = nullptr,
                  std::function<void()> on_done = nullptr);
/// Same, on a specific shard.
void write_stream(Deployment& d, int shard, Time start, Time gap, int count,
                  OpStats* stats = nullptr,
                  std::function<void()> on_done = nullptr);

/// Schedules `count` reads by reader `j` (shard 0) in the same chained
/// fashion.
void read_stream(Deployment& d, int reader, Time start, Time gap, int count,
                 OpStats* stats = nullptr,
                 std::function<void()> on_done = nullptr);
/// Same, on a specific shard.
void read_stream(Deployment& d, int shard, int reader, Time start, Time gap,
                 int count, OpStats* stats = nullptr,
                 std::function<void()> on_done = nullptr);

/// A mixed workload: per shard, one write stream plus one read stream per
/// reader, all concurrent. Returns after scheduling; call d.run() to
/// execute.
struct MixedWorkloadOptions {
  int writes{20};
  int reads_per_reader{20};
  Time start{0};
  Time write_gap{5'000};
  Time read_gap{3'000};
};

struct MixedWorkloadStats {
  OpStats writes;
  OpStats reads;
};

void mixed_workload(Deployment& d, const MixedWorkloadOptions& opts,
                    MixedWorkloadStats* stats = nullptr);

/// Read-only after a quiesced prefix of writes, per shard: a shard's writes
/// run first (serially), then all of its reads start. Useful for "read not
/// concurrent with write" experiments where safety must pin the exact
/// returned value.
void sequential_then_reads(Deployment& d, int writes, int reads_per_reader,
                           MixedWorkloadStats* stats = nullptr);

}  // namespace rr::harness
