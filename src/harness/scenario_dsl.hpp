// Scenario DSL: a line-oriented text format for sweep scenarios.
//
// A .scn file is a complete, explicit harness::Scenario -- protocol,
// backend, budget, workload, semantics check, expected verdict, and the
// fault schedule, one fault per line:
//
//   # lost quorum: three crashes exceed t = 2
//   scenario safe des seed=7 name=lost-quorum
//   template overload
//   budget t=2 b=1 readers=2
//   workload writes=5 reads=3 write_gap=4000 read_gap=2500 shards=1
//   expect fail
//   fault crash obj=0 at=5000
//   fault crash obj=2 at=11000
//   fault crash obj=4 at=8000
//
// Times accept ns (default), us, ms and s suffixes on input; the emitter
// always writes canonical integer nanoseconds (the backend clock unit), so
// parse -> emit -> parse is the identity on both the text's meaning and the
// Scenario struct -- and therefore on the DES fingerprint
// (tests/test_scenario_dsl.cpp pins the round-trip property).
//
// The full grammar, the fault-primitive reference, and which primitives
// step outside the paper's reliable-channel model live in
// docs/SCENARIO_DSL.md. Scenario files enter a sweep through
// SweepPlan::library (sweep_cli --scenarios DIR); the shrinker emits its
// minimal failing schedules in this format (sweep_cli --emit-scenario) so
// they can be committed as regression fixtures.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "harness/sweep.hpp"

namespace rr::harness {

/// Outcome of parsing one scenario text. On failure `error` names the
/// offending line ("line 4: unknown fault kind 'flip'") and the scenario's
/// fields are unspecified.
struct ScenarioParseResult {
  bool ok{false};
  Scenario scenario;
  std::string error;
};

/// Parses one scenario from DSL text. Defaults are resolved here (e.g. a
/// flap without period= gets the canonical 20'000 ns), so emitting the
/// result reproduces every effective value explicitly.
[[nodiscard]] ScenarioParseResult parse_scenario(std::string_view text);

/// Emits the canonical DSL text for a scenario: every effective field
/// explicit, times in integer nanoseconds, doubles in shortest-round-trip
/// form. parse_scenario(emit_scenario(s)) == s for any parse result s.
[[nodiscard]] std::string emit_scenario(const Scenario& s);

/// File convenience wrappers. load reports I/O failures through `error`;
/// save returns false on I/O failure.
[[nodiscard]] ScenarioParseResult load_scenario_file(const std::string& path);
[[nodiscard]] bool save_scenario_file(const Scenario& s,
                                      const std::string& path);

/// Every *.scn file of a directory, in filename order (so library cell
/// order -- and hence sweep report order -- is stable across platforms).
struct ScenarioLibrary {
  std::vector<Scenario> scenarios;
  std::vector<std::string> errors;  ///< "<path>: <error>" per rejected file

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

[[nodiscard]] ScenarioLibrary load_scenario_dir(const std::string& dir);

}  // namespace rr::harness
