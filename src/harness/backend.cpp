#include "harness/backend.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/assert.hpp"
#include "netio/mesh.hpp"
#include "runtime/cluster.hpp"
#include "sim/world.hpp"

namespace rr::harness {

const char* to_string(BackendKind k) {
  for (const auto& t : backend_registry()) {
    if (t.kind == k) return t.name;
  }
  return "?";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  for (const auto& t : backend_registry()) {
    if (name == t.name || (t.alias != nullptr && name == t.alias)) {
      return t.kind;
    }
  }
  return std::nullopt;
}

std::string backend_names() {
  std::string out;
  for (const auto& t : backend_registry()) {
    if (!out.empty()) out += '|';
    out += t.name;
  }
  return out;
}

namespace {

class SimBackend final : public Backend {
 public:
  explicit SimBackend(const BackendConfig& cfg) {
    sim::WorldOptions wopts;
    wopts.seed = cfg.seed;
    wopts.reserialize = cfg.reserialize;
    wopts.trace_fingerprint = cfg.trace_fingerprint;
    world_ = std::make_unique<sim::World>(wopts);
    switch (cfg.delay) {
      case DelayKind::Fixed:
        world_->set_delay_model(std::make_unique<sim::FixedDelay>(cfg.delay_lo));
        break;
      case DelayKind::Uniform:
        world_->set_delay_model(
            std::make_unique<sim::UniformDelay>(cfg.delay_lo, cfg.delay_hi));
        break;
      case DelayKind::HeavyTail:
        world_->set_delay_model(std::make_unique<sim::HeavyTailDelay>(
            cfg.delay_lo, cfg.delay_hi, 0.05));
        break;
    }
  }

  ProcessId add_process(std::unique_ptr<net::Process> p) override {
    return world_->add_process(std::move(p));
  }
  void start() override { world_->start(); }
  void post(Time at, ProcessId pid, net::PostFn fn) override {
    world_->post(std::max(at, world_->now()), pid, std::move(fn));
  }
  std::uint64_t run() override { return world_->run(); }
  [[nodiscard]] Time now() const override { return world_->now(); }

  void crash(ProcessId pid) override { world_->crash(pid); }
  void hold(ProcessId from, ProcessId to) override { world_->hold(from, to); }
  void release(ProcessId from, ProcessId to) override {
    world_->release(from, to);
  }
  void hold_all(ProcessId pid) override { world_->hold_all(pid); }
  void release_all(ProcessId pid) override { world_->release_all(pid); }

  void set_link_faults(const net::LinkFaults& lf) override {
    world_->set_link_faults(lf);
  }
  void set_gray(ProcessId pid, double factor) override {
    world_->set_gray(pid, factor);
  }
  bool set_clock_skew(ProcessId pid, std::int64_t offset) override {
    world_->set_clock_skew(pid, offset);
    return true;
  }
  [[nodiscard]] int num_processes() const override {
    return world_->num_processes();
  }

  [[nodiscard]] net::NetStats stats() const override {
    return world_->stats();
  }
  [[nodiscard]] net::Process& process(ProcessId pid) override {
    return world_->process(pid);
  }
  [[nodiscard]] const char* name() const override {
    return to_string(BackendKind::Sim);
  }
  [[nodiscard]] sim::World* world() override { return world_.get(); }

 private:
  std::unique_ptr<sim::World> world_;
};

class ThreadBackend final : public Backend {
 public:
  explicit ThreadBackend(const BackendConfig& cfg)
      : run_timeout_(cfg.run_timeout_ms), max_wall_ms_(cfg.max_wall_time_ms) {
    runtime::ClusterOptions copts;
    copts.seed = cfg.seed;
    copts.max_jitter_us = cfg.max_jitter_us;
    copts.reserialize = cfg.reserialize;
    copts.batched_drain = cfg.threads_batched_drain;
    copts.max_spin_iters = cfg.threads_max_spin;
    cluster_ = std::make_unique<runtime::Cluster>(copts);
  }

  ProcessId add_process(std::unique_ptr<net::Process> p) override {
    // Every harness-managed process is active: clients need their own
    // mailbox thread so posted invocations and completion callbacks run as
    // automaton steps, exactly as under the DES.
    return cluster_->add(std::move(p), /*active=*/true);
  }
  void start() override { cluster_->start(); }
  void post(Time at, ProcessId pid, net::PostFn fn) override {
    cluster_->post(at, pid, std::move(fn));
  }
  std::uint64_t run() override {
    // Once a bounded run has given up, the cluster is stopped: later runs
    // report immediately instead of burning another full deadline.
    if (timed_out_) return 0;
    const std::uint64_t before = cluster_->messages_delivered();
    const std::uint64_t bound = max_wall_ms_ > 0 ? max_wall_ms_ : run_timeout_;
    const bool quiesced =
        cluster_->run_quiescent(std::chrono::milliseconds(bound));
    if (!quiesced) {
      if (max_wall_ms_ > 0) {
        // Graceful degradation: stop the threads (joining them makes the
        // histories and stats safe to read single-threaded) and let the
        // harness turn this into a liveness-failure verdict.
        timed_out_ = true;
        cluster_->stop();
        return cluster_->messages_delivered() - before;
      }
      RR_ASSERT_MSG(quiesced,
                    "thread backend failed to quiesce: livelock or a fault "
                    "plan exceeding the resilience budget");
    }
    return cluster_->messages_delivered() - before;
  }
  [[nodiscard]] Time now() const override { return cluster_->now(); }

  void crash(ProcessId pid) override { cluster_->crash(pid); }
  void hold(ProcessId from, ProcessId to) override {
    cluster_->hold(from, to);
  }
  void release(ProcessId from, ProcessId to) override {
    cluster_->release(from, to);
  }
  void hold_all(ProcessId pid) override { cluster_->hold_all(pid); }
  void release_all(ProcessId pid) override { cluster_->release_all(pid); }

  void set_link_faults(const net::LinkFaults& lf) override {
    cluster_->set_link_faults(lf);
  }
  void set_gray(ProcessId pid, double factor) override {
    // Threads can't stretch channel delays after the fact, so gray is an
    // injected per-step delay: (factor - 1) x 20us approximates "answers
    // everything, factor-of-N late" at this harness's message scale.
    constexpr double kGrayStepNs = 20'000.0;
    const std::uint64_t ns =
        factor > 1.0 ? static_cast<std::uint64_t>((factor - 1.0) * kGrayStepNs)
                     : 0;
    cluster_->set_gray(pid, ns);
  }
  [[nodiscard]] bool timed_out() const override { return timed_out_; }
  [[nodiscard]] int num_processes() const override {
    return cluster_->num_processes();
  }

  [[nodiscard]] net::NetStats stats() const override {
    return cluster_->stats();
  }
  [[nodiscard]] net::Process& process(ProcessId pid) override {
    return cluster_->process(pid);
  }
  [[nodiscard]] const char* name() const override {
    return to_string(BackendKind::Threads);
  }
  [[nodiscard]] runtime::Cluster* cluster() override {
    return cluster_.get();
  }

 private:
  std::unique_ptr<runtime::Cluster> cluster_;
  std::uint64_t run_timeout_;
  std::uint64_t max_wall_ms_;
  bool timed_out_{false};
};

/// Real sockets: netio::Mesh behind the Backend contract. Mirrors
/// ThreadBackend's run()/timed_out() shape -- real time, bounded runs
/// degrade to a liveness verdict -- but every message genuinely crosses a
/// loopback-TCP socket as framed codec bytes, so the reserialize flag is
/// inherently satisfied and the fault surface lives in the userspace proxy
/// between sockets and automata (see netio/mesh.hpp).
class NetBackend final : public Backend {
 public:
  explicit NetBackend(const BackendConfig& cfg)
      : run_timeout_(cfg.run_timeout_ms), max_wall_ms_(cfg.max_wall_time_ms) {
    netio::MeshOptions mopts;
    mopts.seed = cfg.seed;
    mopts.max_jitter_us = cfg.max_jitter_us;
    mopts.max_frame_bytes = cfg.net_max_frame_bytes;
    mopts.frame_timeout_ms = cfg.net_frame_timeout_ms;
    mesh_ = std::make_unique<netio::Mesh>(mopts);
  }

  ProcessId add_process(std::unique_ptr<net::Process> p) override {
    return mesh_->add(std::move(p));
  }
  void start() override { mesh_->start(); }
  void post(Time at, ProcessId pid, net::PostFn fn) override {
    mesh_->post(at, pid, std::move(fn));
  }
  std::uint64_t run() override {
    if (timed_out_) return 0;
    const std::uint64_t before = mesh_->messages_delivered();
    const std::uint64_t bound = max_wall_ms_ > 0 ? max_wall_ms_ : run_timeout_;
    const bool quiesced =
        mesh_->run_quiescent(std::chrono::milliseconds(bound));
    if (!quiesced) {
      if (max_wall_ms_ > 0) {
        // A stalled quorum over real sockets is a red sweep cell, not a
        // hung CI job: stop the mesh and report a liveness verdict.
        timed_out_ = true;
        mesh_->stop();
        return mesh_->messages_delivered() - before;
      }
      RR_ASSERT_MSG(quiesced,
                    "net backend failed to quiesce: livelock, a dead "
                    "transport, or a fault plan exceeding the resilience "
                    "budget");
    }
    return mesh_->messages_delivered() - before;
  }
  [[nodiscard]] Time now() const override { return mesh_->now(); }

  void crash(ProcessId pid) override { mesh_->crash(pid); }
  void hold(ProcessId from, ProcessId to) override { mesh_->hold(from, to); }
  void release(ProcessId from, ProcessId to) override {
    mesh_->release(from, to);
  }
  void hold_all(ProcessId pid) override { mesh_->hold_all(pid); }
  void release_all(ProcessId pid) override { mesh_->release_all(pid); }

  void set_link_faults(const net::LinkFaults& lf) override {
    mesh_->set_link_faults(lf);
  }
  void set_gray(ProcessId pid, double factor) override {
    // Same mapping as the threads backend: gray is a per-frame delivery
    // delay of (factor - 1) x 20us on the slow-but-alive node.
    constexpr double kGrayStepNs = 20'000.0;
    const std::uint64_t ns =
        factor > 1.0 ? static_cast<std::uint64_t>((factor - 1.0) * kGrayStepNs)
                     : 0;
    mesh_->set_gray(pid, ns);
  }
  [[nodiscard]] bool timed_out() const override { return timed_out_; }
  [[nodiscard]] int num_processes() const override {
    return mesh_->num_processes();
  }

  [[nodiscard]] net::NetStats stats() const override { return mesh_->stats(); }
  [[nodiscard]] net::Process& process(ProcessId pid) override {
    return mesh_->process(pid);
  }
  [[nodiscard]] const char* name() const override {
    return to_string(BackendKind::Net);
  }
  [[nodiscard]] netio::Mesh* mesh() override { return mesh_.get(); }

 private:
  std::unique_ptr<netio::Mesh> mesh_;
  std::uint64_t run_timeout_;
  std::uint64_t max_wall_ms_;
  bool timed_out_{false};
};

template <class B>
std::unique_ptr<Backend> make_impl(const BackendConfig& cfg) {
  return std::make_unique<B>(cfg);
}

}  // namespace

const std::vector<BackendTraits>& backend_registry() {
  static const std::vector<BackendTraits> kRegistry = {
      {BackendKind::Sim, "des", "sim",
       "deterministic discrete-event simulator (virtual time)",
       &make_impl<SimBackend>},
      {BackendKind::Threads, "threads", "thread",
       "real threads with mailbox queues (wall-clock time)",
       &make_impl<ThreadBackend>},
      {BackendKind::Net, "net", "sockets",
       "loopback-TCP socket mesh with a fault-injecting userspace proxy",
       &make_impl<NetBackend>},
  };
  return kRegistry;
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const BackendConfig& cfg) {
  for (const auto& t : backend_registry()) {
    if (t.kind == kind) return t.make(cfg);
  }
  return nullptr;
}

}  // namespace rr::harness
