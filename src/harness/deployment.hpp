// One-stop construction of a simulated storage deployment.
//
// A Deployment wires together, inside a sim::World: one writer, R readers,
// and S base objects of the chosen protocol family, with a fault plan
// (crashed objects, Byzantine impostors by strategy) and a delay model. It
// exposes a protocol-agnostic invoke/read API plus a HistoryLog so tests and
// benches can drive any protocol through the same code paths and check the
// resulting history against the paper's correctness conditions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine.hpp"
#include "checker/history.hpp"
#include "common/types.hpp"
#include "core/client_types.hpp"
#include "sim/world.hpp"

namespace rr::core {
class Writer;
class SafeReader;
class RegularReader;
}  // namespace rr::core

namespace rr::baselines {
class PollingReader;
class AuthReader;
}  // namespace rr::baselines

namespace rr::harness {

enum class Protocol {
  Safe,              ///< Guerraoui-Vukolic safe storage (Figures 2-4)
  Regular,           ///< Guerraoui-Vukolic regular storage (Figures 5-6)
  RegularOptimized,  ///< + Section 5.1 cached history suffixes
  Abd,               ///< crash-only atomic baseline
  Polling,           ///< readers-don't-write safe baseline (b+1-round regime)
  FastWrite,         ///< 1-round writes, needs S >= 2t+2b+1
  Auth,              ///< authenticated regular baseline (1-round ops)
};

[[nodiscard]] const char* to_string(Protocol p);

/// Semantics each protocol promises (what the checker should verify).
enum class Semantics { Safe, Regular, Atomic };
[[nodiscard]] Semantics promised_semantics(Protocol p);

struct FaultPlan {
  std::vector<int> crashed;  ///< object indices crashed from time 0
  std::map<int, adversary::StrategyKind> byzantine;  ///< index -> strategy

  [[nodiscard]] int total_faulty() const {
    return static_cast<int>(crashed.size() + byzantine.size());
  }

  /// t crashed objects, none Byzantine.
  static FaultPlan crash_only(int count);
  /// `byz` Byzantine objects with `kind`, plus `crash` crashed ones (picked
  /// from the low indices: byzantine first, then crashed).
  static FaultPlan mixed(int byz, adversary::StrategyKind kind, int crash);
};

enum class DelayKind { Fixed, Uniform, HeavyTail };

struct DeploymentOptions {
  Resilience res{Resilience::optimal(1, 1)};
  Protocol protocol{Protocol::Safe};
  std::uint64_t seed{1};
  FaultPlan faults{};
  DelayKind delay{DelayKind::Uniform};
  Time delay_lo{1'000};
  Time delay_hi{10'000};
  bool reserialize{false};  ///< round-trip every message through the codec
  /// Regular-object history garbage collection: retain at most this many
  /// slots (0 = unlimited, the paper's presentation). Only meaningful for
  /// the Regular / RegularOptimized protocols.
  std::size_t history_limit{0};
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions opts);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] sim::World& world() { return *world_; }
  [[nodiscard]] const Topology& topo() const { return topo_; }
  [[nodiscard]] const Resilience& res() const { return opts_.res; }
  [[nodiscard]] const DeploymentOptions& options() const { return opts_; }
  [[nodiscard]] checker::HistoryLog& log() { return log_; }

  [[nodiscard]] ProcessId writer_pid() const { return topo_.writer(); }
  [[nodiscard]] ProcessId reader_pid(int j) const { return topo_.reader(j); }
  [[nodiscard]] ProcessId object_pid(int i) const { return topo_.object(i); }

  /// Schedules WRITE(v) at virtual time `at` (unlogged).
  void invoke_write(Time at, Value v, core::WriteCallback cb);
  /// Schedules READ() by reader j at virtual time `at` (unlogged).
  void invoke_read(Time at, int reader, core::ReadCallback cb);

  /// Logged variants: record invocation/response into the HistoryLog and
  /// then invoke `cb` (which may be null).
  void logged_write(Time at, Value v, core::WriteCallback cb = nullptr);
  void logged_read(Time at, int reader, core::ReadCallback cb = nullptr);

  /// Runs the world to quiescence and returns executed events.
  std::uint64_t run() { return world_->run(); }

  /// Checks the recorded history against the protocol's promised semantics
  /// (plus well-formedness).
  [[nodiscard]] checker::CheckReport check() const;
  [[nodiscard]] checker::CheckReport check(Semantics s) const;

  /// Direct access to the concrete client automata (asserts on protocol
  /// mismatch). Used by protocol-specific tests.
  [[nodiscard]] core::Writer& core_writer();
  [[nodiscard]] core::SafeReader& safe_reader(int j);
  [[nodiscard]] core::RegularReader& regular_reader(int j);
  [[nodiscard]] baselines::PollingReader& polling_reader(int j);
  [[nodiscard]] baselines::AuthReader& auth_reader(int j);
  [[nodiscard]] net::Process& object_process(int i);

 private:
  struct Clients;

  void build();
  void do_write(net::Context& ctx, Value v, core::WriteCallback cb);
  void do_read(net::Context& ctx, int reader, core::ReadCallback cb);

  DeploymentOptions opts_;
  Topology topo_;
  std::unique_ptr<sim::World> world_;
  std::unique_ptr<Clients> clients_;
  checker::HistoryLog log_;
};

/// The writer's key for the authenticated baseline (shared with readers,
/// unknown to base objects).
[[nodiscard]] std::string auth_key();

}  // namespace rr::harness
