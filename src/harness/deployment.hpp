// One-stop construction of a storage deployment over any backend.
//
// A Deployment wires together, on a harness::Backend (the deterministic
// discrete-event simulator or the threaded cluster): K shards -- each one
// writer plus R readers of the chosen protocol family -- served by S base
// objects, with a fault plan (crashed objects, Byzantine impostors by
// strategy) and a delay model. Protocol wiring comes from the
// protocol-traits registry (harness/protocol.hpp); the physical process
// layout comes from ShardLayout (harness/shard.hpp). It exposes a
// protocol-agnostic invoke/read API plus one HistoryLog per shard, so tests
// and benches can drive any protocol, on either substrate, at any shard
// count, through the same code paths and check every shard's history
// against the paper's correctness conditions.
#pragma once

#include <memory>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "adversary/byzantine.hpp"
#include "checker/history.hpp"
#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "harness/backend.hpp"
#include "harness/latency.hpp"
#include "harness/protocol.hpp"
#include "harness/shard.hpp"

namespace rr::core {
class Writer;
class SafeReader;
class RegularReader;
}  // namespace rr::core

namespace rr::baselines {
class PollingReader;
class AuthReader;
}  // namespace rr::baselines

namespace rr::harness {

struct FaultPlan {
  std::vector<int> crashed;  ///< object indices crashed from time 0
  std::map<int, adversary::StrategyKind> byzantine;  ///< index -> strategy

  [[nodiscard]] int total_faulty() const {
    return static_cast<int>(crashed.size() + byzantine.size());
  }

  /// t crashed objects, none Byzantine.
  static FaultPlan crash_only(int count);
  /// `byz` Byzantine objects with `kind`, plus `crash` crashed ones (picked
  /// from the low indices: byzantine first, then crashed).
  static FaultPlan mixed(int byz, adversary::StrategyKind kind, int crash);
};

struct DeploymentOptions {
  Resilience res{Resilience::optimal(1, 1)};
  Protocol protocol{Protocol::Safe};
  /// Execution substrate: deterministic DES or real threads.
  BackendKind backend{BackendKind::Sim};
  /// Number of independent registers served by the deployment. Each shard
  /// gets its own writer and res.num_readers readers; all shards share the
  /// res.num_objects base objects.
  int shards{1};
  std::uint64_t seed{1};
  FaultPlan faults{};
  DelayKind delay{DelayKind::Uniform};
  Time delay_lo{1'000};
  Time delay_hi{10'000};
  bool reserialize{false};  ///< round-trip every message through the codec
  /// DES backend: maintain the schedule fingerprint (sweep determinism).
  bool trace_fingerprint{false};
  /// Threads backend: max artificial delivery jitter (microseconds).
  std::uint32_t thread_jitter_us{0};
  /// Threads backend: swap-drain mailbox batching (default); false selects
  /// the per-message reference path (see BackendConfig).
  bool thread_batched_drain{true};
  /// Regular-object history hard cap: retain at most this many slots
  /// (0 = unlimited, the paper's presentation). Only meaningful for the
  /// Regular / RegularOptimized protocols.
  std::size_t history_limit{0};
  /// Regular-object watermark GC (ack-driven safe-prefix collection); off
  /// reproduces the paper's keep-everything objects, modulo the hard cap.
  bool history_gc{true};
  /// Seeded per-channel link faults (loss / duplication / reorder). The
  /// rules' pid scopes are OBJECT indices here; build() rewrites them to
  /// physical pids via the layout before installing on the backend.
  net::LinkFaults link_faults{};
  /// Per-object local-clock offsets (object index -> signed ns). DES only;
  /// silently ignored on threads (wall clocks don't lie).
  std::map<int, std::int64_t> clock_skew{};
  /// Threads backend: bounded run deadline (ms; 0 = disabled). See
  /// BackendConfig::max_wall_time_ms -- a stalled run reports through
  /// Backend::timed_out() instead of aborting.
  std::uint64_t thread_max_wall_ms{0};
  /// Windowed streaming checker: when nonzero, each shard's HistoryLog
  /// verifies and retires ops online once nothing live or future can
  /// overlap them, keeping checker memory O(window + in-flight) so soaks
  /// can run forever. 0 keeps the classic keep-everything batch checker.
  std::size_t checker_window{0};
  /// Property the windowed checker verifies (defaults to the protocol's
  /// promised semantics). Ignored when checker_window == 0; with the window
  /// on, check()/check_shard() must be called with this same semantics.
  std::optional<Semantics> checker_semantics{};
};

/// harness::Semantics -> checker::Property (the checker layer's mirror).
[[nodiscard]] checker::Property to_property(Semantics s);

class Deployment {
 public:
  explicit Deployment(DeploymentOptions opts);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] Backend& backend() { return *backend_; }
  /// The underlying simulator; asserts unless running on the DES backend.
  [[nodiscard]] sim::World& world();
  /// Logical single-register topology (what each shard's automata see).
  [[nodiscard]] const Topology& topo() const { return topo_; }
  /// Physical process layout across shards.
  [[nodiscard]] const ShardLayout& layout() const { return layout_; }
  [[nodiscard]] const Resilience& res() const { return opts_.res; }
  [[nodiscard]] const DeploymentOptions& options() const { return opts_; }
  [[nodiscard]] int shards() const { return opts_.shards; }
  [[nodiscard]] checker::HistoryLog& log(int shard = 0);
  [[nodiscard]] Time now() const { return backend_->now(); }
  [[nodiscard]] net::NetStats stats() const { return backend_->stats(); }

  /// Invoke -> response latency histograms, in backend clock units, fed by
  /// every WRITE/READ completion across all shards (logged or not). Read
  /// after run() for exact numbers; deterministic on the DES backend.
  [[nodiscard]] const LatencyRecorder& write_latency() const {
    return write_latency_;
  }
  [[nodiscard]] const LatencyRecorder& read_latency() const {
    return read_latency_;
  }

  [[nodiscard]] ProcessId writer_pid(int shard = 0) const {
    return layout_.writer(shard);
  }
  [[nodiscard]] ProcessId reader_pid(int j) const {
    return layout_.reader(0, j);
  }
  [[nodiscard]] ProcessId reader_pid(int shard, int j) const {
    return layout_.reader(shard, j);
  }
  [[nodiscard]] ProcessId object_pid(int i) const {
    return layout_.object(i);
  }

  /// Schedules WRITE(v) on shard 0 at time `at` (unlogged).
  void invoke_write(Time at, Value v, core::WriteCallback cb);
  void invoke_write(Time at, int shard, Value v, core::WriteCallback cb);
  /// Schedules READ() by reader j (shard 0) at time `at` (unlogged).
  void invoke_read(Time at, int reader, core::ReadCallback cb);
  void invoke_read(Time at, int shard, int reader, core::ReadCallback cb);

  /// Logged variants: record invocation/response into the shard's
  /// HistoryLog and then invoke `cb` (which may be null).
  void logged_write(Time at, Value v, core::WriteCallback cb = nullptr);
  void logged_write(Time at, int shard, Value v,
                    core::WriteCallback cb = nullptr);
  void logged_read(Time at, int reader, core::ReadCallback cb = nullptr);
  void logged_read(Time at, int shard, int reader,
                   core::ReadCallback cb = nullptr);

  /// Runs the backend to quiescence; returns events/messages processed.
  std::uint64_t run() { return backend_->run(); }

  /// Checks every shard's recorded history against the protocol's promised
  /// semantics (plus well-formedness); violations are prefixed with their
  /// shard when the deployment is sharded.
  [[nodiscard]] checker::CheckReport check() const;
  [[nodiscard]] checker::CheckReport check(Semantics s) const;
  /// Checks a single shard's history.
  [[nodiscard]] checker::CheckReport check_shard(int shard) const;
  [[nodiscard]] checker::CheckReport check_shard(int shard,
                                                 Semantics s) const;

  /// Windowed-checker residency for one shard (meaningful in batch mode
  /// too: retired is 0 and peak_live is the total recorded).
  [[nodiscard]] checker::WindowStats checker_stats(int shard) const;
  /// Aggregate across shards: retired/live sum, peak_live is the max.
  [[nodiscard]] checker::WindowStats checker_stats() const;

  /// Protocol-agnostic client handles (shard-indexed).
  [[nodiscard]] core::WriterClient& writer_client(int shard = 0);
  [[nodiscard]] core::ReaderClient& reader_client(int shard, int j);

  /// Direct access to the concrete client automata of shard 0 (asserts on
  /// protocol mismatch). Used by protocol-specific tests.
  [[nodiscard]] core::Writer& core_writer();
  [[nodiscard]] core::SafeReader& safe_reader(int j);
  [[nodiscard]] core::RegularReader& regular_reader(int j);
  [[nodiscard]] baselines::PollingReader& polling_reader(int j);
  [[nodiscard]] baselines::AuthReader& auth_reader(int j);
  [[nodiscard]] net::Process& object_process(int i);

 private:
  void build();
  void do_write(net::Context& ctx, int shard, Value v, core::WriteCallback cb);
  void do_read(net::Context& ctx, int shard, int reader, core::ReadCallback cb);

  DeploymentOptions opts_;
  ShardLayout layout_;
  Topology topo_;
  LatencyRecorder write_latency_;
  LatencyRecorder read_latency_;
  std::vector<core::WriterClient*> writers_;               // [shard]
  std::vector<std::vector<core::ReaderClient*>> readers_;  // [shard][j]
  std::vector<std::unique_ptr<checker::HistoryLog>> logs_;  // [shard]
  // Declared last so it is destroyed first: the threads backend joins its
  // worker/timer threads in its destructor, and those threads may still be
  // running closures that touch the logs and client tables above.
  std::unique_ptr<Backend> backend_;
};

}  // namespace rr::harness
