// Seeded scenario fuzzer + coverage accountant over the scenario DSL.
//
// The sweep grid (harness/sweep.hpp) pins ~1000 cells drawn from six fixed
// fault templates; the DSL (harness/scenario_dsl.hpp) adds hand-written
// gray-failure scenarios. Both sample the paper's adversary space --
// up to t faulty base objects, up to b of them Byzantine, plus
// scheduler-controlled asynchrony -- at a handful of human-chosen points.
// ScenarioFuzzer turns that into an open-ended search: it generates
// well-formed Scenario structs whose fault schedules are composed from the
// model-legal primitive set (crash / byz / hold / partition / flap / gray /
// skew / benign link chaos) and respect the declared (t, b) budget *by
// construction*, so every generated cell must pass -- any failure is a
// protocol or harness bug, and it feeds the existing ddmin shrinker and is
// emitted as a committed-ready .scn fixture automatically.
//
// Determinism contract: generate(i) is a pure function of (options().seed,
// i). No wall clock, no global state; the same (seed, count) yields the
// same scenarios, cell keys, verdicts and DES fingerprints across runs,
// machines and worker counts. Every scenario round-trips bit-identically
// through emit_scenario/parse_scenario (tests/test_fuzz.cpp pins both
// properties over 10k scenarios).
//
// The "overload" knob deliberately breaks the budget (t+1 crashes timed to
// strand later operations) for a seeded fraction of cells; those carry
// expect_ok = false and are counted separately, exercising the
// failure-detection path without turning the lane red.
//
// CoverageMatrix is the accountant behind `sweep_cli --coverage`: it folds
// scenario sets (the committed library, the fixtures, a fuzz batch) into a
// primitive x protocol count table and names the model-legal cells nothing
// exercises (tests/test_coverage.cpp pins that the committed library leaves
// none).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario_dsl.hpp"
#include "harness/sweep.hpp"

namespace rr::harness {

/// Knobs of one fuzz batch. Everything that shapes generation is in here,
/// so a batch is replayable from {seed, count} plus the explicit options.
struct FuzzOptions {
  std::uint64_t seed{1};
  int count{100};
  /// Protocol / backend pools to draw from; empty = every registered
  /// protocol / both backends.
  std::vector<Protocol> protocols;
  std::vector<BackendKind> backends;
  /// Fraction of cells generated as deliberate budget violations (t+1
  /// crashes, expect_ok = false, DES-only so the stall is deterministic).
  double overload_rate{0.0};
  /// Check every generated scenario against these semantics instead of the
  /// protocol's own promise. A *stronger* override (Atomic on a safe
  /// protocol) is the supported way to inject known-bad cells end-to-end;
  /// tests use it to pin the auto-fixture pipeline.
  std::optional<Semantics> check_override{};
  /// Where failing cells' .scn fixtures go ("" = don't write). Each
  /// unexpected failure emits "<name>.scn" (the full scenario, expect fail)
  /// and, when the engine shrank it, "<name>.min.scn" (the 1-minimal
  /// schedule). Both replay the failure standalone.
  std::string fixture_dir;
  /// Failing DES cells shrunk per batch (SweepPlan::max_shrinks).
  int max_shrinks{4};
};

class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(FuzzOptions opts);

  [[nodiscard]] const FuzzOptions& options() const { return opts_; }

  /// The `index`-th scenario of the batch: a pure function of
  /// (options().seed, index). Always parse-legal, always round-trips.
  [[nodiscard]] Scenario generate(std::uint64_t index) const;

  /// generate(0 .. count-1).
  [[nodiscard]] std::vector<Scenario> batch() const;

 private:
  FuzzOptions opts_;
};

/// Outcome of one fuzz batch (run_fuzz).
struct FuzzResult {
  SweepReport report;               ///< one cell per generated scenario
  std::vector<Scenario> scenarios;  ///< batch, index order
  int overload_cells{0};            ///< cells generated with expect_ok=false
  /// Keys of cells whose verdict differed from the expectation -- for a
  /// green lane this must be empty (overload cells that stall as designed
  /// are *expected* and do not appear here).
  std::vector<std::string> unexpected;
  std::vector<std::string> fixtures;  ///< .scn paths written to fixture_dir
};

/// Generates the batch, runs it as a library-only sweep (the engine shrinks
/// failing DES cells), and emits fixtures for unexpected failures.
[[nodiscard]] FuzzResult run_fuzz(const FuzzOptions& opts, int workers = 0);

/// The canonical primitive label of one fault event. Client-role gray/skew
/// count as their own primitives ("gray-client", "skew-client"): clients
/// are the other half of the model's timing clause, and a library that only
/// ever slows base objects has not exercised them.
[[nodiscard]] std::string primitive_name(const FaultEvent& ev);

/// Every primitive label, table order.
[[nodiscard]] const std::vector<std::string>& all_primitives();

/// The primitives inside the paper's fault model (everything except `loss`
/// and `dup`, which violate the reliable-channel assumption) -- the set the
/// coverage gate requires per protocol.
[[nodiscard]] const std::vector<std::string>& model_legal_primitives();

/// Primitive x protocol x budget accountant over scenario sets.
struct CoverageMatrix {
  /// counts[primitive][protocol cli_name] = number of fault events.
  std::map<std::string, std::map<std::string, int>> counts;
  std::set<std::pair<int, int>> budgets;  ///< (t, b) pairs seen
  int scenarios_seen{0};

  void add(const Scenario& s);
  void add_all(const std::vector<Scenario>& scenarios);

  /// Model-legal primitive x protocol cells with no event, as
  /// "<primitive> x <protocol>" strings ("byz" is skipped for protocols
  /// whose resilience recipe forces b = 0). Empty = full coverage.
  [[nodiscard]] std::vector<std::string> missing() const;

  /// Human-readable count table (protocol columns, primitive rows), plus
  /// the budget list and the gate verdict.
  [[nodiscard]] std::string table() const;
};

}  // namespace rr::harness
