// Execution backends: one interface over the discrete-event simulator and
// the threaded cluster.
//
// The paper's computation model (Section 2.1, steps <p, M>) is runtime-
// agnostic, and so are the automata (net::Process). A Backend is everything
// a harness needs from the runtime beneath those automata: registering
// processes, scheduling operation invocations as timed closure steps,
// running to quiescence, fault injection (crashes, held channels), a clock,
// and traffic statistics. Deployment, the workloads, chaos injection and
// the history checker are written against this interface, so every
// protocol x fault-plan x workload scenario runs identically under the DES
// (deterministic, virtual time) and under real threads (wall-clock time,
// genuine concurrency) -- one flag flips the substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/faults.hpp"
#include "net/process.hpp"
#include "net/stats.hpp"

namespace rr::sim {
class World;
}
namespace rr::runtime {
class Cluster;
}
namespace rr::netio {
class Mesh;
}

namespace rr::harness {

enum class BackendKind {
  Sim,      ///< deterministic discrete-event simulator (sim::World)
  Threads,  ///< real threads with mailbox queues (runtime::Cluster)
  Net,      ///< real loopback-TCP sockets + epoll loops (netio::Mesh)
};

[[nodiscard]] const char* to_string(BackendKind k);
[[nodiscard]] std::optional<BackendKind> backend_from_name(
    std::string_view name);

enum class DelayKind { Fixed, Uniform, HeavyTail };

/// Backend-neutral runtime configuration.
struct BackendConfig {
  std::uint64_t seed{1};
  bool reserialize{false};  ///< round-trip every message through the codec

  // DES only: the channel delay model.
  DelayKind delay{DelayKind::Uniform};
  Time delay_lo{1'000};
  Time delay_hi{10'000};
  /// DES only: maintain sim::World's running schedule fingerprint (see
  /// WorldOptions::trace_fingerprint). The threads backend is genuinely
  /// nondeterministic, so it has no equivalent.
  bool trace_fingerprint{false};

  // Threads only: artificial delivery jitter (microseconds) and the bound
  // on one run-to-quiescence (a wait-free run only exceeds it on livelock).
  std::uint32_t max_jitter_us{0};
  std::uint64_t run_timeout_ms{120'000};
  /// Threads only: swap-drain mailbox batching (default). False selects the
  /// per-message reference path -- one lock/condvar round trip per envelope
  /// -- used by the batching-speedup bench ratio and the delivery-semantics
  /// parity tests. Semantics are identical either way.
  bool threads_batched_drain{true};
  /// Threads only: cap on the consumer's adaptive pre-park spin
  /// (iterations; 0 parks immediately).
  std::uint32_t threads_max_spin{256};
  /// Threads + net: bounded run deadline (milliseconds; 0 = disabled).
  /// With a deadline, a run() that fails to quiesce STOPS the substrate and
  /// reports through Backend::timed_out() instead of aborting the process
  /// -- so a sweep cell whose fault plan stalls its quorums (e.g. the
  /// overload template) degrades to a liveness-failure verdict. Without a
  /// deadline, non-quiescence stays fatal after run_timeout_ms.
  std::uint64_t max_wall_time_ms{0};

  /// Net only: per-frame payload cap the streaming decoder enforces (a
  /// larger length prefix is hostile, not a big message).
  std::uint32_t net_max_frame_bytes{16u << 20};
  /// Net only: a frame (or handshake) stuck mid-read longer than this is a
  /// truncating peer -- counted, connection dropped, reconnect takes over.
  std::uint64_t net_frame_timeout_ms{5'000};
};

/// The runtime contract every execution substrate must honor. A new backend
/// implements this interface, gets a BackendKind entry, and the whole
/// harness surface -- Deployment, workloads, chaos, the history checker,
/// the cross-backend equivalence suite -- runs on it unchanged. The
/// reference semantics are the DES (sim::World); the invariants a backend
/// must keep are spelled out per member below, and
/// tests/test_cross_backend.cpp checks them end-to-end per protocol.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registers a process; ids MUST be assigned densely in registration
  /// order (0, 1, 2, ...) -- ShardLayout and Topology do pid arithmetic on
  /// that assumption. Called only before start().
  virtual ProcessId add_process(std::unique_ptr<net::Process> p) = 0;

  /// Calls on_start on every process, in id order; threads spin up here.
  /// Called exactly once, after all add_process calls.
  virtual void start() = 0;

  /// Schedules `fn` to run as one atomic step of process `pid` at time `at`
  /// on the backend clock (times in the past run as soon as possible).
  /// The closure must run with the same exclusivity as a message delivery:
  /// no other step of `pid` may be concurrent with it. Closures posted to a
  /// crashed process are silently skipped. Closures that fit net::PostFn's
  /// inline buffer must be stored without heap allocation.
  virtual void post(Time at, ProcessId pid, net::PostFn fn) = 0;

  /// Runs until no work remains: no undelivered messages, no pending posted
  /// closures, no step in flight. Messages buffered on held channels do NOT
  /// count as work (they may stay in transit forever, as in the proofs).
  /// Returns events executed / messages delivered by this run. Wait-free
  /// protocol runs must quiesce; a backend may bound the wait and abort on
  /// livelock.
  virtual std::uint64_t run() = 0;

  /// Current time on the backend clock (virtual ns for the DES, wall-clock
  /// ns since construction for threads). Monotone; operation latencies are
  /// differences of this clock, so its unit defines the latency unit.
  [[nodiscard]] virtual Time now() const = 0;

  // Fault injection. Semantics must match the DES exactly:
  //   - crash(p): p takes no further steps, ever. Undelivered messages to
  //     or from p are dropped (counted in NetStats), as are future sends;
  //     messages buffered on held channels adjacent to p are discarded
  //     immediately so they cannot be resurrected by release().
  //   - hold(from, to): messages sent on that channel are buffered, not
  //     delivered ("messages remain in transit"). Idempotent.
  //   - release(from, to): buffered messages are re-injected in FIFO order
  //     with fresh delays from the current time. No-op if not held.
  //   - hold_all/release_all: every channel adjacent to pid, both
  //     directions, excluding the never-used self-channel pid -> pid.
  virtual void crash(ProcessId pid) = 0;
  virtual void hold(ProcessId from, ProcessId to) = 0;
  virtual void release(ProcessId from, ProcessId to) = 0;
  virtual void hold_all(ProcessId pid) = 0;
  virtual void release_all(ProcessId pid) = 0;

  // Gray-failure library (see net::LinkFaults and docs/SCENARIO_DSL.md).
  // Both substrates implement link faults and gray processes with shared
  // NetStats accounting; clock skew is meaningful only under the DES.
  //   - set_link_faults: seeded per-channel loss / duplication / reorder.
  //     Call after the last add_process and before start().
  //   - set_gray(p, factor): p stays correct but slow -- the DES multiplies
  //     delays on p's channels, the cluster injects (factor-1) x 20us of
  //     stepping delay. factor <= 1 clears. Callable mid-run via post().
  //   - set_clock_skew(p, off): p's Context::now() reads shifted by `off`.
  //     Returns false where unsupported (threads: wall clocks don't lie).
  virtual void set_link_faults(const net::LinkFaults& lf) = 0;
  virtual void set_gray(ProcessId pid, double factor) = 0;
  virtual bool set_clock_skew(ProcessId pid, std::int64_t offset) {
    (void)pid;
    (void)offset;
    return false;
  }

  /// True when a bounded run (BackendConfig::max_wall_time_ms) gave up
  /// waiting for quiescence: a liveness failure, not a crash. The backend
  /// is stopped afterwards, so histories and stats are safe to read.
  [[nodiscard]] virtual bool timed_out() const { return false; }

  /// Number of registered processes (dense ids 0..n-1).
  [[nodiscard]] virtual int num_processes() const = 0;

  /// Traffic statistics. Byte counts must use wire::encoded_size() (the
  /// shared counting visitor) so cross-backend byte numbers are comparable.
  /// Only exact after run() has returned (threads count lock-free per
  /// slot).
  [[nodiscard]] virtual net::NetStats stats() const = 0;
  [[nodiscard]] virtual net::Process& process(ProcessId pid) = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Escape hatches for substrate-specific tests and tools; null when the
  /// backend is not of that kind.
  [[nodiscard]] virtual sim::World* world() { return nullptr; }
  [[nodiscard]] virtual runtime::Cluster* cluster() { return nullptr; }
  [[nodiscard]] virtual netio::Mesh* mesh() { return nullptr; }
};

/// One row of the backend registry: everything the harness needs to offer a
/// substrate -- its kind, canonical name, accepted aliases, a one-line
/// summary for CLI help text, and a factory. Mirrors the protocol-traits
/// registry: adding a backend is one entry in backend.cpp, and name
/// parsing, to_string and make_backend all follow automatically.
struct BackendTraits {
  BackendKind kind;
  const char* name;     ///< canonical name (to_string, JSON keys)
  const char* alias;    ///< one accepted alternate spelling (or nullptr)
  const char* summary;  ///< one-liner for --help text
  std::unique_ptr<Backend> (*make)(const BackendConfig& cfg);
};

/// The full table, in BackendKind declaration order.
[[nodiscard]] const std::vector<BackendTraits>& backend_registry();

/// "des|threads|net" -- the registry's canonical names, for error messages.
[[nodiscard]] std::string backend_names();

/// Builds a backend of `kind` from the neutral configuration.
[[nodiscard]] std::unique_ptr<Backend> make_backend(BackendKind kind,
                                                    const BackendConfig& cfg);

}  // namespace rr::harness
