// Server-centric storage model (paper Section 6).
//
// Base objects become first-class *servers*: they keep point-to-point
// channels to each other (gossip) and may send unsolicited messages to
// clients (push). A read in this model is a single client message followed
// by passive collection of pushes -- the "fastest possible operation"
// pattern the paper describes; the Proposition 1 lower bound migrates to
// this model unchanged (see Section 6 and tests/test_servercentric.cpp).
//
// The implementation here is a safe storage at optimal resilience:
//   - writes reuse the two-phase pre-write/write pattern (BlWriteMsg),
//   - servers gossip adopted values to every peer (so slow servers catch
//     up without writer help),
//   - servers push their <pw, w> state, stamped with a monotonically
//     increasing epoch, to every reader with an active subscription, once
//     on subscription and again on every state change,
//   - readers decide with the same evidence rule as the polling baseline
//     (vouch >= b+1 for the top candidate, every higher candidate denied by
//     >= t+b+1 servers).
//
// A completed read sends a courtesy cancel (seq 0) so servers stop pushing;
// this is bookkeeping, not a protocol round (the decision never depends on
// it).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::servercentric {

class Server : public net::Process {
 public:
  Server(const Topology& topo, int server_index);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  struct State {
    TsVal pw{TsVal::bottom()};
    TsVal w{TsVal::bottom()};
    friend bool operator==(const State&, const State&) = default;
  };
  [[nodiscard]] const State& state() const { return st_; }

  /// Number of pushes this server has sent (metric for the push-model
  /// traffic experiments).
  [[nodiscard]] std::uint64_t pushes_sent() const { return pushes_sent_; }

 private:
  void adopt(net::Context& ctx, Ts ts, const Value& val, bool write_phase,
             bool gossip);
  void push_to_subscribers(net::Context& ctx);

  Topology topo_;
  int index_;
  State st_;
  std::uint32_t epoch_{0};
  std::uint64_t pushes_sent_{0};
  /// Active read subscription per reader index (seq of the pending read).
  std::vector<std::optional<std::uint64_t>> subs_;
};

/// Push-model reader: one request, then passive collection.
class Reader : public net::Process {
 public:
  Reader(const Resilience& res, const Topology& topo, int reader_index);

  void read(net::Context& ctx, core::ReadCallback cb);
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return busy_; }
  /// Pushes consumed by the last completed read.
  [[nodiscard]] int last_pushes() const { return last_pushes_; }

 private:
  struct PerServer {
    bool heard{false};
    std::uint32_t epoch{0};
    std::vector<TsVal> pw_seen;
    std::vector<TsVal> w_seen;
  };

  [[nodiscard]] bool vouches(const PerServer& e, const TsVal& c) const;
  void try_decide(net::Context& ctx);

  Resilience res_;
  Topology topo_;
  int reader_index_;
  std::uint64_t seq_{0};
  bool busy_{false};
  int pushes_{0};
  int last_pushes_{0};
  std::vector<PerServer> view_;
  std::vector<TsVal> candidates_;
  core::ReadCallback cb_;
  Time invoked_at_{0};
};

}  // namespace rr::servercentric
