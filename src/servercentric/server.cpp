#include "servercentric/server.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace rr::servercentric {

Server::Server(const Topology& topo, int server_index)
    : topo_(topo), index_(server_index) {
  subs_.assign(static_cast<std::size_t>(topo.num_readers()), std::nullopt);
}

void Server::on_message(net::Context& ctx, ProcessId from,
                        const wire::Message& msg) {
  if (const auto* wr = std::get_if<wire::BlWriteMsg>(&msg)) {
    if (from != topo_.writer()) return;
    adopt(ctx, wr->ts, wr->val, wr->phase == 2, /*gossip=*/true);
    ctx.send(from, wire::BlWriteAckMsg{wr->phase, wr->ts});
  } else if (const auto* g = std::get_if<wire::ScGossipMsg>(&msg)) {
    if (!topo_.is_object(from)) return;  // only peers gossip
    // Merge without re-gossiping (one hop suffices: the originating server
    // already gossips to everyone, and correct servers only gossip
    // writer-sent data).
    bool changed = false;
    if (g->pw.ts > st_.pw.ts) {
      st_.pw = g->pw;
      changed = true;
    }
    if (g->w.ts > st_.w.ts) {
      st_.w = g->w;
      changed = true;
    }
    if (changed) {
      ++epoch_;
      push_to_subscribers(ctx);
    }
  } else if (const auto* rd = std::get_if<wire::ScReadMsg>(&msg)) {
    if (topo_.role_of(from) != Role::Reader) return;
    const auto j = static_cast<std::size_t>(topo_.reader_index(from));
    if (j >= subs_.size()) return;
    if (rd->seq == 0) {
      subs_[j].reset();  // courtesy cancel
      return;
    }
    subs_[j] = rd->seq;
    ++pushes_sent_;
    ctx.send(from, wire::ScPushMsg{rd->seq, epoch_, st_.pw, st_.w});
  }
}

void Server::adopt(net::Context& ctx, Ts ts, const Value& val,
                   bool write_phase, bool gossip) {
  bool changed = false;
  if (ts > st_.pw.ts) {
    st_.pw = TsVal{ts, val};
    changed = true;
  }
  if (write_phase && ts > st_.w.ts) {
    st_.w = TsVal{ts, val};
    changed = true;
  }
  if (!changed) return;
  ++epoch_;
  if (gossip) {
    for (int i = 0; i < topo_.num_objects(); ++i) {
      if (i == index_) continue;
      ctx.send(topo_.object(i), wire::ScGossipMsg{ts, st_.pw, st_.w});
    }
  }
  push_to_subscribers(ctx);
}

void Server::push_to_subscribers(net::Context& ctx) {
  for (std::size_t j = 0; j < subs_.size(); ++j) {
    if (!subs_[j].has_value()) continue;
    ++pushes_sent_;
    ctx.send(topo_.reader(static_cast<int>(j)),
             wire::ScPushMsg{*subs_[j], epoch_, st_.pw, st_.w});
  }
}

Reader::Reader(const Resilience& res, const Topology& topo, int reader_index)
    : res_(res), topo_(topo), reader_index_(reader_index) {}

void Reader::read(net::Context& ctx, core::ReadCallback cb) {
  RR_ASSERT_MSG(!busy_, "READ invoked while previous READ in progress");
  busy_ = true;
  ++seq_;
  pushes_ = 0;
  view_.assign(static_cast<std::size_t>(res_.num_objects), PerServer{});
  candidates_.clear();
  candidates_.push_back(TsVal::bottom());
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  // The single client->server message of the push model.
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::ScReadMsg{seq_});
  }
}

void Reader::on_message(net::Context& ctx, ProcessId from,
                        const wire::Message& msg) {
  const auto* push = std::get_if<wire::ScPushMsg>(&msg);
  if (push == nullptr || !busy_ || push->seq != seq_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  auto& e = view_[i];
  e.heard = true;
  e.epoch = std::max(e.epoch, push->epoch);
  auto add_unique = [](std::vector<TsVal>& xs, const TsVal& x) {
    if (std::find(xs.begin(), xs.end(), x) == xs.end()) xs.push_back(x);
  };
  add_unique(e.pw_seen, push->pw);
  add_unique(e.w_seen, push->w);
  const bool known = std::find(candidates_.begin(), candidates_.end(),
                               push->w) != candidates_.end();
  if (!known) candidates_.push_back(push->w);
  ++pushes_;
  try_decide(ctx);
}

bool Reader::vouches(const PerServer& e, const TsVal& c) const {
  for (const auto& v : e.pw_seen) {
    if (v == c || v.ts > c.ts) return true;
  }
  for (const auto& v : e.w_seen) {
    if (v == c || v.ts > c.ts) return true;
  }
  return false;
}

void Reader::try_decide(net::Context& ctx) {
  int responders = 0;
  for (const auto& e : view_) {
    if (e.heard) ++responders;
  }
  if (responders < res_.quorum()) return;

  auto vouch_count = [&](const TsVal& c) {
    int n = 0;
    for (const auto& e : view_) {
      if (e.heard && vouches(e, c)) ++n;
    }
    return n;
  };
  auto deny_count = [&](const TsVal& c) {
    int n = 0;
    for (const auto& e : view_) {
      if (e.heard && !vouches(e, c)) ++n;
    }
    return n;
  };

  std::vector<TsVal> sorted = candidates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const TsVal& a, const TsVal& b) { return a.ts > b.ts; });
  const int dead_threshold = res_.t + res_.b + 1;
  for (const auto& c : sorted) {
    if (vouch_count(c) < res_.b + 1) continue;
    bool blocked = false;
    for (const auto& higher : sorted) {
      if (higher.ts <= c.ts) break;
      if (deny_count(higher) < dead_threshold) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    busy_ = false;
    last_pushes_ = pushes_;
    // Courtesy cancel so servers stop pushing (not a protocol round).
    for (int i = 0; i < res_.num_objects; ++i) {
      ctx.send(topo_.object(i), wire::ScReadMsg{0});
    }
    core::ReadResult result;
    result.tsval = c;
    result.rounds = 1;  // one client->server message by construction
    result.invoked_at = invoked_at_;
    result.completed_at = ctx.now();
    result.returned_default = c.is_bottom();
    auto cb = std::move(cb_);
    cb_ = nullptr;
    if (cb) cb(result);
    return;
  }
}

}  // namespace rr::servercentric
