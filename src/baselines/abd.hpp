// ABD: the classic crash-only (b = 0) SWMR atomic register emulation
// (Attiya, Bar-Noy & Dolev, JACM 1995), over S = 2t+1 base objects.
//
// This is the baseline the paper positions Byzantine-tolerant storage
// against: 1-round writes, 2-round reads (query + write-back), majority
// quorums, *no* tolerance of arbitrary failures -- a single lying object can
// break it (demonstrated in tests/test_abd.cpp and bench_protocol_comparison).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::baselines {

/// Base object: stores the highest-timestamped pair it has seen.
class AbdObject : public net::Process {
 public:
  AbdObject(const Topology& topo, int object_index);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] const TsVal& stored() const { return tsval_; }
  void set_stored(TsVal v) { tsval_ = std::move(v); }

 private:
  Topology topo_;
  int index_;
  TsVal tsval_{TsVal::bottom()};
};

class AbdWriter : public core::WriterClient {
 public:
  AbdWriter(const Resilience& res, const Topology& topo);

  void write(net::Context& ctx, Value v, core::WriteCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return busy_; }

 private:
  Resilience res_;
  Topology topo_;
  Ts ts_{0};
  std::uint64_t seq_{0};
  bool busy_{false};
  std::vector<bool> acked_;
  int ack_count_{0};
  core::WriteCallback cb_;
  Time invoked_at_{0};
};

class AbdReader : public core::ReaderClient {
 public:
  AbdReader(const Resilience& res, const Topology& topo, int reader_index);

  void read(net::Context& ctx, core::ReadCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return phase_ != Phase::Idle; }

 private:
  enum class Phase { Idle, Query, WriteBack };

  void handle_query_ack(net::Context& ctx, ProcessId from,
                        const wire::AbdQueryAckMsg& m);
  void handle_store_ack(net::Context& ctx, ProcessId from,
                        const wire::AbdStoreAckMsg& m);

  Resilience res_;
  Topology topo_;
  int reader_index_;
  std::uint64_t seq_{0};
  Phase phase_{Phase::Idle};
  TsVal best_{TsVal::bottom()};
  std::vector<bool> acked_;
  int ack_count_{0};
  core::ReadCallback cb_;
  Time invoked_at_{0};
};

}  // namespace rr::baselines
