// Byzantine-tolerant safe storage whose readers DO NOT modify base-object
// state -- the regime in which the paper (after Abraham-Chockler-Keidar-
// Malkhi, PODC'04) shows reads need b+1 rounds with fewer than 2t+2b+1
// objects, and which the 2-round algorithm of Section 4 beats by letting
// readers write control data.
//
// Clean-room reconstruction. The decision rule is evidence-based:
//   candidates    = values reported in w fields (plus the initial value),
//   vouch(c)      = #objects whose pw or w ever matched c or exceeded c.ts,
//   deny(c)       = #responders that never vouched for c,
//   return c* with vouch >= b+1 such that every higher candidate is dead
//   (deny >= t+b+1).
// The two-phase write (pre-write then write) is what makes this sound: a
// value in any correct w field implies its pair reached t+1 correct pw
// fields, so genuine candidates always gather b+1 vouchers, while forged
// ones are denied by all >= t+b+1 correct responders. Waits are predicate-
// driven (replies beyond S-t count), matching the paper's model; a fresh
// poll round is issued whenever a full quorum of the current round is in but
// the predicate is still undecided, so the *measured* round count under
// attack grows with b (bench_protocol_comparison, bench_adversary_impact),
// while benign runs finish in 1 round.
//
// The same reader runs the fast-write configuration (S >= 2t+2b+1, 1-round
// writes, src/baselines/fastwrite.*): with the bigger quorum every first-
// round view already decides, reproducing the frontier of experiment E8.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::baselines {

/// Base object: <pw, w> pair, two-phase writes, state-preserving polls.
class PollObject : public net::Process {
 public:
  PollObject(const Topology& topo, int object_index);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  struct State {
    TsVal pw{TsVal::bottom()};
    TsVal w{TsVal::bottom()};
    friend bool operator==(const State&, const State&) = default;
  };
  [[nodiscard]] const State& state() const { return st_; }
  void set_state(State s) { st_ = std::move(s); }

 private:
  Topology topo_;
  int index_;
  State st_;
};

/// Two-phase writer (pre-write to S-t, then write to S-t): 2 rounds.
class PollingWriter : public core::WriterClient {
 public:
  PollingWriter(const Resilience& res, const Topology& topo);

  void write(net::Context& ctx, Value v, core::WriteCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return phase_ != 0; }

 private:
  Resilience res_;
  Topology topo_;
  Ts ts_{0};
  Value val_{};
  int phase_{0};  ///< 0 idle, 1 pre-write, 2 write
  std::vector<bool> acked_;
  int ack_count_{0};
  core::WriteCallback cb_;
  Time invoked_at_{0};
};

/// Read-only poller with the evidence-based decision rule above.
class PollingReader : public core::ReaderClient {
 public:
  PollingReader(const Resilience& res, const Topology& topo, int reader_index);

  void read(net::Context& ctx, core::ReadCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return busy_; }
  /// Poll rounds used by the last completed read (the paper's cost metric).
  [[nodiscard]] int last_rounds() const { return last_rounds_; }

 private:
  struct ObjEvidence {
    bool responded{false};
    std::vector<TsVal> pw_seen;  ///< distinct pw pairs reported (cumulative)
    std::vector<TsVal> w_seen;   ///< distinct w pairs reported (cumulative)
    std::uint32_t last_round{0};
  };

  void handle_ack(net::Context& ctx, ProcessId from, const wire::PollAckMsg& m);
  [[nodiscard]] bool vouches(const ObjEvidence& e, const TsVal& c) const;
  [[nodiscard]] int vouch_count(const TsVal& c) const;
  [[nodiscard]] int deny_count(const TsVal& c) const;
  void try_decide(net::Context& ctx);
  void maybe_next_round(net::Context& ctx);
  void send_round(net::Context& ctx);

  Resilience res_;
  Topology topo_;
  int reader_index_;

  std::uint64_t seq_{0};
  bool busy_{false};
  std::uint32_t round_{0};
  int acks_this_round_{0};
  std::vector<ObjEvidence> evidence_;
  std::vector<TsVal> candidates_;  ///< distinct w-field values seen
  core::ReadCallback cb_;
  Time invoked_at_{0};
  int last_rounds_{0};
};

}  // namespace rr::baselines
