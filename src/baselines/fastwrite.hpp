// Fast-write configuration: with S >= 2t+2b+1 base objects a single round
// suffices for WRITE (Abraham-Chockler-Keidar-Malkhi), and the polling
// reader's first quorum view already decides, so READ is 1 round too.
//
// Together with the 2t+b+1-object deployments this charts the resilience /
// round-complexity frontier of experiment E8: both operations drop to one
// round exactly when the object count crosses 2t+2b.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::baselines {

/// One-round writer over PollObject replicas (FwWriteMsg installs pw and w
/// atomically). Requires res.num_objects >= 2t+2b+1 for reads to stay safe.
class FastWriter : public core::WriterClient {
 public:
  FastWriter(const Resilience& res, const Topology& topo);

  void write(net::Context& ctx, Value v, core::WriteCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return busy_; }

 private:
  Resilience res_;
  Topology topo_;
  Ts ts_{0};
  bool busy_{false};
  std::vector<bool> acked_;
  int ack_count_{0};
  core::WriteCallback cb_;
  Time invoked_at_{0};
};

}  // namespace rr::baselines
