#include "baselines/fastwrite.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rr::baselines {

FastWriter::FastWriter(const Resilience& res, const Topology& topo)
    : res_(res), topo_(topo) {
  RR_ASSERT_MSG(res.num_objects >= 2 * res.t + 2 * res.b + 1,
                "fast (1-round) writes require S >= 2t+2b+1");
}

void FastWriter::write(net::Context& ctx, Value v, core::WriteCallback cb) {
  RR_ASSERT_MSG(!busy_, "WRITE invoked while previous WRITE in progress");
  ++ts_;
  busy_ = true;
  acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::FwWriteMsg{ts_, v});
  }
}

void FastWriter::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  const auto* ack = std::get_if<wire::FwWriteAckMsg>(&msg);
  if (ack == nullptr || !busy_ || ack->ts != ts_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  if (++ack_count_ >= res_.quorum()) {
    busy_ = false;
    core::WriteResult result;
    result.ts = ts_;
    result.rounds = 1;
    result.invoked_at = invoked_at_;
    result.completed_at = ctx.now();
    auto cb = std::move(cb_);
    cb_ = nullptr;
    if (cb) cb(result);
  }
}

}  // namespace rr::baselines
