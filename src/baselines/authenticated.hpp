// Authenticated-data baseline: regular storage with 1-round reads and
// writes at optimal resilience (S = 2t+b+1).
//
// The paper's introduction notes that with data authentication "regular
// storage can be implemented fairly simply, while achieving both optimal
// resilience and fast reads/writes" (after Malkhi & Reiter's Byzantine
// quorum systems). This module realizes that claim: the writer MACs every
// <ts, value> pair with a key shared with the readers (simulating
// signatures; HMAC-SHA256 from src/crypto). Byzantine objects can replay
// stale authenticated pairs but cannot forge fresh ones, so a reader simply
// returns the highest *validly authenticated* pair among S - t replies.
//
// This is the comparison point that quantifies what the paper's 2-round
// unauthenticated read buys: it avoids exactly this cryptography.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "crypto/sha256.hpp"
#include "net/process.hpp"

namespace rr::baselines {

/// Computes the MAC binding a timestamp to a value under the writer's key.
[[nodiscard]] wire::Mac make_mac(const std::string& key, Ts ts,
                                 const Value& val);
[[nodiscard]] bool verify_mac(const std::string& key, Ts ts, const Value& val,
                              const wire::Mac& mac);

/// Base object: stores the highest-timestamped authenticated triple it has
/// seen. It does not (and cannot) verify MACs -- verification is the
/// readers' job, which is what makes Byzantine objects powerless.
class AuthObject : public net::Process {
 public:
  AuthObject(const Topology& topo, int object_index);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  struct State {
    Ts ts{0};
    Value val{};
    wire::Mac mac{};
    friend bool operator==(const State&, const State&) = default;
  };
  [[nodiscard]] const State& state() const { return st_; }
  void set_state(State s) { st_ = std::move(s); }

 private:
  Topology topo_;
  int index_;
  State st_;
};

/// 1-round writer.
class AuthWriter : public core::WriterClient {
 public:
  AuthWriter(const Resilience& res, const Topology& topo, std::string key);

  void write(net::Context& ctx, Value v, core::WriteCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return busy_; }

 private:
  Resilience res_;
  Topology topo_;
  std::string key_;
  Ts ts_{0};
  bool busy_{false};
  std::vector<bool> acked_;
  int ack_count_{0};
  core::WriteCallback cb_;
  Time invoked_at_{0};
};

/// 1-round reader: highest validly-MACed pair among S - t replies.
class AuthReader : public core::ReaderClient {
 public:
  AuthReader(const Resilience& res, const Topology& topo, int reader_index,
             std::string key);

  void read(net::Context& ctx, core::ReadCallback cb) override;
  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return busy_; }
  /// Replies whose MAC failed verification (diagnostic; counts forgeries).
  [[nodiscard]] std::uint64_t rejected_macs() const { return rejected_macs_; }

 private:
  Resilience res_;
  Topology topo_;
  int reader_index_;
  std::string key_;
  std::uint64_t seq_{0};
  bool busy_{false};
  TsVal best_{TsVal::bottom()};
  std::vector<bool> acked_;
  int ack_count_{0};
  std::uint64_t rejected_macs_{0};
  core::ReadCallback cb_;
  Time invoked_at_{0};
};

}  // namespace rr::baselines
