#include "baselines/authenticated.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rr::baselines {

wire::Mac make_mac(const std::string& key, Ts ts, const Value& val) {
  // Domain-separate the timestamp from the value to prevent splicing.
  std::string payload = "rr-auth|";
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>(ts >> (8 * i)));
  }
  payload += val;
  return crypto::to_bytes(crypto::hmac_sha256(key, payload));
}

bool verify_mac(const std::string& key, Ts ts, const Value& val,
                const wire::Mac& mac) {
  std::string payload = "rr-auth|";
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>(ts >> (8 * i)));
  }
  payload += val;
  return crypto::mac_equal(crypto::hmac_sha256(key, payload), mac);
}

AuthObject::AuthObject(const Topology& topo, int object_index)
    : topo_(topo), index_(object_index) {}

void AuthObject::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  if (const auto* wr = std::get_if<wire::AuthWriteMsg>(&msg)) {
    if (from != topo_.writer()) return;
    if (wr->ts > st_.ts) {
      st_ = State{wr->ts, wr->val, wr->mac};
    }
    ctx.send(from, wire::AuthWriteAckMsg{wr->ts});
  } else if (const auto* rd = std::get_if<wire::AuthReadMsg>(&msg)) {
    ctx.send(from, wire::AuthReadAckMsg{rd->seq, st_.ts, st_.val, st_.mac});
  }
  (void)index_;
}

AuthWriter::AuthWriter(const Resilience& res, const Topology& topo,
                       std::string key)
    : res_(res), topo_(topo), key_(std::move(key)) {}

void AuthWriter::write(net::Context& ctx, Value v, core::WriteCallback cb) {
  RR_ASSERT_MSG(!busy_, "WRITE invoked while previous WRITE in progress");
  ++ts_;
  busy_ = true;
  acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  const wire::Mac mac = make_mac(key_, ts_, v);
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::AuthWriteMsg{ts_, v, mac});
  }
}

void AuthWriter::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  const auto* ack = std::get_if<wire::AuthWriteAckMsg>(&msg);
  if (ack == nullptr || !busy_ || ack->ts != ts_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  if (++ack_count_ >= res_.quorum()) {
    busy_ = false;
    core::WriteResult result;
    result.ts = ts_;
    result.rounds = 1;
    result.invoked_at = invoked_at_;
    result.completed_at = ctx.now();
    auto cb = std::move(cb_);
    cb_ = nullptr;
    if (cb) cb(result);
  }
}

AuthReader::AuthReader(const Resilience& res, const Topology& topo,
                       int reader_index, std::string key)
    : res_(res),
      topo_(topo),
      reader_index_(reader_index),
      key_(std::move(key)) {}

void AuthReader::read(net::Context& ctx, core::ReadCallback cb) {
  RR_ASSERT_MSG(!busy_, "READ invoked while previous READ in progress");
  ++seq_;
  busy_ = true;
  best_ = TsVal::bottom();
  acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::AuthReadMsg{seq_});
  }
}

void AuthReader::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  const auto* ack = std::get_if<wire::AuthReadAckMsg>(&msg);
  if (ack == nullptr || !busy_ || ack->seq != seq_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  ++ack_count_;
  // Replay is the only Byzantine capability left: stale-but-authentic pairs
  // lose the timestamp comparison, forged pairs fail verification.
  if (ack->ts != 0) {
    if (verify_mac(key_, ack->ts, ack->val, ack->mac)) {
      if (ack->ts > best_.ts) best_ = TsVal{ack->ts, ack->val};
    } else {
      ++rejected_macs_;
    }
  }
  if (ack_count_ >= res_.quorum()) {
    busy_ = false;
    core::ReadResult result;
    result.tsval = best_;
    result.rounds = 1;
    result.invoked_at = invoked_at_;
    result.completed_at = ctx.now();
    result.returned_default = best_.is_bottom();
    auto cb = std::move(cb_);
    cb_ = nullptr;
    if (cb) cb(result);
  }
}

}  // namespace rr::baselines
