#include "baselines/polling.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace rr::baselines {

PollObject::PollObject(const Topology& topo, int object_index)
    : topo_(topo), index_(object_index) {}

void PollObject::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  if (const auto* wr = std::get_if<wire::BlWriteMsg>(&msg)) {
    if (from != topo_.writer()) return;
    if (wr->phase == 1) {
      if (wr->ts > st_.pw.ts) st_.pw = TsVal{wr->ts, wr->val};
    } else {
      if (wr->ts > st_.w.ts) {
        st_.w = TsVal{wr->ts, wr->val};
        if (wr->ts > st_.pw.ts) st_.pw = st_.w;
      }
    }
    ctx.send(from, wire::BlWriteAckMsg{wr->phase, wr->ts});
  } else if (const auto* fw = std::get_if<wire::FwWriteMsg>(&msg)) {
    // Fast-write configuration: one message installs both fields.
    if (from != topo_.writer()) return;
    if (fw->ts > st_.w.ts) {
      st_.w = TsVal{fw->ts, fw->val};
      if (fw->ts > st_.pw.ts) st_.pw = st_.w;
    }
    ctx.send(from, wire::FwWriteAckMsg{fw->ts});
  } else if (const auto* poll = std::get_if<wire::PollMsg>(&msg)) {
    // State-preserving read: this is the defining constraint of the
    // baseline -- no reader-written control data.
    ctx.send(from, wire::PollAckMsg{poll->seq, poll->round, st_.pw, st_.w});
  }
  (void)index_;
}

PollingWriter::PollingWriter(const Resilience& res, const Topology& topo)
    : res_(res), topo_(topo) {}

void PollingWriter::write(net::Context& ctx, Value v, core::WriteCallback cb) {
  RR_ASSERT_MSG(phase_ == 0, "WRITE invoked while previous WRITE in progress");
  ++ts_;
  val_ = std::move(v);
  phase_ = 1;
  acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::BlWriteMsg{1, ts_, val_});
  }
}

void PollingWriter::on_message(net::Context& ctx, ProcessId from,
                               const wire::Message& msg) {
  const auto* ack = std::get_if<wire::BlWriteAckMsg>(&msg);
  if (ack == nullptr || phase_ == 0) return;
  if (ack->phase != phase_ || ack->ts != ts_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  if (++ack_count_ < res_.quorum()) return;

  if (phase_ == 1) {
    // Pre-write quorum reached: enter the write phase. The ordering
    // "phase 2 implies phase 1 completed" is what readers' evidence rule
    // relies on.
    phase_ = 2;
    acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
    ack_count_ = 0;
    for (int k = 0; k < res_.num_objects; ++k) {
      ctx.send(topo_.object(k), wire::BlWriteMsg{2, ts_, val_});
    }
    return;
  }
  phase_ = 0;
  core::WriteResult result;
  result.ts = ts_;
  result.rounds = 2;
  result.invoked_at = invoked_at_;
  result.completed_at = ctx.now();
  auto cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) cb(result);
}

PollingReader::PollingReader(const Resilience& res, const Topology& topo,
                             int reader_index)
    : res_(res), topo_(topo), reader_index_(reader_index) {}

void PollingReader::read(net::Context& ctx, core::ReadCallback cb) {
  RR_ASSERT_MSG(!busy_, "READ invoked while previous READ in progress");
  busy_ = true;
  ++seq_;
  round_ = 0;
  evidence_.assign(static_cast<std::size_t>(res_.num_objects), ObjEvidence{});
  candidates_.clear();
  candidates_.push_back(TsVal::bottom());  // the initial value is always a
                                           // candidate
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  send_round(ctx);
}

void PollingReader::send_round(net::Context& ctx) {
  ++round_;
  acks_this_round_ = 0;
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::PollMsg{seq_, round_});
  }
}

void PollingReader::on_message(net::Context& ctx, ProcessId from,
                               const wire::Message& msg) {
  if (const auto* ack = std::get_if<wire::PollAckMsg>(&msg)) {
    handle_ack(ctx, from, *ack);
  }
}

void PollingReader::handle_ack(net::Context& ctx, ProcessId from,
                               const wire::PollAckMsg& m) {
  if (!busy_ || m.seq != seq_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  auto& ev = evidence_[i];
  ev.responded = true;
  // Evidence is cumulative across poll rounds: late replies from earlier
  // rounds are just as useful (the model's reliable channels deliver them
  // while the read is still pending).
  auto add_unique = [](std::vector<TsVal>& xs, const TsVal& x) {
    if (std::find(xs.begin(), xs.end(), x) == xs.end()) xs.push_back(x);
  };
  add_unique(ev.pw_seen, m.pw);
  add_unique(ev.w_seen, m.w);
  if (m.round > ev.last_round) ev.last_round = m.round;
  if (m.round == round_) ++acks_this_round_;

  const bool known = std::find(candidates_.begin(), candidates_.end(), m.w) !=
                     candidates_.end();
  if (!known) candidates_.push_back(m.w);

  try_decide(ctx);
  if (busy_) maybe_next_round(ctx);
}

bool PollingReader::vouches(const ObjEvidence& e, const TsVal& c) const {
  for (const auto& v : e.pw_seen) {
    if (v == c || v.ts > c.ts) return true;
  }
  for (const auto& v : e.w_seen) {
    if (v == c || v.ts > c.ts) return true;
  }
  return false;
}

int PollingReader::vouch_count(const TsVal& c) const {
  int n = 0;
  for (const auto& e : evidence_) {
    if (e.responded && vouches(e, c)) ++n;
  }
  return n;
}

int PollingReader::deny_count(const TsVal& c) const {
  int n = 0;
  for (const auto& e : evidence_) {
    if (e.responded && !vouches(e, c)) ++n;
  }
  return n;
}

void PollingReader::try_decide(net::Context& ctx) {
  // Evidence from fewer than S - t responders can miss a completed write
  // entirely: the write's quorum need not intersect a smaller response
  // set, so a candidate's absence says nothing. A gray-slowed object that
  // missed both write phases but answers polls first would otherwise
  // decide the read alone with its stale <bottom, bottom> state (found by
  // the scenario fuzzer; pinned by poll-gray-stale-read.scn). With a full
  // quorum responded, any completed write's phase-2 quorum overlaps the
  // response set in >= S - 2t >= b + 1 objects, so genuine candidates are
  // always on the table before anything is returned.
  int responded = 0;
  for (const auto& e : evidence_) {
    if (e.responded) ++responded;
  }
  if (responded < res_.quorum()) return;
  // Return the highest vouched candidate once every strictly higher
  // candidate is dead. Candidates are scanned highest-first.
  std::vector<TsVal> sorted = candidates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const TsVal& a, const TsVal& b) { return a.ts > b.ts; });
  const int dead_threshold = res_.t + res_.b + 1;
  for (const auto& c : sorted) {
    if (vouch_count(c) >= res_.b + 1) {
      // All candidates with a strictly higher timestamp must be dead.
      bool blocked = false;
      for (const auto& higher : sorted) {
        if (higher.ts <= c.ts) break;
        if (deny_count(higher) < dead_threshold) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      busy_ = false;
      last_rounds_ = static_cast<int>(round_);
      core::ReadResult result;
      result.tsval = c;
      result.rounds = last_rounds_;
      result.invoked_at = invoked_at_;
      result.completed_at = ctx.now();
      result.returned_default = c.is_bottom();
      auto cb = std::move(cb_);
      cb_ = nullptr;
      if (cb) cb(result);
      return;
    }
  }
}

void PollingReader::maybe_next_round(net::Context& ctx) {
  // Undecided although a full quorum of the current round has replied:
  // solicit fresh evidence. (Termination: once every correct object's
  // replies are in, the decision predicate necessarily fires, so only
  // finitely many rounds are issued.)
  if (acks_this_round_ >= res_.quorum()) send_round(ctx);
}

}  // namespace rr::baselines
