#include "baselines/abd.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rr::baselines {

AbdObject::AbdObject(const Topology& topo, int object_index)
    : topo_(topo), index_(object_index) {}

void AbdObject::on_message(net::Context& ctx, ProcessId from,
                           const wire::Message& msg) {
  if (const auto* store = std::get_if<wire::AbdStoreMsg>(&msg)) {
    // Adopt strictly newer pairs; always ack (a write-back of an old value
    // must still make progress).
    if (store->tsval.ts > tsval_.ts) tsval_ = store->tsval;
    ctx.send(from, wire::AbdStoreAckMsg{store->seq});
  } else if (const auto* query = std::get_if<wire::AbdQueryMsg>(&msg)) {
    ctx.send(from, wire::AbdQueryAckMsg{query->seq, tsval_});
  }
  (void)topo_;
  (void)index_;
}

AbdWriter::AbdWriter(const Resilience& res, const Topology& topo)
    : res_(res), topo_(topo) {}

void AbdWriter::write(net::Context& ctx, Value v, core::WriteCallback cb) {
  RR_ASSERT_MSG(!busy_, "WRITE invoked while previous WRITE in progress");
  ++ts_;
  ++seq_;
  busy_ = true;
  acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::AbdStoreMsg{seq_, TsVal{ts_, v}});
  }
}

void AbdWriter::on_message(net::Context& ctx, ProcessId from,
                           const wire::Message& msg) {
  const auto* ack = std::get_if<wire::AbdStoreAckMsg>(&msg);
  if (ack == nullptr || !busy_ || ack->seq != seq_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  if (++ack_count_ >= res_.quorum()) {
    busy_ = false;
    core::WriteResult result;
    result.ts = ts_;
    result.rounds = 1;
    result.invoked_at = invoked_at_;
    result.completed_at = ctx.now();
    auto cb = std::move(cb_);
    cb_ = nullptr;
    if (cb) cb(result);
  }
}

AbdReader::AbdReader(const Resilience& res, const Topology& topo,
                     int reader_index)
    : res_(res), topo_(topo), reader_index_(reader_index) {}

void AbdReader::read(net::Context& ctx, core::ReadCallback cb) {
  RR_ASSERT_MSG(phase_ == Phase::Idle,
                "READ invoked while previous READ in progress");
  ++seq_;
  phase_ = Phase::Query;
  best_ = TsVal::bottom();
  acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::AbdQueryMsg{seq_});
  }
}

void AbdReader::on_message(net::Context& ctx, ProcessId from,
                           const wire::Message& msg) {
  if (const auto* q = std::get_if<wire::AbdQueryAckMsg>(&msg)) {
    handle_query_ack(ctx, from, *q);
  } else if (const auto* s = std::get_if<wire::AbdStoreAckMsg>(&msg)) {
    handle_store_ack(ctx, from, *s);
  }
}

void AbdReader::handle_query_ack(net::Context& ctx, ProcessId from,
                                 const wire::AbdQueryAckMsg& m) {
  if (phase_ != Phase::Query || m.seq != seq_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  if (m.tsval.ts > best_.ts) best_ = m.tsval;
  if (++ack_count_ >= res_.quorum()) {
    // Write-back phase: propagate the chosen pair to a majority so that
    // subsequent reads cannot observe an older value (atomicity).
    ++seq_;
    phase_ = Phase::WriteBack;
    acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
    ack_count_ = 0;
    for (int k = 0; k < res_.num_objects; ++k) {
      ctx.send(topo_.object(k), wire::AbdStoreMsg{seq_, best_});
    }
  }
}

void AbdReader::handle_store_ack(net::Context& ctx, ProcessId from,
                                 const wire::AbdStoreAckMsg& m) {
  if (phase_ != Phase::WriteBack || m.seq != seq_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (acked_[i]) return;
  acked_[i] = true;
  if (++ack_count_ >= res_.quorum()) {
    phase_ = Phase::Idle;
    core::ReadResult result;
    result.tsval = best_;
    result.rounds = 2;
    result.invoked_at = invoked_at_;
    result.completed_at = ctx.now();
    auto cb = std::move(cb_);
    cb_ = nullptr;
    if (cb) cb(result);
  }
}

}  // namespace rr::baselines
