#include "crypto/sha256.hpp"

#include <cstring>

namespace rr::crypto {
namespace {

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

struct Sha256State {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  void compress(const std::uint8_t* block) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = hh + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

}  // namespace

Digest sha256(const std::string& data) {
  Sha256State state;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t n = data.size();

  std::size_t offset = 0;
  while (n - offset >= 64) {
    state.compress(bytes + offset);
    offset += 64;
  }

  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::uint8_t block[128] = {0};
  const std::size_t rem = n - offset;
  std::memcpy(block, bytes + offset, rem);
  block[rem] = 0x80;
  const std::size_t total = (rem + 1 + 8 <= 64) ? 64 : 128;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(n) * 8;
  for (int i = 0; i < 8; ++i) {
    block[total - 1 - static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  state.compress(block);
  if (total == 128) state.compress(block + 64);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(state.h[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(state.h[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(state.h[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(state.h[i]);
  }
  return out;
}

Digest hmac_sha256(const std::string& key, const std::string& data) {
  std::string k = key;
  if (k.size() > 64) {
    const Digest kd = sha256(k);
    k.assign(reinterpret_cast<const char*>(kd.data()), kd.size());
  }
  k.resize(64, '\0');

  std::string inner(64, '\0');
  std::string outer(64, '\0');
  for (std::size_t i = 0; i < 64; ++i) {
    inner[i] = static_cast<char>(k[i] ^ 0x36);
    outer[i] = static_cast<char>(k[i] ^ 0x5c);
  }
  const Digest inner_digest = sha256(inner + data);
  return sha256(outer + std::string(reinterpret_cast<const char*>(
                                        inner_digest.data()),
                                    inner_digest.size()));
}

std::string to_hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const auto byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

std::string to_bytes(const Digest& d) {
  return std::string(reinterpret_cast<const char*>(d.data()), d.size());
}

bool mac_equal(const Digest& d, const std::string& mac) {
  if (mac.size() != d.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    diff |= static_cast<unsigned>(d[i] ^
                                  static_cast<std::uint8_t>(mac[i]));
  }
  return diff == 0;
}

}  // namespace rr::crypto
