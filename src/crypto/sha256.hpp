// SHA-256 and HMAC-SHA256, implemented from scratch (FIPS 180-4 / RFC 2104).
//
// Used by the authenticated-data baseline (src/baselines/authenticated.*) to
// simulate writer signatures: Byzantine base objects do not hold the writer's
// key, so they cannot forge fresh values -- exactly the unforgeability the
// paper's footnote on authenticated storage relies on. Verified against the
// standard NIST/RFC test vectors in tests/test_crypto.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace rr::crypto {

using Digest = std::array<std::uint8_t, 32>;

[[nodiscard]] Digest sha256(const std::string& data);

[[nodiscard]] Digest hmac_sha256(const std::string& key,
                                 const std::string& data);

[[nodiscard]] std::string to_hex(const Digest& d);

/// Digest as a 32-byte binary string (the wire form of a Mac).
[[nodiscard]] std::string to_bytes(const Digest& d);

/// Constant-time comparison of a digest against a wire Mac.
[[nodiscard]] bool mac_equal(const Digest& d, const std::string& mac);

}  // namespace rr::crypto
