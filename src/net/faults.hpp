// Probabilistic per-channel link faults, shared by every backend.
//
// The paper's model assumes reliable point-to-point channels: messages are
// neither lost, duplicated, nor corrupted (reordering, however, is fully
// legal -- delays are arbitrary). The gray-failure library deliberately
// steps outside that model with seeded message LOSS and DUPLICATION, and
// stays inside it with forced REORDERING (an extra scheduled delay, so
// later sends overtake). Both backends consume this one configuration and
// account the perturbations in the same net::NetStats counters, so a
// scenario that loses 20% of one object's traffic behaves comparably on
// the DES and on real threads.
//
// Sampling is seeded and (on the DES) consumed in deterministic event
// order from a dedicated RNG stream, so enabling a rule never perturbs the
// base delay sampling of unaffected runs.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace rr::net {

/// One probabilistic rule: fire with probability `p` on every message whose
/// channel is covered and whose send time falls inside [from, until).
struct LinkFaultRule {
  double p{0};
  Time from{0};
  Time until{0};  ///< 0 = no upper bound
  /// Scope: empty = every channel; otherwise only channels adjacent to one
  /// of these processes (either endpoint). Small lists, scanned linearly.
  std::vector<ProcessId> pids;

  [[nodiscard]] bool enabled() const { return p > 0; }
  [[nodiscard]] bool active(Time now) const {
    return p > 0 && now >= from && (until == 0 || now < until);
  }
  [[nodiscard]] bool covers(ProcessId a, ProcessId b) const {
    if (pids.empty()) return true;
    for (const ProcessId pid : pids) {
      if (pid == a || pid == b) return true;
    }
    return false;
  }
};

/// The full link-fault configuration a backend installs before start().
struct LinkFaults {
  LinkFaultRule loss;       ///< message silently dropped (model violation)
  LinkFaultRule duplicate;  ///< message delivered twice (model violation)
  LinkFaultRule reorder;    ///< message delayed by `reorder_delay` (legal)
  /// Extra delay, in backend clock units, a reordered message is deferred
  /// by (enough for several later sends on the channel to overtake it).
  Time reorder_delay{20'000};
  std::uint64_t seed{1};

  [[nodiscard]] bool any() const {
    return loss.enabled() || duplicate.enabled() || reorder.enabled();
  }
};

}  // namespace rr::net
