// Traffic statistics shared by every backend (the discrete-event simulator
// and the threaded cluster account messages identically, so experiments can
// compare byte/message counts across execution substrates).
#pragma once

#include <array>
#include <cstdint>
#include <variant>

#include "wire/messages.hpp"

namespace rr::net {

/// Aggregate traffic statistics, broken down by message type index.
struct NetStats {
  static constexpr std::size_t kNumTypes = std::variant_size_v<wire::Message>;

  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t messages_dropped{0};  ///< sent to crashed processes
  std::uint64_t bytes_sent{0};
  // Link-fault perturbations (net::LinkFaults); zero unless a scenario
  // installs a rule. Counted identically by both backends: a lost message
  // was counted as sent but never delivered; a duplicated one delivers one
  // extra copy (so delivered may exceed sent); a reordered one is delivered
  // late but exactly once.
  std::uint64_t messages_lost{0};
  std::uint64_t messages_duplicated{0};
  std::uint64_t messages_reordered{0};
  std::array<std::uint64_t, kNumTypes> messages_by_type{};
  std::array<std::uint64_t, kNumTypes> bytes_by_type{};
  // Regular-storage history shipping (zero for every other protocol):
  // slots carried by HIST_ACK replies, and how many of those replies were
  // flagged resyncs (hard-capped object evicted past a live reader's
  // watermark). Both backends account these at the same send boundary.
  std::uint64_t hist_slots_shipped{0};
  std::uint64_t hist_resyncs{0};
};

}  // namespace rr::net
