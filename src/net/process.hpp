// Runtime-agnostic process abstraction.
//
// Every protocol participant (writer, reader, base object, Byzantine
// impostor, server) is a deterministic message automaton: it reacts to
// delivered messages by updating local state and sending messages through a
// Context. This mirrors the computation model of Section 2.1 of the paper
// (steps <p, M>) and lets the exact same automaton run under the
// discrete-event simulator (sim::World) and the threaded cluster
// (runtime::Cluster).
//
// Automata must not block, sleep, or touch global state: all interaction
// with the world flows through Context.
#pragma once

#include "common/rng.hpp"
#include "common/small_fn.hpp"
#include "common/types.hpp"
#include "wire/messages.hpp"

namespace rr::net {

class Context {
 public:
  virtual ~Context() = default;

  /// The id of the process currently taking a step.
  [[nodiscard]] virtual ProcessId self() const = 0;

  /// Current (virtual or wall-clock-derived) time in nanoseconds. Automata
  /// may use this only for statistics, never for protocol decisions --
  /// the model is asynchronous.
  [[nodiscard]] virtual Time now() const = 0;

  /// Sends a message over the reliable point-to-point channel self() -> to.
  virtual void send(ProcessId to, wire::Message msg) = 0;

  /// Per-process deterministic random stream (Byzantine strategies and
  /// workloads only; honest protocol automata are deterministic).
  [[nodiscard]] virtual Rng& rng() = 0;
};

/// A closure scheduled to run as a step of some process (operation
/// invocations, chaos actions, timers). Runtimes store these in their event
/// queues; the 128-byte inline buffer is sized so the harness's invocation
/// closures -- this-pointer, shard index, a Value string and a completion
/// std::function -- never spill to the heap on post.
using PostFn = common::SmallFn<void(Context&), 128>;

class Process {
 public:
  virtual ~Process() = default;

  /// Invoked once before any message is delivered.
  virtual void on_start(Context& /*ctx*/) {}

  /// One atomic step: consume a delivered message, mutate state, send
  /// replies.
  virtual void on_message(Context& ctx, ProcessId from,
                          const wire::Message& msg) = 0;
};

}  // namespace rr::net
