#include "checker/history.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "checker/window.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rr::checker {

HistoryLog::HistoryLog() = default;
HistoryLog::~HistoryLog() = default;

std::size_t HistoryLog::record_invocation(OpRecord::Kind kind, int client,
                                          Time at, Value intended_value) {
  std::lock_guard lock(mu_);
  OpRecord rec;
  rec.kind = kind;
  rec.client = client;
  rec.invoked_at = at;
  rec.value = std::move(intended_value);
  ops_.push_back(std::move(rec));
  const std::size_t handle = recorded_++;
  peak_live_ = std::max<std::uint64_t>(peak_live_, ops_.size());
  if (stream_) stream_on_invocation(*stream_, ops_.back(), handle);
  return handle;
}

void HistoryLog::record_write_response(std::size_t handle, Time at, Ts ts,
                                       const Value& value) {
  std::lock_guard lock(mu_);
  RR_ASSERT(handle >= retired_base_ && handle < recorded_);
  auto& rec = ops_[handle - retired_base_];
  RR_ASSERT(rec.kind == OpRecord::Kind::Write && !rec.complete);
  rec.responded_at = at;
  rec.complete = true;
  rec.ts = ts;
  rec.value = value;
  ++completed_;
  if (stream_) {
    stream_on_response(*stream_, rec, handle);
    maybe_retire_locked();
  }
}

void HistoryLog::record_read_response(std::size_t handle, Time at,
                                      const TsVal& tsval) {
  std::lock_guard lock(mu_);
  RR_ASSERT(handle >= retired_base_ && handle < recorded_);
  auto& rec = ops_[handle - retired_base_];
  RR_ASSERT(rec.kind == OpRecord::Kind::Read && !rec.complete);
  rec.responded_at = at;
  rec.complete = true;
  rec.ts = tsval.ts;
  rec.value = tsval.val;
  ++completed_;
  if (stream_) {
    stream_on_response(*stream_, rec, handle);
    maybe_retire_locked();
  }
}

void HistoryLog::enable_window(std::size_t window, Property property) {
  std::lock_guard lock(mu_);
  RR_ASSERT_MSG(recorded_ == 0,
                "enable_window() must run before the first recorded op");
  RR_ASSERT(window >= 1);
  stream_ = std::make_unique<StreamState>();
  stream_->window = window;
  stream_->property = property;
}

bool HistoryLog::windowed() const {
  std::lock_guard lock(mu_);
  return stream_ != nullptr;
}

Property HistoryLog::window_property() const {
  std::lock_guard lock(mu_);
  RR_ASSERT(stream_ != nullptr);
  return stream_->property;
}

WindowStats HistoryLog::window_stats() const {
  std::lock_guard lock(mu_);
  WindowStats w;
  w.window = stream_ ? stream_->window : 0;
  w.retired = stream_ ? stream_->retired : 0;
  w.peak_live = peak_live_;
  w.live = ops_.size();
  return w;
}

CheckReport HistoryLog::final_check() const {
  std::lock_guard lock(mu_);
  RR_ASSERT_MSG(stream_ != nullptr, "final_check() requires windowed mode");
  return stream_final_check(*stream_, ops_);
}

void HistoryLog::maybe_retire_locked() {
  if (ops_.size() < stream_->window) return;
  retired_base_ += stream_attempt_retire(*stream_, ops_, retired_base_);
}

std::vector<OpRecord> HistoryLog::snapshot() const {
  std::lock_guard lock(mu_);
  return std::vector<OpRecord>(ops_.begin(), ops_.end());
}

std::size_t HistoryLog::size() const { return recorded_total(); }

std::size_t HistoryLog::recorded_total() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

std::size_t HistoryLog::completed_total() const {
  std::lock_guard lock(mu_);
  return completed_;
}

std::uint64_t HistoryLog::history_fingerprint() const {
  std::lock_guard lock(mu_);
  std::uint64_t h = stream_ ? stream_->retired_fp : kHistoryFpSeed;
  for (const auto& op : ops_) h = fp_fold_op(h, op);
  return h;
}

std::uint64_t fp_fold(std::uint64_t h, std::uint64_t v) { return mix64(h ^ v); }

std::uint64_t fp_fold_bytes(std::uint64_t h, const std::string& s) {
  h = fp_fold(h, s.size());
  // FNV-1a over the payload, folded in as one word: cheap and enough to
  // catch any payload divergence.
  std::uint64_t f = 1469598103934665603ULL;
  for (const unsigned char c : s) f = (f ^ c) * 1099511628211ULL;
  return fp_fold(h, f);
}

std::uint64_t fp_fold_op(std::uint64_t h, const OpRecord& op) {
  h = fp_fold(h, (op.kind == OpRecord::Kind::Write ? 1u : 2u) ^
                     (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(op.client))
                      << 8));
  h = fp_fold(h, op.invoked_at);
  h = fp_fold(h, op.responded_at);
  h = fp_fold(h, op.complete ? op.ts : ~std::uint64_t{0});
  h = fp_fold_bytes(h, op.value);
  return h;
}

std::string describe_op(const OpRecord& op) {
  std::ostringstream os;
  os << (op.kind == OpRecord::Kind::Write ? "WRITE" : "READ") << "(client="
     << op.client << ", ts=" << op.ts << ", value=\"" << op.value
     << "\", invoked=" << op.invoked_at << ", responded="
     << (op.complete ? std::to_string(op.responded_at) : "incomplete") << ")";
  return os.str();
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << "reads=" << reads_checked << " writes=" << writes_checked
     << " violations=" << violations.size();
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

namespace {

struct Indexed {
  std::vector<const OpRecord*> writes;  ///< invocation order
  std::vector<const OpRecord*> reads;
};

Indexed index_ops(const std::vector<OpRecord>& ops) {
  Indexed ix;
  for (const auto& op : ops) {
    if (op.kind == OpRecord::Kind::Write) {
      ix.writes.push_back(&op);
    } else {
      ix.reads.push_back(&op);
    }
  }
  return ix;
}

/// op1 (complete) precedes op2 iff op1 responded before op2 was invoked.
bool precedes(const OpRecord& op1, const OpRecord& op2) {
  return op1.complete && op1.responded_at < op2.invoked_at;
}

bool concurrent(const OpRecord& a, const OpRecord& b) {
  return !precedes(a, b) && !precedes(b, a);
}

std::string describe(const OpRecord& op) { return describe_op(op); }

/// Checks regularity condition (1): the returned <ts, value> corresponds to
/// an actual write invocation (or the initial value).
bool returned_value_was_written(const Indexed& ix, const OpRecord& rd,
                                std::string* why) {
  if (rd.ts == 0) {
    if (!rd.value.empty()) {
      *why = "returned timestamp 0 with non-initial value";
      return false;
    }
    return true;
  }
  // Writer timestamps are dense (1..N in invocation order), so ts identifies
  // the write. An incomplete write still counts: its value may legitimately
  // be returned by reads concurrent with it.
  if (rd.ts > ix.writes.size()) {
    *why = "returned timestamp larger than any invoked write";
    return false;
  }
  const OpRecord& wr = *ix.writes[static_cast<std::size_t>(rd.ts - 1)];
  if (wr.kind != OpRecord::Kind::Write) {
    *why = "timestamp does not name a write";
    return false;
  }
  // The intended value is recorded at invocation, so the check also covers
  // writes left incomplete by a writer crash.
  if (wr.value != rd.value) {
    *why = "returned value differs from the value written at that timestamp";
    return false;
  }
  return true;
}

}  // namespace

CheckReport check_well_formed(const std::vector<OpRecord>& ops) {
  CheckReport report;
  const Indexed ix = index_ops(ops);
  report.writes_checked = static_cast<int>(ix.writes.size());
  report.reads_checked = static_cast<int>(ix.reads.size());

  // Writer timestamps must be 1..N in invocation order.
  Ts expected = 1;
  for (const auto* wr : ix.writes) {
    if (wr->complete && wr->ts != expected) {
      report.violations.push_back("write timestamps not dense: expected " +
                                  std::to_string(expected) + ", " +
                                  describe(*wr));
    }
    ++expected;
  }

  // Per-client operations must not overlap (well-formedness of clients).
  std::map<std::pair<int, int>, std::vector<const OpRecord*>> per_client;
  for (const auto& op : ops) {
    per_client[{op.kind == OpRecord::Kind::Write ? 0 : 1, op.client}]
        .push_back(&op);
  }
  for (auto& [key, client_ops] : per_client) {
    std::sort(client_ops.begin(), client_ops.end(),
              [](const OpRecord* a, const OpRecord* b) {
                return a->invoked_at < b->invoked_at;
              });
    for (std::size_t i = 1; i < client_ops.size(); ++i) {
      const auto* prev = client_ops[i - 1];
      if (!prev->complete || prev->responded_at > client_ops[i]->invoked_at) {
        report.violations.push_back("client ops overlap: " + describe(*prev) +
                                    " vs " + describe(*client_ops[i]));
      }
    }
  }
  return report;
}

CheckReport check_safety(const std::vector<OpRecord>& ops) {
  CheckReport report;
  const Indexed ix = index_ops(ops);
  report.writes_checked = static_cast<int>(ix.writes.size());

  for (const auto* rd : ix.reads) {
    if (!rd->complete) continue;
    // Safety constrains only reads that are concurrent with no write.
    bool has_concurrent_write = false;
    Ts last_preceding = 0;
    for (const auto* wr : ix.writes) {
      if (concurrent(*wr, *rd)) {
        has_concurrent_write = true;
        break;
      }
      if (precedes(*wr, *rd) && wr->ts > last_preceding) {
        last_preceding = wr->ts;
      }
    }
    if (has_concurrent_write) continue;
    ++report.reads_checked;
    if (rd->ts != last_preceding) {
      report.violations.push_back(
          "safety: read returned ts " + std::to_string(rd->ts) +
          " but the last preceding write has ts " +
          std::to_string(last_preceding) + ": " + describe(*rd));
      continue;
    }
    std::string why;
    if (!returned_value_was_written(ix, *rd, &why)) {
      report.violations.push_back("safety: " + why + ": " + describe(*rd));
    }
  }
  return report;
}

CheckReport check_regularity(const std::vector<OpRecord>& ops) {
  CheckReport report;
  const Indexed ix = index_ops(ops);
  report.writes_checked = static_cast<int>(ix.writes.size());

  for (const auto* rd : ix.reads) {
    if (!rd->complete) continue;
    ++report.reads_checked;

    // Condition (1): only written values are returned.
    std::string why;
    if (!returned_value_was_written(ix, *rd, &why)) {
      report.violations.push_back("regularity(1): " + why + ": " +
                                  describe(*rd));
      continue;
    }

    // Condition (2): a read succeeding WRITE_k returns val_l with l >= k.
    Ts max_preceding = 0;
    for (const auto* wr : ix.writes) {
      if (precedes(*wr, *rd) && wr->complete && wr->ts > max_preceding) {
        max_preceding = wr->ts;
      }
    }
    if (rd->ts < max_preceding) {
      report.violations.push_back(
          "regularity(2): read returned ts " + std::to_string(rd->ts) +
          " although WRITE with ts " + std::to_string(max_preceding) +
          " precedes it: " + describe(*rd));
    }

    // Condition (3): a read returning val_k does not precede WRITE_k.
    if (rd->ts >= 1 && rd->ts <= ix.writes.size()) {
      const OpRecord& wr = *ix.writes[static_cast<std::size_t>(rd->ts - 1)];
      if (precedes(*rd, wr)) {
        report.violations.push_back(
            "regularity(3): read returned a value whose write was invoked "
            "only after the read responded: " +
            describe(*rd));
      }
    }
  }
  return report;
}

CheckReport check_atomicity(const std::vector<OpRecord>& ops) {
  CheckReport report = check_regularity(ops);
  const Indexed ix = index_ops(ops);

  // New-old inversion: for SWMR registers, regularity plus monotonicity of
  // non-concurrent reads is equivalent to atomicity (Lamport).
  for (const auto* r1 : ix.reads) {
    if (!r1->complete) continue;
    for (const auto* r2 : ix.reads) {
      if (!r2->complete || r1 == r2) continue;
      if (precedes(*r1, *r2) && r2->ts < r1->ts) {
        report.violations.push_back(
            "atomicity: new-old inversion: " + describe(*r1) +
            " precedes " + describe(*r2));
      }
    }
  }
  return report;
}

}  // namespace rr::checker
