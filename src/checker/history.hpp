// Operation-history recording and consistency checking.
//
// Harnesses record every operation invocation/response into a HistoryLog;
// the checkers then verify the paper's correctness conditions post-hoc:
//
//   safety     (Section 2.2): a READ not concurrent with any WRITE returns
//                the value of the last preceding WRITE (or the initial value).
//   regularity (Section 2.2): (1) every returned value was written (or is
//                the initial value), (2) a READ succeeding WRITE_k returns
//                val_l with l >= k, (3) a READ returning val_k (k >= 1) does
//                not precede WRITE_k.
//   atomicity  (for the ABD baseline): regularity + no new-old inversion
//                between non-concurrent READs (sufficient for SWMR
//                registers).
//
// Writes are identified by their writer timestamps (1, 2, 3, ...); the
// initial value is timestamp 0.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rr::checker {

struct StreamState;  // windowed streaming checker (checker/window.hpp)

/// Which register property the streaming checker verifies online. Mirrors
/// harness::Semantics without depending on the harness layer.
enum class Property { Safe, Regular, Atomic };

/// Residency observability for one log (meaningful in both modes: with the
/// window disabled `retired` is 0 and `peak_live` is simply the total).
struct WindowStats {
  std::size_t window{0};        ///< configured retirement batch size (0 = off)
  std::uint64_t retired{0};     ///< ops verified and retired so far
  std::uint64_t peak_live{0};   ///< high-watermark of resident (unretired) ops
  std::uint64_t live{0};        ///< currently resident ops
};

struct OpRecord {
  enum class Kind { Write, Read };

  Kind kind{Kind::Write};
  int client{0};  ///< reader index, or -1 for the writer
  Time invoked_at{0};
  Time responded_at{0};
  bool complete{false};

  /// Writes: the timestamp/value written. Reads: the timestamp/value
  /// returned (ts 0 = initial value).
  Ts ts{0};
  Value value{};
};

/// Result of a consistency check; empty `violations` means the property
/// holds on the given history.
struct CheckReport {
  std::vector<std::string> violations;
  int reads_checked{0};
  int writes_checked{0};

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Thread-safe append-only operation log (shared by the simulator harnesses
/// and the threaded runtime).
///
/// Two modes. In the default batch mode every op is retained forever and the
/// free-function checkers below run post-hoc over `snapshot()`. With
/// `enable_window()` the log becomes a *streaming* checker: once every op
/// that could overlap the oldest resident op has completed, that op is
/// verified online (same conditions, same violation messages as the batch
/// checkers) and retired, so steady-state memory is O(window + in-flight)
/// and a soak can run forever. `final_check()` then combines the retired
/// prefix's verdict with a batch pass over the residual suffix.
class HistoryLog {
 public:
  HistoryLog();
  ~HistoryLog();
  HistoryLog(const HistoryLog&) = delete;
  HistoryLog& operator=(const HistoryLog&) = delete;

  /// Returns an opaque handle to later mark completion. For writes,
  /// `intended_value` records the value being written so that a write left
  /// incomplete by a crash can still be matched against concurrent reads.
  std::size_t record_invocation(OpRecord::Kind kind, int client, Time at,
                                Value intended_value = {});
  void record_write_response(std::size_t handle, Time at, Ts ts,
                             const Value& value);
  void record_read_response(std::size_t handle, Time at, const TsVal& tsval);

  /// Switches to windowed streaming mode. Must be called before the first
  /// op is recorded; `property` fixes what the streaming verifier checks
  /// (it cannot be changed later -- retired ops are gone). Retirement is
  /// attempted whenever more than `window` ops are resident; an op is only
  /// retired once nothing live or future can overlap it, so a stuck
  /// (incomplete) op pins the window -- retirement never outruns what is
  /// verifiable.
  void enable_window(std::size_t window, Property property);

  [[nodiscard]] bool windowed() const;
  /// The property fixed by enable_window(); requires windowed().
  [[nodiscard]] Property window_property() const;
  [[nodiscard]] WindowStats window_stats() const;

  /// Windowed mode only: the retired prefix's accumulated verdict plus a
  /// batch pass over the residual ops, assembled exactly like
  /// check_well_formed + the property checker on the full history. Const:
  /// may be called repeatedly, always over the current state.
  [[nodiscard]] CheckReport final_check() const;

  /// Residual (unretired) ops. In batch mode this is the full history.
  [[nodiscard]] std::vector<OpRecord> snapshot() const;
  /// Total ops ever recorded (including retired).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t recorded_total() const;
  [[nodiscard]] std::size_t completed_total() const;

  /// Order-exact fold over the full history (retired prefix's running fold
  /// continued over the residual), seeded with kHistoryFpSeed. Identical
  /// with the window on or off -- the sweep's DES fingerprints rely on it.
  [[nodiscard]] std::uint64_t history_fingerprint() const;

 private:
  void maybe_retire_locked();

  mutable std::mutex mu_;
  std::deque<OpRecord> ops_;     ///< residual ops; front is the oldest
  std::size_t retired_base_{0};  ///< handles below this index are retired
  std::size_t recorded_{0};
  std::size_t completed_{0};
  std::uint64_t peak_live_{0};
  std::unique_ptr<StreamState> stream_;  ///< null in batch mode
};

/// Seed of the per-log history fingerprint fold (arbitrary nonzero).
inline constexpr std::uint64_t kHistoryFpSeed = 0x243f6a8885a308d3ULL;

/// Order-sensitive fold used for history fingerprints (shared with the
/// sweep so windowed retirement can reproduce it incrementally).
[[nodiscard]] std::uint64_t fp_fold(std::uint64_t h, std::uint64_t v);
[[nodiscard]] std::uint64_t fp_fold_bytes(std::uint64_t h,
                                          const std::string& s);
[[nodiscard]] std::uint64_t fp_fold_op(std::uint64_t h, const OpRecord& op);

/// Human-readable one-line rendering of an op (shared by the batch and
/// streaming checkers so violation messages are bit-identical).
[[nodiscard]] std::string describe_op(const OpRecord& op);

[[nodiscard]] CheckReport check_safety(const std::vector<OpRecord>& ops);
[[nodiscard]] CheckReport check_regularity(const std::vector<OpRecord>& ops);
[[nodiscard]] CheckReport check_atomicity(const std::vector<OpRecord>& ops);

/// Sanity conditions every harness run must satisfy regardless of storage
/// semantics: writer timestamps are 1..N in invocation order, operations of
/// one client do not overlap. Returns violations.
[[nodiscard]] CheckReport check_well_formed(const std::vector<OpRecord>& ops);

}  // namespace rr::checker
