// Operation-history recording and consistency checking.
//
// Harnesses record every operation invocation/response into a HistoryLog;
// the checkers then verify the paper's correctness conditions post-hoc:
//
//   safety     (Section 2.2): a READ not concurrent with any WRITE returns
//                the value of the last preceding WRITE (or the initial value).
//   regularity (Section 2.2): (1) every returned value was written (or is
//                the initial value), (2) a READ succeeding WRITE_k returns
//                val_l with l >= k, (3) a READ returning val_k (k >= 1) does
//                not precede WRITE_k.
//   atomicity  (for the ABD baseline): regularity + no new-old inversion
//                between non-concurrent READs (sufficient for SWMR
//                registers).
//
// Writes are identified by their writer timestamps (1, 2, 3, ...); the
// initial value is timestamp 0.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rr::checker {

struct OpRecord {
  enum class Kind { Write, Read };

  Kind kind{Kind::Write};
  int client{0};  ///< reader index, or -1 for the writer
  Time invoked_at{0};
  Time responded_at{0};
  bool complete{false};

  /// Writes: the timestamp/value written. Reads: the timestamp/value
  /// returned (ts 0 = initial value).
  Ts ts{0};
  Value value{};
};

/// Thread-safe append-only operation log (shared by the simulator harnesses
/// and the threaded runtime).
class HistoryLog {
 public:
  /// Returns an opaque handle to later mark completion. For writes,
  /// `intended_value` records the value being written so that a write left
  /// incomplete by a crash can still be matched against concurrent reads.
  std::size_t record_invocation(OpRecord::Kind kind, int client, Time at,
                                Value intended_value = {});
  void record_write_response(std::size_t handle, Time at, Ts ts,
                             const Value& value);
  void record_read_response(std::size_t handle, Time at, const TsVal& tsval);

  [[nodiscard]] std::vector<OpRecord> snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<OpRecord> ops_;
};

/// Result of a consistency check; empty `violations` means the property
/// holds on the given history.
struct CheckReport {
  std::vector<std::string> violations;
  int reads_checked{0};
  int writes_checked{0};

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] CheckReport check_safety(const std::vector<OpRecord>& ops);
[[nodiscard]] CheckReport check_regularity(const std::vector<OpRecord>& ops);
[[nodiscard]] CheckReport check_atomicity(const std::vector<OpRecord>& ops);

/// Sanity conditions every harness run must satisfy regardless of storage
/// semantics: writer timestamps are 1..N in invocation order, operations of
/// one client do not overlap. Returns violations.
[[nodiscard]] CheckReport check_well_formed(const std::vector<OpRecord>& ops);

}  // namespace rr::checker
